// E15: group commit — batching WAL syncs across concurrent committers.
//
// N client threads perform durable auto-commit enqueues against one
// QueueRepository (sync_commits=true). Per-operation mode pays one
// physical sync per enqueue, serialized; group-commit mode elects a
// sync leader whose single sync covers every record appended before
// it ran. The environment wraps MemEnv with a fixed 200 us sync
// latency modeling a commodity-SSD fsync, so the run is deterministic
// and the sync cost — the thing group commit amortizes — dominates.
//
// Emits BENCH_group_commit.json with per-thread-count throughput for
// both modes, the speedup, and the records-per-sync batching factor.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "env/mem_env.h"
#include "queue/queue_repository.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kSyncDelayMicros = 200;
constexpr int kOpsPerThread = 200;

// WritableFile that charges a fixed latency per Sync, delegating the
// rest to the wrapped MemEnv file.
class DelayedSyncFile final : public env::WritableFile {
 public:
  explicit DelayedSyncFile(std::unique_ptr<env::WritableFile> base)
      : base_(std::move(base)) {}

  Status Append(const Slice& data) override { return base_->Append(data); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    // Sleep rather than spin: a real fsync blocks in the kernel and
    // frees the CPU for concurrent committers to queue up behind the
    // leader — spinning would serialize the machine on small hosts.
    std::this_thread::sleep_for(std::chrono::microseconds(kSyncDelayMicros));
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<env::WritableFile> base_;
};

class DelayedSyncEnv final : public env::Env {
 public:
  explicit DelayedSyncEnv(env::Env* base) : base_(base) {}

  Status NewSequentialFile(
      const std::string& fname,
      std::unique_ptr<env::SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<env::RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<env::WritableFile>* result) override {
    RRQ_RETURN_IF_ERROR(base_->NewWritableFile(fname, result));
    *result = std::make_unique<DelayedSyncFile>(std::move(*result));
    return Status::OK();
  }
  Status NewAppendableFile(
      const std::string& fname,
      std::unique_ptr<env::WritableFile>* result) override {
    RRQ_RETURN_IF_ERROR(base_->NewAppendableFile(fname, result));
    *result = std::make_unique<DelayedSyncFile>(std::move(*result));
    return Status::OK();
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  env::Env* base_;
};

struct RunResult {
  double ops_per_sec = 0;
  uint64_t syncs = 0;
  uint64_t sync_requests = 0;
  double records_per_sync = 0;
};

RunResult RunEnqueues(int threads, bool group_commit) {
  env::MemEnv mem;
  DelayedSyncEnv env(&mem);
  queue::RepositoryOptions options;
  options.env = &env;
  options.dir = "/bench";
  options.sync_commits = true;
  options.group_commit = group_commit;
  queue::QueueRepository repo("bench", options);
  if (!repo.Open().ok()) abort();
  if (!repo.CreateQueue("q").ok()) abort();

  bench::Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&repo, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto r = repo.Enqueue(nullptr, "q",
                              "payload-" + std::to_string(t) + "-" +
                                  std::to_string(i));
        if (!r.ok()) abort();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.ElapsedSeconds();

  RunResult result;
  result.ops_per_sec = threads * kOpsPerThread / elapsed;
  result.syncs = repo.wal_sync_count();
  result.sync_requests = repo.wal_sync_request_count();
  result.records_per_sync =
      result.syncs == 0 ? 0.0
                        : static_cast<double>(threads * kOpsPerThread) /
                              static_cast<double>(result.syncs);
  return result;
}

}  // namespace

int main() {
  printf("E15: group commit (durable enqueues, %d us simulated sync, "
         "%d ops/thread)\n\n",
         kSyncDelayMicros, kOpsPerThread);

  bench::Table table({"threads", "per-op sync (ops/s)", "group commit (ops/s)",
                      "speedup", "syncs (per-op)", "syncs (group)",
                      "records/sync"});

  std::string json = "{\n  \"sync_delay_micros\": " +
                     std::to_string(kSyncDelayMicros) +
                     ",\n  \"ops_per_thread\": " +
                     std::to_string(kOpsPerThread) + ",\n  \"runs\": [\n";
  bool first = true;
  for (int threads : {1, 2, 4, 8}) {
    RunResult per_op = RunEnqueues(threads, /*group_commit=*/false);
    RunResult grouped = RunEnqueues(threads, /*group_commit=*/true);
    const double speedup = grouped.ops_per_sec / per_op.ops_per_sec;
    table.AddRow({std::to_string(threads), Fmt(per_op.ops_per_sec, 0),
                  Fmt(grouped.ops_per_sec, 0), Fmt(speedup, 2) + "x",
                  std::to_string(per_op.syncs), std::to_string(grouped.syncs),
                  Fmt(grouped.records_per_sync, 1)});
    if (!first) json += ",\n";
    first = false;
    json += "    {\"threads\": " + std::to_string(threads) +
            ", \"per_op_ops_per_sec\": " + Fmt(per_op.ops_per_sec, 0) +
            ", \"group_ops_per_sec\": " + Fmt(grouped.ops_per_sec, 0) +
            ", \"speedup\": " + Fmt(speedup, 2) +
            ", \"per_op_syncs\": " + std::to_string(per_op.syncs) +
            ", \"group_syncs\": " + std::to_string(grouped.syncs) +
            ", \"group_sync_requests\": " +
            std::to_string(grouped.sync_requests) +
            ", \"records_per_sync\": " + Fmt(grouped.records_per_sync, 1) +
            "}";
  }
  json += "\n  ]\n}\n";
  table.Print();

  rrq::bench::WriteBenchJson("group_commit", json);
  return 0;
}
