// E1 (§2): the design space for reliable request processing.
//
//   one-txn    — {send, receive, PROCESS} in a single transaction:
//                server data locks are held through the client's reply
//                processing (think time). The paper's first strawman.
//   two-txn    — {send, receive} in a transaction, process outside:
//                locks released before think time, but a crash between
//                receive and process loses the reply.
//   queued-3tx — the paper's three-transaction queued scheme: client
//                enqueue txn / server txn / client dequeue txn.
//   queued     — the paper's final model: non-transactional client,
//                queue manager as the gateway (auto-commit clerk ops).
//
// Workload: concurrent clients, each request updates a hot row in a
// shared store, then the client "thinks" for think_micros while
// processing the reply. Reported: throughput and total lock wait.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "queue/queue_repository.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 60;
constexpr int kHotKeys = 2;

void SpinFor(int micros) {
  auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct RunResult {
  double requests_per_sec;
  double lock_wait_ms;
};

// The server-side work: read-modify-write a hot account row.
Status ServerWork(storage::KvStore* db, txn::Transaction* t, int client,
                  int i) {
  const std::string key = "hot/" + std::to_string((client + i) % kHotKeys);
  auto v = db->GetForUpdate(t, key);
  if (!v.ok()) return v.status();
  return db->Put(t, key, std::to_string(std::stol(*v) + 1));
}

RunResult RunModel(const std::string& model, int think_micros) {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  storage::KvStore db("db", {});
  if (!db.Open().ok()) abort();
  {
    auto boot = txn_mgr.Begin();
    for (int k = 0; k < kHotKeys; ++k) {
      db.Put(boot.get(), "hot/" + std::to_string(k), "0");
    }
    if (!boot->Commit().ok()) abort();
  }
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) abort();
  if (!repo.CreateQueue("req").ok()) abort();
  for (int c = 0; c < kClients; ++c) {
    if (!repo.CreateQueue("rep" + std::to_string(c)).ok()) abort();
  }

  std::atomic<int> done{0};
  bench::Stopwatch stopwatch;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      const std::string reply_queue = "rep" + std::to_string(c);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        if (model == "one-txn") {
          // Everything, including reply processing, inside the txn.
          Status s = txn::RunInTransaction(
              &txn_mgr, 100, [&](txn::Transaction* t) -> Status {
                RRQ_RETURN_IF_ERROR(ServerWork(&db, t, c, i));
                SpinFor(think_micros);  // Reply processed under locks.
                return Status::OK();
              });
          if (!s.ok()) abort();
        } else if (model == "two-txn") {
          Status s = txn::RunInTransaction(
              &txn_mgr, 100, [&](txn::Transaction* t) -> Status {
                return ServerWork(&db, t, c, i);
              });
          if (!s.ok()) abort();
          SpinFor(think_micros);  // Processed outside; crash loses it.
        } else if (model == "queued-3tx") {
          // Client txn 1: enqueue request.
          Status s = txn::RunInTransaction(
              &txn_mgr, 100, [&](txn::Transaction* t) -> Status {
                return repo.Enqueue(t, "req", reply_queue).status();
              });
          if (!s.ok()) abort();
          // Server txn: dequeue, work, enqueue reply.
          s = txn::RunInTransaction(
              &txn_mgr, 100, [&](txn::Transaction* t) -> Status {
                auto got = repo.Dequeue(t, "req", "", Slice(), 1'000'000);
                if (!got.ok()) return got.status();
                RRQ_RETURN_IF_ERROR(ServerWork(&db, t, c, i));
                return repo.Enqueue(t, got->contents, "reply").status();
              });
          if (!s.ok()) abort();
          // Client txn 2: dequeue reply; processing inside this txn is
          // acknowledged by its commit.
          s = txn::RunInTransaction(
              &txn_mgr, 100, [&](txn::Transaction* t) -> Status {
                auto got =
                    repo.Dequeue(t, reply_queue, "", Slice(), 1'000'000);
                if (!got.ok()) return got.status();
                SpinFor(think_micros);
                return Status::OK();
              });
          if (!s.ok()) abort();
        } else {  // "queued": the paper's non-transactional client.
          if (!repo.Enqueue(nullptr, "req", reply_queue).ok()) abort();
          Status s = txn::RunInTransaction(
              &txn_mgr, 100, [&](txn::Transaction* t) -> Status {
                auto got = repo.Dequeue(t, "req", "", Slice(), 1'000'000);
                if (!got.ok()) return got.status();
                RRQ_RETURN_IF_ERROR(ServerWork(&db, t, c, i));
                return repo.Enqueue(t, got->contents, "reply").status();
              });
          if (!s.ok()) abort();
          if (!repo.Dequeue(nullptr, reply_queue, "", Slice(), 1'000'000)
                   .ok()) {
            abort();
          }
          SpinFor(think_micros);  // Outside any txn; queue retains copy.
        }
        done.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();

  RunResult result;
  result.requests_per_sec = done.load() / stopwatch.ElapsedSeconds();
  result.lock_wait_ms =
      txn_mgr.lock_manager()->total_wait_micros() / 1000.0;
  return result;
}

}  // namespace

int main() {
  printf("E1: client-model design space (%d clients x %d requests, %d hot "
         "rows)\n\n",
         kClients, kRequestsPerClient, kHotKeys);
  for (int think : {0, 500, 2000}) {
    printf("think time = %d us (reply processing)\n", think);
    rrq::bench::Table table(
        {"model", "req/s", "total lock wait (ms)"});
    for (const char* model : {"one-txn", "two-txn", "queued-3tx", "queued"}) {
      RunResult r = RunModel(model, think);
      table.AddRow({model, Fmt(r.requests_per_sec, 0),
                    Fmt(r.lock_wait_ms, 1)});
    }
    table.Print();
    printf("\n");
  }
  printf("Paper's claim (§2): one-txn holds server locks through think "
         "time (contention grows with think time); the queued models "
         "keep lock wait flat.\n");
  return 0;
}
