// E13 (§7): cancellation outcomes vs how late the cancel arrives.
//
// A two-stage pipeline processes transfers while a canceller tries to
// cancel each request after a configurable delay. Reported per delay:
// how many cancels deleted the request in-queue, how many had to
// compensate committed stages, and how many were too late — plus the
// cost of a compensation in transactions.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "queue/queue_repository.h"
#include "server/pipeline.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kRequests = 100;

struct RunResult {
  int killed_in_queue = 0;
  int compensating = 0;
  int too_late = 0;
  uint64_t compensation_txns = 0;
};

RunResult RunOnce(int cancel_delay_micros, int stage_work_micros) {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  storage::KvStore db("db", {});
  if (!db.Open().ok()) abort();
  {
    auto boot = txn_mgr.Begin();
    db.Put(boot.get(), "balance", "1000000");
    if (!boot->Commit().ok()) abort();
  }
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) abort();
  if (!repo.CreateQueue("replies").ok()) abort();

  auto adjust = [&db](txn::Transaction* t, long delta) -> Status {
    auto v = db.GetForUpdate(t, "balance");
    if (!v.ok()) return v.status();
    return db.Put(t, "balance", std::to_string(std::stol(*v) + delta));
  };
  auto spin = [](int micros) {
    auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
    while (std::chrono::steady_clock::now() < until) {
    }
  };

  server::PipelineStage debit{
      "debit",
      [&](txn::Transaction* t, const queue::RequestEnvelope&)
          -> Result<server::StageResult> {
        spin(stage_work_micros);
        RRQ_RETURN_IF_ERROR(adjust(t, -10));
        return server::StageResult{"debited", "10"};
      },
      [&](txn::Transaction* t, const std::string& amount) -> Status {
        return adjust(t, std::stol(amount));
      }};
  server::PipelineStage credit{
      "credit",
      [&](txn::Transaction* t, const queue::RequestEnvelope&)
          -> Result<server::StageResult> {
        spin(stage_work_micros);
        RRQ_RETURN_IF_ERROR(adjust(t, +10));
        return server::StageResult{"done", "10"};
      },
      [&](txn::Transaction* t, const std::string& amount) -> Status {
        return adjust(t, -std::stol(amount));
      }};

  server::PipelineOptions poptions;
  poptions.queue_prefix = "c";
  poptions.poll_timeout_micros = 1'000;
  server::Pipeline pipeline(poptions, &repo, &txn_mgr, {debit, credit});
  if (!pipeline.Setup().ok()) abort();
  if (!pipeline.Start().ok()) abort();

  RunResult result;
  for (int i = 0; i < kRequests; ++i) {
    queue::RequestEnvelope envelope;
    envelope.rid = "c#" + std::to_string(i);
    envelope.reply_queue = "replies";
    envelope.body = "transfer";
    repo.Enqueue(nullptr, pipeline.entry_queue(),
                 queue::EncodeRequestEnvelope(envelope));
    if (cancel_delay_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(cancel_delay_micros));
    }
    auto outcome = pipeline.Cancel(envelope.rid);
    if (!outcome.ok()) abort();
    switch (*outcome) {
      case server::CancelOutcome::kKilledInQueue: ++result.killed_in_queue; break;
      case server::CancelOutcome::kCompensating: ++result.compensating; break;
      case server::CancelOutcome::kTooLate: ++result.too_late; break;
    }
  }
  // Let the pipeline and compensations quiesce.
  for (int i = 0; i < 400; ++i) {
    auto d0 = repo.Depth(pipeline.StageQueue(0));
    auto d1 = repo.Depth(pipeline.StageQueue(1));
    auto dc = repo.Depth(pipeline.CompensationQueue());
    if (d0.value_or(1) == 0 && d1.value_or(1) == 0 && dc.value_or(1) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  pipeline.Stop();
  result.compensation_txns = pipeline.compensation_count();
  return result;
}

}  // namespace

int main() {
  printf("E13: cancellation outcome vs cancel delay (two-stage transfers, "
         "%d requests, 500 us per stage)\n\n",
         kRequests);
  rrq::bench::Table table({"cancel delay (us)", "killed in queue",
                           "compensating", "too late", "compensation txns"});
  for (int delay : {0, 300, 1500, 5000}) {
    RunResult r = RunOnce(delay, 500);
    table.AddRow({std::to_string(delay), std::to_string(r.killed_in_queue),
                  std::to_string(r.compensating), std::to_string(r.too_late),
                  std::to_string(r.compensation_txns)});
  }
  table.Print();
  printf("\nPaper's claim (§7): cheap KillElement cancellation closes once "
         "the first transaction commits; later cancellation needs "
         "compensating transactions (sagas), whose cost scales with "
         "committed stages.\n");
  return 0;
}
