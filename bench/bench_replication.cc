// E21 (§10): "queues are a good candidate for being stored as a
// replicated database ... despite the cost of such strong
// synchronization." Measures the per-operation cost of networked WAL
// shipping against a REAL backup rrqd daemon in a child process, over
// loopback TCP — the production src/repl/ pipeline, not a simulated
// link. Three modes:
//
//   off     no replication sink — the single-copy baseline;
//   async   each commit appends its record to the ReplicationLog and
//           returns; the sender ships in the background. The drain
//           time until the backup has acked everything is reported
//           separately — that tail is the failover exposure window;
//   ack'd   each commit blocks until the backup acknowledged its
//           record (the semi-synchronous mode the failover test runs
//           under): the full network round trip on the commit path.
//
// After each replicated run the backup is promoted and its queue depth
// compared against the primary's — the failover sanity check.
//
// Emits BENCH_replication.json (full runs only). --smoke scales the
// loop down for CI and skips the JSON.
#include <signal.h>
#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/queue_repository.h"
#include "repl/replication_log.h"
#include "repl/replication_sender.h"
#include "testing/subprocess.h"
#include "util/random.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

int operations = 4000;

void Die(const char* what, const Status& status) {
  fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

uint16_t ParsePort(const std::string& listening_line) {
  const size_t colon = listening_line.rfind(':');
  if (colon == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::strtoul(listening_line.c_str() + colon + 1, nullptr, 10));
}

struct RunResult {
  double us_per_pair = 0;
  double drain_micros = 0;  // async only: loop end → fully acked.
};

// One measured run. mode: 0 = off, 1 = async, 2 = ack'd.
RunResult RunOnce(int mode, int pairs) {
  // A real backup daemon for the replicated modes, on a fresh state
  // directory and ephemeral ports.
  std::unique_ptr<testing::Subprocess> backup;
  std::string backup_dir;
  uint16_t backup_port = 0;
  uint16_t repl_port = 0;
  if (mode != 0) {
    char dir_template[] = "/tmp/rrq_bench_repl_XXXXXX";
    if (mkdtemp(dir_template) == nullptr) Die("mkdtemp", Status::IOError(""));
    backup_dir = dir_template;
    backup = std::make_unique<testing::Subprocess>();
    if (Status s = backup->Spawn({RRQD_BINARY, "--dir", backup_dir, "--port",
                                  "0", "--threads", "2", "--shards", "1",
                                  "--role", "backup", "--repl-port", "0"});
        !s.ok()) {
      Die("spawn backup", s);
    }
    auto line = backup->WaitForLine("rrqd: listening on", 30'000'000);
    if (!line.ok()) Die("backup boot", line.status());
    backup_port = ParsePort(*line);
    line = backup->WaitForLine("repl listening on", 30'000'000);
    if (!line.ok()) Die("backup repl port", line.status());
    repl_port = ParsePort(*line);
  }

  repl::ReplicationLog log;
  std::atomic<bool> ack_gate{false};
  queue::RepositoryOptions options;
  if (mode == 1) {
    options.replication_sink = [&log](const Slice& record) {
      log.Append(record.ToString());
      return Status::OK();
    };
  } else if (mode == 2) {
    options.replication_sink = [&log, &ack_gate](const Slice& record) {
      const uint64_t seq = log.Append(record.ToString());
      if (ack_gate.load(std::memory_order_acquire)) {
        return log.WaitAcked(seq, 10'000'000);
      }
      return Status::OK();
    };
  }
  queue::QueueRepository primary("primary", options);
  if (Status s = primary.Open(); !s.ok()) Die("primary open", s);
  if (Status s = primary.CreateQueue("q"); !s.ok()) Die("create queue", s);

  std::unique_ptr<repl::ReplicationSender> sender;
  if (mode != 0) {
    repl::ReplicationSenderOptions sender_options;
    sender_options.port = repl_port;
    sender_options.stream_id = 0xb0b0 + static_cast<uint64_t>(mode);
    sender = std::make_unique<repl::ReplicationSender>(sender_options, &log,
                                                       &primary);
    if (Status s = sender->Start(); !s.ok()) Die("sender start", s);
    // Wait the seed out: the pairs must measure steady-state shipping,
    // not the one-time snapshot catch-up.
    for (;;) {
      const repl::ReplicationState state = sender->state();
      if (state.state == "shipping" && state.acked_seq == log.head_seq()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ack_gate.store(true, std::memory_order_release);
  }

  util::Rng rng(9);
  const std::string payload = rng.Bytes(256);
  bench::Stopwatch stopwatch;
  for (int i = 0; i < pairs; ++i) {
    if (!primary.Enqueue(nullptr, "q", payload).ok()) abort();
    if (!primary.Dequeue(nullptr, "q").ok()) abort();
  }
  RunResult result;
  result.us_per_pair =
      stopwatch.ElapsedMicros() / static_cast<double>(pairs);

  if (mode != 0) {
    // Async: the commit loop is done but the wire may not be — the
    // remaining drain is exactly what an ack'd commit pays up front.
    bench::Stopwatch drain;
    while (log.acked() < log.head_seq()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    result.drain_micros = static_cast<double>(drain.ElapsedMicros());
    sender->Stop();
    log.Shutdown();

    // Failover sanity: promote the backup and compare queue depths.
    net::TcpChannelOptions channel_options;
    channel_options.port = backup_port;
    net::TcpChannel channel(channel_options);
    net::ChannelQueueApi api(&channel);
    if (Status s = api.Promote(); !s.ok()) Die("promote", s);
    auto backup_depth = api.Depth("q");
    if (!backup_depth.ok()) Die("backup depth", backup_depth.status());
    auto primary_depth = primary.Depth("q");
    if (*backup_depth != *primary_depth) {
      fprintf(stderr, "failover divergence: backup depth %zu, primary %zu\n",
              *backup_depth, *primary_depth);
      std::exit(1);
    }
    if (Status s = backup->Signal(SIGTERM); !s.ok()) Die("stop backup", s);
    if (auto st = backup->Wait(); !st.ok()) Die("reap backup", st.status());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) operations = 50;

  printf("E21: networked WAL shipping cost — enqueue+dequeue pairs on a\n"
         "primary replicating to a real backup rrqd over loopback TCP\n"
         "(256-byte elements, %d pairs)%s\n\n",
         operations, smoke ? " [smoke]" : "");

  const RunResult off = RunOnce(0, operations);
  const RunResult async_run = RunOnce(1, operations);
  // The ack'd commit path pays a round trip per pair; keep wall time
  // comparable with a smaller loop.
  const int acked_pairs = smoke ? operations : operations / 10;
  const RunResult acked = RunOnce(2, acked_pairs);

  bench::Table table({"replication", "us per enq+deq pair", "overhead"});
  table.AddRow({"off", Fmt(off.us_per_pair, 1), "1.00x"});
  table.AddRow({"async", Fmt(async_run.us_per_pair, 1),
                Fmt(async_run.us_per_pair / off.us_per_pair, 2) + "x"});
  table.AddRow({"ack'd", Fmt(acked.us_per_pair, 1),
                Fmt(acked.us_per_pair / off.us_per_pair, 2) + "x"});
  table.Print();
  printf("\nasync drain after the loop (the failover exposure window): "
         "%.0f us\n",
         async_run.drain_micros);
  printf("Failover check passed: after both replicated runs the promoted "
         "backup's queue depth matched the primary's.\n");
  printf("Paper's claim (§10): replicating the queues is feasible; the "
         "ack'd mode prices the round trip on the commit path, async "
         "defers it to the failover window.\n");

  if (!smoke) {
    const std::string json =
        "{\n  \"experiment\": \"replication\",\n"
        "  \"pairs\": " + std::to_string(operations) +
        ",\n  \"acked_pairs\": " + std::to_string(acked_pairs) +
        ",\n  \"off_us_per_pair\": " + Fmt(off.us_per_pair, 2) +
        ",\n  \"async_us_per_pair\": " + Fmt(async_run.us_per_pair, 2) +
        ",\n  \"acked_us_per_pair\": " + Fmt(acked.us_per_pair, 2) +
        ",\n  \"async_overhead\": " +
        Fmt(async_run.us_per_pair / off.us_per_pair, 3) +
        ",\n  \"acked_overhead\": " +
        Fmt(acked.us_per_pair / off.us_per_pair, 3) +
        ",\n  \"async_drain_micros\": " + Fmt(async_run.drain_micros, 0) +
        "\n}\n";
    bench::WriteBenchJson("replication", json);
  }
  return 0;
}
