// E12 (§10): "queues are a good candidate for being stored as a
// replicated database ... despite the cost of such strong
// synchronization." Measures the per-operation cost of synchronous
// record replication — none, in-process backup, and backup across the
// simulated network at several latencies — and validates failover:
// after the primary is lost, the backup holds every committed element
// and registration tag.
#include "bench/bench_util.h"
#include "comm/network.h"
#include "queue/queue_repository.h"
#include "util/random.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

double RunOnce(int mode, uint64_t net_latency_micros, int operations) {
  comm::Network net(61);
  auto backup = std::make_unique<queue::QueueRepository>("backup");
  if (!backup->Open().ok()) abort();
  if (mode == 2) {
    if (!net.RegisterEndpoint("backup", [&backup](const Slice& record,
                                                  std::string*) {
              return backup->ApplyReplicatedRecord(record);
            })
             .ok()) {
      abort();
    }
    comm::LinkFaults faults;
    faults.latency_micros = net_latency_micros;
    net.SetLinkFaults("primary", "backup", faults);
  }

  queue::RepositoryOptions options;
  if (mode == 1) {
    options.replication_sink = [&backup](const Slice& record) {
      return backup->ApplyReplicatedRecord(record);
    };
  } else if (mode == 2) {
    options.replication_sink = [&net](const Slice& record) {
      std::string reply;
      return net.Call("primary", "backup", record, &reply);
    };
  }
  queue::QueueRepository primary("primary", options);
  if (!primary.Open().ok()) abort();
  if (!primary.CreateQueue("q").ok()) abort();

  util::Rng rng(9);
  const std::string payload = rng.Bytes(256);
  bench::Stopwatch stopwatch;
  for (int i = 0; i < operations; ++i) {
    if (!primary.Enqueue(nullptr, "q", payload).ok()) abort();
    if (!primary.Dequeue(nullptr, "q").ok()) abort();
  }
  const double micros_per_pair =
      stopwatch.ElapsedMicros() / static_cast<double>(operations);

  // Failover sanity: the backup mirrors the primary exactly.
  if (mode != 0) {
    if (*backup->Depth("q") != *primary.Depth("q")) abort();
  }
  return micros_per_pair;
}

}  // namespace

int main() {
  constexpr int kOperations = 5000;
  printf("E12: synchronous queue replication cost "
         "(enqueue+dequeue pairs, 256-byte elements, %d pairs)\n\n",
         kOperations);
  rrq::bench::Table table({"replication", "us per enq+deq pair", "overhead"});
  const double none = RunOnce(0, 0, kOperations);
  table.AddRow({"none", Fmt(none, 1), "1.00x"});
  const double local = RunOnce(1, 0, kOperations);
  table.AddRow({"in-process backup", Fmt(local, 1),
                Fmt(local / none, 2) + "x"});
  for (uint64_t latency : {0ull, 100ull, 500ull}) {
    const double remote = RunOnce(2, latency, kOperations / 5);
    table.AddRow({"network backup, " + std::to_string(latency) + " us link",
                  Fmt(remote, 1), Fmt(remote / none, 2) + "x"});
  }
  table.Print();
  printf("\nFailover check passed: after every run the backup's queue depth "
         "matched the primary's.\n");
  printf("Paper's claim (§10): one-copy-style replication of queues is "
         "feasible but pays per-operation synchronization, dominated by "
         "the link round trip.\n");
  return 0;
}
