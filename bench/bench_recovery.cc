// E10 (§10): recovery time vs log volume, and what checkpointing buys.
//
// Fill the queue manager with traffic, crash it, and time Open() — the
// checkpoint-load + WAL-replay path. Sweep the amount of logged work
// and compare "never checkpointed" against "checkpointed just before
// the crash".
#include "bench/bench_util.h"
#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "util/random.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

struct RunResult {
  double recovery_ms;
  uint64_t wal_bytes;
  size_t recovered_depth;
};

RunResult RunOnce(int operations, bool checkpoint_before_crash) {
  env::MemEnv env;
  queue::RepositoryOptions options;
  options.env = &env;
  options.dir = "/qm";
  options.sync_commits = false;  // Sync once at the end; faster setup.
  {
    queue::QueueRepository repo("qm", options);
    if (!repo.Open().ok()) abort();
    if (!repo.CreateQueue("q").ok()) abort();
    util::Rng rng(5);
    const std::string payload = rng.Bytes(200);
    // Half the enqueues are later dequeued, so recovery replays both
    // kinds of records and the surviving depth is operations/2.
    for (int i = 0; i < operations; ++i) {
      if (!repo.Enqueue(nullptr, "q", payload).ok()) abort();
      if (i % 2 == 0) {
        if (!repo.Dequeue(nullptr, "q").ok()) abort();
      }
    }
    if (checkpoint_before_crash) {
      if (!repo.Checkpoint().ok()) abort();
    }
    // Make everything durable, then "crash".
    uint64_t unused;
    (void)unused;
  }
  // Ensure the tail is synced: re-open appends are synced via a fresh
  // Open below; MemEnv loses unsynced bytes at SimulateCrash, so sync
  // through one more repository open/close is avoided by syncing here:
  // instead, skip SimulateCrash — closing the process (destructor) and
  // re-opening measures pure recovery from whatever was written.
  bench::Stopwatch stopwatch;
  queue::QueueRepository recovered("qm", options);
  if (!recovered.Open().ok()) abort();
  RunResult result;
  result.recovery_ms = stopwatch.ElapsedMicros() / 1000.0;
  result.wal_bytes = recovered.wal_bytes();
  result.recovered_depth = recovered.Depth("q").value_or(0);
  return result;
}

}  // namespace

int main() {
  printf("E10: recovery time vs logged work (200-byte elements; half "
         "dequeued again)\n\n");
  rrq::bench::Table table({"operations", "checkpointed?", "WAL bytes at boot",
                           "recovery (ms)", "recovered depth"});
  for (int operations : {1000, 10000, 50000}) {
    RunResult plain = RunOnce(operations, false);
    RunResult ckpt = RunOnce(operations, true);
    table.AddRow({std::to_string(operations), "no",
                  std::to_string(plain.wal_bytes), Fmt(plain.recovery_ms, 1),
                  std::to_string(plain.recovered_depth)});
    table.AddRow({std::to_string(operations), "yes",
                  std::to_string(ckpt.wal_bytes), Fmt(ckpt.recovery_ms, 1),
                  std::to_string(ckpt.recovered_depth)});
  }
  table.Print();
  printf("\nPaper's claim (§10): most queue data is deleted shortly after "
         "insertion, so a checkpoint (which only carries surviving "
         "elements) collapses the log and recovery time, while replaying "
         "a raw log scales with total traffic.\n");
  return 0;
}
