// E2 (§10): skip-locked vs strict-FIFO dequeue under concurrency.
//
// The paper: "it should be possible for one transaction to dequeue the
// top element of a queue, and for a second transaction to do the same
// before the first commits ... this anomalous ordering is tolerable,
// when compared to the performance degradation that strict ordering
// would imply." This bench measures that degradation: N server threads
// run {dequeue; simulate work; enqueue reply; commit} against one
// queue under each policy.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "queue/queue_repository.h"
#include "txn/txn_manager.h"

namespace {

using namespace rrq;                 // NOLINT
using bench::Fmt;

double RunOnce(queue::DequeuePolicy policy, int threads, int work_micros,
               int requests) {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  queue::QueueRepository repo("bench", {});
  if (!repo.Open().ok()) abort();
  queue::QueueOptions qopts;
  qopts.policy = policy;
  if (!repo.CreateQueue("q", qopts).ok()) abort();
  if (!repo.CreateQueue("replies").ok()) abort();
  for (int i = 0; i < requests; ++i) {
    repo.Enqueue(nullptr, "q", "job");
  }

  std::atomic<int> done{0};
  bench::Stopwatch stopwatch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      while (true) {
        auto txn = txn_mgr.Begin();
        auto got = repo.Dequeue(txn.get(), "q", "", Slice(), 0);
        if (!got.ok()) {
          txn->Abort();
          if (got.status().IsNotFound() && done.load() >= requests) return;
          std::this_thread::yield();
          continue;
        }
        // Simulated per-request work while the element is locked.
        if (work_micros > 0) {
          auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(work_micros);
          while (std::chrono::steady_clock::now() < until) {
          }
        }
        repo.Enqueue(txn.get(), "replies", "done");
        if (txn->Commit().ok()) done.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return done.load() / stopwatch.ElapsedSeconds();
}

}  // namespace

int main() {
  printf("E2: dequeue policy vs concurrency (requests/sec; 2000 requests, "
         "200us work each)\n\n");
  bench::Table table({"threads", "skip-locked req/s", "strict-FIFO req/s",
                      "speedup"});
  for (int threads : {1, 2, 4, 8}) {
    const double skip = RunOnce(rrq::queue::DequeuePolicy::kSkipLocked,
                                threads, 200, 2000);
    const double strict = RunOnce(rrq::queue::DequeuePolicy::kStrictFifo,
                                  threads, 200, 2000);
    table.AddRow({std::to_string(threads), Fmt(skip, 0), Fmt(strict, 0),
                  Fmt(skip / strict, 2) + "x"});
  }
  table.Print();
  printf("\nPaper's claim (§10): strict ordering serializes dequeuers; "
         "skip-locked scales with threads.\n");
  return 0;
}
