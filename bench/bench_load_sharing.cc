// E8 (§1): load sharing — "since many processes can dequeue requests
// from a single queue, this automatically shares the workload among
// these processes." Throughput vs server-pool size, for CPU-bound
// per-request work.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "core/request_system.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

double RunOnce(int threads, int work_micros, int requests) {
  core::SystemOptions options;
  options.sync_commits = false;  // Isolate scheduling from log cost.
  core::RequestSystem system(options);
  if (!system.Open().ok()) abort();
  std::atomic<int> done{0};
  auto server = system.MakeServer(
      [&done, work_micros](txn::Transaction*, const queue::RequestEnvelope&)
          -> Result<std::string> {
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(work_micros);
        while (std::chrono::steady_clock::now() < until) {
        }
        ++done;
        return std::string("ok");
      },
      threads);

  // Pre-load the batch, then start the pool and time the drain.
  for (int i = 0; i < requests; ++i) {
    queue::RequestEnvelope envelope;
    envelope.rid = "r#" + std::to_string(i);
    envelope.body = "work";
    system.repo()->Enqueue(nullptr, core::RequestSystem::kRequestQueue,
                           queue::EncodeRequestEnvelope(envelope));
  }
  bench::Stopwatch stopwatch;
  if (!server->Start().ok()) abort();
  while (done.load() < requests) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double elapsed = stopwatch.ElapsedSeconds();
  server->Stop();
  return requests / elapsed;
}

}  // namespace

int main() {
  constexpr int kRequests = 1500;
  constexpr int kWorkMicros = 500;
  printf("E8: load sharing — one queue, N identical servers (%d requests, "
         "%d us of work each)\n\n",
         kRequests, kWorkMicros);
  rrq::bench::Table table({"servers", "req/s", "scaling"});
  double base = 0;
  for (int threads : {1, 2, 4, 8}) {
    const double rate = RunOnce(threads, kWorkMicros, kRequests);
    if (threads == 1) base = rate;
    table.AddRow({std::to_string(threads), Fmt(rate, 0),
                  Fmt(rate / base, 2) + "x"});
  }
  table.Print();
  printf("\nPaper's claim (§1): the queue itself is the load balancer; "
         "scaling should track available parallelism (this host has %u "
         "hardware threads).\n",
         std::thread::hardware_concurrency());
  return 0;
}
