// E14 (§11 extension): streaming requests. With synchronous RPCs a
// single-threaded client cannot overlap wire time — what a deeper
// window hides is SERVER time: while the window is full, the server
// pool chews through queued requests concurrently and replies
// accumulate, so the client never sits idle waiting for one request to
// finish before submitting the next. One client, a 2-thread server
// with real per-request work, per-message link latency; sweep the
// window and measure end-to-end throughput. Window 1 is the plain
// one-at-a-time Client Model of §3.
#include <chrono>

#include "bench/bench_util.h"
#include "core/request_system.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

double RunOnce(int window, uint64_t link_latency_micros, int requests) {
  core::SystemOptions options;
  options.remote_clients = true;
  options.client_link_faults.latency_micros = link_latency_micros;
  options.seed = 404 + static_cast<uint64_t>(window);
  options.receive_timeout_micros = 5'000;
  core::RequestSystem system(options);
  if (!system.Open().ok()) abort();
  auto server = system.MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope&)
          -> Result<std::string> {
        // Real per-request service time: this is what the window hides.
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(30);
        while (std::chrono::steady_clock::now() < until) {
        }
        return std::string("ok");
      },
      2);
  if (!server->Start().ok()) abort();

  auto stream = system.MakeStreamingClient(
      "pipeliner", window,
      [](const std::string&, const std::string&, bool) {
        return Status::OK();
      });
  if (!stream.ok()) abort();

  bench::Stopwatch stopwatch;
  for (int i = 0; i < requests; ++i) {
    if (!(*stream)->Submit("w").ok()) abort();
  }
  if (!(*stream)->Drain().ok()) abort();
  const double rate = requests / stopwatch.ElapsedSeconds();
  server->Stop();
  return rate;
}

}  // namespace

int main() {
  constexpr int kRequests = 40;
  printf("E14: streaming window vs link latency (requests/sec, %d requests "
         "per cell, 30 ms service time, 2 servers; window 1 = the plain "
         "one-at-a-time client)\n\n",
         kRequests);
  rrq::bench::Table table(
      {"link latency", "window 1", "window 2", "window 4", "window 8"});
  for (uint64_t latency : {200ull, 1000ull}) {
    std::vector<std::string> row = {std::to_string(latency) + " us"};
    for (int window : {1, 2, 4, 8}) {
      row.push_back(Fmt(RunOnce(window, latency, kRequests), 0));
    }
    table.AddRow(row);
  }
  table.Print();
  printf("\n§11's streaming extension: the one-at-a-time client leaves the "
         "server pool idle while each request makes its round trip; a "
         "window >= the pool size keeps the pool saturated (here ~2x, "
         "capped by 2 servers x 30 ms).\n");
  return 0;
}
