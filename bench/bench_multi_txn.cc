// E3 (§6): one long transaction vs a multi-transaction request.
//
// The paper's motivation for multi-transaction requests is lock
// contention: "this approach may be chosen to avoid executing one long
// transaction, which can lead to lock contention." Each request
// touches K distinct accounts; as one transaction it holds all K locks
// for the whole request; as a K-stage pipeline each stage holds one
// lock briefly. We sweep K and concurrency and report throughput and
// deadlock/abort counts.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "queue/queue_repository.h"
#include "server/pipeline.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"
#include "util/random.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kAccounts = 6;
constexpr int kWorkers = 4;
constexpr int kRequestsPerWorker = 40;
constexpr int kStageWorkMicros = 300;

void Spin(int micros) {
  auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) {
  }
}

Status Touch(storage::KvStore* db, txn::Transaction* t, int account) {
  const std::string key = "acct/" + std::to_string(account);
  auto v = db->GetForUpdate(t, key);
  if (!v.ok()) return v.status();
  Spin(kStageWorkMicros);
  return db->Put(t, key, std::to_string(std::stol(*v) + 1));
}

struct RunResult {
  double requests_per_sec;
  uint64_t deadlocks;
  uint64_t aborts;
};

RunResult RunMonolithic(int steps) {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  storage::KvStore db("db", {});
  if (!db.Open().ok()) abort();
  {
    auto boot = txn_mgr.Begin();
    for (int a = 0; a < kAccounts; ++a) {
      db.Put(boot.get(), "acct/" + std::to_string(a), "0");
    }
    if (!boot->Commit().ok()) abort();
  }
  std::atomic<int> done{0};
  bench::Stopwatch stopwatch;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w]() {
      util::Rng rng(static_cast<uint64_t>(w) + 1);
      for (int i = 0; i < kRequestsPerWorker; ++i) {
        // Random distinct accounts, visited in random order — the
        // recipe for deadlocks in one big transaction.
        Status s = txn::RunInTransaction(
            &txn_mgr, 1000, [&](txn::Transaction* t) -> Status {
              for (int step = 0; step < steps; ++step) {
                RRQ_RETURN_IF_ERROR(Touch(
                    &db, t, static_cast<int>(rng.Uniform(kAccounts))));
              }
              return Status::OK();
            });
        if (!s.ok()) abort();
        done.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return RunResult{done.load() / stopwatch.ElapsedSeconds(),
                   txn_mgr.lock_manager()->deadlock_count(),
                   txn_mgr.abort_count()};
}

RunResult RunPipelined(int steps) {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  storage::KvStore db("db", {});
  if (!db.Open().ok()) abort();
  {
    auto boot = txn_mgr.Begin();
    for (int a = 0; a < kAccounts; ++a) {
      db.Put(boot.get(), "acct/" + std::to_string(a), "0");
    }
    if (!boot->Commit().ok()) abort();
  }
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) abort();
  if (!repo.CreateQueue("replies").ok()) abort();

  // Stage i touches the account named in the request body's i-th slot.
  std::vector<server::PipelineStage> stages;
  for (int s = 0; s < steps; ++s) {
    server::PipelineStage stage;
    stage.name = "step" + std::to_string(s);
    stage.handler = [&db, s](txn::Transaction* t,
                             const queue::RequestEnvelope& request)
        -> Result<server::StageResult> {
      const int account = request.body[static_cast<size_t>(s)] - '0';
      RRQ_RETURN_IF_ERROR(Touch(&db, t, account));
      return server::StageResult{request.body, ""};
    };
    stages.push_back(std::move(stage));
  }
  server::PipelineOptions poptions;
  poptions.queue_prefix = "pipe";
  poptions.poll_timeout_micros = 2'000;
  poptions.threads_per_stage = 1;
  poptions.max_attempts = 1000;
  server::Pipeline pipeline(poptions, &repo, &txn_mgr, std::move(stages));
  if (!pipeline.Setup().ok()) abort();

  const int total = kWorkers * kRequestsPerWorker;
  util::Rng rng(99);
  for (int i = 0; i < total; ++i) {
    std::string accounts;
    for (int s = 0; s < steps; ++s) {
      accounts.push_back(static_cast<char>('0' + rng.Uniform(kAccounts)));
    }
    queue::RequestEnvelope envelope;
    envelope.rid = "r#" + std::to_string(i);
    envelope.reply_queue = "replies";
    envelope.body = accounts;
    repo.Enqueue(nullptr, pipeline.entry_queue(),
                 queue::EncodeRequestEnvelope(envelope));
  }
  bench::Stopwatch stopwatch;
  if (!pipeline.Start().ok()) abort();
  while (pipeline.completed_count() < static_cast<uint64_t>(total)) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  const double elapsed = stopwatch.ElapsedSeconds();
  pipeline.Stop();
  return RunResult{total / elapsed, txn_mgr.lock_manager()->deadlock_count(),
                   txn_mgr.abort_count()};
}

}  // namespace

int main() {
  printf("E3: one long transaction vs multi-transaction request "
         "(%d workers/stage-threads, %d requests, %d accounts, %d us per "
         "step)\n\n",
         kWorkers, kWorkers * kRequestsPerWorker, kAccounts,
         kStageWorkMicros);
  rrq::bench::Table table({"steps K", "monolithic req/s", "deadlocks",
                           "pipelined req/s", "deadlocks "});
  for (int steps : {2, 4, 6}) {
    RunResult mono = RunMonolithic(steps);
    RunResult pipe = RunPipelined(steps);
    table.AddRow({std::to_string(steps), Fmt(mono.requests_per_sec, 0),
                  std::to_string(mono.deadlocks),
                  Fmt(pipe.requests_per_sec, 0),
                  std::to_string(pipe.deadlocks)});
  }
  table.Print();
  printf("\nPaper's claim (§6): long transactions holding K locks deadlock "
         "and stall each other; per-stage transactions hold one lock at a "
         "time. (The trade: request-level serializability is lost — see "
         "E4.)\n");
  return 0;
}
