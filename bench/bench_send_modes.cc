// E11 (§5): how Send reaches the queue manager.
//
//   rpc       — Enqueue as a remote procedure call: Send returns only
//               when the request is stably stored (2 messages).
//   one-way   — Enqueue as a one-way message: 1 message, no ack; a
//               lost request surfaces as a Receive timeout and is
//               resolved at reconnect ("saves a message from the QM to
//               the client in the common case").
//
// Sweep simulated per-message latency and report request latency and
// messages per request, with and without loss.
#include "bench/bench_util.h"
#include "core/property_checker.h"
#include "core/request_system.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

struct RunResult {
  double avg_latency_ms;
  double messages_per_request;
  uint64_t completed;
};

RunResult RunOnce(client::SendMode mode, uint64_t latency_micros,
                  double drop, int requests) {
  core::SystemOptions options;
  options.remote_clients = true;
  options.send_mode = mode;
  options.client_link_faults.latency_micros = latency_micros;
  options.client_link_faults.drop_probability = drop;
  options.seed = 101 + static_cast<uint64_t>(mode);
  options.receive_timeout_micros = 10'000;
  core::RequestSystem system(options);
  if (!system.Open().ok()) abort();
  auto server = system.MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope&)
          -> Result<std::string> { return std::string("ok"); });
  if (!server->Start().ok()) abort();
  auto client = system.MakeClient("sender", nullptr);
  if (!client.ok()) abort();

  const uint64_t messages_before = system.network()->messages_sent();
  uint64_t completed = 0;
  bench::Stopwatch stopwatch;
  for (int i = 0; i < requests; ++i) {
    if ((*client)->Execute("w").ok()) ++completed;
  }
  const double total_ms = stopwatch.ElapsedMicros() / 1000.0;
  const uint64_t messages =
      system.network()->messages_sent() - messages_before;
  server->Stop();
  return RunResult{total_ms / requests,
                   static_cast<double>(messages) / requests, completed};
}

}  // namespace

int main() {
  constexpr int kRequests = 100;
  printf("E11: Send as RPC vs one-way message (%d requests per cell)\n\n",
         kRequests);
  rrq::bench::Table table({"link latency", "loss", "mode", "latency ms/req",
                           "msgs/req", "completed"});
  for (uint64_t latency : {0ull, 200ull, 1000ull}) {
    for (double drop : {0.0, 0.10}) {
      for (auto mode : {client::SendMode::kRpc, client::SendMode::kOneWay}) {
        RunResult r = RunOnce(mode, latency, drop, kRequests);
        table.AddRow({std::to_string(latency) + " us",
                      Fmt(drop * 100, 0) + "%",
                      mode == client::SendMode::kRpc ? "rpc" : "one-way",
                      Fmt(r.avg_latency_ms, 2), Fmt(r.messages_per_request, 1),
                      std::to_string(r.completed)});
      }
    }
  }
  table.Print();
  printf("\nPaper's claim (§5): one-way Send saves a message per request in "
         "the common case; under loss it costs extra Receive timeouts and "
         "reconnects, but never correctness.\n");
  return 0;
}
