// E4 (§6): the price of request-level serializability.
//
// Multi-transaction requests are not serializable as units. The paper
// offers application locks — a persistent lock table — to win request
// serializability back, and warns: "the performance of this approach
// will be limited, due to the high overhead of setting locks." This
// bench runs a two-stage transfer pipeline three ways:
//
//   none       — plain pipeline (not request-serializable)
//   app-locks  — stage 1 acquires persistent per-account locks; the
//                final stage releases them (all durable KV writes)
//
// and reports throughput plus the durable-write amplification.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "server/app_lock_table.h"
#include "server/pipeline.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kAccounts = 8;
constexpr int kRequests = 150;

struct RunResult {
  double requests_per_sec;
  uint64_t wal_bytes;
  uint64_t retries;
};

RunResult RunOnce(bool use_app_locks) {
  env::MemEnv env;
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  storage::KvStoreOptions kv_options;
  kv_options.env = &env;
  kv_options.dir = "/db";
  storage::KvStore db("db", kv_options);
  if (!db.Open().ok()) abort();
  {
    auto boot = txn_mgr.Begin();
    for (int a = 0; a < kAccounts; ++a) {
      db.Put(boot.get(), "acct/" + std::to_string(a), "1000");
    }
    if (!boot->Commit().ok()) abort();
  }
  server::AppLockTable locks(&db);
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) abort();
  if (!repo.CreateQueue("replies").ok()) abort();

  std::atomic<uint64_t> retries{0};
  auto touch = [&db](txn::Transaction* t, const std::string& account,
                     long delta) -> Status {
    auto v = db.GetForUpdate(t, account);
    if (!v.ok()) return v.status();
    return db.Put(t, account, std::to_string(std::stol(*v) + delta));
  };

  // Stage 1: debit source; optionally acquire app locks on both
  // accounts (owner = rid). Stage 2: credit target; release the locks
  // in the same (final) transaction.
  server::PipelineStage debit;
  debit.name = "debit";
  debit.handler = [&](txn::Transaction* t,
                      const queue::RequestEnvelope& request)
      -> Result<server::StageResult> {
    const std::string src = "acct/" + request.body.substr(0, 1);
    const std::string dst = "acct/" + request.body.substr(1, 1);
    if (use_app_locks) {
      Status s = locks.Acquire(t, src, request.rid);
      if (s.ok()) s = locks.Acquire(t, dst, request.rid);
      if (!s.ok()) {
        retries.fetch_add(1);
        return s;  // Busy: abort and retry later.
      }
    }
    RRQ_RETURN_IF_ERROR(touch(t, src, -1));
    return server::StageResult{request.body, ""};
  };
  server::PipelineStage credit;
  credit.name = "credit";
  credit.handler = [&](txn::Transaction* t,
                       const queue::RequestEnvelope& request)
      -> Result<server::StageResult> {
    const std::string src = "acct/" + request.body.substr(0, 1);
    const std::string dst = "acct/" + request.body.substr(1, 1);
    RRQ_RETURN_IF_ERROR(touch(t, dst, +1));
    if (use_app_locks) {
      std::vector<std::string> held = {src};
      if (dst != src) held.push_back(dst);
      RRQ_RETURN_IF_ERROR(locks.ReleaseAll(t, held, request.rid));
    }
    return server::StageResult{"done", ""};
  };

  server::PipelineOptions poptions;
  poptions.queue_prefix = "xfer";
  poptions.poll_timeout_micros = 2'000;
  poptions.max_attempts = 10000;
  server::Pipeline pipeline(poptions, &repo, &txn_mgr, {debit, credit});
  if (!pipeline.Setup().ok()) abort();

  util::Rng rng(4242);
  for (int i = 0; i < kRequests; ++i) {
    const char src = static_cast<char>('0' + rng.Uniform(kAccounts));
    const char dst = static_cast<char>('0' + rng.Uniform(kAccounts));
    queue::RequestEnvelope envelope;
    envelope.rid = "x#" + std::to_string(i);
    envelope.reply_queue = "replies";
    envelope.body = std::string(1, src) + std::string(1, dst);
    repo.Enqueue(nullptr, pipeline.entry_queue(),
                 queue::EncodeRequestEnvelope(envelope));
  }
  bench::Stopwatch stopwatch;
  if (!pipeline.Start().ok()) abort();
  int stall = 0;
  uint64_t last_completed = 0;
  while (pipeline.completed_count() < kRequests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (pipeline.completed_count() == last_completed) {
      if (++stall >= 100) {
        fprintf(stderr,
                "stalled: completed=%llu d0=%zu d1=%zu retries=%llu\n",
                static_cast<unsigned long long>(pipeline.completed_count()),
                repo.Depth(pipeline.StageQueue(0)).value_or(0),
                repo.Depth(pipeline.StageQueue(1)).value_or(0),
                static_cast<unsigned long long>(retries.load()));
        abort();
      }
    } else {
      stall = 0;
      last_completed = pipeline.completed_count();
    }
  }
  const double elapsed = stopwatch.ElapsedSeconds();
  pipeline.Stop();
  return RunResult{kRequests / elapsed, db.wal_bytes(), retries.load()};
}

}  // namespace

int main() {
  printf("E4: request serializability via application locks "
         "(two-stage transfers, %d requests, %d accounts)\n\n",
         kRequests, kAccounts);
  rrq::bench::Table table({"mode", "req/s", "durable lock-table bytes",
                           "busy-retries"});
  RunResult none = RunOnce(false);
  RunResult locks = RunOnce(true);
  table.AddRow({"none (not request-serializable)", Fmt(none.requests_per_sec, 0),
                std::to_string(none.wal_bytes), std::to_string(none.retries)});
  table.AddRow({"app-locks (request-serializable)",
                Fmt(locks.requests_per_sec, 0), std::to_string(locks.wal_bytes),
                std::to_string(locks.retries)});
  table.Print();
  printf("\nPaper's claim (§6): application locks restore request-level "
         "serializability at a real throughput and durable-write cost.\n");
  return 0;
}
