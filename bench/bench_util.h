#ifndef RRQ_BENCH_BENCH_UTIL_H_
#define RRQ_BENCH_BENCH_UTIL_H_

// Small helpers shared by the experiment harnesses: fixed-width table
// printing (each bench binary regenerates one experiment table from
// DESIGN.md §3) and a wall-clock stopwatch.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace rrq::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints a fixed-width table: header row, separator, data rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto print_row = [&widths](const std::vector<std::string>& row) {
      printf("|");
      for (size_t i = 0; i < widths.size(); ++i) {
        printf(" %-*s |", static_cast<int>(widths[i]),
               i < row.size() ? row[i].c_str() : "");
      }
      printf("\n");
    };
    print_row(headers_);
    printf("|");
    for (size_t width : widths) {
      printf("%s|", std::string(width + 2, '-').c_str());
    }
    printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int precision = 1) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

/// Writes `json` to BENCH_<name>.json at the repository root (the
/// RRQ_REPO_ROOT compile definition set by rrq_add_bench), so every
/// experiment's machine-readable results land in one predictable
/// place regardless of the CWD the bench ran from. Falls back to the
/// CWD when the root is unavailable.
inline void WriteBenchJson(const std::string& name, const std::string& json) {
  const std::string file = "BENCH_" + name + ".json";
#ifdef RRQ_REPO_ROOT
  std::string path = std::string(RRQ_REPO_ROOT) + "/" + file;
#else
  std::string path = file;
#endif
  FILE* out = fopen(path.c_str(), "w");
  if (out == nullptr) {
    path = file;
    out = fopen(path.c_str(), "w");
  }
  if (out != nullptr) {
    fputs(json.c_str(), out);
    fclose(out);
    printf("\nwrote %s\n", path.c_str());
  }
}

}  // namespace rrq::bench

#endif  // RRQ_BENCH_BENCH_UTIL_H_
