// E5/E19 (§4/§10): queue-manager operation cost and shard scaling.
//
// Each worker thread drives enqueue/dequeue pairs against its own
// queue, with queue names chosen (via shard_of) so the queues spread
// round-robin across the repository's shards — the disjoint-queue
// workload the sharded repository is built for. Four durability modes:
//
//   volatile  no env, no logging — pure lock/apply cost
//   nosync    MemEnv WAL appends, no fsync — logging CPU cost
//   group     sync_commits + group commit, 200 us simulated fsync
//   syncop    sync_commits, per-operation fsync, 200 us simulated
//
// The sync-bound modes model a commodity-SSD fsync with a fixed sleep,
// so the number of *independent durability channels* (one WAL stream
// per shard) is what throughput scales with; on a single-core host the
// volatile/nosync modes stay flat by design. The headline acceptance
// number is syncop at 8 threads: shards=8 vs shards=1.
//
// Emits BENCH_queue_ops.json (full runs only; --smoke runs a reduced
// sweep to prove the harness end to end and skips the write).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "util/random.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kSyncDelayMicros = 200;
constexpr size_t kPayloadBytes = 256;

// WritableFile that charges a fixed latency per Sync, delegating the
// rest to the wrapped MemEnv file (same device model as E15).
class DelayedSyncFile final : public env::WritableFile {
 public:
  explicit DelayedSyncFile(std::unique_ptr<env::WritableFile> base)
      : base_(std::move(base)) {}

  Status Append(const Slice& data) override { return base_->Append(data); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    // Sleep rather than spin: a real fsync blocks in the kernel, so
    // syncs on distinct shard WALs overlap even on one core.
    std::this_thread::sleep_for(std::chrono::microseconds(kSyncDelayMicros));
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<env::WritableFile> base_;
};

class DelayedSyncEnv final : public env::Env {
 public:
  explicit DelayedSyncEnv(env::Env* base) : base_(base) {}

  Status NewSequentialFile(
      const std::string& fname,
      std::unique_ptr<env::SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<env::RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<env::WritableFile>* result) override {
    RRQ_RETURN_IF_ERROR(base_->NewWritableFile(fname, result));
    *result = std::make_unique<DelayedSyncFile>(std::move(*result));
    return Status::OK();
  }
  Status NewAppendableFile(
      const std::string& fname,
      std::unique_ptr<env::WritableFile>* result) override {
    RRQ_RETURN_IF_ERROR(base_->NewAppendableFile(fname, result));
    *result = std::make_unique<DelayedSyncFile>(std::move(*result));
    return Status::OK();
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  env::Env* base_;
};

enum class Mode { kVolatile, kNoSync, kGroup, kSyncOp };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kVolatile: return "volatile";
    case Mode::kNoSync: return "nosync";
    case Mode::kGroup: return "group";
    case Mode::kSyncOp: return "syncop";
  }
  return "?";
}

struct RunResult {
  double pairs_per_sec = 0;
  double pair_ns = 0;
  uint64_t wal_syncs = 0;
};

// `threads` workers, each `pairs` enqueue/dequeue pairs against its
// own queue; queue t is pinned to shard t % `shards` by name choice.
RunResult RunPairs(Mode mode, unsigned shards, int threads, int pairs) {
  env::MemEnv mem;
  DelayedSyncEnv delayed(&mem);
  queue::RepositoryOptions options;
  options.shards = shards;
  if (mode != Mode::kVolatile) {
    options.env = mode == Mode::kNoSync ? static_cast<env::Env*>(&mem)
                                        : static_cast<env::Env*>(&delayed);
    options.dir = "/bench";
    options.sync_commits = mode != Mode::kNoSync;
    options.group_commit = mode != Mode::kSyncOp;
  }
  queue::QueueRepository repo("bench", options);
  if (!repo.Open().ok()) abort();

  queue::QueueOptions qopts;
  qopts.durable = mode != Mode::kVolatile;
  std::vector<std::string> queues;
  for (int t = 0; t < threads; ++t) {
    const size_t want = static_cast<size_t>(t) % repo.shard_count();
    for (int i = 0;; ++i) {
      std::string name = "q" + std::to_string(t) + "-" + std::to_string(i);
      if (repo.shard_of(name) == want) {
        queues.push_back(name);
        break;
      }
    }
    if (!repo.CreateQueue(queues.back(), qopts).ok()) abort();
  }

  util::Rng rng(7);
  const std::string payload = rng.Bytes(kPayloadBytes);
  bench::Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&repo, &queues, &payload, t, pairs]() {
      const std::string& queue = queues[static_cast<size_t>(t)];
      for (int i = 0; i < pairs; ++i) {
        if (!repo.Enqueue(nullptr, queue, payload).ok()) abort();
        if (!repo.Dequeue(nullptr, queue).ok()) abort();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.ElapsedSeconds();

  RunResult result;
  const double total = static_cast<double>(threads) * pairs;
  result.pairs_per_sec = total / elapsed;
  result.pair_ns = elapsed * 1e9 / total;
  result.wal_syncs = repo.wal_sync_count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<unsigned> shard_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  auto pairs_for = [smoke](Mode mode) {
    if (mode == Mode::kGroup || mode == Mode::kSyncOp) return smoke ? 20 : 150;
    return smoke ? 50 : 2000;
  };

  printf("E19: queue ops across shards (%zu B payloads, %d us simulated "
         "fsync on sync modes)%s\n\n",
         kPayloadBytes, kSyncDelayMicros, smoke ? " [smoke]" : "");

  std::string json =
      "{\n  \"sync_delay_micros\": " + std::to_string(kSyncDelayMicros) +
      ",\n  \"payload_bytes\": " + std::to_string(kPayloadBytes) +
      ",\n  \"modes\": [\n";
  double shard1_at8 = 0, shard8_at8 = 0;
  bool first_mode = true;
  for (Mode mode :
       {Mode::kVolatile, Mode::kNoSync, Mode::kGroup, Mode::kSyncOp}) {
    const int pairs = pairs_for(mode);
    printf("mode=%s (%d pairs/thread)\n", ModeName(mode), pairs);
    std::vector<std::string> headers = {"threads"};
    for (unsigned s : shard_counts) {
      headers.push_back("shards=" + std::to_string(s) + " (pairs/s)");
    }
    bench::Table table(headers);
    if (!first_mode) json += ",\n";
    first_mode = false;
    json += "    {\"mode\": \"" + std::string(ModeName(mode)) +
            "\", \"pairs_per_thread\": " + std::to_string(pairs) +
            ", \"runs\": [\n";
    bool first_run = true;
    for (int threads : thread_counts) {
      std::vector<std::string> row = {std::to_string(threads)};
      for (unsigned shards : shard_counts) {
        RunResult r = RunPairs(mode, shards, threads, pairs);
        row.push_back(Fmt(r.pairs_per_sec, 0));
        if (!first_run) json += ",\n";
        first_run = false;
        json += "      {\"threads\": " + std::to_string(threads) +
                ", \"shards\": " + std::to_string(shards) +
                ", \"pairs_per_sec\": " + Fmt(r.pairs_per_sec, 0) +
                ", \"pair_ns\": " + Fmt(r.pair_ns, 0) +
                ", \"wal_syncs\": " + std::to_string(r.wal_syncs) + "}";
        if (mode == Mode::kSyncOp && threads == 8) {
          if (shards == 1) shard1_at8 = r.pairs_per_sec;
          if (shards == 8) shard8_at8 = r.pairs_per_sec;
        }
      }
      table.AddRow(row);
    }
    json += "\n    ]}";
    table.Print();
    printf("\n");
  }
  json += "\n  ]";
  if (shard1_at8 > 0 && shard8_at8 > 0) {
    const double speedup = shard8_at8 / shard1_at8;
    printf("headline (syncop, 8 threads): shards=1 %s pairs/s -> shards=8 "
           "%s pairs/s (%sx)\n",
           Fmt(shard1_at8, 0).c_str(), Fmt(shard8_at8, 0).c_str(),
           Fmt(speedup, 2).c_str());
    json += ",\n  \"headline\": {\"mode\": \"syncop\", \"threads\": 8, "
            "\"shards1_pairs_per_sec\": " +
            Fmt(shard1_at8, 0) + ", \"shards8_pairs_per_sec\": " +
            Fmt(shard8_at8, 0) + ", \"speedup\": " + Fmt(speedup, 2) + "}";
  }
  json += "\n}\n";

  if (!smoke) {
    rrq::bench::WriteBenchJson("queue_ops", json);
  }
  return 0;
}
