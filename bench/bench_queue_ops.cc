// E5 (§4/§10): queue-manager operation cost — durable vs volatile
// queues, synced vs unsynced commits, across element sizes. The paper
// argues queues can be managed as a main-memory database with a log;
// this bench quantifies what the log costs.
#include <benchmark/benchmark.h>

#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "util/random.h"

namespace {

using rrq::queue::QueueOptions;
using rrq::queue::QueueRepository;
using rrq::queue::RepositoryOptions;

enum class Durability : int { kVolatile = 0, kDurableNoSync = 1, kDurableSync = 2 };

struct Fixture {
  explicit Fixture(Durability durability) {
    RepositoryOptions options;
    if (durability != Durability::kVolatile) {
      options.env = &env;
      options.dir = "/qm";
      options.sync_commits = durability == Durability::kDurableSync;
    }
    repo = std::make_unique<QueueRepository>("bench", options);
    if (!repo->Open().ok()) abort();
    QueueOptions qopts;
    qopts.durable = durability != Durability::kVolatile;
    if (!repo->CreateQueue("q", qopts).ok()) abort();
  }

  rrq::env::MemEnv env;
  std::unique_ptr<QueueRepository> repo;
};

void BM_Enqueue(benchmark::State& state) {
  Fixture fixture(static_cast<Durability>(state.range(0)));
  rrq::util::Rng rng(1);
  const std::string payload = rng.Bytes(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto r = fixture.repo->Enqueue(nullptr, "q", payload);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_Enqueue)
    ->ArgsProduct({{0, 1, 2}, {64, 1024, 16384}})
    ->ArgNames({"durability", "bytes"});

void BM_EnqueueDequeuePair(benchmark::State& state) {
  Fixture fixture(static_cast<Durability>(state.range(0)));
  rrq::util::Rng rng(2);
  const std::string payload = rng.Bytes(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto e = fixture.repo->Enqueue(nullptr, "q", payload);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    auto d = fixture.repo->Dequeue(nullptr, "q");
    if (!d.ok()) state.SkipWithError(d.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnqueueDequeuePair)
    ->ArgsProduct({{0, 1, 2}, {64, 1024}})
    ->ArgNames({"durability", "bytes"});

void BM_TransactionalHop(benchmark::State& state) {
  // The server pattern: {dequeue; enqueue} in one transaction.
  Fixture fixture(static_cast<Durability>(state.range(0)));
  if (!fixture.repo
           ->CreateQueue("q2", QueueOptions{.max_aborts = 3, .error_queue = "", .durable = state.range(0) != 0, .policy = rrq::queue::DequeuePolicy::kSkipLocked, .alert_threshold = 0, .redirect_to = ""})
           .ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  rrq::txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) {
    state.SkipWithError("txn mgr");
    return;
  }
  rrq::util::Rng rng(3);
  const std::string payload = rng.Bytes(256);
  for (auto _ : state) {
    state.PauseTiming();
    fixture.repo->Enqueue(nullptr, "q", payload);
    state.ResumeTiming();
    auto txn = txn_mgr.Begin();
    auto d = fixture.repo->Dequeue(txn.get(), "q");
    if (!d.ok()) state.SkipWithError(d.status().ToString().c_str());
    auto e = fixture.repo->Enqueue(txn.get(), "q2", d.ok() ? d->contents : "");
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    if (!txn->Commit().ok()) state.SkipWithError("commit failed");
    state.PauseTiming();
    fixture.repo->Dequeue(nullptr, "q2");
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactionalHop)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("durability");

void BM_DepthScan(benchmark::State& state) {
  // Cost of the committed-depth scan at various queue depths (drives
  // alert/trigger evaluation).
  Fixture fixture(Durability::kVolatile);
  const int64_t depth = state.range(0);
  for (int64_t i = 0; i < depth; ++i) {
    fixture.repo->Enqueue(nullptr, "q", "x");
  }
  for (auto _ : state) {
    auto d = fixture.repo->Depth("q");
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DepthScan)->Arg(10)->Arg(1000)->Arg(100000)->ArgName("depth");

// ---- Multi-thread scaling -------------------------------------------
//
// The repository serializes all state changes behind one global mutex;
// what keeps that viable is how little work happens inside it. Element
// payloads are shared immutable strings, so Read/Dequeue only bump a
// refcount under the lock and copy the bytes outside it. These
// benchmarks measure how operation throughput scales with threads on
// one shared repository — the regression they guard is payload-sized
// work creeping back under mu_.

void BM_MultiThreadRead(benchmark::State& state) {
  static Fixture* fixture = nullptr;
  static rrq::queue::ElementId eid = 0;
  if (state.thread_index() == 0) {
    fixture = new Fixture(Durability::kVolatile);
    rrq::util::Rng rng(5);
    auto r = fixture->repo->Enqueue(
        nullptr, "q", rng.Bytes(static_cast<size_t>(state.range(0))));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    eid = *r;
  }
  for (auto _ : state) {
    auto e = fixture->repo->Read("q", eid);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
  if (state.thread_index() == 0) {
    delete fixture;
    fixture = nullptr;
  }
}
BENCHMARK(BM_MultiThreadRead)
    ->Arg(1024)
    ->Arg(16384)
    ->ArgName("bytes")
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_MultiThreadEnqueueDequeue(benchmark::State& state) {
  // Each thread drives its own queue so the contention is purely the
  // repository-global lock and WAL, not element stealing.
  static Fixture* fixture = nullptr;
  if (state.thread_index() == 0) {
    const auto durability = static_cast<Durability>(state.range(0));
    fixture = new Fixture(durability);
    QueueOptions qopts;
    qopts.durable = durability != Durability::kVolatile;
    for (int t = 0; t < state.threads(); ++t) {
      if (!fixture->repo->CreateQueue("q" + std::to_string(t), qopts).ok()) {
        state.SkipWithError("queue setup failed");
        return;
      }
    }
  }
  const std::string queue = "q" + std::to_string(state.thread_index());
  rrq::util::Rng rng(10 + static_cast<uint64_t>(state.thread_index()));
  const std::string payload = rng.Bytes(1024);
  for (auto _ : state) {
    auto e = fixture->repo->Enqueue(nullptr, queue, payload);
    if (!e.ok()) state.SkipWithError(e.status().ToString().c_str());
    auto d = fixture->repo->Dequeue(nullptr, queue);
    if (!d.ok()) state.SkipWithError(d.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete fixture;
    fixture = nullptr;
  }
}
BENCHMARK(BM_MultiThreadEnqueueDequeue)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("durability")
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_PriorityEnqueueDequeue(benchmark::State& state) {
  // Priority-ordered dequeue vs plain FIFO at a standing depth.
  Fixture fixture(Durability::kVolatile);
  rrq::util::Rng rng(4);
  const bool priorities = state.range(0) != 0;
  for (int i = 0; i < 1000; ++i) {
    fixture.repo->Enqueue(nullptr, "q", "seed",
                          priorities ? static_cast<uint32_t>(rng.Uniform(8))
                                     : 0);
  }
  for (auto _ : state) {
    fixture.repo->Enqueue(nullptr, "q", "x",
                          priorities ? static_cast<uint32_t>(rng.Uniform(8))
                                     : 0);
    auto d = fixture.repo->Dequeue(nullptr, "q");
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriorityEnqueueDequeue)->Arg(0)->Arg(1)->ArgName("priorities");

}  // namespace

BENCHMARK_MAIN();
