// E6 (§4.3): what persistent registration costs. Tagged operations
// carry the registrant's rid/ckpt and a copy of the element into the
// same durable record as the queue operation — the paper's key
// mechanism. Compares untagged ops, tagged ops, and tagged ops with
// growing ckpt payloads (the "piggybacked client checkpoint" of §2),
// plus Register/Deregister cost and Read-after-dequeue.
#include <benchmark/benchmark.h>

#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "util/coding.h"
#include "util/random.h"

namespace {

using rrq::queue::QueueRepository;
using rrq::queue::RepositoryOptions;

struct Fixture {
  Fixture() {
    RepositoryOptions options;
    options.env = &env;
    options.dir = "/qm";
    options.sync_commits = true;
    repo = std::make_unique<QueueRepository>("bench", options);
    if (!repo->Open().ok()) abort();
    if (!repo->CreateQueue("q").ok()) abort();
    if (!repo->Register("q", "client", true).ok()) abort();
  }

  rrq::env::MemEnv env;
  std::unique_ptr<QueueRepository> repo;
};

void BM_EnqueueUntagged(benchmark::State& state) {
  Fixture fixture;
  for (auto _ : state) {
    auto r = fixture.repo->Enqueue(nullptr, "q", "request-body");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnqueueUntagged);

void BM_EnqueueTagged(benchmark::State& state) {
  // Tag size sweep: the ckpt piggyback cost. Each iteration uses a
  // fresh tag (a repeated tag is a dedup hit, measured separately).
  Fixture fixture;
  rrq::util::Rng rng(5);
  std::string tag = rng.Bytes(static_cast<size_t>(state.range(0)));
  uint64_t counter = 0;
  for (auto _ : state) {
    // Vary the tag cheaply without re-generating it.
    rrq::util::EncodeFixed64(tag.data(), ++counter);
    auto r = fixture.repo->Enqueue(nullptr, "q", "request-body", 0, "client",
                                   tag);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EnqueueDuplicateTag(benchmark::State& state) {
  // The idempotent-resend fast path: same registrant, same tag — the
  // queue manager acknowledges without enqueuing (§4.3 dedup).
  Fixture fixture;
  auto first = fixture.repo->Enqueue(nullptr, "q", "body", 0, "client",
                                     "resend-tag");
  if (!first.ok()) abort();
  for (auto _ : state) {
    auto r = fixture.repo->Enqueue(nullptr, "q", "body", 0, "client",
                                   "resend-tag");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnqueueDuplicateTag);
BENCHMARK(BM_EnqueueTagged)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->ArgName("ckpt_bytes");

void BM_DequeueTagged(benchmark::State& state) {
  // A tagged dequeue also stores the element copy for Rereceive.
  Fixture fixture;
  rrq::util::Rng rng(6);
  const std::string payload =
      rng.Bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    fixture.repo->Enqueue(nullptr, "q", payload);
    state.ResumeTiming();
    auto r = fixture.repo->Dequeue(nullptr, "q", "client", "tag-bytes");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeueTagged)->Arg(64)->Arg(4096)->ArgName("element_bytes");

void BM_DequeueUntagged(benchmark::State& state) {
  Fixture fixture;
  rrq::util::Rng rng(7);
  const std::string payload =
      rng.Bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    fixture.repo->Enqueue(nullptr, "q", payload);
    state.ResumeTiming();
    auto r = fixture.repo->Dequeue(nullptr, "q");
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeueUntagged)->Arg(64)->Arg(4096)->ArgName("element_bytes");

void BM_RegisterRecovery(benchmark::State& state) {
  // Connect-time resynchronization: re-Register returning the last op.
  Fixture fixture;
  fixture.repo->Enqueue(nullptr, "q", "body", 0, "client", "rid-7");
  for (auto _ : state) {
    auto info = fixture.repo->Register("q", "client", true);
    benchmark::DoNotOptimize(info);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegisterRecovery);

void BM_RereceiveRead(benchmark::State& state) {
  // Read of the retained last-element copy (Rereceive's engine).
  Fixture fixture;
  auto eid = fixture.repo->Enqueue(nullptr, "q", "kept", 0, "client", "t");
  fixture.repo->Dequeue(nullptr, "q", "client", "t2");
  for (auto _ : state) {
    auto r = fixture.repo->Read("q", *eid);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RereceiveRead);

}  // namespace

BENCHMARK_MAIN();
