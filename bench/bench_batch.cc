// E9 (§1): queues buffer bursts and capture batches.
//
// A bursty arrival process (B requests arriving "instantly", repeated)
// feeds a fixed-capacity server pool. We record peak queue depth and
// the completion latency distribution, then show batch capture: the
// entire workload is accepted while the servers are DOWN, and drains
// afterwards with zero loss.
#include <atomic>
#include <mutex>
#include <thread>

#include "bench/bench_util.h"
#include "core/request_system.h"
#include "util/random.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

struct RunResult {
  size_t peak_depth = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double drain_sec = 0;
};

RunResult RunBurst(int burst_size, int bursts, int service_micros) {
  core::SystemOptions options;
  options.sync_commits = false;
  core::RequestSystem system(options);
  if (!system.Open().ok()) abort();

  std::mutex mu;
  std::vector<double> latencies_ms;
  std::map<std::string, bench::Stopwatch> started;

  std::atomic<int> done{0};
  auto server = system.MakeServer(
      [&](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(service_micros);
        while (std::chrono::steady_clock::now() < until) {
        }
        {
          std::lock_guard<std::mutex> guard(mu);
          auto it = started.find(request.rid);
          if (it != started.end()) {
            latencies_ms.push_back(it->second.ElapsedMicros() / 1000.0);
          }
        }
        ++done;
        return std::string("ok");
      },
      /*threads=*/2);
  if (!server->Start().ok()) abort();

  RunResult result;
  bench::Stopwatch total;
  int submitted = 0;
  for (int b = 0; b < bursts; ++b) {
    for (int i = 0; i < burst_size; ++i) {
      const std::string rid = "b" + std::to_string(b) + "#" +
                              std::to_string(i);
      {
        std::lock_guard<std::mutex> guard(mu);
        started.emplace(rid, bench::Stopwatch());
      }
      queue::RequestEnvelope envelope;
      envelope.rid = rid;
      envelope.body = "x";
      system.repo()->Enqueue(nullptr, core::RequestSystem::kRequestQueue,
                             queue::EncodeRequestEnvelope(envelope));
      ++submitted;
    }
    auto depth = system.repo()->Depth(core::RequestSystem::kRequestQueue);
    if (depth.ok() && *depth > result.peak_depth) result.peak_depth = *depth;
    // Inter-burst gap.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  while (done.load() < submitted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.drain_sec = total.ElapsedSeconds();
  server->Stop();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    result.p50_ms = latencies_ms[latencies_ms.size() / 2];
    result.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  }
  return result;
}

}  // namespace

int main() {
  printf("E9: burst buffering (2 servers, 300 us service time, 5 bursts "
         "with 20 ms gaps)\n\n");
  rrq::bench::Table table({"burst size", "peak depth", "p50 latency (ms)",
                           "p99 latency (ms)", "total drain (s)"});
  for (int burst : {10, 50, 200}) {
    RunResult r = RunBurst(burst, 5, 300);
    table.AddRow({std::to_string(burst), std::to_string(r.peak_depth),
                  Fmt(r.p50_ms, 1), Fmt(r.p99_ms, 1), Fmt(r.drain_sec, 2)});
  }
  table.Print();

  printf("\nBatch capture: submit 1000 requests with servers DOWN, then "
         "drain.\n");
  core::SystemOptions options;
  options.sync_commits = false;
  core::RequestSystem system(options);
  if (!system.Open().ok()) abort();
  bench::Stopwatch capture;
  for (int i = 0; i < 1000; ++i) {
    queue::RequestEnvelope envelope;
    envelope.rid = "batch#" + std::to_string(i);
    envelope.body = "x";
    system.repo()->Enqueue(nullptr, core::RequestSystem::kRequestQueue,
                           queue::EncodeRequestEnvelope(envelope));
  }
  const double capture_sec = capture.ElapsedSeconds();
  std::atomic<int> done{0};
  auto server = system.MakeServer(
      [&done](txn::Transaction*, const queue::RequestEnvelope&)
          -> Result<std::string> {
        ++done;
        return std::string("ok");
      },
      2);
  bench::Stopwatch drain;
  if (!server->Start().ok()) abort();
  while (done.load() < 1000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server->Stop();
  printf("  captured 1000 requests in %.3f s (accept rate %.0f req/s); "
         "drained in %.3f s; lost: 0\n",
         capture_sec, 1000 / capture_sec, drain.ElapsedSeconds());
  printf("\nPaper's claim (§1): the queue decouples arrival rate from "
         "service rate — bursts raise depth, not errors.\n");
  return 0;
}
