// E7 (§8): pseudo-conversational vs single-transaction conversational
// requests.
//
// Sweep the user's think time per intermediate input and report (a)
// completion throughput, (b) how long database locks are held per
// request, and (c) how much intermediate input had to be replayed
// after server aborts. The pseudo-conversational implementation holds
// locks only inside each short transaction; the conversational one
// holds them across every think pause — and loses (must replay) I/O
// whenever its transaction aborts.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "comm/network.h"
#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "server/interactive.h"
#include "server/pipeline.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kRequests = 30;
constexpr int kInteractions = 3;

void Spin(int micros) {
  auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct RunResult {
  double requests_per_sec;
  double lock_hold_ms_per_req;  // Time the hot row stayed locked.
  uint64_t replayed_inputs;
};

// Both variants update one hot row as their "database work", so lock
// hold time is comparable.
RunResult RunPseudoConversational(int think_micros) {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  storage::KvStore db("db", {});
  if (!db.Open().ok()) abort();
  {
    auto boot = txn_mgr.Begin();
    db.Put(boot.get(), "hot", "0");
    if (!boot->Commit().ok()) abort();
  }
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) abort();
  if (!repo.CreateQueue("replies").ok()) abort();

  std::atomic<uint64_t> lock_hold_micros{0};
  // One stage per interaction; each stage = one transaction that
  // touches the hot row. Think time happens BETWEEN stages, lock-free.
  std::vector<server::PipelineStage> stages;
  for (int s = 0; s < kInteractions; ++s) {
    server::PipelineStage stage;
    stage.name = "io" + std::to_string(s);
    stage.handler = [&db, &lock_hold_micros](
                        txn::Transaction* t,
                        const queue::RequestEnvelope& request)
        -> Result<server::StageResult> {
      bench::Stopwatch hold;
      auto v = db.GetForUpdate(t, "hot");
      if (!v.ok()) return v.status();
      RRQ_RETURN_IF_ERROR(db.Put(t, "hot", std::to_string(std::stol(*v) + 1)));
      lock_hold_micros.fetch_add(hold.ElapsedMicros());
      return server::StageResult{request.body, ""};
    };
    stages.push_back(std::move(stage));
  }
  server::PipelineOptions poptions;
  poptions.queue_prefix = "pc";
  poptions.poll_timeout_micros = 0;
  server::Pipeline pipeline(poptions, &repo, &txn_mgr, std::move(stages));
  if (!pipeline.Setup().ok()) abort();

  bench::Stopwatch stopwatch;
  for (int i = 0; i < kRequests; ++i) {
    queue::RequestEnvelope envelope;
    envelope.rid = "pc#" + std::to_string(i);
    envelope.reply_queue = "replies";
    envelope.body = "order";
    repo.Enqueue(nullptr, pipeline.entry_queue(),
                 queue::EncodeRequestEnvelope(envelope));
    for (int s = 0; s < kInteractions; ++s) {
      if (!pipeline.ProcessOneAt(static_cast<size_t>(s)).ok()) abort();
      Spin(think_micros);  // User thinks between transactions: no locks.
    }
    repo.Dequeue(nullptr, "replies");
  }
  return RunResult{kRequests / stopwatch.ElapsedSeconds(),
                   lock_hold_micros.load() / 1000.0 / kRequests, 0};
}

RunResult RunConversational(int think_micros, double abort_probability) {
  env::MemEnv env;
  comm::Network net(31);
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  storage::KvStore db("db", {});
  if (!db.Open().ok()) abort();
  {
    auto boot = txn_mgr.Begin();
    db.Put(boot.get(), "hot", "0");
    if (!boot->Commit().ok()) abort();
  }
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) abort();
  if (!repo.CreateQueue("req").ok()) abort();
  if (!repo.CreateQueue("replies").ok()) abort();

  server::IoLog io_log(&env, "/iolog");
  if (!io_log.Open().ok()) abort();
  server::InteractiveClient terminal(
      &net, "term", &io_log,
      [think_micros](uint32_t, const std::string&) -> Result<std::string> {
        Spin(think_micros);  // The user thinks INSIDE the transaction.
        return std::string("answer");
      });
  if (!terminal.Register().ok()) abort();

  std::atomic<uint64_t> lock_hold_micros{0};
  util::Rng rng(77);
  server::ConversationalServerOptions coptions;
  coptions.name = "conv";
  coptions.request_queue = "req";
  coptions.default_reply_queue = "replies";
  coptions.poll_timeout_micros = 0;
  server::ConversationalServer conv(
      coptions, &repo, &txn_mgr, &net,
      [&](txn::Transaction* t, const queue::RequestEnvelope&,
          const server::AskFn& ask) -> Result<std::string> {
        bench::Stopwatch hold;
        auto v = db.GetForUpdate(t, "hot");
        if (!v.ok()) return v.status();
        RRQ_RETURN_IF_ERROR(
            db.Put(t, "hot", std::to_string(std::stol(*v) + 1)));
        for (int s = 0; s < kInteractions; ++s) {
          RRQ_ASSIGN_OR_RETURN(std::string input, ask("q?"));
          (void)input;
        }
        // Transient server failure after the conversation: intermediate
        // I/O would be lost without the client's log.
        if (rng.Bernoulli(abort_probability)) {
          lock_hold_micros.fetch_add(hold.ElapsedMicros());
          return Status::Aborted("transient failure");
        }
        lock_hold_micros.fetch_add(hold.ElapsedMicros());
        return std::string("confirmed");
      });

  bench::Stopwatch stopwatch;
  for (int i = 0; i < kRequests; ++i) {
    queue::RequestEnvelope envelope;
    envelope.rid = "cv#" + std::to_string(i);
    envelope.reply_queue = "replies";
    envelope.scratch = "term";
    envelope.body = "order";
    repo.Enqueue(nullptr, "req", queue::EncodeRequestEnvelope(envelope));
    while (!conv.ProcessOne().ok()) {
      // Aborted: the request requeued; re-execute (inputs replay).
    }
    repo.Dequeue(nullptr, "replies");
  }
  return RunResult{kRequests / stopwatch.ElapsedSeconds(),
                   lock_hold_micros.load() / 1000.0 / kRequests,
                   io_log.replay_count()};
}

}  // namespace

int main() {
  printf("E7: interactive requests — pseudo-conversational (§8.2) vs "
         "single-transaction conversational (§8.3)\n(%d requests, %d "
         "interactions each; conversational aborts 20%% of executions)\n\n",
         kRequests, kInteractions);
  rrq::bench::Table table({"think (us)", "variant", "req/s",
                           "lock-hold ms/req", "replayed inputs"});
  for (int think : {100, 1000, 5000}) {
    RunResult pc = RunPseudoConversational(think);
    RunResult cv = RunConversational(think, 0.2);
    table.AddRow({std::to_string(think), "pseudo-conversational",
                  Fmt(pc.requests_per_sec, 1), Fmt(pc.lock_hold_ms_per_req, 3),
                  std::to_string(pc.replayed_inputs)});
    table.AddRow({std::to_string(think), "conversational (1 txn)",
                  Fmt(cv.requests_per_sec, 1), Fmt(cv.lock_hold_ms_per_req, 3),
                  std::to_string(cv.replayed_inputs)});
  }
  table.Print();
  printf("\nPaper's claim (§8): pseudo-conversational keeps lock-hold time "
         "flat as think time grows; the single-transaction variant holds "
         "locks across every pause and must replay logged inputs after "
         "aborts — but stays serializable and cancellable.\n");
  return 0;
}
