// E17: TCP transport — RPC round-trip latency and queue-op throughput
// over a real socket, against the simulated in-process network as the
// baseline.
//
// An rrqd-equivalent service (TcpServer + QueueServiceDispatcher over
// a volatile repository) runs in-process and is reached over loopback
// TCP, so the numbers isolate the transport cost: framing, CRC,
// syscalls, and loopback scheduling — no fsync in the loop. Latency is
// measured as Depth() round trips on one channel; throughput as
// Enqueue+Dequeue pairs from N concurrent channels (one per clerk
// thread, each on a private queue, the paper's client model).
//
// Emits BENCH_net.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "comm/network.h"
#include "comm/queue_service.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/queue_repository.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

constexpr int kLatencyRounds = 2000;
constexpr int kPairsPerThread = 2000;

struct LatencyStats {
  double mean_micros = 0;
  double p50_micros = 0;
  double p99_micros = 0;
};

LatencyStats Percentiles(std::vector<uint64_t> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  double sum = 0;
  for (uint64_t s : samples) sum += static_cast<double>(s);
  stats.mean_micros = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  stats.p50_micros = static_cast<double>(samples[samples.size() / 2]);
  stats.p99_micros =
      static_cast<double>(samples[samples.size() * 99 / 100]);
  return stats;
}

// Adapts any QueueApi into the Depth-shaped probe MeasureLatency
// expects: one Read of a missing element is a pure RPC round trip
// (one request frame, one status-only reply, no queue mutation), and
// it exists on both the simulated and the TCP transport.
template <typename Api>
struct ReadProbe {
  Api* inner;
  Result<size_t> Depth(const std::string& queue) {
    auto r = inner->Read(queue, 1);
    if (r.ok() || r.status().IsNotFound()) return size_t{0};
    return r.status();
  }
};

// One Depth() round trip per sample through `api`.
template <typename Api>
LatencyStats MeasureLatency(Api* api, const std::string& queue) {
  std::vector<uint64_t> samples;
  samples.reserve(kLatencyRounds);
  for (int i = 0; i < kLatencyRounds; ++i) {
    bench::Stopwatch watch;
    auto depth = api->Depth(queue);
    if (!depth.ok()) {
      fprintf(stderr, "depth: %s\n", depth.status().ToString().c_str());
      std::exit(1);
    }
    samples.push_back(watch.ElapsedMicros());
  }
  return Percentiles(std::move(samples));
}

double MeasureTcpThroughput(uint16_t port, int threads) {
  std::vector<std::thread> workers;
  bench::Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([port, t]() {
      net::TcpChannelOptions options;
      options.port = port;
      net::TcpChannel channel(options);
      net::ChannelQueueApi api(&channel);
      const std::string queue = "bench.t" + std::to_string(t);
      const std::string clerk = "clerk-" + std::to_string(t);
      auto reg = api.Register(queue, clerk, /*stable=*/true);
      if (!reg.ok()) {
        fprintf(stderr, "register: %s\n", reg.status().ToString().c_str());
        std::exit(1);
      }
      for (int i = 0; i < kPairsPerThread; ++i) {
        auto eid = api.Enqueue(queue, "payload-0123456789", 0, clerk,
                               "tag" + std::to_string(i), /*one_way=*/false);
        if (!eid.ok()) {
          fprintf(stderr, "enqueue: %s\n", eid.status().ToString().c_str());
          std::exit(1);
        }
        auto element = api.Dequeue(queue, clerk, "tag" + std::to_string(i),
                                   /*timeout_micros=*/1'000'000);
        if (!element.ok()) {
          fprintf(stderr, "dequeue: %s\n",
                  element.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.ElapsedSeconds();
  return 2.0 * kPairsPerThread * threads / elapsed;
}

}  // namespace

int main() {
  printf("E17: TCP transport latency and throughput (volatile repository,\n"
         "loopback TCP vs the simulated in-process network)\n\n");

  // Service side, shared by every measurement below.
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) return 1;
  for (int t = 0; t < 8; ++t) {
    if (!repo.CreateQueue("bench.t" + std::to_string(t)).ok()) return 1;
  }
  if (!repo.CreateQueue("probe").ok()) return 1;

  net::QueueServiceDispatcher dispatcher(&repo);
  net::TcpServer server({}, [&dispatcher](const Slice& request,
                                          std::string* reply) {
    return dispatcher.Handle(request, reply);
  });
  if (!server.Start().ok()) return 1;

  // Baseline: the same dispatcher behind the simulated Network.
  comm::Network network(17);
  comm::QueueService sim_service(&network, "qm", &repo);

  // ---- Latency ------------------------------------------------------
  net::TcpChannelOptions channel_options;
  channel_options.port = server.port();
  net::TcpChannel channel(channel_options);
  net::ChannelQueueApi tcp_api(&channel);
  const LatencyStats tcp_latency = MeasureLatency(&tcp_api, "probe");

  // The simulated network's RemoteQueueApi has no Depth op, so the
  // head-to-head comparison uses the Read probe on both transports.
  ReadProbe<net::ChannelQueueApi> tcp_probe{&tcp_api};
  const LatencyStats tcp_read_latency = MeasureLatency(&tcp_probe, "probe");
  comm::RemoteQueueApi sim_api(&network, "clerk-0", "qm");
  ReadProbe<comm::RemoteQueueApi> sim_probe{&sim_api};
  const LatencyStats sim_read_latency = MeasureLatency(&sim_probe, "probe");

  bench::Table latency_table(
      {"probe", "transport", "mean us", "p50 us", "p99 us"});
  latency_table.AddRow({"Depth", "tcp", Fmt(tcp_latency.mean_micros),
                        Fmt(tcp_latency.p50_micros),
                        Fmt(tcp_latency.p99_micros)});
  latency_table.AddRow({"Read", "tcp", Fmt(tcp_read_latency.mean_micros),
                        Fmt(tcp_read_latency.p50_micros),
                        Fmt(tcp_read_latency.p99_micros)});
  latency_table.AddRow({"Read", "sim", Fmt(sim_read_latency.mean_micros),
                        Fmt(sim_read_latency.p50_micros),
                        Fmt(sim_read_latency.p99_micros)});
  latency_table.Print();
  printf("\n");

  // ---- Throughput ---------------------------------------------------
  bench::Table tput_table({"threads", "tcp ops/s", "us/op"});
  std::string json = "{\n  \"experiment\": \"net\",\n  \"latency\": {\n";
  json += "    \"tcp_depth\": {\"mean_us\": " + Fmt(tcp_latency.mean_micros) +
          ", \"p50_us\": " + Fmt(tcp_latency.p50_micros) +
          ", \"p99_us\": " + Fmt(tcp_latency.p99_micros) + "},\n";
  json += "    \"tcp_read\": {\"mean_us\": " +
          Fmt(tcp_read_latency.mean_micros) +
          ", \"p50_us\": " + Fmt(tcp_read_latency.p50_micros) +
          ", \"p99_us\": " + Fmt(tcp_read_latency.p99_micros) + "},\n";
  json += "    \"sim_read\": {\"mean_us\": " +
          Fmt(sim_read_latency.mean_micros) +
          ", \"p50_us\": " + Fmt(sim_read_latency.p50_micros) +
          ", \"p99_us\": " + Fmt(sim_read_latency.p99_micros) + "}\n  },\n";
  json += "  \"throughput\": [\n";
  bool first = true;
  for (int threads : {1, 2, 4, 8}) {
    const double ops = MeasureTcpThroughput(server.port(), threads);
    tput_table.AddRow({std::to_string(threads), Fmt(ops, 0),
                       Fmt(1e6 * threads / ops, 1)});
    if (!first) json += ",\n";
    first = false;
    json += "    {\"threads\": " + std::to_string(threads) +
            ", \"ops_per_sec\": " + Fmt(ops, 0) + "}";
  }
  json += "\n  ]\n}\n";
  tput_table.Print();

  bench::WriteBenchJson("net", json);
  server.Stop();
  return 0;
}
