// E18 (supersedes E17): TCP transport — RPC latency and queue-op
// throughput over a real socket, comparing three client models against
// the same epoll-driven server:
//
//   serialized_v1   one v1 channel per clerk thread, one call in
//                   flight per connection (the PR 3 protocol) — the
//                   "before" baseline;
//   shared_channel  every clerk thread issues synchronous calls on ONE
//                   multiplexed v2 channel (demuxed by correlation id);
//   pipelined       K asynchronous call chains in flight per channel ×
//                   M channels, the wire kept full instead of idling a
//                   round trip per op.
//
// An rrqd-equivalent service (TcpServer + QueueServiceDispatcher over
// a volatile repository) runs in-process and is reached over loopback
// TCP, so the numbers isolate the transport: framing, CRC, syscalls,
// scheduling — no fsync in the loop. Latency is measured as round
// trips on one channel (p50/p99/p99.9); throughput as Enqueue+Dequeue
// pairs, each clerk on a private queue (the paper's client model).
//
// Each throughput point takes the best of three trials to damp loopback
// scheduler noise (one trial under --smoke).
//
// Emits BENCH_net.json (full runs only; --smoke skips the write).
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "comm/network.h"
#include "comm/queue_service.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/queue_repository.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

// Scaled down by --smoke (CI just proves the harness runs end to end).
int latency_rounds = 2000;
int pairs_per_clerk = 2000;
int trials = 3;

struct LatencyStats {
  double mean_micros = 0;
  double p50_micros = 0;
  double p99_micros = 0;
  double p999_micros = 0;
};

LatencyStats Percentiles(std::vector<uint64_t> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  double sum = 0;
  for (uint64_t s : samples) sum += static_cast<double>(s);
  stats.mean_micros = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  stats.p50_micros = static_cast<double>(samples[samples.size() / 2]);
  stats.p99_micros = static_cast<double>(samples[samples.size() * 99 / 100]);
  stats.p999_micros =
      static_cast<double>(samples[samples.size() * 999 / 1000]);
  return stats;
}

// Adapts any QueueApi into the Depth-shaped probe MeasureLatency
// expects: one Read of a missing element is a pure RPC round trip
// (one request frame, one status-only reply, no queue mutation), and
// it exists on both the simulated and the TCP transport.
template <typename Api>
struct ReadProbe {
  Api* inner;
  Result<size_t> Depth(const std::string& queue) {
    auto r = inner->Read(queue, 1);
    if (r.ok() || r.status().IsNotFound()) return size_t{0};
    return r.status();
  }
};

// One Depth() round trip per sample through `api`.
template <typename Api>
LatencyStats MeasureLatency(Api* api, const std::string& queue) {
  std::vector<uint64_t> samples;
  samples.reserve(static_cast<size_t>(latency_rounds));
  for (int i = 0; i < latency_rounds; ++i) {
    bench::Stopwatch watch;
    auto depth = api->Depth(queue);
    if (!depth.ok()) {
      fprintf(stderr, "depth: %s\n", depth.status().ToString().c_str());
      std::exit(1);
    }
    samples.push_back(watch.ElapsedMicros());
  }
  return Percentiles(std::move(samples));
}

void Die(const char* what, const Status& status) {
  fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

// Synchronous Enqueue+Dequeue pairs from `threads` clerks. With
// `shared_channel` each clerk calls through one multiplexed v2
// channel; otherwise each clerk owns a v1 channel (one call in flight
// per connection — the serialized PR 3 model).
double MeasureSyncThroughput(uint16_t port, int threads, bool shared_channel) {
  net::TcpChannelOptions options;
  options.port = port;
  std::unique_ptr<net::TcpChannel> shared;
  std::unique_ptr<net::ChannelQueueApi> shared_api;
  if (shared_channel) {
    shared = std::make_unique<net::TcpChannel>(options);
    shared_api = std::make_unique<net::ChannelQueueApi>(shared.get());
  } else {
    options.max_protocol_version = net::kProtocolV1;
  }
  std::vector<std::thread> workers;
  bench::Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([port, t, options, &shared_api]() {
      std::unique_ptr<net::TcpChannel> own;
      std::unique_ptr<net::ChannelQueueApi> own_api;
      net::ChannelQueueApi* api = shared_api.get();
      if (api == nullptr) {
        own = std::make_unique<net::TcpChannel>(options);
        own_api = std::make_unique<net::ChannelQueueApi>(own.get());
        api = own_api.get();
      }
      const std::string queue = "bench.t" + std::to_string(t);
      const std::string clerk = "clerk-" + std::to_string(t);
      auto reg = api->Register(queue, clerk, /*stable=*/true);
      if (!reg.ok()) Die("register", reg.status());
      for (int i = 0; i < pairs_per_clerk; ++i) {
        auto eid = api->Enqueue(queue, "payload-0123456789", 0, clerk,
                                "tag" + std::to_string(i), /*one_way=*/false);
        if (!eid.ok()) Die("enqueue", eid.status());
        // Timeout 0: the element is already committed, and a nonzero
        // wait would route every dequeue to the server's elastic
        // blocking threads (a thread spawn per op) — this measures the
        // transport, not long-poll parking.
        auto element = api->Dequeue(queue, clerk, "tag" + std::to_string(i),
                                    /*timeout_micros=*/0);
        if (!element.ok()) Die("dequeue", element.status());
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.ElapsedSeconds();
  return 2.0 * pairs_per_clerk * threads / elapsed;
}

// One asynchronous Enqueue→Dequeue call chain. Each completion starts
// the next call from the channel's demux thread, so the chain keeps
// exactly one op in flight without a dedicated client thread; K chains
// on a channel keep K ops in flight on one socket.
struct Chain {
  net::ChannelQueueApi* api = nullptr;
  std::string queue;
  std::string clerk;
  int remaining = 0;
  std::atomic<int>* outstanding = nullptr;
  std::mutex* mu = nullptr;
  std::condition_variable* cv = nullptr;
  std::atomic<bool>* failed = nullptr;

  void Finish() {
    if (outstanding->fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(*mu);
      cv->notify_all();
    }
  }

  void StartPair() {
    api->EnqueueAsync(
        queue, "payload-0123456789", 0, clerk, "tag" + std::to_string(remaining),
        /*one_way=*/false, [this](Result<queue::ElementId> eid) {
          if (!eid.ok()) {
            failed->store(true);
            Finish();
            return;
          }
          // Timeout 0 for the same reason as the sync path: the
          // enqueue's reply already confirmed the commit.
          api->DequeueAsync(queue, clerk, "tag" + std::to_string(remaining),
                            /*timeout_micros=*/0,
                            [this](Result<queue::Element> element) {
                              if (!element.ok()) failed->store(true);
                              if (element.ok() && --remaining > 0) {
                                StartPair();
                              } else {
                                Finish();
                              }
                            });
        });
  }
};

// K in-flight chains per channel × M channels. Chain setup (queue
// creation, registration) happens before the clock starts.
double MeasurePipelinedThroughput(uint16_t port, int channels,
                                  int inflight_per_channel) {
  net::TcpChannelOptions options;
  options.port = port;
  std::vector<std::unique_ptr<net::TcpChannel>> chans;
  std::vector<std::unique_ptr<net::ChannelQueueApi>> apis;
  for (int m = 0; m < channels; ++m) {
    chans.push_back(std::make_unique<net::TcpChannel>(options));
    apis.push_back(std::make_unique<net::ChannelQueueApi>(chans.back().get()));
  }

  const int total = channels * inflight_per_channel;
  std::atomic<int> outstanding{total};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> failed{false};
  std::vector<std::unique_ptr<Chain>> chains;
  for (int m = 0; m < channels; ++m) {
    for (int k = 0; k < inflight_per_channel; ++k) {
      auto chain = std::make_unique<Chain>();
      chain->api = apis[static_cast<size_t>(m)].get();
      chain->queue =
          "bench.p" + std::to_string(m) + "." + std::to_string(k);
      chain->clerk = "pipeclerk-" + chain->queue;
      chain->remaining = pairs_per_clerk;
      chain->outstanding = &outstanding;
      chain->mu = &mu;
      chain->cv = &cv;
      chain->failed = &failed;
      auto created = chain->api->CreateQueue(chain->queue);
      if (!created.ok() && !created.IsAlreadyExists()) {
        Die("create queue", created);
      }
      auto reg = chain->api->Register(chain->queue, chain->clerk,
                                      /*stable=*/true);
      if (!reg.ok()) Die("register", reg.status());
      chains.push_back(std::move(chain));
    }
  }

  bench::Stopwatch watch;
  for (auto& chain : chains) chain->StartPair();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding.load() == 0; });
  }
  const double elapsed = watch.ElapsedSeconds();
  if (failed.load()) {
    fprintf(stderr, "pipelined chain failed\n");
    std::exit(1);
  }
  return 2.0 * pairs_per_clerk * total / elapsed;
}

template <typename Fn>
double BestOf(Fn measure) {
  double best = 0;
  for (int i = 0; i < trials; ++i) best = std::max(best, measure());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    latency_rounds = 200;
    pairs_per_clerk = 100;
    trials = 1;
  }

  printf("E18: TCP transport latency and throughput (volatile repository,\n"
         "loopback TCP vs the simulated in-process network)%s\n\n",
         smoke ? " [smoke]" : "");

  // Service side, shared by every measurement below. Worker count is
  // pinned so the comparison is between client models, not host core
  // counts.
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) return 1;
  for (int t = 0; t < 8; ++t) {
    if (!repo.CreateQueue("bench.t" + std::to_string(t)).ok()) return 1;
  }
  if (!repo.CreateQueue("probe").ok()) return 1;

  net::QueueServiceDispatcher dispatcher(&repo);
  net::TcpServerOptions server_options;
  server_options.workers = 2;
  net::TcpServer server(server_options,
                        [&dispatcher](const Slice& request,
                                      std::string* reply) {
                          return dispatcher.Handle(request, reply);
                        });
  server.set_blocking_hint(net::QueueRequestMayBlock);
  if (!server.Start().ok()) return 1;

  // Baseline: the same dispatcher behind the simulated Network.
  comm::Network network(17);
  comm::QueueService sim_service(&network, "qm", &repo);

  // ---- Latency ------------------------------------------------------
  net::TcpChannelOptions channel_options;
  channel_options.port = server.port();
  net::TcpChannel channel(channel_options);
  net::ChannelQueueApi tcp_api(&channel);
  const LatencyStats tcp_latency = MeasureLatency(&tcp_api, "probe");

  // The simulated network's RemoteQueueApi has no Depth op, so the
  // head-to-head comparison uses the Read probe on both transports.
  ReadProbe<net::ChannelQueueApi> tcp_probe{&tcp_api};
  const LatencyStats tcp_read_latency = MeasureLatency(&tcp_probe, "probe");
  comm::RemoteQueueApi sim_api(&network, "clerk-0", "qm");
  ReadProbe<comm::RemoteQueueApi> sim_probe{&sim_api};
  const LatencyStats sim_read_latency = MeasureLatency(&sim_probe, "probe");

  bench::Table latency_table(
      {"probe", "transport", "mean us", "p50 us", "p99 us", "p99.9 us"});
  auto add_latency = [&latency_table](const char* probe, const char* transport,
                                      const LatencyStats& s) {
    latency_table.AddRow({probe, transport, Fmt(s.mean_micros),
                          Fmt(s.p50_micros), Fmt(s.p99_micros),
                          Fmt(s.p999_micros)});
  };
  add_latency("Depth", "tcp", tcp_latency);
  add_latency("Read", "tcp", tcp_read_latency);
  add_latency("Read", "sim", sim_read_latency);
  latency_table.Print();
  printf("\n");

  // ---- Throughput ---------------------------------------------------
  const uint16_t port = server.port();

  bench::Table tput_table({"mode", "channels", "in flight", "ops/s", "vs v1@8"});
  std::string serialized_json;
  std::string shared_json;
  std::string pipelined_json;

  double serialized_at_8 = 0;
  for (int threads : {1, 2, 4, 8}) {
    const double ops = BestOf(
        [&] { return MeasureSyncThroughput(port, threads, false); });
    if (threads == 8) serialized_at_8 = ops;
    tput_table.AddRow({"serialized v1", std::to_string(threads),
                       std::to_string(threads), Fmt(ops, 0), "-"});
    if (!serialized_json.empty()) serialized_json += ",\n";
    serialized_json += "    {\"threads\": " + std::to_string(threads) +
                       ", \"ops_per_sec\": " + Fmt(ops, 0) + "}";
  }

  for (int threads : {1, 2, 4, 8}) {
    const double ops =
        BestOf([&] { return MeasureSyncThroughput(port, threads, true); });
    tput_table.AddRow({"shared channel", "1", std::to_string(threads),
                       Fmt(ops, 0), Fmt(ops / serialized_at_8, 2) + "x"});
    if (!shared_json.empty()) shared_json += ",\n";
    shared_json += "    {\"threads\": " + std::to_string(threads) +
                   ", \"ops_per_sec\": " + Fmt(ops, 0) + "}";
  }

  double pipelined_at_8 = 0;
  struct PipelinePoint {
    int channels;
    int inflight;
  };
  for (const auto& point : std::vector<PipelinePoint>{
           {1, 1}, {1, 2}, {1, 4}, {1, 8}, {2, 4}, {2, 8}, {4, 8}}) {
    const double ops = BestOf([&] {
      return MeasurePipelinedThroughput(port, point.channels, point.inflight);
    });
    const int total = point.channels * point.inflight;
    if (point.channels == 1 && point.inflight == 8) pipelined_at_8 = ops;
    tput_table.AddRow({"pipelined", std::to_string(point.channels),
                       std::to_string(total), Fmt(ops, 0),
                       Fmt(ops / serialized_at_8, 2) + "x"});
    if (!pipelined_json.empty()) pipelined_json += ",\n";
    pipelined_json += "    {\"channels\": " + std::to_string(point.channels) +
                      ", \"inflight_per_channel\": " +
                      std::to_string(point.inflight) +
                      ", \"total_inflight\": " + std::to_string(total) +
                      ", \"ops_per_sec\": " + Fmt(ops, 0) + "}";
  }
  tput_table.Print();
  printf("\npipelined (1x8) vs serialized v1 (8 threads): %.2fx\n",
         pipelined_at_8 / serialized_at_8);

  if (!smoke) {
    std::string json = "{\n  \"experiment\": \"net\",\n  \"latency\": {\n";
    auto latency_json = [](const LatencyStats& s) {
      return "{\"mean_us\": " + Fmt(s.mean_micros) +
             ", \"p50_us\": " + Fmt(s.p50_micros) +
             ", \"p99_us\": " + Fmt(s.p99_micros) +
             ", \"p999_us\": " + Fmt(s.p999_micros) + "}";
    };
    json += "    \"tcp_depth\": " + latency_json(tcp_latency) + ",\n";
    json += "    \"tcp_read\": " + latency_json(tcp_read_latency) + ",\n";
    json += "    \"sim_read\": " + latency_json(sim_read_latency) + "\n  },\n";
    json += "  \"serialized_v1\": [\n" + serialized_json + "\n  ],\n";
    json += "  \"shared_channel\": [\n" + shared_json + "\n  ],\n";
    json += "  \"pipelined\": [\n" + pipelined_json + "\n  ],\n";
    // The PR 3 thread-per-connection server's committed 8-thread
    // number, kept as the fixed before/after reference (the fresh
    // serialized_v1 curve above also rides the new epoll server, which
    // made even the old protocol faster).
    constexpr double kPr3SerializedAt8 = 64474.0;
    json += "  \"pipelined_1x8_vs_serialized_8\": " +
            Fmt(pipelined_at_8 / serialized_at_8, 2) + ",\n";
    json += "  \"pr3_serialized_8_baseline\": " + Fmt(kPr3SerializedAt8, 0) +
            ",\n";
    json += "  \"pipelined_1x8_vs_pr3_baseline\": " +
            Fmt(pipelined_at_8 / kPr3SerializedAt8, 2) + "\n}\n";
    bench::WriteBenchJson("net", json);
  }
  server.Stop();
  return 0;
}
