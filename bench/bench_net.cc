// E22 (supersedes E18): TCP transport — RPC latency, queue-op
// throughput, and loop-syscall cost over a real socket, comparing
// three client models against the same server under BOTH event-loop
// backends (epoll readiness loops vs io_uring submission/completion
// rings, DESIGN.md §13):
//
//   serialized_v1   one v1 channel per clerk thread, one call in
//                   flight per connection (the PR 3 protocol) — the
//                   "before" baseline;
//   shared_channel  every clerk thread issues synchronous calls on ONE
//                   multiplexed v2 channel (demuxed by correlation id);
//   pipelined       K asynchronous call chains in flight per channel ×
//                   M channels (including a 1×32 deep pipeline), the
//                   wire kept full instead of idling a round trip per
//                   op.
//
// An rrqd-equivalent service (TcpServer + QueueServiceDispatcher over
// a volatile repository) runs in-process and is reached over loopback
// TCP, so the numbers isolate the transport: framing, CRC, syscalls,
// scheduling — no fsync in the loop. Latency is measured as round
// trips on one channel (p50/p99/p99.9); throughput as Enqueue+Dequeue
// pairs, each clerk on a private queue (the paper's client model).
// Every throughput point also reports the combined client+server
// loop-syscall deltas (IoLoopStats) per pair — the collapse the uring
// backend exists to buy.
//
// Each throughput point takes the best of three trials to damp loopback
// scheduler noise (one trial under --smoke). The uring column is
// skipped (with the probe's reason) on kernels that cannot run it.
//
// Emits BENCH_net.json (full runs only; --smoke skips the write).
#include <sys/utsname.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "comm/network.h"
#include "comm/queue_service.h"
#include "net/io_backend.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/queue_repository.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

// Scaled down by --smoke (CI just proves the harness runs end to end).
int latency_rounds = 2000;
int pairs_per_clerk = 2000;
int trials = 3;

struct LatencyStats {
  double mean_micros = 0;
  double p50_micros = 0;
  double p99_micros = 0;
  double p999_micros = 0;
};

LatencyStats Percentiles(std::vector<uint64_t> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  double sum = 0;
  for (uint64_t s : samples) sum += static_cast<double>(s);
  stats.mean_micros = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  stats.p50_micros = static_cast<double>(samples[samples.size() / 2]);
  stats.p99_micros = static_cast<double>(samples[samples.size() * 99 / 100]);
  stats.p999_micros =
      static_cast<double>(samples[samples.size() * 999 / 1000]);
  return stats;
}

// Adapts any QueueApi into the Depth-shaped probe MeasureLatency
// expects: one Read of a missing element is a pure RPC round trip
// (one request frame, one status-only reply, no queue mutation), and
// it exists on both the simulated and the TCP transport.
template <typename Api>
struct ReadProbe {
  Api* inner;
  Result<size_t> Depth(const std::string& queue) {
    auto r = inner->Read(queue, 1);
    if (r.ok() || r.status().IsNotFound()) return size_t{0};
    return r.status();
  }
};

// One Depth() round trip per sample through `api`.
template <typename Api>
LatencyStats MeasureLatency(Api* api, const std::string& queue) {
  std::vector<uint64_t> samples;
  samples.reserve(static_cast<size_t>(latency_rounds));
  for (int i = 0; i < latency_rounds; ++i) {
    bench::Stopwatch watch;
    auto depth = api->Depth(queue);
    if (!depth.ok()) {
      fprintf(stderr, "depth: %s\n", depth.status().ToString().c_str());
      std::exit(1);
    }
    samples.push_back(watch.ElapsedMicros());
  }
  return Percentiles(std::move(samples));
}

void Die(const char* what, const Status& status) {
  fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

// One throughput point: ops/s plus the combined client+server
// loop-syscall deltas for the measured run (per-pair figures are
// derived at report time).
struct Tput {
  double ops_per_sec = 0;
  uint64_t pairs = 0;
  uint64_t waits = 0;        // blocking event waits, both sides
  uint64_t io_syscalls = 0;  // IoLoopStats::io_syscalls(), both sides
};

uint64_t StatsWaits(const net::IoLoopStats& s) { return s.waits; }

// Synchronous Enqueue+Dequeue pairs from `threads` clerks. With
// `shared_channel` each clerk calls through one multiplexed v2
// channel; otherwise each clerk owns a v1 channel (one call in flight
// per connection — the serialized PR 3 model).
Tput MeasureSyncThroughput(net::TcpServer* server, net::IoBackendKind backend,
                           int threads, bool shared_channel) {
  net::TcpChannelOptions options;
  options.port = server->port();
  options.backend = backend;
  std::unique_ptr<net::TcpChannel> shared;
  std::unique_ptr<net::ChannelQueueApi> shared_api;
  if (shared_channel) {
    shared = std::make_unique<net::TcpChannel>(options);
    shared_api = std::make_unique<net::ChannelQueueApi>(shared.get());
  } else {
    options.max_protocol_version = net::kProtocolV1;
  }
  const net::IoLoopStats server_before = server->io_stats();
  std::atomic<uint64_t> client_waits{0};
  std::atomic<uint64_t> client_syscalls{0};
  std::vector<std::thread> workers;
  bench::Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([t, options, &shared_api, &client_waits,
                          &client_syscalls]() {
      std::unique_ptr<net::TcpChannel> own;
      std::unique_ptr<net::ChannelQueueApi> own_api;
      net::ChannelQueueApi* api = shared_api.get();
      if (api == nullptr) {
        own = std::make_unique<net::TcpChannel>(options);
        own_api = std::make_unique<net::ChannelQueueApi>(own.get());
        api = own_api.get();
      }
      const std::string queue = "bench.t" + std::to_string(t);
      const std::string clerk = "clerk-" + std::to_string(t);
      auto reg = api->Register(queue, clerk, /*stable=*/true);
      if (!reg.ok()) Die("register", reg.status());
      for (int i = 0; i < pairs_per_clerk; ++i) {
        auto eid = api->Enqueue(queue, "payload-0123456789", 0, clerk,
                                "tag" + std::to_string(i), /*one_way=*/false);
        if (!eid.ok()) Die("enqueue", eid.status());
        // Timeout 0: the element is already committed, and a nonzero
        // wait would route every dequeue to the server's elastic
        // blocking threads (a thread spawn per op) — this measures the
        // transport, not long-poll parking.
        auto element = api->Dequeue(queue, clerk, "tag" + std::to_string(i),
                                    /*timeout_micros=*/0);
        if (!element.ok()) Die("dequeue", element.status());
      }
      if (own) {
        const net::IoLoopStats s = own->io_stats();
        client_waits.fetch_add(StatsWaits(s));
        client_syscalls.fetch_add(s.io_syscalls());
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.ElapsedSeconds();

  Tput out;
  out.pairs = static_cast<uint64_t>(pairs_per_clerk) * threads;
  out.ops_per_sec = 2.0 * static_cast<double>(out.pairs) / elapsed;
  const net::IoLoopStats server_after = server->io_stats();
  out.waits = server_after.waits - server_before.waits +
              client_waits.load();
  out.io_syscalls = server_after.io_syscalls() - server_before.io_syscalls() +
                    client_syscalls.load();
  if (shared) {
    const net::IoLoopStats s = shared->io_stats();
    out.waits += StatsWaits(s);
    out.io_syscalls += s.io_syscalls();
  }
  return out;
}

// One asynchronous Enqueue→Dequeue call chain. Each completion starts
// the next call from the channel's demux thread, so the chain keeps
// exactly one op in flight without a dedicated client thread; K chains
// on a channel keep K ops in flight on one socket.
struct Chain {
  net::ChannelQueueApi* api = nullptr;
  std::string queue;
  std::string clerk;
  int remaining = 0;
  std::atomic<int>* outstanding = nullptr;
  std::mutex* mu = nullptr;
  std::condition_variable* cv = nullptr;
  std::atomic<bool>* failed = nullptr;

  void Finish() {
    if (outstanding->fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(*mu);
      cv->notify_all();
    }
  }

  void StartPair() {
    api->EnqueueAsync(
        queue, "payload-0123456789", 0, clerk, "tag" + std::to_string(remaining),
        /*one_way=*/false, [this](Result<queue::ElementId> eid) {
          if (!eid.ok()) {
            failed->store(true);
            Finish();
            return;
          }
          // Timeout 0 for the same reason as the sync path: the
          // enqueue's reply already confirmed the commit.
          api->DequeueAsync(queue, clerk, "tag" + std::to_string(remaining),
                            /*timeout_micros=*/0,
                            [this](Result<queue::Element> element) {
                              if (!element.ok()) failed->store(true);
                              if (element.ok() && --remaining > 0) {
                                StartPair();
                              } else {
                                Finish();
                              }
                            });
        });
  }
};

// K in-flight chains per channel × M channels. Chain setup (queue
// creation, registration) happens before the clock starts.
Tput MeasurePipelinedThroughput(net::TcpServer* server,
                                net::IoBackendKind backend, int channels,
                                int inflight_per_channel) {
  net::TcpChannelOptions options;
  options.port = server->port();
  options.backend = backend;
  std::vector<std::unique_ptr<net::TcpChannel>> chans;
  std::vector<std::unique_ptr<net::ChannelQueueApi>> apis;
  for (int m = 0; m < channels; ++m) {
    chans.push_back(std::make_unique<net::TcpChannel>(options));
    apis.push_back(std::make_unique<net::ChannelQueueApi>(chans.back().get()));
  }

  const int total = channels * inflight_per_channel;
  std::atomic<int> outstanding{total};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> failed{false};
  std::vector<std::unique_ptr<Chain>> chains;
  for (int m = 0; m < channels; ++m) {
    for (int k = 0; k < inflight_per_channel; ++k) {
      auto chain = std::make_unique<Chain>();
      chain->api = apis[static_cast<size_t>(m)].get();
      chain->queue =
          "bench.p" + std::to_string(m) + "." + std::to_string(k);
      chain->clerk = "pipeclerk-" + chain->queue;
      chain->remaining = pairs_per_clerk;
      chain->outstanding = &outstanding;
      chain->mu = &mu;
      chain->cv = &cv;
      chain->failed = &failed;
      auto created = chain->api->CreateQueue(chain->queue);
      if (!created.ok() && !created.IsAlreadyExists()) {
        Die("create queue", created);
      }
      auto reg = chain->api->Register(chain->queue, chain->clerk,
                                      /*stable=*/true);
      if (!reg.ok()) Die("register", reg.status());
      chains.push_back(std::move(chain));
    }
  }

  const net::IoLoopStats server_before = server->io_stats();
  std::vector<net::IoLoopStats> chan_before;
  for (auto& c : chans) chan_before.push_back(c->io_stats());

  bench::Stopwatch watch;
  for (auto& chain : chains) chain->StartPair();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding.load() == 0; });
  }
  const double elapsed = watch.ElapsedSeconds();
  if (failed.load()) {
    fprintf(stderr, "pipelined chain failed\n");
    std::exit(1);
  }

  Tput out;
  out.pairs = static_cast<uint64_t>(pairs_per_clerk) * total;
  out.ops_per_sec = 2.0 * static_cast<double>(out.pairs) / elapsed;
  const net::IoLoopStats server_after = server->io_stats();
  out.waits = server_after.waits - server_before.waits;
  out.io_syscalls = server_after.io_syscalls() - server_before.io_syscalls();
  for (size_t i = 0; i < chans.size(); ++i) {
    const net::IoLoopStats s = chans[i]->io_stats();
    out.waits += StatsWaits(s) - StatsWaits(chan_before[i]);
    out.io_syscalls += s.io_syscalls() - chan_before[i].io_syscalls();
  }
  return out;
}

template <typename Fn>
Tput BestOf(Fn measure) {
  Tput best;
  for (int i = 0; i < trials; ++i) {
    Tput t = measure();
    if (t.ops_per_sec > best.ops_per_sec) best = t;
  }
  return best;
}

double PerPair(uint64_t count, uint64_t pairs) {
  return pairs == 0 ? 0.0 : static_cast<double>(count) /
                                static_cast<double>(pairs);
}

struct PipelinePoint {
  int channels;
  int inflight;
};

// Everything measured against one backend's server.
struct BackendResults {
  net::IoBackendKind kind = net::IoBackendKind::kEpoll;
  const char* server_backend = "none";  // what the server actually ran
  LatencyStats depth_latency;
  LatencyStats read_latency;
  std::vector<std::pair<int, Tput>> serialized;       // threads -> point
  std::vector<std::pair<int, Tput>> shared;           // threads -> point
  std::vector<std::pair<PipelinePoint, Tput>> pipelined;
};

BackendResults RunBackend(net::IoBackendKind kind) {
  BackendResults results;
  results.kind = kind;

  // A fresh repository per backend: both columns start from identical
  // queue state.
  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) Die("repo open", Status::Internal("open failed"));
  for (int t = 0; t < 8; ++t) {
    Status created = repo.CreateQueue("bench.t" + std::to_string(t));
    if (!created.ok()) Die("create queue", created);
  }
  Status probe_created = repo.CreateQueue("probe");
  if (!probe_created.ok()) Die("create probe queue", probe_created);

  net::QueueServiceDispatcher dispatcher(&repo);
  net::TcpServerOptions server_options;
  server_options.workers = 2;
  server_options.backend = kind;
  net::TcpServer server(server_options,
                        [&dispatcher](const Slice& request,
                                      std::string* reply) {
                          return dispatcher.Handle(request, reply);
                        });
  server.set_blocking_hint(net::QueueRequestMayBlock);
  Status started = server.Start();
  if (!started.ok()) Die("server start", started);
  results.server_backend = server.io_backend_name();

  // ---- Latency ----
  net::TcpChannelOptions channel_options;
  channel_options.port = server.port();
  channel_options.backend = kind;
  {
    net::TcpChannel channel(channel_options);
    net::ChannelQueueApi tcp_api(&channel);
    results.depth_latency = MeasureLatency(&tcp_api, "probe");
    ReadProbe<net::ChannelQueueApi> tcp_probe{&tcp_api};
    results.read_latency = MeasureLatency(&tcp_probe, "probe");
  }

  // ---- Throughput ----
  for (int threads : {1, 2, 4, 8}) {
    results.serialized.emplace_back(threads, BestOf([&] {
      return MeasureSyncThroughput(&server, kind, threads, false);
    }));
  }
  for (int threads : {1, 2, 4, 8}) {
    results.shared.emplace_back(threads, BestOf([&] {
      return MeasureSyncThroughput(&server, kind, threads, true);
    }));
  }
  for (const auto& point : std::vector<PipelinePoint>{
           {1, 1}, {1, 2}, {1, 4}, {1, 8}, {1, 32}, {2, 4}, {2, 8}, {4, 8}}) {
    results.pipelined.emplace_back(point, BestOf([&] {
      return MeasurePipelinedThroughput(&server, kind, point.channels,
                                        point.inflight);
    }));
  }

  server.Stop();
  return results;
}

const Tput* FindPipelined(const BackendResults& r, int channels,
                          int inflight) {
  for (const auto& [point, tput] : r.pipelined) {
    if (point.channels == channels && point.inflight == inflight) {
      return &tput;
    }
  }
  return nullptr;
}

std::string KernelRelease() {
  utsname u{};
  if (uname(&u) != 0) return "unknown";
  return u.release;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  net::IoBackendKind only_backend = net::IoBackendKind::kAuto;
  bool backend_filter = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      if (!net::ParseIoBackend(argv[++i], &only_backend)) {
        fprintf(stderr, "bench_net: unknown --backend %s\n", argv[i]);
        return 2;
      }
      backend_filter = only_backend != net::IoBackendKind::kAuto;
    }
  }
  if (smoke) {
    latency_rounds = 200;
    pairs_per_clerk = 100;
    trials = 1;
  }

  printf("E22: TCP transport latency, throughput, and loop syscalls per\n"
         "backend (volatile repository, loopback TCP)%s\n\n",
         smoke ? " [smoke]" : "");

  std::string probe_reason;
  const bool have_uring = net::UringAvailable(&probe_reason);
  printf("kernel %s; io_uring probe: %s%s%s\n\n", KernelRelease().c_str(),
         have_uring ? "available" : "unavailable",
         have_uring ? "" : " — ", have_uring ? "" : probe_reason.c_str());

  std::vector<BackendResults> all;
  for (net::IoBackendKind kind :
       {net::IoBackendKind::kEpoll, net::IoBackendKind::kUring}) {
    if (backend_filter && kind != only_backend) continue;
    if (kind == net::IoBackendKind::kUring && !have_uring) {
      if (backend_filter) {
        // Same ladder as rrqd: a forced uring on a kernel without it
        // degrades to epoll rather than failing (the CI smoke for the
        // uring leg exercises exactly this on older runners).
        printf("forced uring degrades to epoll: %s\n\n",
               probe_reason.c_str());
        all.push_back(RunBackend(net::IoBackendKind::kEpoll));
      } else {
        printf("skipping uring column: %s\n\n", probe_reason.c_str());
      }
      continue;
    }
    all.push_back(RunBackend(kind));
  }

  // Baseline: the same dispatcher shape behind the simulated Network,
  // measured once (no TCP, so no backend dimension).
  LatencyStats sim_read_latency;
  {
    queue::QueueRepository repo("qm", {});
    if (!repo.Open().ok()) return 1;
    Status created = repo.CreateQueue("probe");
    if (!created.ok()) return 1;
    comm::Network network(17);
    comm::QueueService sim_service(&network, "qm", &repo);
    comm::RemoteQueueApi sim_api(&network, "clerk-0", "qm");
    ReadProbe<comm::RemoteQueueApi> sim_probe{&sim_api};
    sim_read_latency = MeasureLatency(&sim_probe, "probe");
  }

  // ---- Report ----
  bench::Table latency_table({"probe", "backend", "mean us", "p50 us",
                              "p99 us", "p99.9 us"});
  auto add_latency = [&latency_table](const char* probe, const char* backend,
                                      const LatencyStats& s) {
    latency_table.AddRow({probe, backend, Fmt(s.mean_micros),
                          Fmt(s.p50_micros), Fmt(s.p99_micros),
                          Fmt(s.p999_micros)});
  };
  for (const auto& r : all) {
    add_latency("Depth", r.server_backend, r.depth_latency);
    add_latency("Read", r.server_backend, r.read_latency);
  }
  add_latency("Read", "sim", sim_read_latency);
  latency_table.Print();
  printf("\n");

  bench::Table tput_table({"mode", "backend", "channels", "in flight",
                           "ops/s", "waits/pair", "iosys/pair"});
  for (const auto& r : all) {
    for (const auto& [threads, t] : r.serialized) {
      tput_table.AddRow({"serialized v1", r.server_backend,
                         std::to_string(threads), std::to_string(threads),
                         Fmt(t.ops_per_sec, 0),
                         Fmt(PerPair(t.waits, t.pairs), 2),
                         Fmt(PerPair(t.io_syscalls, t.pairs), 2)});
    }
    for (const auto& [threads, t] : r.shared) {
      tput_table.AddRow({"shared channel", r.server_backend, "1",
                         std::to_string(threads), Fmt(t.ops_per_sec, 0),
                         Fmt(PerPair(t.waits, t.pairs), 2),
                         Fmt(PerPair(t.io_syscalls, t.pairs), 2)});
    }
    for (const auto& [point, t] : r.pipelined) {
      tput_table.AddRow({"pipelined", r.server_backend,
                         std::to_string(point.channels),
                         std::to_string(point.channels * point.inflight),
                         Fmt(t.ops_per_sec, 0),
                         Fmt(PerPair(t.waits, t.pairs), 2),
                         Fmt(PerPair(t.io_syscalls, t.pairs), 2)});
    }
  }
  tput_table.Print();
  printf("\n");

  if (all.size() == 2) {
    const BackendResults& ep = all[0];
    const BackendResults& ur = all[1];
    for (const auto& [c, k] : std::vector<std::pair<int, int>>{{1, 8},
                                                               {1, 32}}) {
      const Tput* e = FindPipelined(ep, c, k);
      const Tput* u = FindPipelined(ur, c, k);
      if (e == nullptr || u == nullptr) continue;
      // io_syscalls is the apples-to-apples wait-path cost: epoll's
      // loops pay wait + recv + send syscalls for a burst, uring's pay
      // enters (each enter both submits and waits).
      printf("pipelined %dx%d: uring/epoll ops %.2fx, loop syscalls/pair "
             "%.2f -> %.2f (%.1fx fewer)\n",
             c, k, u->ops_per_sec / e->ops_per_sec,
             PerPair(e->io_syscalls, e->pairs),
             PerPair(u->io_syscalls, u->pairs),
             PerPair(e->io_syscalls, e->pairs) /
                 std::max(PerPair(u->io_syscalls, u->pairs), 1e-9));
    }
  }

  if (!smoke) {
    auto latency_json = [](const LatencyStats& s) {
      return "{\"mean_us\": " + Fmt(s.mean_micros) +
             ", \"p50_us\": " + Fmt(s.p50_micros) +
             ", \"p99_us\": " + Fmt(s.p99_micros) +
             ", \"p999_us\": " + Fmt(s.p999_micros) + "}";
    };
    auto tput_json = [](const Tput& t) {
      return std::string("\"ops_per_sec\": ") + Fmt(t.ops_per_sec, 0) +
             ", \"waits_per_pair\": " + Fmt(PerPair(t.waits, t.pairs), 3) +
             ", \"io_syscalls_per_pair\": " +
             Fmt(PerPair(t.io_syscalls, t.pairs), 3);
    };

    std::string json = "{\n  \"experiment\": \"net\",\n";
    json += "  \"kernel\": \"" + KernelRelease() + "\",\n";
    json += std::string("  \"uring_probe\": {\"available\": ") +
            (have_uring ? "true" : "false") + ", \"reason\": \"" +
            probe_reason + "\"},\n";
    json += "  \"sim_read_latency\": " + latency_json(sim_read_latency) +
            ",\n";
    json += "  \"backends\": {\n";
    for (size_t b = 0; b < all.size(); ++b) {
      const BackendResults& r = all[b];
      json += std::string("    \"") + r.server_backend + "\": {\n";
      json += "      \"tcp_depth_latency\": " +
              latency_json(r.depth_latency) + ",\n";
      json += "      \"tcp_read_latency\": " + latency_json(r.read_latency) +
              ",\n";
      json += "      \"serialized_v1\": [\n";
      for (size_t i = 0; i < r.serialized.size(); ++i) {
        const auto& [threads, t] = r.serialized[i];
        json += "        {\"threads\": " + std::to_string(threads) + ", " +
                tput_json(t) + "}" +
                (i + 1 < r.serialized.size() ? ",\n" : "\n");
      }
      json += "      ],\n      \"shared_channel\": [\n";
      for (size_t i = 0; i < r.shared.size(); ++i) {
        const auto& [threads, t] = r.shared[i];
        json += "        {\"threads\": " + std::to_string(threads) + ", " +
                tput_json(t) + "}" + (i + 1 < r.shared.size() ? ",\n" : "\n");
      }
      json += "      ],\n      \"pipelined\": [\n";
      for (size_t i = 0; i < r.pipelined.size(); ++i) {
        const auto& [point, t] = r.pipelined[i];
        json += "        {\"channels\": " + std::to_string(point.channels) +
                ", \"inflight_per_channel\": " +
                std::to_string(point.inflight) + ", \"total_inflight\": " +
                std::to_string(point.channels * point.inflight) + ", " +
                tput_json(t) + "}" +
                (i + 1 < r.pipelined.size() ? ",\n" : "\n");
      }
      json += "      ]\n    }";
      json += (b + 1 < all.size() ? ",\n" : "\n");
    }
    json += "  }";

    if (all.size() == 2) {
      const Tput* e8 = FindPipelined(all[0], 1, 8);
      const Tput* u8 = FindPipelined(all[1], 1, 8);
      const Tput* e32 = FindPipelined(all[0], 1, 32);
      const Tput* u32 = FindPipelined(all[1], 1, 32);
      if (e8 != nullptr && u8 != nullptr) {
        json += ",\n  \"pipelined_1x8_uring_vs_epoll_ops\": " +
                Fmt(u8->ops_per_sec / e8->ops_per_sec, 2);
        json += ",\n  \"pipelined_1x8_loop_syscall_reduction\": " +
                Fmt(PerPair(e8->io_syscalls, e8->pairs) /
                        std::max(PerPair(u8->io_syscalls, u8->pairs), 1e-9),
                    2);
      }
      if (e32 != nullptr && u32 != nullptr) {
        json += ",\n  \"pipelined_1x32_uring_vs_epoll_ops\": " +
                Fmt(u32->ops_per_sec / e32->ops_per_sec, 2);
        json += ",\n  \"pipelined_1x32_loop_syscall_reduction\": " +
                Fmt(PerPair(e32->io_syscalls, e32->pairs) /
                        std::max(PerPair(u32->io_syscalls, u32->pairs), 1e-9),
                    2);
      }
    }
    json += "\n}\n";
    bench::WriteBenchJson("net", json);
  }
  return 0;
}
