// Experiment B (the headline result): reliability under message loss.
//
// At each loss rate, 300 non-idempotent requests run through (a) raw
// messages at-most-once, (b) raw messages with blind retry
// (at-least-once), and (c) the paper's queued protocol. We count lost
// requests (never executed) and duplicate executions. The queued
// protocol must show zeros in both columns at every loss rate — that
// is Exactly-Once Request Processing (§3).
#include "bench/bench_util.h"
#include "core/baseline.h"
#include "core/property_checker.h"
#include "core/request_system.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

struct Row {
  uint64_t lost = 0;
  uint64_t duplicated = 0;
  uint64_t completed = 0;
  uint64_t messages = 0;
};

Row RunRaw(core::RetryPolicy policy, double drop, int requests,
           uint64_t seed) {
  comm::Network net(seed);
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) abort();
  core::PropertyChecker checker;
  core::RawMessageServer server(
      &net, "srv", &txn_mgr,
      [&checker](txn::Transaction* t, const std::string& rid,
                 const std::string&) -> Result<std::string> {
        t->OnCommit([&checker, rid]() {
          checker.RecordCommittedExecution(rid);
        });
        return std::string("ok");
      });
  if (!server.Register().ok()) abort();
  comm::LinkFaults faults;
  faults.drop_probability = drop;
  net.SetLinkFaults("cli", "srv", faults);

  core::RawMessageClient client(&net, "cli", "srv", policy);
  Row row;
  for (int i = 0; i < requests; ++i) {
    const std::string rid = "r#" + std::to_string(i);
    checker.RecordSubmission(rid);
    if (client.Execute(rid, "work").ok()) ++row.completed;
  }
  auto verdict = checker.Check();
  row.lost = verdict.lost_requests;
  row.duplicated = verdict.duplicate_executions;
  row.messages = net.messages_sent();
  return row;
}

Row RunQueued(double drop, int requests, uint64_t seed) {
  core::SystemOptions options;
  options.remote_clients = true;
  options.client_link_faults.drop_probability = drop;
  options.seed = seed;
  options.receive_timeout_micros = 10'000;
  core::RequestSystem system(options);
  if (!system.Open().ok()) abort();
  core::PropertyChecker checker;
  auto server = system.MakeServer(
      [&checker](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        const std::string rid = request.rid;
        t->OnCommit(
            [&checker, rid]() { checker.RecordCommittedExecution(rid); });
        return std::string("ok");
      });
  if (!server->Start().ok()) abort();
  auto client = system.MakeClient("bench", nullptr);
  if (!client.ok()) abort();

  Row row;
  for (int i = 0; i < requests; ++i) {
    checker.RecordSubmission("bench#" + std::to_string(i + 1));
    if ((*client)->Execute("work").ok()) ++row.completed;
  }
  server->Stop();
  auto verdict = checker.Check();
  row.lost = verdict.lost_requests;
  row.duplicated = verdict.duplicate_executions;
  row.messages = system.network()->messages_sent();
  return row;
}

}  // namespace

int main() {
  constexpr int kRequests = 300;
  printf("B: request-flow reliability under message loss (%d non-idempotent "
         "requests per cell)\n\n",
         kRequests);
  rrq::bench::Table table({"loss rate", "protocol", "completed", "lost",
                           "duplicated", "msgs/req"});
  for (double drop : {0.0, 0.05, 0.15, 0.30}) {
    const uint64_t seed = static_cast<uint64_t>(drop * 1000) + 11;
    Row amo = RunRaw(rrq::core::RetryPolicy::kAtMostOnce, drop, kRequests,
                     seed);
    Row alo = RunRaw(rrq::core::RetryPolicy::kAtLeastOnce, drop, kRequests,
                     seed + 1);
    Row queued = RunQueued(drop, kRequests, seed + 2);
    auto add = [&table, drop, kRequests](const char* name, const Row& row) {
      table.AddRow({rrq::bench::Fmt(drop * 100, 0) + "%", name,
                    std::to_string(row.completed), std::to_string(row.lost),
                    std::to_string(row.duplicated),
                    Fmt(static_cast<double>(row.messages) / kRequests, 1)});
    };
    add("raw at-most-once", amo);
    add("raw at-least-once", alo);
    add("queued (this paper)", queued);
  }
  table.Print();
  printf("\nPaper's claim (§2/§3): raw messaging must choose between losing "
         "and duplicating; recoverable queues deliver exactly-once at the "
         "cost of extra messages.\n");
  return 0;
}
