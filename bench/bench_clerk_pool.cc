// E20: shared-channel clerk pool — K clerks' Transceive pairs over ONE
// pipelined v2 socket, against the same in-process rrqd-equivalent
// service as E18. Four client models, worst to best:
//
//   serialized_v1    one v1 channel per clerk thread, sync Transceive
//                    (the PR 3 shape rebuilt from clerks) — "before";
//   pool_sync        K clerk threads, sync Transceive, ONE shared v2
//                    channel (ClerkPool, demux by correlation id);
//   pool_pipelined   K closed-loop TransceiveAsync chains on the pool,
//                    each clerk's next pair launched from the demux
//                    callback — no client threads, the wire kept full;
//   pool_overlapped  as pipelined, but each clerk's reply dequeue is
//                    corked into the same send as its enqueue (window
//                    2): one round trip per pair instead of two. The
//                    dequeue then long-polls server-side, which routes
//                    it to the server's elastic blocking threads — on
//                    loopback that thread churn can cost more than the
//                    saved round trip, so this point is informative,
//                    not always the winner.
//
// Every clerk is in self-loop mode (its request queue IS its reply
// queue), so a Transceive is a self-contained enqueue→dequeue pair and
// the numbers isolate pool + wire cost, like E18's pairs. A raw
// ChannelQueueApi chain run (E18's "pipelined 1x8") is re-measured in
// the same process for an apples-to-apples overhead comparison: the
// pool adds the full clerk protocol (rid tags, reply-tag encoding,
// session state) on top of the raw queue ops.
//
// Best of three trials per point (one under --smoke).
// Emits BENCH_clerk_pool.json (full runs only).
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "client/clerk_pool.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/queue_repository.h"

namespace {

using namespace rrq;  // NOLINT
using bench::Fmt;

// Scaled down by --smoke (CI just proves the harness runs end to end).
int pairs_per_clerk = 2000;
int trials = 3;

// The committed PR 3 baseline this PR's acceptance gate is measured
// against: E18's serialized_v1 @ 8 threads as of the PR 3 tree
// (BENCH_net.json history). The pool @ 8 must sustain at least 2x it.
constexpr double kPr3SerializedAt8 = 64474.0;

void Die(const char* what, const Status& status) {
  fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

client::ClerkPoolOptions PoolOptions(uint16_t port, int clerks,
                                     const std::string& prefix,
                                     uint64_t receive_timeout_micros) {
  client::ClerkPoolOptions options;
  options.channel.port = port;
  options.clerks = clerks;
  options.client_prefix = prefix;
  options.self_loop = true;
  // Timeout 0 keeps loopback dequeues off the server's elastic
  // blocking threads (see E18); overlapped mode must long-poll.
  options.receive_timeout_micros = receive_timeout_micros;
  return options;
}

// K clerk threads, each with its OWN v1 channel and one sync
// Transceive (Send RPC + Receive RPC) in flight — the PR 3 model.
double MeasureSerializedClerks(uint16_t port, int clerks) {
  std::vector<std::thread> workers;
  bench::Stopwatch watch;
  for (int t = 0; t < clerks; ++t) {
    workers.emplace_back([port, t]() {
      net::TcpChannelOptions options;
      options.port = port;
      options.max_protocol_version = net::kProtocolV1;
      net::TcpChannel channel(options);
      net::ChannelQueueApi api(&channel);
      const std::string queue = "pool.v1." + std::to_string(t);
      auto created = api.CreateQueue(queue);
      if (!created.ok() && !created.IsAlreadyExists()) {
        Die("create queue", created);
      }
      client::ClerkOptions clerk_options;
      clerk_options.client_id = "v1clerk-" + std::to_string(t);
      clerk_options.request_queue = queue;
      clerk_options.reply_queue = queue;
      clerk_options.api = &api;
      clerk_options.receive_timeout_micros = 0;
      client::Clerk clerk(clerk_options);
      if (auto cr = clerk.Connect(); !cr.ok()) Die("connect", cr.status());
      for (int i = 0; i < pairs_per_clerk; ++i) {
        const std::string rid =
            clerk_options.client_id + "#" + std::to_string(i + 1);
        auto reply = clerk.Transceive("payload-0123456789", rid, Slice());
        if (!reply.ok()) Die("transceive", reply.status());
      }
      if (Status s = clerk.Disconnect(); !s.ok()) Die("disconnect", s);
    });
  }
  for (auto& w : workers) w.join();
  return 2.0 * pairs_per_clerk * clerks / watch.ElapsedSeconds();
}

// K clerk threads, sync Transceive, one shared multiplexed channel.
double MeasurePoolSync(uint16_t port, int clerks) {
  client::ClerkPool pool(PoolOptions(port, clerks, "psync", 0));
  if (Status s = pool.Start(); !s.ok()) Die("pool start", s);
  std::vector<std::thread> workers;
  bench::Stopwatch watch;
  for (int t = 0; t < clerks; ++t) {
    workers.emplace_back([&pool, t]() {
      client::Clerk* clerk = pool.clerk(static_cast<size_t>(t));
      for (int i = 0; i < pairs_per_clerk; ++i) {
        const std::string rid = pool.client_id(static_cast<size_t>(t)) + "#" +
                                std::to_string(i + 1);
        auto reply = clerk->Transceive("payload-0123456789", rid, Slice());
        if (!reply.ok()) Die("transceive", reply.status());
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = watch.ElapsedSeconds();
  if (Status s = pool.Stop(); !s.ok()) Die("pool stop", s);
  return 2.0 * pairs_per_clerk * clerks / elapsed;
}

// K closed-loop TransceiveAsync chains on one pool: every clerk keeps
// a pair in flight, completions launch the next pair from the demux
// thread. With `overlap` each pair's dequeue is corked into the same
// send as its enqueue.
double MeasurePoolPipelined(uint16_t port, int clerks, bool overlap) {
  client::ClerkPool pool(PoolOptions(port, clerks,
                                     overlap ? "pover" : "ppipe",
                                     overlap ? 2'000'000 : 0));
  if (Status s = pool.Start(); !s.ok()) Die("pool start", s);

  std::mutex mu;
  std::condition_variable cv;
  int outstanding = clerks;
  std::atomic<bool> failed{false};

  struct Chain {
    client::ClerkPool* pool;
    size_t slot;
    int remaining;
    bool overlap;
    std::mutex* mu;
    std::condition_variable* cv;
    int* outstanding;
    std::atomic<bool>* failed;

    void Launch() {
      const std::string rid = pool->client_id(slot) + "#" +
                              std::to_string(remaining);
      pool->TransceiveAsync(
          slot, "payload-0123456789", rid, Slice(), overlap,
          [this](Result<std::string> reply) {
            if (!reply.ok()) {
              failed->store(true);
            } else if (--remaining > 0) {
              Launch();
              return;
            }
            std::lock_guard<std::mutex> lock(*mu);
            if (--*outstanding == 0) cv->notify_one();
          });
    }
  };

  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(static_cast<size_t>(clerks));
  for (int t = 0; t < clerks; ++t) {
    auto chain = std::make_unique<Chain>();
    chain->pool = &pool;
    chain->slot = static_cast<size_t>(t);
    chain->remaining = pairs_per_clerk;
    chain->overlap = overlap;
    chain->mu = &mu;
    chain->cv = &cv;
    chain->outstanding = &outstanding;
    chain->failed = &failed;
    chains.push_back(std::move(chain));
  }

  bench::Stopwatch watch;
  for (auto& chain : chains) chain->Launch();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  const double elapsed = watch.ElapsedSeconds();
  if (failed.load()) {
    fprintf(stderr, "pool chain failed\n");
    std::exit(1);
  }
  if (Status s = pool.Stop(); !s.ok()) Die("pool stop", s);
  return 2.0 * pairs_per_clerk * clerks / elapsed;
}

// E18's raw pipelined chains (no clerk protocol), re-measured in this
// process so the pool-overhead ratio compares like with like.
double MeasureRawPipelined(uint16_t port, int inflight) {
  net::TcpChannelOptions options;
  options.port = port;
  net::TcpChannel channel(options);
  net::ChannelQueueApi api(&channel);

  std::atomic<int> outstanding{inflight};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> failed{false};

  struct Chain {
    net::ChannelQueueApi* api;
    std::string queue;
    std::string clerk;
    int remaining;
    std::atomic<int>* outstanding;
    std::mutex* mu;
    std::condition_variable* cv;
    std::atomic<bool>* failed;

    void Finish() {
      if (outstanding->fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(*mu);
        cv->notify_all();
      }
    }

    void StartPair() {
      api->EnqueueAsync(
          queue, "payload-0123456789", 0, clerk,
          "tag" + std::to_string(remaining), /*one_way=*/false,
          [this](Result<queue::ElementId> eid) {
            if (!eid.ok()) {
              failed->store(true);
              Finish();
              return;
            }
            api->DequeueAsync(queue, clerk, "tag" + std::to_string(remaining),
                              /*timeout_micros=*/0,
                              [this](Result<queue::Element> element) {
                                if (!element.ok()) failed->store(true);
                                if (element.ok() && --remaining > 0) {
                                  StartPair();
                                } else {
                                  Finish();
                                }
                              });
          });
    }
  };

  std::vector<std::unique_ptr<Chain>> chains;
  for (int k = 0; k < inflight; ++k) {
    auto chain = std::make_unique<Chain>();
    chain->api = &api;
    chain->queue = "pool.raw." + std::to_string(k);
    chain->clerk = "rawclerk-" + std::to_string(k);
    chain->remaining = pairs_per_clerk;
    chain->outstanding = &outstanding;
    chain->mu = &mu;
    chain->cv = &cv;
    chain->failed = &failed;
    auto created = api.CreateQueue(chain->queue);
    if (!created.ok() && !created.IsAlreadyExists()) Die("create", created);
    auto reg = api.Register(chain->queue, chain->clerk, /*stable=*/true);
    if (!reg.ok()) Die("register", reg.status());
    chains.push_back(std::move(chain));
  }

  bench::Stopwatch watch;
  for (auto& chain : chains) chain->StartPair();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding.load() == 0; });
  }
  const double elapsed = watch.ElapsedSeconds();
  if (failed.load()) {
    fprintf(stderr, "raw chain failed\n");
    std::exit(1);
  }
  return 2.0 * pairs_per_clerk * inflight / elapsed;
}

template <typename Fn>
double BestOf(Fn measure) {
  double best = 0;
  for (int i = 0; i < trials; ++i) best = std::max(best, measure());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    pairs_per_clerk = 100;
    trials = 1;
  }

  printf("E20: shared-channel clerk pool — K clerks' transceive pairs on\n"
         "one pipelined socket vs one v1 socket each%s\n\n",
         smoke ? " [smoke]" : "");

  queue::QueueRepository repo("qm", {});
  if (!repo.Open().ok()) return 1;

  net::QueueServiceDispatcher dispatcher(&repo);
  net::TcpServerOptions server_options;
  server_options.workers = 2;
  net::TcpServer server(server_options,
                        [&dispatcher](const Slice& request,
                                      std::string* reply) {
                          return dispatcher.Handle(request, reply);
                        });
  server.set_blocking_hint(net::QueueRequestMayBlock);
  if (!server.Start().ok()) return 1;
  const uint16_t port = server.port();

  bench::Table table({"mode", "clerks", "sockets", "ops/s", "vs pr3 v1@8"});
  auto vs_baseline = [](double ops) {
    return Fmt(ops / kPr3SerializedAt8, 2) + "x";
  };

  std::string serialized_json, sync_json, pipelined_json, overlapped_json;
  auto add_point = [](std::string* json, int clerks, double ops) {
    if (!json->empty()) *json += ",\n";
    *json += "    {\"clerks\": " + std::to_string(clerks) +
             ", \"ops_per_sec\": " + Fmt(ops, 0) + "}";
  };

  for (int clerks : {1, 4, 8}) {
    const double ops = BestOf([&] {
      return MeasureSerializedClerks(port, clerks);
    });
    table.AddRow({"serialized_v1", std::to_string(clerks),
                  std::to_string(clerks), Fmt(ops, 0), vs_baseline(ops)});
    add_point(&serialized_json, clerks, ops);
  }

  for (int clerks : {1, 4, 8}) {
    const double ops = BestOf([&] { return MeasurePoolSync(port, clerks); });
    table.AddRow({"pool_sync", std::to_string(clerks), "1", Fmt(ops, 0),
                  vs_baseline(ops)});
    add_point(&sync_json, clerks, ops);
  }

  double pool_pipelined_at_8 = 0;
  for (int clerks : {1, 4, 8, 16}) {
    const double ops = BestOf([&] {
      return MeasurePoolPipelined(port, clerks, /*overlap=*/false);
    });
    if (clerks == 8) pool_pipelined_at_8 = ops;
    table.AddRow({"pool_pipelined", std::to_string(clerks), "1", Fmt(ops, 0),
                  vs_baseline(ops)});
    add_point(&pipelined_json, clerks, ops);
  }

  double pool_overlapped_at_8 = 0;
  for (int clerks : {4, 8}) {
    const double ops = BestOf([&] {
      return MeasurePoolPipelined(port, clerks, /*overlap=*/true);
    });
    if (clerks == 8) pool_overlapped_at_8 = ops;
    table.AddRow({"pool_overlapped", std::to_string(clerks), "1", Fmt(ops, 0),
                  vs_baseline(ops)});
    add_point(&overlapped_json, clerks, ops);
  }

  const double raw_at_8 =
      BestOf([&] { return MeasureRawPipelined(port, 8); });
  table.AddRow({"raw_pipelined (E18)", "8", "1", Fmt(raw_at_8, 0),
                vs_baseline(raw_at_8)});

  table.Print();
  printf("\npool_pipelined @ 8 vs PR 3 serialized @ 8 (%.0f): %.2fx\n",
         kPr3SerializedAt8, pool_pipelined_at_8 / kPr3SerializedAt8);
  printf("pool_pipelined @ 8 vs raw pipelined 1x8 (same run): %.2f%%\n",
         100.0 * pool_pipelined_at_8 / raw_at_8);

  if (!smoke) {
    std::string json =
        "{\n  \"experiment\": \"clerk_pool\",\n"
        "  \"pr3_serialized_8_baseline\": " + Fmt(kPr3SerializedAt8, 0) +
        ",\n  \"serialized_v1\": [\n" + serialized_json + "\n  ],\n" +
        "  \"pool_sync\": [\n" + sync_json + "\n  ],\n" +
        "  \"pool_pipelined\": [\n" + pipelined_json + "\n  ],\n" +
        "  \"pool_overlapped\": [\n" + overlapped_json + "\n  ],\n" +
        "  \"raw_pipelined_1x8_ops_per_sec\": " + Fmt(raw_at_8, 0) +
        ",\n  \"pool_pipelined_8_ops_per_sec\": " +
        Fmt(pool_pipelined_at_8, 0) +
        ",\n  \"pool_overlapped_8_ops_per_sec\": " +
        Fmt(pool_overlapped_at_8, 0) +
        ",\n  \"pool_pipelined_8_vs_pr3_serialized_8\": " +
        Fmt(pool_pipelined_at_8 / kPr3SerializedAt8, 2) +
        ",\n  \"pool_pipelined_8_vs_raw_pipelined_1x8\": " +
        Fmt(pool_pipelined_at_8 / raw_at_8, 3) + "\n}\n";
    bench::WriteBenchJson("clerk_pool", json);
  }
  server.Stop();
  return 0;
}
