file(REMOVE_RECURSE
  "CMakeFiles/queue_config_matrix_test.dir/queue/queue_config_matrix_test.cc.o"
  "CMakeFiles/queue_config_matrix_test.dir/queue/queue_config_matrix_test.cc.o.d"
  "queue_config_matrix_test"
  "queue_config_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_config_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
