file(REMOVE_RECURSE
  "CMakeFiles/group_commit_test.dir/wal/group_commit_test.cc.o"
  "CMakeFiles/group_commit_test.dir/wal/group_commit_test.cc.o.d"
  "group_commit_test"
  "group_commit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_commit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
