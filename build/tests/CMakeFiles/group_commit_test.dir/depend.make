# Empty dependencies file for group_commit_test.
# This may be replaced when dependencies are built.
