file(REMOVE_RECURSE
  "CMakeFiles/session_state_test.dir/client/session_state_test.cc.o"
  "CMakeFiles/session_state_test.dir/client/session_state_test.cc.o.d"
  "session_state_test"
  "session_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
