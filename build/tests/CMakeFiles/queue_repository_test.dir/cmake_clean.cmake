file(REMOVE_RECURSE
  "CMakeFiles/queue_repository_test.dir/queue/queue_repository_test.cc.o"
  "CMakeFiles/queue_repository_test.dir/queue/queue_repository_test.cc.o.d"
  "queue_repository_test"
  "queue_repository_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
