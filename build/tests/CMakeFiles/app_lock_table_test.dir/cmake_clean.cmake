file(REMOVE_RECURSE
  "CMakeFiles/app_lock_table_test.dir/server/app_lock_table_test.cc.o"
  "CMakeFiles/app_lock_table_test.dir/server/app_lock_table_test.cc.o.d"
  "app_lock_table_test"
  "app_lock_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_lock_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
