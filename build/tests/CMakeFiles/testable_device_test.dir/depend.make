# Empty dependencies file for testable_device_test.
# This may be replaced when dependencies are built.
