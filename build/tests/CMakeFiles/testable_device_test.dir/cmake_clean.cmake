file(REMOVE_RECURSE
  "CMakeFiles/testable_device_test.dir/client/testable_device_test.cc.o"
  "CMakeFiles/testable_device_test.dir/client/testable_device_test.cc.o.d"
  "testable_device_test"
  "testable_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testable_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
