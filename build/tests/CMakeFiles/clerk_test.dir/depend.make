# Empty dependencies file for clerk_test.
# This may be replaced when dependencies are built.
