file(REMOVE_RECURSE
  "CMakeFiles/clerk_test.dir/client/clerk_test.cc.o"
  "CMakeFiles/clerk_test.dir/client/clerk_test.cc.o.d"
  "clerk_test"
  "clerk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clerk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
