# Empty dependencies file for failure_schedule_test.
# This may be replaced when dependencies are built.
