file(REMOVE_RECURSE
  "CMakeFiles/failure_schedule_test.dir/integration/failure_schedule_test.cc.o"
  "CMakeFiles/failure_schedule_test.dir/integration/failure_schedule_test.cc.o.d"
  "failure_schedule_test"
  "failure_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
