file(REMOVE_RECURSE
  "CMakeFiles/queue_service_test.dir/comm/queue_service_test.cc.o"
  "CMakeFiles/queue_service_test.dir/comm/queue_service_test.cc.o.d"
  "queue_service_test"
  "queue_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
