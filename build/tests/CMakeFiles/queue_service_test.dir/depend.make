# Empty dependencies file for queue_service_test.
# This may be replaced when dependencies are built.
