# Empty dependencies file for posix_env_test.
# This may be replaced when dependencies are built.
