file(REMOVE_RECURSE
  "CMakeFiles/property_checker_test.dir/core/property_checker_test.cc.o"
  "CMakeFiles/property_checker_test.dir/core/property_checker_test.cc.o.d"
  "property_checker_test"
  "property_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
