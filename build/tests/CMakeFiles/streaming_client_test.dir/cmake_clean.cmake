file(REMOVE_RECURSE
  "CMakeFiles/streaming_client_test.dir/client/streaming_client_test.cc.o"
  "CMakeFiles/streaming_client_test.dir/client/streaming_client_test.cc.o.d"
  "streaming_client_test"
  "streaming_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
