# Empty dependencies file for streaming_client_test.
# This may be replaced when dependencies are built.
