# Empty compiler generated dependencies file for faulty_env_test.
# This may be replaced when dependencies are built.
