file(REMOVE_RECURSE
  "CMakeFiles/faulty_env_test.dir/env/faulty_env_test.cc.o"
  "CMakeFiles/faulty_env_test.dir/env/faulty_env_test.cc.o.d"
  "faulty_env_test"
  "faulty_env_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faulty_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
