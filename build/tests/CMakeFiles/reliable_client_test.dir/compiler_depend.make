# Empty compiler generated dependencies file for reliable_client_test.
# This may be replaced when dependencies are built.
