file(REMOVE_RECURSE
  "CMakeFiles/reliable_client_test.dir/client/reliable_client_test.cc.o"
  "CMakeFiles/reliable_client_test.dir/client/reliable_client_test.cc.o.d"
  "reliable_client_test"
  "reliable_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
