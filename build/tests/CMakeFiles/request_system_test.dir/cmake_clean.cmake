file(REMOVE_RECURSE
  "CMakeFiles/request_system_test.dir/core/request_system_test.cc.o"
  "CMakeFiles/request_system_test.dir/core/request_system_test.cc.o.d"
  "request_system_test"
  "request_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
