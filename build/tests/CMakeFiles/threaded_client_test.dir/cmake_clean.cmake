file(REMOVE_RECURSE
  "CMakeFiles/threaded_client_test.dir/integration/threaded_client_test.cc.o"
  "CMakeFiles/threaded_client_test.dir/integration/threaded_client_test.cc.o.d"
  "threaded_client_test"
  "threaded_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
