file(REMOVE_RECURSE
  "CMakeFiles/forwarder_test.dir/server/forwarder_test.cc.o"
  "CMakeFiles/forwarder_test.dir/server/forwarder_test.cc.o.d"
  "forwarder_test"
  "forwarder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
