# Empty dependencies file for forwarder_test.
# This may be replaced when dependencies are built.
