file(REMOVE_RECURSE
  "CMakeFiles/queue_property_test.dir/queue/queue_property_test.cc.o"
  "CMakeFiles/queue_property_test.dir/queue/queue_property_test.cc.o.d"
  "queue_property_test"
  "queue_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
