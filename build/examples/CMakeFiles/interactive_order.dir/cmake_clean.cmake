file(REMOVE_RECURSE
  "CMakeFiles/interactive_order.dir/interactive_order.cc.o"
  "CMakeFiles/interactive_order.dir/interactive_order.cc.o.d"
  "interactive_order"
  "interactive_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
