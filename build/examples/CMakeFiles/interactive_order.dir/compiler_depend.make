# Empty compiler generated dependencies file for interactive_order.
# This may be replaced when dependencies are built.
