# Empty dependencies file for ticket_agent.
# This may be replaced when dependencies are built.
