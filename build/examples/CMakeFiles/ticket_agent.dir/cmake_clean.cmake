file(REMOVE_RECURSE
  "CMakeFiles/ticket_agent.dir/ticket_agent.cc.o"
  "CMakeFiles/ticket_agent.dir/ticket_agent.cc.o.d"
  "ticket_agent"
  "ticket_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
