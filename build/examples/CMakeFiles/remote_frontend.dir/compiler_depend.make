# Empty compiler generated dependencies file for remote_frontend.
# This may be replaced when dependencies are built.
