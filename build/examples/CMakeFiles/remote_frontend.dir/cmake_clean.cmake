file(REMOVE_RECURSE
  "CMakeFiles/remote_frontend.dir/remote_frontend.cc.o"
  "CMakeFiles/remote_frontend.dir/remote_frontend.cc.o.d"
  "remote_frontend"
  "remote_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
