# Empty compiler generated dependencies file for batch_load_sharing.
# This may be replaced when dependencies are built.
