file(REMOVE_RECURSE
  "CMakeFiles/batch_load_sharing.dir/batch_load_sharing.cc.o"
  "CMakeFiles/batch_load_sharing.dir/batch_load_sharing.cc.o.d"
  "batch_load_sharing"
  "batch_load_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_load_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
