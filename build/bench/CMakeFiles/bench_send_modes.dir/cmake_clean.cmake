file(REMOVE_RECURSE
  "CMakeFiles/bench_send_modes.dir/bench_send_modes.cc.o"
  "CMakeFiles/bench_send_modes.dir/bench_send_modes.cc.o.d"
  "bench_send_modes"
  "bench_send_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_send_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
