# Empty compiler generated dependencies file for bench_send_modes.
# This may be replaced when dependencies are built.
