file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_txn.dir/bench_multi_txn.cc.o"
  "CMakeFiles/bench_multi_txn.dir/bench_multi_txn.cc.o.d"
  "bench_multi_txn"
  "bench_multi_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
