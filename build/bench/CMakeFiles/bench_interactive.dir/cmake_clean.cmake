file(REMOVE_RECURSE
  "CMakeFiles/bench_interactive.dir/bench_interactive.cc.o"
  "CMakeFiles/bench_interactive.dir/bench_interactive.cc.o.d"
  "bench_interactive"
  "bench_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
