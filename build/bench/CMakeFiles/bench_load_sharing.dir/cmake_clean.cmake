file(REMOVE_RECURSE
  "CMakeFiles/bench_load_sharing.dir/bench_load_sharing.cc.o"
  "CMakeFiles/bench_load_sharing.dir/bench_load_sharing.cc.o.d"
  "bench_load_sharing"
  "bench_load_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
