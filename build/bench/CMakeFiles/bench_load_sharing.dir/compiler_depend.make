# Empty compiler generated dependencies file for bench_load_sharing.
# This may be replaced when dependencies are built.
