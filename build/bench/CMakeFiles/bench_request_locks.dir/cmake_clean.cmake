file(REMOVE_RECURSE
  "CMakeFiles/bench_request_locks.dir/bench_request_locks.cc.o"
  "CMakeFiles/bench_request_locks.dir/bench_request_locks.cc.o.d"
  "bench_request_locks"
  "bench_request_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_request_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
