# Empty dependencies file for bench_client_models.
# This may be replaced when dependencies are built.
