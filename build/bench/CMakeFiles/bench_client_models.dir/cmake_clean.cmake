file(REMOVE_RECURSE
  "CMakeFiles/bench_client_models.dir/bench_client_models.cc.o"
  "CMakeFiles/bench_client_models.dir/bench_client_models.cc.o.d"
  "bench_client_models"
  "bench_client_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
