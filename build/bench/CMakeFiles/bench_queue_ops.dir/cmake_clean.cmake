file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_ops.dir/bench_queue_ops.cc.o"
  "CMakeFiles/bench_queue_ops.dir/bench_queue_ops.cc.o.d"
  "bench_queue_ops"
  "bench_queue_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
