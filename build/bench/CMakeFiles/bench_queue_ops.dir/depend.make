# Empty dependencies file for bench_queue_ops.
# This may be replaced when dependencies are built.
