
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_group_commit.cc" "bench/CMakeFiles/bench_group_commit.dir/bench_group_commit.cc.o" "gcc" "bench/CMakeFiles/bench_group_commit.dir/bench_group_commit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rrq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/rrq_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/rrq_server.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rrq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rrq_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/rrq_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/rrq_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/rrq_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/rrq_env.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
