# Empty dependencies file for bench_concurrent_dequeue.
# This may be replaced when dependencies are built.
