file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_dequeue.dir/bench_concurrent_dequeue.cc.o"
  "CMakeFiles/bench_concurrent_dequeue.dir/bench_concurrent_dequeue.cc.o.d"
  "bench_concurrent_dequeue"
  "bench_concurrent_dequeue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_dequeue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
