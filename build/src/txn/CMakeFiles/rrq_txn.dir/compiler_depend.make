# Empty compiler generated dependencies file for rrq_txn.
# This may be replaced when dependencies are built.
