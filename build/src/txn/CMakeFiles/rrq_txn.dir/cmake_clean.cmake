file(REMOVE_RECURSE
  "CMakeFiles/rrq_txn.dir/lock_manager.cc.o"
  "CMakeFiles/rrq_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/rrq_txn.dir/txn_manager.cc.o"
  "CMakeFiles/rrq_txn.dir/txn_manager.cc.o.d"
  "librrq_txn.a"
  "librrq_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
