file(REMOVE_RECURSE
  "librrq_txn.a"
)
