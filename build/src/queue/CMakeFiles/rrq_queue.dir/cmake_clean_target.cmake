file(REMOVE_RECURSE
  "librrq_queue.a"
)
