# Empty compiler generated dependencies file for rrq_queue.
# This may be replaced when dependencies are built.
