file(REMOVE_RECURSE
  "CMakeFiles/rrq_queue.dir/envelope.cc.o"
  "CMakeFiles/rrq_queue.dir/envelope.cc.o.d"
  "CMakeFiles/rrq_queue.dir/queue_repository.cc.o"
  "CMakeFiles/rrq_queue.dir/queue_repository.cc.o.d"
  "librrq_queue.a"
  "librrq_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
