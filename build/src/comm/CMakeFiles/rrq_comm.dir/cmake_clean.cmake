file(REMOVE_RECURSE
  "CMakeFiles/rrq_comm.dir/network.cc.o"
  "CMakeFiles/rrq_comm.dir/network.cc.o.d"
  "CMakeFiles/rrq_comm.dir/queue_service.cc.o"
  "CMakeFiles/rrq_comm.dir/queue_service.cc.o.d"
  "librrq_comm.a"
  "librrq_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
