file(REMOVE_RECURSE
  "librrq_comm.a"
)
