# Empty dependencies file for rrq_comm.
# This may be replaced when dependencies are built.
