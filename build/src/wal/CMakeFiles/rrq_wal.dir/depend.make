# Empty dependencies file for rrq_wal.
# This may be replaced when dependencies are built.
