file(REMOVE_RECURSE
  "librrq_wal.a"
)
