file(REMOVE_RECURSE
  "CMakeFiles/rrq_wal.dir/log_reader.cc.o"
  "CMakeFiles/rrq_wal.dir/log_reader.cc.o.d"
  "CMakeFiles/rrq_wal.dir/log_writer.cc.o"
  "CMakeFiles/rrq_wal.dir/log_writer.cc.o.d"
  "librrq_wal.a"
  "librrq_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
