file(REMOVE_RECURSE
  "librrq_server.a"
)
