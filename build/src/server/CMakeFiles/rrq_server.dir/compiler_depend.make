# Empty compiler generated dependencies file for rrq_server.
# This may be replaced when dependencies are built.
