file(REMOVE_RECURSE
  "CMakeFiles/rrq_server.dir/app_lock_table.cc.o"
  "CMakeFiles/rrq_server.dir/app_lock_table.cc.o.d"
  "CMakeFiles/rrq_server.dir/forwarder.cc.o"
  "CMakeFiles/rrq_server.dir/forwarder.cc.o.d"
  "CMakeFiles/rrq_server.dir/interactive.cc.o"
  "CMakeFiles/rrq_server.dir/interactive.cc.o.d"
  "CMakeFiles/rrq_server.dir/pipeline.cc.o"
  "CMakeFiles/rrq_server.dir/pipeline.cc.o.d"
  "CMakeFiles/rrq_server.dir/server.cc.o"
  "CMakeFiles/rrq_server.dir/server.cc.o.d"
  "librrq_server.a"
  "librrq_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
