file(REMOVE_RECURSE
  "librrq_storage.a"
)
