file(REMOVE_RECURSE
  "CMakeFiles/rrq_storage.dir/kv_store.cc.o"
  "CMakeFiles/rrq_storage.dir/kv_store.cc.o.d"
  "librrq_storage.a"
  "librrq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
