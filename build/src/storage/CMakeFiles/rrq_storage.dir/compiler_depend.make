# Empty compiler generated dependencies file for rrq_storage.
# This may be replaced when dependencies are built.
