file(REMOVE_RECURSE
  "librrq_env.a"
)
