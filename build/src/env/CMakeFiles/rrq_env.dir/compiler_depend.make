# Empty compiler generated dependencies file for rrq_env.
# This may be replaced when dependencies are built.
