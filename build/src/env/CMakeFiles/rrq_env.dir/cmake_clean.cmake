file(REMOVE_RECURSE
  "CMakeFiles/rrq_env.dir/faulty_env.cc.o"
  "CMakeFiles/rrq_env.dir/faulty_env.cc.o.d"
  "CMakeFiles/rrq_env.dir/mem_env.cc.o"
  "CMakeFiles/rrq_env.dir/mem_env.cc.o.d"
  "CMakeFiles/rrq_env.dir/posix_env.cc.o"
  "CMakeFiles/rrq_env.dir/posix_env.cc.o.d"
  "librrq_env.a"
  "librrq_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
