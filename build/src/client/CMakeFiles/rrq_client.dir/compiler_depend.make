# Empty compiler generated dependencies file for rrq_client.
# This may be replaced when dependencies are built.
