
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/clerk.cc" "src/client/CMakeFiles/rrq_client.dir/clerk.cc.o" "gcc" "src/client/CMakeFiles/rrq_client.dir/clerk.cc.o.d"
  "/root/repo/src/client/reliable_client.cc" "src/client/CMakeFiles/rrq_client.dir/reliable_client.cc.o" "gcc" "src/client/CMakeFiles/rrq_client.dir/reliable_client.cc.o.d"
  "/root/repo/src/client/session_state.cc" "src/client/CMakeFiles/rrq_client.dir/session_state.cc.o" "gcc" "src/client/CMakeFiles/rrq_client.dir/session_state.cc.o.d"
  "/root/repo/src/client/streaming_client.cc" "src/client/CMakeFiles/rrq_client.dir/streaming_client.cc.o" "gcc" "src/client/CMakeFiles/rrq_client.dir/streaming_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rrq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/rrq_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/rrq_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/rrq_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/rrq_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
