file(REMOVE_RECURSE
  "CMakeFiles/rrq_client.dir/clerk.cc.o"
  "CMakeFiles/rrq_client.dir/clerk.cc.o.d"
  "CMakeFiles/rrq_client.dir/reliable_client.cc.o"
  "CMakeFiles/rrq_client.dir/reliable_client.cc.o.d"
  "CMakeFiles/rrq_client.dir/session_state.cc.o"
  "CMakeFiles/rrq_client.dir/session_state.cc.o.d"
  "CMakeFiles/rrq_client.dir/streaming_client.cc.o"
  "CMakeFiles/rrq_client.dir/streaming_client.cc.o.d"
  "librrq_client.a"
  "librrq_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
