file(REMOVE_RECURSE
  "librrq_client.a"
)
