# Empty dependencies file for rrq_core.
# This may be replaced when dependencies are built.
