file(REMOVE_RECURSE
  "librrq_core.a"
)
