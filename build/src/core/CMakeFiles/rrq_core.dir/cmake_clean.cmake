file(REMOVE_RECURSE
  "CMakeFiles/rrq_core.dir/baseline.cc.o"
  "CMakeFiles/rrq_core.dir/baseline.cc.o.d"
  "CMakeFiles/rrq_core.dir/property_checker.cc.o"
  "CMakeFiles/rrq_core.dir/property_checker.cc.o.d"
  "CMakeFiles/rrq_core.dir/request_system.cc.o"
  "CMakeFiles/rrq_core.dir/request_system.cc.o.d"
  "librrq_core.a"
  "librrq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
