file(REMOVE_RECURSE
  "CMakeFiles/rrq_util.dir/clock.cc.o"
  "CMakeFiles/rrq_util.dir/clock.cc.o.d"
  "CMakeFiles/rrq_util.dir/coding.cc.o"
  "CMakeFiles/rrq_util.dir/coding.cc.o.d"
  "CMakeFiles/rrq_util.dir/crc32c.cc.o"
  "CMakeFiles/rrq_util.dir/crc32c.cc.o.d"
  "CMakeFiles/rrq_util.dir/logging.cc.o"
  "CMakeFiles/rrq_util.dir/logging.cc.o.d"
  "CMakeFiles/rrq_util.dir/status.cc.o"
  "CMakeFiles/rrq_util.dir/status.cc.o.d"
  "librrq_util.a"
  "librrq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
