file(REMOVE_RECURSE
  "librrq_util.a"
)
