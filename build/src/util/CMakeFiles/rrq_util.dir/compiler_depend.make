# Empty compiler generated dependencies file for rrq_util.
# This may be replaced when dependencies are built.
