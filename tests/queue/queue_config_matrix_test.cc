// Configuration-matrix sweep: the queue manager's logical behavior
// must be identical across (durability x sync x dequeue policy) for a
// fixed single-threaded operation sequence — the knobs trade
// performance and crash-safety, never semantics.
#include <tuple>

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "txn/txn_manager.h"

namespace rrq::queue {
namespace {

struct Config {
  bool durable;
  bool sync_commits;
  DequeuePolicy policy;
};

class QueueConfigMatrixTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {
 protected:
  Config GetConfig() const {
    return Config{std::get<0>(GetParam()), std::get<1>(GetParam()),
                  static_cast<DequeuePolicy>(std::get<2>(GetParam()))};
  }
};

TEST_P(QueueConfigMatrixTest, CanonicalSequenceBehavesIdentically) {
  const Config config = GetConfig();
  env::MemEnv env;
  txn::TransactionManager txn_mgr;
  ASSERT_TRUE(txn_mgr.Open().ok());

  RepositoryOptions options;
  if (config.durable) {
    options.env = &env;
    options.dir = "/qm";
    options.sync_commits = config.sync_commits;
  }
  QueueRepository repo("qm", options);
  ASSERT_TRUE(repo.Open().ok());
  QueueOptions qopts;
  qopts.policy = config.policy;
  qopts.max_aborts = 2;
  qopts.error_queue = "err";
  qopts.durable = config.durable;
  ASSERT_TRUE(repo.CreateQueue("q", qopts).ok());
  ASSERT_TRUE(repo.Register("q", "client", true).ok());

  // 1. Priorities and FIFO-within-priority.
  ASSERT_TRUE(repo.Enqueue(nullptr, "q", "low-1", 1).ok());
  ASSERT_TRUE(repo.Enqueue(nullptr, "q", "high", 5).ok());
  ASSERT_TRUE(repo.Enqueue(nullptr, "q", "low-2", 1).ok());
  EXPECT_EQ(repo.Dequeue(nullptr, "q")->contents, "high");
  EXPECT_EQ(repo.Dequeue(nullptr, "q")->contents, "low-1");

  // 2. Transactional dequeue + abort returns with a bumped count.
  {
    auto txn = txn_mgr.Begin();
    auto got = repo.Dequeue(txn.get(), "q");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->contents, "low-2");
    txn->Abort();
  }
  // 3. Second abort hits max_aborts=2: element lands in the error queue.
  {
    auto txn = txn_mgr.Begin();
    ASSERT_TRUE(repo.Dequeue(txn.get(), "q").ok());
    txn->Abort();
  }
  EXPECT_EQ(*repo.Depth("q"), 0u);
  EXPECT_EQ(*repo.Depth("err"), 1u);

  // 4. Tagged op + registration recovery.
  ASSERT_TRUE(repo.Enqueue(nullptr, "q", "tagged", 0, "client", "rid-1").ok());
  auto info = repo.Register("q", "client", true);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->last_tag, "rid-1");

  // 5. Kill.
  auto eid = repo.Enqueue(nullptr, "q", "victim");
  ASSERT_TRUE(eid.ok());
  auto killed = repo.KillElement(nullptr, "q", *eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  EXPECT_EQ(*repo.Depth("q"), 1u);  // Only "tagged" remains.
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, QueueConfigMatrixTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool, int>>& info) {
      return std::string(std::get<0>(info.param) ? "durable" : "volatile") +
             (std::get<1>(info.param) ? "_sync" : "_nosync") +
             (std::get<2>(info.param) == 0 ? "_skiplocked" : "_strictfifo");
    });

}  // namespace
}  // namespace rrq::queue
