// Model-based property test for the queue manager: a random schedule
// of enqueues, transactional and auto-committed dequeues,
// commits/aborts, kills, checkpoints, and crashes, checked against a
// reference model (a set of live elements). Invariants:
//  - the committed element set always equals the model,
//  - no element is ever dequeued-committed twice,
//  - eids are never reused,
//  - abort counts track the number of aborted dequeues per element.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "txn/txn_manager.h"
#include "util/random.h"

namespace rrq::queue {
namespace {

class QueuePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueuePropertyTest, CommittedStateAlwaysMatchesModel) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed * 31 + 7);
  env::MemEnv env;
  txn::TransactionManager txn_mgr;
  ASSERT_TRUE(txn_mgr.Open().ok());

  RepositoryOptions options;
  options.env = &env;
  options.dir = "/qm";
  auto repo = std::make_unique<QueueRepository>("qm", options);
  ASSERT_TRUE(repo->Open().ok());
  ASSERT_TRUE(repo->CreateQueue("q").ok());

  // Model: live committed elements, and bookkeeping for invariants.
  std::map<ElementId, std::string> model;  // eid -> contents.
  std::set<ElementId> consumed;            // Committed dequeues.
  std::set<ElementId> all_eids;            // For reuse detection.

  auto verify = [&](const char* when) {
    auto depth = repo->Depth("q");
    ASSERT_TRUE(depth.ok());
    ASSERT_EQ(*depth, model.size()) << "seed " << seed << " at " << when;
    for (const auto& [eid, contents] : model) {
      auto read = repo->Read("q", eid);
      ASSERT_TRUE(read.ok())
          << "seed " << seed << " at " << when << " missing " << eid;
      EXPECT_EQ(read->contents, contents);
    }
  };

  constexpr int kSteps = 300;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t action = rng.Uniform(100);
    if (action < 40) {
      // Auto-committed enqueue.
      const std::string contents = rng.Bytes(rng.UniformRange(1, 20));
      auto eid = repo->Enqueue(nullptr, "q", contents);
      ASSERT_TRUE(eid.ok());
      EXPECT_TRUE(all_eids.insert(*eid).second)
          << "seed " << seed << ": eid reused: " << *eid;
      model[*eid] = contents;
    } else if (action < 60) {
      // Auto-committed dequeue.
      auto got = repo->Dequeue(nullptr, "q");
      if (got.ok()) {
        ASSERT_TRUE(model.count(got->eid) == 1)
            << "seed " << seed << ": dequeued unknown eid " << got->eid;
        EXPECT_TRUE(consumed.insert(got->eid).second)
            << "seed " << seed << ": double consume of " << got->eid;
        model.erase(got->eid);
      } else {
        EXPECT_TRUE(got.status().IsNotFound());
        EXPECT_TRUE(model.empty());
      }
    } else if (action < 80) {
      // Transactional dequeue, committed or aborted.
      auto txn = txn_mgr.Begin();
      auto got = repo->Dequeue(txn.get(), "q");
      if (!got.ok()) {
        txn->Abort();
        EXPECT_TRUE(model.empty());
        continue;
      }
      if (rng.Bernoulli(0.6)) {
        ASSERT_TRUE(txn->Commit().ok());
        EXPECT_TRUE(consumed.insert(got->eid).second)
            << "seed " << seed << ": double consume of " << got->eid;
        model.erase(got->eid);
      } else {
        txn->Abort();
        // Returned to the queue (no error queue configured): still in
        // the model, with a bumped abort count.
        auto read = repo->Read("q", got->eid);
        ASSERT_TRUE(read.ok());
        EXPECT_EQ(read->abort_count, got->abort_count + 1);
      }
    } else if (action < 88 && !model.empty()) {
      // Kill a random live element.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.size())));
      auto killed = repo->KillElement(nullptr, "q", it->first);
      ASSERT_TRUE(killed.ok());
      EXPECT_TRUE(*killed);
      model.erase(it);
    } else if (action < 93) {
      ASSERT_TRUE(repo->Checkpoint().ok());
    } else {
      // Crash and recover.
      repo.reset();
      env.SimulateCrash();
      repo = std::make_unique<QueueRepository>("qm", options);
      ASSERT_TRUE(repo->Open().ok());
      verify("recovery");
    }
    if (step % 25 == 0) verify("step");
  }
  verify("end");
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueuePropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace rrq::queue
