#include "queue/queue_repository.h"

#include <thread>

#include <gtest/gtest.h>

#include "env/faulty_env.h"
#include "env/mem_env.h"
#include "txn/txn_manager.h"

namespace rrq::queue {
namespace {

class QueueRepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    repo_ = MakeRepo();
    ASSERT_TRUE(repo_->CreateQueue("q").ok());
  }

  std::unique_ptr<QueueRepository> MakeRepo() {
    RepositoryOptions options;
    options.env = &env_;
    options.dir = "/qm";
    options.shards = 1;  // Tests below hand-craft single-stream file names.
    options.in_doubt_resolver = [this](txn::TxnId id) {
      return txn_mgr_->WasCommitted(id);
    };
    auto repo = std::make_unique<QueueRepository>("qm", options);
    EXPECT_TRUE(repo->Open().ok());
    return repo;
  }

  ElementId MustEnqueue(const std::string& queue, const std::string& contents,
                        uint32_t priority = 0) {
    auto r = repo_->Enqueue(nullptr, queue, contents, priority);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  std::string MustDequeue(const std::string& queue) {
    auto r = repo_->Dequeue(nullptr, queue);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->contents : "";
  }

  env::MemEnv env_;
  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<QueueRepository> repo_;
};

// ---------------------------------------------------------------------------
// Data definition

TEST_F(QueueRepositoryTest, CreateDestroyQueue) {
  EXPECT_TRUE(repo_->QueueExists("q"));
  EXPECT_TRUE(repo_->CreateQueue("q").IsAlreadyExists());
  ASSERT_TRUE(repo_->DestroyQueue("q").ok());
  EXPECT_FALSE(repo_->QueueExists("q"));
  EXPECT_TRUE(repo_->DestroyQueue("q").IsNotFound());
  EXPECT_TRUE(repo_->CreateQueue("").IsInvalidArgument());
}

TEST_F(QueueRepositoryTest, StopRejectsTraffic) {
  ASSERT_TRUE(repo_->StopQueue("q").ok());
  EXPECT_TRUE(repo_->Enqueue(nullptr, "q", "x").status().IsFailedPrecondition());
  EXPECT_TRUE(repo_->Dequeue(nullptr, "q").status().IsFailedPrecondition());
  ASSERT_TRUE(repo_->StartQueue("q").ok());
  EXPECT_TRUE(repo_->Enqueue(nullptr, "q", "x").ok());
}

TEST_F(QueueRepositoryTest, ListQueues) {
  ASSERT_TRUE(repo_->CreateQueue("a").ok());
  ASSERT_TRUE(repo_->CreateQueue("b").ok());
  auto names = repo_->ListQueues();
  EXPECT_EQ(names.size(), 3u);  // q, a, b
}

// ---------------------------------------------------------------------------
// Basic data manipulation

TEST_F(QueueRepositoryTest, FifoOrderWithinPriority) {
  MustEnqueue("q", "one");
  MustEnqueue("q", "two");
  MustEnqueue("q", "three");
  EXPECT_EQ(MustDequeue("q"), "one");
  EXPECT_EQ(MustDequeue("q"), "two");
  EXPECT_EQ(MustDequeue("q"), "three");
  EXPECT_TRUE(repo_->Dequeue(nullptr, "q").status().IsNotFound());
}

TEST_F(QueueRepositoryTest, HigherPriorityFirst) {
  MustEnqueue("q", "low", 1);
  MustEnqueue("q", "high", 9);
  MustEnqueue("q", "mid", 5);
  MustEnqueue("q", "high2", 9);
  EXPECT_EQ(MustDequeue("q"), "high");
  EXPECT_EQ(MustDequeue("q"), "high2");  // FIFO within priority.
  EXPECT_EQ(MustDequeue("q"), "mid");
  EXPECT_EQ(MustDequeue("q"), "low");
}

TEST_F(QueueRepositoryTest, ElementIdsAreUniqueAndStable) {
  ElementId a = MustEnqueue("q", "a");
  ElementId b = MustEnqueue("q", "b");
  EXPECT_NE(a, b);
  EXPECT_NE(a, kInvalidElementId);
  auto read = repo_->Read("q", a);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->contents, "a");
  EXPECT_EQ(read->eid, a);
}

TEST_F(QueueRepositoryTest, DepthCountsVisible) {
  EXPECT_EQ(*repo_->Depth("q"), 0u);
  MustEnqueue("q", "a");
  MustEnqueue("q", "b");
  EXPECT_EQ(*repo_->Depth("q"), 2u);
  MustDequeue("q");
  EXPECT_EQ(*repo_->Depth("q"), 1u);
}

TEST_F(QueueRepositoryTest, BlockingDequeueWakesOnEnqueue) {
  std::string got;
  std::thread consumer([this, &got]() {
    auto r = repo_->Dequeue(nullptr, "q", "", Slice(), 2'000'000);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    got = r->contents;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  MustEnqueue("q", "wakeup");
  consumer.join();
  EXPECT_EQ(got, "wakeup");
}

TEST_F(QueueRepositoryTest, DequeueTimesOutOnEmptyQueue) {
  auto r = repo_->Dequeue(nullptr, "q", "", Slice(), 30'000);
  EXPECT_TRUE(r.status().IsTimedOut()) << r.status().ToString();
}

// ---------------------------------------------------------------------------
// Transactional semantics

TEST_F(QueueRepositoryTest, TransactionalEnqueueInvisibleUntilCommit) {
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Enqueue(txn.get(), "q", "pending").ok());
  EXPECT_EQ(*repo_->Depth("q"), 0u);
  EXPECT_TRUE(repo_->Dequeue(nullptr, "q").status().IsNotFound());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*repo_->Depth("q"), 1u);
  EXPECT_EQ(MustDequeue("q"), "pending");
}

TEST_F(QueueRepositoryTest, AbortedEnqueueVanishes) {
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Enqueue(txn.get(), "q", "ghost").ok());
  txn->Abort();
  EXPECT_EQ(*repo_->Depth("q"), 0u);
}

TEST_F(QueueRepositoryTest, TransactionalDequeueLocksElement) {
  MustEnqueue("q", "only");
  auto txn = txn_mgr_->Begin();
  auto got = repo_->Dequeue(txn.get(), "q");
  ASSERT_TRUE(got.ok());
  // Skip-locked: other dequeuers see an empty queue.
  EXPECT_TRUE(repo_->Dequeue(nullptr, "q").status().IsNotFound());
  EXPECT_EQ(*repo_->Depth("q"), 0u);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_TRUE(repo_->Dequeue(nullptr, "q").status().IsNotFound());
}

TEST_F(QueueRepositoryTest, AbortedDequeueReturnsElement) {
  MustEnqueue("q", "retry-me");
  auto txn = txn_mgr_->Begin();
  auto got = repo_->Dequeue(txn.get(), "q");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->abort_count, 0u);
  txn->Abort();
  auto again = repo_->Dequeue(nullptr, "q");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->contents, "retry-me");
  EXPECT_EQ(again->abort_count, 1u);  // The abort was counted.
  EXPECT_EQ(again->eid, got->eid);    // Identity is stable.
}

TEST_F(QueueRepositoryTest, NthAbortMovesToErrorQueue) {
  QueueOptions qopts;
  qopts.max_aborts = 3;
  qopts.error_queue = "q.err";
  ASSERT_TRUE(repo_->CreateQueue("poison-q", qopts).ok());
  ElementId eid = *repo_->Enqueue(nullptr, "poison-q", "poison");

  for (int round = 0; round < 3; ++round) {
    auto txn = txn_mgr_->Begin();
    auto got = repo_->Dequeue(txn.get(), "poison-q");
    ASSERT_TRUE(got.ok()) << "round " << round;
    txn->Abort();
  }
  // After the third abort the element is in the error queue.
  EXPECT_TRUE(repo_->Dequeue(nullptr, "poison-q").status().IsNotFound());
  ASSERT_TRUE(repo_->QueueExists("q.err"));
  auto dead = repo_->Dequeue(nullptr, "q.err");
  ASSERT_TRUE(dead.ok());
  EXPECT_EQ(dead->contents, "poison");
  EXPECT_EQ(dead->eid, eid);
  EXPECT_EQ(dead->abort_count, 3u);
  EXPECT_FALSE(dead->abort_code.empty());
  EXPECT_EQ(repo_->error_move_count(), 1u);
}

TEST_F(QueueRepositoryTest, DequeueEnqueueAcrossQueuesIsAtomic) {
  ASSERT_TRUE(repo_->CreateQueue("q2").ok());
  MustEnqueue("q", "hop");
  {
    auto txn = txn_mgr_->Begin();
    auto got = repo_->Dequeue(txn.get(), "q");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(repo_->Enqueue(txn.get(), "q2", got->contents).ok());
    txn->Abort();  // Nothing moved.
  }
  EXPECT_EQ(*repo_->Depth("q"), 1u);
  EXPECT_EQ(*repo_->Depth("q2"), 0u);
  {
    auto txn = txn_mgr_->Begin();
    auto got = repo_->Dequeue(txn.get(), "q");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(repo_->Enqueue(txn.get(), "q2", got->contents).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(*repo_->Depth("q"), 0u);
  EXPECT_EQ(*repo_->Depth("q2"), 1u);
}

// ---------------------------------------------------------------------------
// Persistent registration (§4.3)

TEST_F(QueueRepositoryTest, FreshRegistrationIsEmpty) {
  auto info = repo_->Register("q", "client-1", true);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->was_registered);
  EXPECT_EQ(info->last_op, OpType::kNone);
  EXPECT_EQ(info->last_eid, kInvalidElementId);
  EXPECT_TRUE(info->last_tag.empty());
}

TEST_F(QueueRepositoryTest, ReRegistrationReturnsLastTaggedOp) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "q", "req-body", 0, "client-1",
                             "rid-42").ok());
  auto info = repo_->Register("q", "client-1", true);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->was_registered);
  EXPECT_EQ(info->last_op, OpType::kEnqueue);
  EXPECT_EQ(info->last_tag, "rid-42");
  EXPECT_EQ(info->last_element, "req-body");
}

TEST_F(QueueRepositoryTest, DequeueTagRecordedAtomically) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  MustEnqueue("q", "reply-body");
  auto got = repo_->Dequeue(nullptr, "q", "client-1", "ckpt-7");
  ASSERT_TRUE(got.ok());
  auto info = repo_->Register("q", "client-1", true);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->last_op, OpType::kDequeue);
  EXPECT_EQ(info->last_tag, "ckpt-7");
  EXPECT_EQ(info->last_eid, got->eid);
}

TEST_F(QueueRepositoryTest, ReadAfterDequeueViaRegistrationCopy) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  MustEnqueue("q", "keepsake");
  auto got = repo_->Dequeue(nullptr, "q", "client-1", "t");
  ASSERT_TRUE(got.ok());
  // Element is gone from the queue, but the registrant can still read it.
  auto read = repo_->Read("q", got->eid);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->contents, "keepsake");
}

TEST_F(QueueRepositoryTest, DeregisterForgetsState) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "q", "x", 0, "client-1", "rid").ok());
  ASSERT_TRUE(repo_->Deregister("q", "client-1").ok());
  auto info = repo_->Register("q", "client-1", true);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->was_registered);
  EXPECT_TRUE(repo_->Deregister("q", "nobody").IsNotFound());
}

TEST_F(QueueRepositoryTest, TaggedOpRequiresRegistration) {
  auto r = repo_->Enqueue(nullptr, "q", "x", 0, "stranger", "rid");
  EXPECT_TRUE(r.status().IsNotConnected());
}

TEST_F(QueueRepositoryTest, AbortedTaggedOperationLeavesTagUnchanged) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  ASSERT_TRUE(
      repo_->Enqueue(nullptr, "q", "first", 0, "client-1", "rid-1").ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(
      repo_->Enqueue(txn.get(), "q", "second", 0, "client-1", "rid-2").ok());
  txn->Abort();
  auto info = repo_->Register("q", "client-1", true);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->last_tag, "rid-1");  // rid-2 was never durable.
}

// ---------------------------------------------------------------------------
// KillElement (§7)

TEST_F(QueueRepositoryTest, KillRemovesQueuedElement) {
  ElementId eid = MustEnqueue("q", "doomed");
  auto killed = repo_->KillElement(nullptr, "q", eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  EXPECT_EQ(*repo_->Depth("q"), 0u);
}

TEST_F(QueueRepositoryTest, KillAfterCommittedDequeueFails) {
  ElementId eid = MustEnqueue("q", "gone");
  MustDequeue("q");
  auto killed = repo_->KillElement(nullptr, "q", eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_FALSE(*killed);
}

TEST_F(QueueRepositoryTest, KillAbortsUncommittedDequeuer) {
  ElementId eid = MustEnqueue("q", "contested");
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Dequeue(txn.get(), "q").ok());
  auto killed = repo_->KillElement(nullptr, "q", eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  // The dequeuing transaction is doomed: commit must fail.
  Status s = txn->Commit();
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  // And the element is gone for good.
  EXPECT_EQ(*repo_->Depth("q"), 0u);
  EXPECT_TRUE(repo_->Dequeue(nullptr, "q").status().IsNotFound());
}

TEST_F(QueueRepositoryTest, KillFailsOncePrepared) {
  ElementId eid = MustEnqueue("q", "prepared");
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Dequeue(txn.get(), "q").ok());
  ASSERT_TRUE(repo_->Prepare(txn->id()).ok());
  auto killed = repo_->KillElement(nullptr, "q", eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_FALSE(*killed);  // Too late: the dequeuer voted yes.
  ASSERT_TRUE(repo_->CommitTxn(txn->id()).ok());
  txn->Abort();  // Clean up the handle (repo already committed).
}

TEST_F(QueueRepositoryTest, TransactionalKillUndoneByAbort) {
  ElementId eid = MustEnqueue("q", "survivor");
  auto txn = txn_mgr_->Begin();
  auto killed = repo_->KillElement(txn.get(), "q", eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  txn->Abort();
  // The kill aborted with its transaction: the element survives.
  EXPECT_EQ(*repo_->Depth("q"), 1u);
  EXPECT_EQ(MustDequeue("q"), "survivor");
}

// ---------------------------------------------------------------------------
// Policies: strict FIFO, selector, queue sets, redirection

TEST_F(QueueRepositoryTest, StrictFifoBlocksOnLockedHead) {
  QueueOptions qopts;
  qopts.policy = DequeuePolicy::kStrictFifo;
  ASSERT_TRUE(repo_->CreateQueue("strict", qopts).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "strict", "head").ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "strict", "next").ok());

  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Dequeue(txn.get(), "strict").ok());
  // Head is locked: a second dequeuer must NOT skip to "next".
  auto blocked = repo_->Dequeue(nullptr, "strict");
  EXPECT_TRUE(blocked.status().IsBusy()) << blocked.status().ToString();
  ASSERT_TRUE(txn->Commit().ok());
  auto now = repo_->Dequeue(nullptr, "strict");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->contents, "next");
}

TEST_F(QueueRepositoryTest, SkipLockedDequeuesPastLockedElement) {
  MustEnqueue("q", "first");
  MustEnqueue("q", "second");
  auto txn = txn_mgr_->Begin();
  auto first = repo_->Dequeue(txn.get(), "q");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->contents, "first");
  // Skip-locked (§10): another dequeuer gets "second" immediately.
  EXPECT_EQ(MustDequeue("q"), "second");
  txn->Abort();
  // The anomalous ordering the paper tolerates: "first" now follows.
  EXPECT_EQ(MustDequeue("q"), "first");
}

TEST_F(QueueRepositoryTest, SelectorPicksByContent) {
  MustEnqueue("q", "amount:10");
  MustEnqueue("q", "amount:90");
  MustEnqueue("q", "amount:50");
  // "Highest dollar amount first" (§10).
  Selector highest = [](const std::vector<Element*>& candidates) -> size_t {
    size_t best = 0;
    int best_amount = -1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      int amount = std::stoi(candidates[i]->contents.substr(7));
      if (amount > best_amount) {
        best_amount = amount;
        best = i;
      }
    }
    return best;
  };
  auto got = repo_->DequeueSelected(nullptr, "q", highest);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "amount:90");
}

TEST_F(QueueRepositoryTest, DequeueFromSetTakesFirstNonEmpty) {
  ASSERT_TRUE(repo_->CreateQueue("empty1").ok());
  ASSERT_TRUE(repo_->CreateQueue("loaded").ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "loaded", "found").ok());
  auto got = repo_->DequeueFromSet(nullptr, {"empty1", "loaded", "q"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "found");
  EXPECT_TRUE(repo_->DequeueFromSet(nullptr, {"empty1", "q"})
                  .status()
                  .IsNotFound());
}

TEST_F(QueueRepositoryTest, RedirectionForwardsEnqueues) {
  QueueOptions redirecting;
  redirecting.redirect_to = "q";
  ASSERT_TRUE(repo_->CreateQueue("front", redirecting).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "front", "forwarded").ok());
  EXPECT_EQ(*repo_->Depth("front"), 0u);
  EXPECT_EQ(*repo_->Depth("q"), 1u);
  EXPECT_EQ(MustDequeue("q"), "forwarded");
}

TEST_F(QueueRepositoryTest, AlertThresholdFires) {
  RepositoryOptions options;
  options.env = nullptr;
  std::vector<std::pair<std::string, size_t>> alerts;
  options.alert_callback = [&alerts](const std::string& q, size_t depth) {
    alerts.emplace_back(q, depth);
  };
  QueueRepository repo("alerting", options);
  ASSERT_TRUE(repo.Open().ok());
  QueueOptions qopts;
  qopts.alert_threshold = 3;
  ASSERT_TRUE(repo.CreateQueue("watched", qopts).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(repo.Enqueue(nullptr, "watched", "x").ok());
  }
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].first, "watched");
  EXPECT_EQ(alerts[0].second, 3u);
}

// ---------------------------------------------------------------------------
// Triggers (§6 fork/join)

TEST_F(QueueRepositoryTest, TriggerFiresWhenCountReached) {
  ASSERT_TRUE(repo_->CreateQueue("replies").ok());
  ASSERT_TRUE(repo_->CreateQueue("join").ok());
  TriggerSpec trigger;
  trigger.watched_queue = "replies";
  trigger.remaining = 3;
  trigger.target_queue = "join";
  trigger.contents = "all-replies-in";
  ASSERT_TRUE(repo_->SetTrigger(trigger).ok());

  ASSERT_TRUE(repo_->Enqueue(nullptr, "replies", "r1").ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "replies", "r2").ok());
  EXPECT_EQ(*repo_->Depth("join"), 0u);
  ASSERT_TRUE(repo_->Enqueue(nullptr, "replies", "r3").ok());
  ASSERT_EQ(*repo_->Depth("join"), 1u);
  auto join = repo_->Dequeue(nullptr, "join");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->contents, "all-replies-in");
  // Fires once only.
  ASSERT_TRUE(repo_->Enqueue(nullptr, "replies", "r4").ok());
  EXPECT_EQ(*repo_->Depth("join"), 0u);
}

TEST_F(QueueRepositoryTest, TriggerAlreadySatisfiedFiresOnInstall) {
  ASSERT_TRUE(repo_->CreateQueue("join").ok());
  MustEnqueue("q", "r1");
  MustEnqueue("q", "r2");
  TriggerSpec trigger;
  trigger.watched_queue = "q";
  trigger.remaining = 2;
  trigger.target_queue = "join";
  trigger.contents = "go";
  ASSERT_TRUE(repo_->SetTrigger(trigger).ok());
  EXPECT_EQ(*repo_->Depth("join"), 1u);
}

// ---------------------------------------------------------------------------
// Volatile queues

TEST_F(QueueRepositoryTest, VolatileQueueLosesContentsAtCrash) {
  QueueOptions vopts;
  vopts.durable = false;
  ASSERT_TRUE(repo_->CreateQueue("scratch", vopts).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "scratch", "ephemeral").ok());
  MustEnqueue("q", "durable");

  env_.SimulateCrash();
  auto recovered = MakeRepo();
  // The volatile queue itself survives (metadata is durable)...
  EXPECT_TRUE(recovered->QueueExists("scratch"));
  // ...but its contents do not.
  EXPECT_EQ(*recovered->Depth("scratch"), 0u);
  EXPECT_EQ(*recovered->Depth("q"), 1u);
}

// ---------------------------------------------------------------------------
// Recovery

TEST_F(QueueRepositoryTest, CommittedElementsSurviveCrash) {
  MustEnqueue("q", "a");
  MustEnqueue("q", "b");
  MustDequeue("q");  // Consume "a".
  env_.SimulateCrash();

  auto recovered = MakeRepo();
  EXPECT_EQ(*recovered->Depth("q"), 1u);
  auto got = recovered->Dequeue(nullptr, "q");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "b");
}

TEST_F(QueueRepositoryTest, UncommittedOpsRollBackAtCrash) {
  MustEnqueue("q", "stay");
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Dequeue(txn.get(), "q").ok());
  ASSERT_TRUE(repo_->Enqueue(txn.get(), "q", "phantom").ok());
  // Crash with the transaction unprepared.
  env_.SimulateCrash();
  auto recovered = MakeRepo();
  EXPECT_EQ(*recovered->Depth("q"), 1u);
  auto got = recovered->Dequeue(nullptr, "q");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "stay");
  txn->Abort();
}

TEST_F(QueueRepositoryTest, RegistrationSurvivesCrash) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "q", "body", 0, "client-1",
                             "rid-99").ok());
  env_.SimulateCrash();
  auto recovered = MakeRepo();
  auto info = recovered->Register("q", "client-1", true);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->was_registered);
  EXPECT_EQ(info->last_tag, "rid-99");
  EXPECT_EQ(info->last_element, "body");
}

TEST_F(QueueRepositoryTest, EidsNeverReusedAfterCrash) {
  ElementId before = MustEnqueue("q", "x");
  env_.SimulateCrash();
  auto recovered = MakeRepo();
  auto after = recovered->Enqueue(nullptr, "q", "y");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, before);
}

TEST_F(QueueRepositoryTest, CheckpointCompactsAndPreservesEverything) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  for (int i = 0; i < 20; ++i) MustEnqueue("q", "e" + std::to_string(i));
  for (int i = 0; i < 5; ++i) MustDequeue("q");
  ASSERT_TRUE(repo_->Enqueue(nullptr, "q", "tagged", 7, "client-1",
                             "rid-5").ok());
  const uint64_t wal_before = repo_->wal_bytes();
  ASSERT_TRUE(repo_->Checkpoint().ok());
  EXPECT_LT(repo_->wal_bytes(), wal_before);

  MustEnqueue("q", "post-ckpt");
  env_.SimulateCrash();
  auto recovered = MakeRepo();
  EXPECT_EQ(*recovered->Depth("q"), 17u);  // 20 - 5 + tagged + post.
  auto info = recovered->Register("q", "client-1", true);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->last_tag, "rid-5");
  // Priority survives the checkpoint: "tagged" (priority 7) comes first.
  auto got = recovered->Dequeue(nullptr, "q");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "tagged");
}

TEST_F(QueueRepositoryTest, PreparedTransactionRecoversViaResolver) {
  MustEnqueue("q", "consumed-if-committed");
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Dequeue(txn.get(), "q").ok());
  ASSERT_TRUE(repo_->Prepare(txn->id()).ok());
  const txn::TxnId id = txn->id();
  env_.SimulateCrash();

  // Resolver says committed: the dequeue applies during recovery.
  {
    RepositoryOptions options;
    options.env = &env_;
    options.dir = "/qm";
    options.in_doubt_resolver = [id](txn::TxnId q) { return q == id; };
    QueueRepository recovered("qm", options);
    ASSERT_TRUE(recovered.Open().ok());
    EXPECT_EQ(*recovered.Depth("q"), 0u);
  }
  txn->Abort();
}

TEST_F(QueueRepositoryTest, PreparedTransactionPresumedAbortRestoresElement) {
  MustEnqueue("q", "restored");
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Dequeue(txn.get(), "q").ok());
  ASSERT_TRUE(repo_->Prepare(txn->id()).ok());
  env_.SimulateCrash();

  RepositoryOptions options;
  options.env = &env_;
  options.dir = "/qm";
  QueueRepository recovered("qm", options);  // No resolver: presumed abort.
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(*recovered.Depth("q"), 1u);
  txn->Abort();
}

// ---------------------------------------------------------------------------
// Concurrency

TEST_F(QueueRepositoryTest, ConcurrentDequeuersNeverDuplicate) {
  constexpr int kElements = 300;
  for (int i = 0; i < kElements; ++i) MustEnqueue("q", std::to_string(i));

  std::mutex mu;
  std::vector<std::string> consumed;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &mu, &consumed]() {
      while (true) {
        auto txn = txn_mgr_->Begin();
        auto got = repo_->Dequeue(txn.get(), "q");
        if (!got.ok()) {
          txn->Abort();
          break;
        }
        ASSERT_TRUE(txn->Commit().ok());
        std::lock_guard<std::mutex> guard(mu);
        consumed.push_back(got->contents);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(consumed.size(), static_cast<size_t>(kElements));
  std::sort(consumed.begin(), consumed.end());
  EXPECT_EQ(std::unique(consumed.begin(), consumed.end()), consumed.end());
}

TEST_F(QueueRepositoryTest, TaggedEnqueueIsIdempotent) {
  // A resend (or network-duplicated one-way message) carrying the
  // registrant's current tag must not double-submit: persistent
  // registration is the idempotency key.
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  auto first = repo_->Enqueue(nullptr, "q", "pay-100", 0, "client-1", "rid-1");
  ASSERT_TRUE(first.ok());
  auto duplicate =
      repo_->Enqueue(nullptr, "q", "pay-100", 0, "client-1", "rid-1");
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(*duplicate, *first);  // Acknowledged, not re-enqueued.
  EXPECT_EQ(*repo_->Depth("q"), 1u);
  // A NEW tag is a new request.
  auto next = repo_->Enqueue(nullptr, "q", "pay-200", 0, "client-1", "rid-2");
  ASSERT_TRUE(next.ok());
  EXPECT_NE(*next, *first);
  EXPECT_EQ(*repo_->Depth("q"), 2u);
}

TEST_F(QueueRepositoryTest, UntaggedEnqueuesNeverDedup) {
  ASSERT_TRUE(repo_->Register("q", "client-1", true).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "q", "same-body").ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "q", "same-body").ok());
  EXPECT_EQ(*repo_->Depth("q"), 2u);
}

// ---------------------------------------------------------------------------
// Checkpoint generation hygiene (crash-sweep regressions)

TEST_F(QueueRepositoryTest, OpenRemovesOrphanGenerations) {
  MustEnqueue("q", "survivor");
  ASSERT_TRUE(repo_->Checkpoint().ok());  // Now at generation 1.
  repo_.reset();
  // A crash inside Checkpoint() can strand the retiring generation, a
  // freshly written next generation, or a half-written tmp. Plant the
  // full zoo and reopen.
  ASSERT_TRUE(env::WriteStringToFileSync(&env_, "stale", "/qm/WAL-0").ok());
  ASSERT_TRUE(
      env::WriteStringToFileSync(&env_, "stale", "/qm/CHECKPOINT-7").ok());
  ASSERT_TRUE(
      env::WriteStringToFileSync(&env_, "half", "/qm/CHECKPOINT-2.tmp").ok());
  repo_ = MakeRepo();
  EXPECT_GE(repo_->recovery_gc_removed_count(), 3u);
  EXPECT_FALSE(env_.FileExists("/qm/WAL-0"));
  EXPECT_FALSE(env_.FileExists("/qm/CHECKPOINT-7"));
  EXPECT_FALSE(env_.FileExists("/qm/CHECKPOINT-2.tmp"));
  EXPECT_TRUE(env_.FileExists("/qm/WAL-1"));  // Live generation survives.
  EXPECT_EQ(MustDequeue("q"), "survivor");
}

TEST_F(QueueRepositoryTest, FailedRetirementIsCountedNotFatal) {
  env::FaultConfig faults;
  faults.remove_failure_one_in = 1;  // Every RemoveFile fails.
  env::FaultyEnv flaky(&env_, faults);
  RepositoryOptions options;
  options.env = &flaky;
  options.dir = "/flaky-qm";
  options.shards = 1;
  {
    QueueRepository repo("flaky-qm", options);
    ASSERT_TRUE(repo.Open().ok());
    ASSERT_TRUE(repo.CreateQueue("q").ok());
    ASSERT_TRUE(repo.Enqueue(nullptr, "q", "x").ok());
    // Retiring WAL-0 fails; the checkpoint itself must still succeed
    // and the failure must be counted, not swallowed.
    ASSERT_TRUE(repo.Checkpoint().ok());
    EXPECT_GE(repo.remove_failure_count(), 1u);
    EXPECT_TRUE(env_.FileExists("/flaky-qm/WAL-0"));  // Orphaned.
  }
  // The next clean open reclaims what retirement could not.
  RepositoryOptions clean;
  clean.env = &env_;
  clean.dir = "/flaky-qm";
  QueueRepository reopened("flaky-qm", clean);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_GE(reopened.recovery_gc_removed_count(), 1u);
  EXPECT_FALSE(env_.FileExists("/flaky-qm/WAL-0"));
  EXPECT_EQ(reopened.remove_failure_count(), 0u);
}

TEST_F(QueueRepositoryTest, CorruptRegistrationTypeFailsOpen) {
  ASSERT_TRUE(repo_->Register("q", "REGCORRUPT", true).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, "q", "pay", 0, "REGCORRUPT", "t1").ok());
  ASSERT_TRUE(repo_->Checkpoint().ok());  // Snapshot carries the registration.
  repo_.reset();
  std::string data;
  ASSERT_TRUE(env::ReadFileToString(&env_, "/qm/CHECKPOINT-1", &data).ok());
  // Snapshot registration layout: length-prefixed registrant, stable
  // byte, op-type byte.
  const std::string needle = std::string(1, '\x0a') + "REGCORRUPT";
  const size_t pos = data.find(needle);
  ASSERT_NE(pos, std::string::npos);
  data[pos + needle.size() + 1] = '\x7f';
  ASSERT_TRUE(env::WriteStringToFileSync(&env_, data, "/qm/CHECKPOINT-1").ok());
  RepositoryOptions options;
  options.env = &env_;
  options.dir = "/qm";
  options.shards = 1;
  QueueRepository corrupt("qm", options);
  EXPECT_TRUE(corrupt.Open().IsCorruption());
}

// ---------------------------------------------------------------------------
// Sharded repository semantics

class ShardedRepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    repo_ = MakeRepo(4);
    ASSERT_EQ(repo_->shard_count(), 4u);
  }

  std::unique_ptr<QueueRepository> MakeRepo(unsigned shards) {
    RepositoryOptions options;
    options.env = &env_;
    options.dir = "/sq";
    options.shards = shards;
    options.in_doubt_resolver = [this](txn::TxnId id) {
      return txn_mgr_->WasCommitted(id);
    };
    auto repo = std::make_unique<QueueRepository>("sq", options);
    EXPECT_TRUE(repo->Open().ok());
    return repo;
  }

  // First unused "q<n>" whose name hashes to `shard`.
  std::string NameOnShard(size_t shard) {
    for (;; ++name_seq_) {
      std::string name = "q" + std::to_string(name_seq_);
      if (repo_->shard_of(name) == shard) {
        ++name_seq_;
        return name;
      }
    }
  }

  env::MemEnv env_;
  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<QueueRepository> repo_;
  int name_seq_ = 0;
};

TEST_F(ShardedRepositoryTest, CrossShardTransactionCommitsAtomically) {
  const std::string qa = NameOnShard(0);
  const std::string qb = NameOnShard(2);
  ASSERT_NE(repo_->shard_of(qa), repo_->shard_of(qb));
  ASSERT_TRUE(repo_->CreateQueue(qa).ok());
  ASSERT_TRUE(repo_->CreateQueue(qb).ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Enqueue(txn.get(), qa, "a").ok());
  ASSERT_TRUE(repo_->Enqueue(txn.get(), qb, "b").ok());
  EXPECT_EQ(*repo_->Depth(qa), 0u);  // Nothing visible before commit.
  EXPECT_EQ(*repo_->Depth(qb), 0u);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*repo_->Depth(qa), 1u);
  EXPECT_EQ(*repo_->Depth(qb), 1u);
}

TEST_F(ShardedRepositoryTest, CrossShardTransactionAbortsAtomically) {
  const std::string qa = NameOnShard(1);
  const std::string qb = NameOnShard(3);
  ASSERT_TRUE(repo_->CreateQueue(qa).ok());
  ASSERT_TRUE(repo_->CreateQueue(qb).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, qa, "a").ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, qb, "b").ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Dequeue(txn.get(), qa).ok());
  ASSERT_TRUE(repo_->Dequeue(txn.get(), qb).ok());
  txn->Abort();
  // Both elements are back, on both shards.
  EXPECT_EQ(*repo_->Depth(qa), 1u);
  EXPECT_EQ(*repo_->Depth(qb), 1u);
  EXPECT_EQ(repo_->Dequeue(nullptr, qa)->contents, "a");
  EXPECT_EQ(repo_->Dequeue(nullptr, qb)->contents, "b");
}

TEST_F(ShardedRepositoryTest, CrossShardPreparedTransactionRecovers) {
  const std::string qa = NameOnShard(0);
  const std::string qb = NameOnShard(3);
  ASSERT_TRUE(repo_->CreateQueue(qa).ok());
  ASSERT_TRUE(repo_->CreateQueue(qb).ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(repo_->Enqueue(txn.get(), qa, "a").ok());
  ASSERT_TRUE(repo_->Enqueue(txn.get(), qb, "b").ok());
  ASSERT_TRUE(repo_->Prepare(txn->id()).ok());
  const txn::TxnId id = txn->id();
  env_.SimulateCrash();

  // Resolver says committed: both shards' prepared slices apply, or
  // neither — never one.
  RepositoryOptions options;
  options.env = &env_;
  options.dir = "/sq";
  options.shards = 4;
  options.in_doubt_resolver = [id](txn::TxnId q) { return q == id; };
  QueueRepository recovered("sq", options);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(*recovered.Depth(qa), 1u);
  EXPECT_EQ(*recovered.Depth(qb), 1u);
  txn->Abort();
}

TEST_F(ShardedRepositoryTest, DequeueFromSetScansAcrossShards) {
  const std::string qa = NameOnShard(0);
  const std::string qb = NameOnShard(2);
  ASSERT_TRUE(repo_->CreateQueue(qa).ok());
  ASSERT_TRUE(repo_->CreateQueue(qb).ok());
  EXPECT_TRUE(repo_->DequeueFromSet(nullptr, {qa, qb}).status().IsNotFound());
  // Only the later-listed queue (a different shard) has an element.
  ASSERT_TRUE(repo_->Enqueue(nullptr, qb, "from-b").ok());
  auto got = repo_->DequeueFromSet(nullptr, {qa, qb});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "from-b");
  // With both populated, the caller's scan order wins, not shard order.
  ASSERT_TRUE(repo_->Enqueue(nullptr, qa, "from-a").ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, qb, "from-b2").ok());
  got = repo_->DequeueFromSet(nullptr, {qa, qb});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "from-a");
}

TEST_F(ShardedRepositoryTest, AbortLimitMovesElementAcrossShards) {
  const std::string q = NameOnShard(1);
  const std::string err = NameOnShard(2);
  QueueOptions qopts;
  qopts.max_aborts = 2;
  qopts.error_queue = err;
  ASSERT_TRUE(repo_->CreateQueue(q, qopts).ok());
  const ElementId eid = *repo_->Enqueue(nullptr, q, "poison");
  for (int round = 0; round < 2; ++round) {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(repo_->Dequeue(txn.get(), q).ok()) << "round " << round;
    txn->Abort();
  }
  // The poisoned element crossed shards into the on-demand error queue.
  EXPECT_TRUE(repo_->Dequeue(nullptr, q).status().IsNotFound());
  ASSERT_TRUE(repo_->QueueExists(err));
  auto dead = repo_->Dequeue(nullptr, err);
  ASSERT_TRUE(dead.ok());
  EXPECT_EQ(dead->contents, "poison");
  EXPECT_EQ(dead->eid, eid);
  EXPECT_EQ(dead->abort_count, 2u);
  EXPECT_FALSE(dead->abort_code.empty());
  EXPECT_EQ(repo_->error_move_count(), 1u);
}

TEST_F(ShardedRepositoryTest, SingleStreamDirAdoptedByShardedConfig) {
  // A directory written by shards=1 must open bit-for-bit compatible
  // under a sharded configuration: the on-disk count wins.
  RepositoryOptions legacy;
  legacy.env = &env_;
  legacy.dir = "/legacy";
  legacy.shards = 1;
  {
    QueueRepository repo("legacy", legacy);
    ASSERT_TRUE(repo.Open().ok());
    ASSERT_TRUE(repo.CreateQueue("q").ok());
    ASSERT_TRUE(repo.Enqueue(nullptr, "q", "survivor").ok());
  }
  ASSERT_TRUE(env_.FileExists("/legacy/WAL-0"));
  RepositoryOptions wide = legacy;
  wide.shards = 8;
  QueueRepository reopened("legacy", wide);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.shard_count(), 1u);
  EXPECT_TRUE(env_.FileExists("/legacy/WAL-0"));
  EXPECT_FALSE(env_.FileExists("/legacy/WAL-0-0"));
  EXPECT_EQ(reopened.Dequeue(nullptr, "q")->contents, "survivor");
}

TEST_F(ShardedRepositoryTest, OnDiskShardCountAdoptedOnReopen) {
  const std::string qa = NameOnShard(0);
  const std::string qb = NameOnShard(3);
  ASSERT_TRUE(repo_->CreateQueue(qa).ok());
  ASSERT_TRUE(repo_->CreateQueue(qb).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, qa, "a").ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, qb, "b").ok());
  repo_.reset();
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(env_.FileExists("/sq/WAL-0-" + std::to_string(s)));
  }
  // A mismatched configuration (1 shard) adopts the on-disk 4.
  auto reopened = MakeRepo(1);
  EXPECT_EQ(reopened->shard_count(), 4u);
  EXPECT_EQ(reopened->Dequeue(nullptr, qa)->contents, "a");
  EXPECT_EQ(reopened->Dequeue(nullptr, qb)->contents, "b");
}

TEST_F(ShardedRepositoryTest, PerShardOrphanGenerationsRemoved) {
  const std::string q = NameOnShard(2);
  ASSERT_TRUE(repo_->CreateQueue(q).ok());
  ASSERT_TRUE(repo_->Enqueue(nullptr, q, "survivor").ok());
  ASSERT_TRUE(repo_->Checkpoint().ok());  // Now at generation 1.
  repo_.reset();
  // A crash inside the sharded Checkpoint() can strand any shard's
  // slice of either generation, plus half-written tmps.
  ASSERT_TRUE(env::WriteStringToFileSync(&env_, "stale", "/sq/WAL-0-2").ok());
  ASSERT_TRUE(
      env::WriteStringToFileSync(&env_, "stale", "/sq/CHECKPOINT-7-1").ok());
  ASSERT_TRUE(
      env::WriteStringToFileSync(&env_, "half", "/sq/CHECKPOINT-2-0.tmp").ok());
  repo_ = MakeRepo(4);
  EXPECT_GE(repo_->recovery_gc_removed_count(), 3u);
  EXPECT_FALSE(env_.FileExists("/sq/WAL-0-2"));
  EXPECT_FALSE(env_.FileExists("/sq/CHECKPOINT-7-1"));
  EXPECT_FALSE(env_.FileExists("/sq/CHECKPOINT-2-0.tmp"));
  for (int s = 0; s < 4; ++s) {  // Live generation survives, all slices.
    EXPECT_TRUE(env_.FileExists("/sq/WAL-1-" + std::to_string(s)));
  }
  EXPECT_EQ(repo_->Dequeue(nullptr, q)->contents, "survivor");
}

}  // namespace
}  // namespace rrq::queue
