#include "queue/envelope.h"

#include <gtest/gtest.h>

namespace rrq::queue {
namespace {

TEST(RequestEnvelopeTest, RoundTrip) {
  RequestEnvelope envelope;
  envelope.rid = "client-7#42";
  envelope.reply_queue = "reply.client-7";
  envelope.reply_priority = 9;
  envelope.scratch = std::string("binary\0scratch", 14);
  envelope.body = "transfer 100";

  RequestEnvelope decoded;
  ASSERT_TRUE(
      DecodeRequestEnvelope(EncodeRequestEnvelope(envelope), &decoded).ok());
  EXPECT_EQ(decoded.rid, envelope.rid);
  EXPECT_EQ(decoded.reply_queue, envelope.reply_queue);
  EXPECT_EQ(decoded.reply_priority, envelope.reply_priority);
  EXPECT_EQ(decoded.scratch, envelope.scratch);
  EXPECT_EQ(decoded.body, envelope.body);
}

TEST(RequestEnvelopeTest, EmptyFieldsRoundTrip) {
  RequestEnvelope envelope;
  RequestEnvelope decoded;
  ASSERT_TRUE(
      DecodeRequestEnvelope(EncodeRequestEnvelope(envelope), &decoded).ok());
  EXPECT_TRUE(decoded.rid.empty());
  EXPECT_TRUE(decoded.body.empty());
}

TEST(RequestEnvelopeTest, TruncationDetected) {
  RequestEnvelope envelope;
  envelope.rid = "rid";
  envelope.body = "a-body-of-some-length";
  std::string wire = EncodeRequestEnvelope(envelope);
  for (size_t cut : {wire.size() - 1, wire.size() / 2, size_t{1}, size_t{0}}) {
    RequestEnvelope decoded;
    EXPECT_TRUE(DecodeRequestEnvelope(Slice(wire.data(), cut), &decoded)
                    .IsCorruption())
        << "cut=" << cut;
  }
}

TEST(ReplyEnvelopeTest, RoundTripBothOutcomes) {
  for (bool success : {true, false}) {
    ReplyEnvelope envelope;
    envelope.rid = "r#1";
    envelope.success = success;
    envelope.body = success ? "result" : "request failed permanently";
    ReplyEnvelope decoded;
    ASSERT_TRUE(
        DecodeReplyEnvelope(EncodeReplyEnvelope(envelope), &decoded).ok());
    EXPECT_EQ(decoded.rid, "r#1");
    EXPECT_EQ(decoded.success, success);
    EXPECT_EQ(decoded.body, envelope.body);
  }
}

TEST(ReplyEnvelopeTest, GarbageRejected) {
  ReplyEnvelope decoded;
  EXPECT_FALSE(DecodeReplyEnvelope("not an envelope at all...", &decoded).ok() &&
               decoded.rid == "not");
  EXPECT_TRUE(DecodeReplyEnvelope(Slice(), &decoded).IsCorruption());
}

}  // namespace
}  // namespace rrq::queue
