// §10 queue replication: record-level state-machine replication of a
// QueueRepository onto a hot standby, including full client failover
// via persistent registration.
#include <gtest/gtest.h>

#include <thread>

#include "client/clerk.h"
#include "comm/network.h"
#include "env/mem_env.h"
#include "queue/queue_api.h"
#include "queue/queue_repository.h"
#include "txn/txn_manager.h"

namespace rrq::queue {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backup_ = std::make_unique<QueueRepository>("backup");
    ASSERT_TRUE(backup_->Open().ok());
    RepositoryOptions options;
    options.replication_sink = [this](const Slice& record) {
      return backup_->ApplyReplicatedRecord(record);
    };
    primary_ = std::make_unique<QueueRepository>("primary", options);
    ASSERT_TRUE(primary_->Open().ok());
    ASSERT_TRUE(primary_->CreateQueue("q").ok());
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
  }

  std::unique_ptr<QueueRepository> backup_;
  std::unique_ptr<QueueRepository> primary_;
  std::unique_ptr<txn::TransactionManager> txn_mgr_;
};

TEST_F(ReplicationTest, MetadataReplicates) {
  EXPECT_TRUE(backup_->QueueExists("q"));
  ASSERT_TRUE(primary_->CreateQueue("q2").ok());
  EXPECT_TRUE(backup_->QueueExists("q2"));
  ASSERT_TRUE(primary_->DestroyQueue("q2").ok());
  EXPECT_FALSE(backup_->QueueExists("q2"));
}

TEST_F(ReplicationTest, ElementsReplicateWithIdenticalEids) {
  auto e1 = primary_->Enqueue(nullptr, "q", "alpha", 3);
  auto e2 = primary_->Enqueue(nullptr, "q", "beta", 1);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*backup_->Depth("q"), 2u);
  auto mirrored = backup_->Read("q", *e1);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored->contents, "alpha");
  EXPECT_EQ(mirrored->priority, 3u);
  // Dequeue on the primary removes from the backup too.
  ASSERT_TRUE(primary_->Dequeue(nullptr, "q").ok());
  EXPECT_EQ(*backup_->Depth("q"), 1u);
}

TEST_F(ReplicationTest, TransactionalCommitReplicatesAtomically) {
  ASSERT_TRUE(primary_->CreateQueue("q2").ok());
  ASSERT_TRUE(primary_->Enqueue(nullptr, "q", "hop").ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(primary_->Dequeue(txn.get(), "q").ok());
  ASSERT_TRUE(primary_->Enqueue(txn.get(), "q2", "hopped").ok());
  // Uncommitted: the backup still shows the original state.
  EXPECT_EQ(*backup_->Depth("q"), 1u);
  EXPECT_EQ(*backup_->Depth("q2"), 0u);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*backup_->Depth("q"), 0u);
  EXPECT_EQ(*backup_->Depth("q2"), 1u);
}

TEST_F(ReplicationTest, AbortSideEffectsReplicate) {
  QueueOptions qopts;
  qopts.max_aborts = 2;
  qopts.error_queue = "q.err";
  ASSERT_TRUE(primary_->CreateQueue("poison", qopts).ok());
  ASSERT_TRUE(primary_->Enqueue(nullptr, "poison", "bad").ok());
  for (int i = 0; i < 2; ++i) {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(primary_->Dequeue(txn.get(), "poison").ok());
    txn->Abort();
  }
  // The error-queue move replicated.
  EXPECT_TRUE(backup_->QueueExists("q.err"));
  EXPECT_EQ(*backup_->Depth("q.err"), 1u);
}

TEST_F(ReplicationTest, PromotedBackupNeverReusesEids) {
  auto last = primary_->Enqueue(nullptr, "q", "x");
  ASSERT_TRUE(last.ok());
  // Primary dies; the backup takes over.
  auto fresh = backup_->Enqueue(nullptr, "q", "y");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, *last);
}

TEST_F(ReplicationTest, TriggersFireOncePrimarySide) {
  ASSERT_TRUE(primary_->CreateQueue("join").ok());
  TriggerSpec trigger;
  trigger.watched_queue = "q";
  trigger.remaining = 2;
  trigger.target_queue = "join";
  trigger.contents = "go";
  ASSERT_TRUE(primary_->SetTrigger(trigger).ok());
  ASSERT_TRUE(primary_->Enqueue(nullptr, "q", "a").ok());
  ASSERT_TRUE(primary_->Enqueue(nullptr, "q", "b").ok());
  // Fired exactly once, and the join element replicated exactly once.
  EXPECT_EQ(*primary_->Depth("join"), 1u);
  EXPECT_EQ(*backup_->Depth("join"), 1u);
}

TEST_F(ReplicationTest, ClientFailsOverWithFullResync) {
  // The paper's replication payoff: a client whose primary died
  // reconnects against the backup and finds its registration tags —
  // exactly-once continues across the failover.
  ASSERT_TRUE(primary_->CreateQueue("rep").ok());
  LocalQueueApi primary_api(primary_.get());
  client::ClerkOptions options;
  options.client_id = "c1";
  options.request_queue = "q";
  options.reply_queue = "rep";
  options.api = &primary_api;
  client::Clerk clerk(options);
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("work", "c1#1").ok());
  // Primary node is lost. The client reconnects to the backup.
  LocalQueueApi backup_api(backup_.get());
  client::ClerkOptions failover = options;
  failover.api = &backup_api;
  client::Clerk reborn(failover);
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->s_rid, "c1#1");  // The tag survived on the standby.
  EXPECT_EQ(cr->resumed_state, client::SessionState::kReqSent);
  // The request itself is there for a backup-side server to process.
  EXPECT_EQ(*backup_->Depth("q"), 1u);
}

TEST_F(ReplicationTest, DurableBackupRecoversReplicatedState) {
  env::MemEnv backup_env;
  RepositoryOptions backup_options;
  backup_options.env = &backup_env;
  backup_options.dir = "/backup";
  auto durable_backup =
      std::make_unique<QueueRepository>("backup2", backup_options);
  ASSERT_TRUE(durable_backup->Open().ok());

  RepositoryOptions primary_options;
  primary_options.replication_sink = [&durable_backup](const Slice& record) {
    return durable_backup->ApplyReplicatedRecord(record);
  };
  QueueRepository primary("primary2", primary_options);
  ASSERT_TRUE(primary.Open().ok());
  ASSERT_TRUE(primary.CreateQueue("q").ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "persist-me").ok());

  // Crash the backup node and recover it from its own WAL.
  durable_backup.reset();
  backup_env.SimulateCrash();
  QueueRepository recovered("backup2", backup_options);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(*recovered.Depth("q"), 1u);
  auto element = recovered.Dequeue(nullptr, "q");
  ASSERT_TRUE(element.ok());
  EXPECT_EQ(element->contents, "persist-me");
}

TEST_F(ReplicationTest, ChainedReplication) {
  auto tail = std::make_unique<QueueRepository>("tail");
  ASSERT_TRUE(tail->Open().ok());
  RepositoryOptions mid_options;
  mid_options.replication_sink = [&tail](const Slice& record) {
    return tail->ApplyReplicatedRecord(record);
  };
  auto mid = std::make_unique<QueueRepository>("mid", mid_options);
  ASSERT_TRUE(mid->Open().ok());
  RepositoryOptions head_options;
  head_options.replication_sink = [&mid](const Slice& record) {
    return mid->ApplyReplicatedRecord(record);
  };
  QueueRepository head("head", head_options);
  ASSERT_TRUE(head.Open().ok());

  ASSERT_TRUE(head.CreateQueue("q").ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "q", "all-the-way").ok());
  EXPECT_EQ(*mid->Depth("q"), 1u);
  EXPECT_EQ(*tail->Depth("q"), 1u);
}

TEST_F(ReplicationTest, SinkFailureSurfacesButLocalCommitStands) {
  RepositoryOptions options;
  options.replication_sink = [](const Slice&) {
    return Status::Unavailable("backup partitioned");
  };
  QueueRepository lonely("lonely", options);
  ASSERT_TRUE(lonely.Open().ok());
  // CreateQueue itself replicates; expect the surfaced error.
  Status s = lonely.CreateQueue("q");
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  // But the local effect stands (semi-synchronous).
  EXPECT_TRUE(lonely.QueueExists("q"));
  EXPECT_GE(lonely.replication_failure_count(), 1u);
}

TEST_F(ReplicationTest, ReplicationOverFaultyNetworkCountsFailures) {
  comm::Network net(55);
  auto backup = std::make_unique<QueueRepository>("net-backup");
  ASSERT_TRUE(backup->Open().ok());
  ASSERT_TRUE(net.RegisterEndpoint("backup", [&backup](const Slice& record,
                                                       std::string*) {
                   return backup->ApplyReplicatedRecord(record);
                 })
                  .ok());
  RepositoryOptions options;
  options.replication_sink = [&net](const Slice& record) {
    std::string reply;
    return net.Call("primary", "backup", record, &reply);
  };
  QueueRepository primary("net-primary", options);
  ASSERT_TRUE(primary.Open().ok());
  ASSERT_TRUE(primary.CreateQueue("q").ok());
  comm::LinkFaults faults;
  faults.drop_probability = 0.5;
  net.SetLinkFaults("primary", "backup", faults);
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (!primary.Enqueue(nullptr, "q", "x").ok()) ++failures;
  }
  EXPECT_GT(failures, 10);
  EXPECT_EQ(primary.replication_failure_count(),
            static_cast<uint64_t>(failures));
  // The backup applied exactly the records that got through (plus the
  // replicated CreateQueue).
  EXPECT_LT(*backup->Depth("q"), 100u);
  EXPECT_EQ(*primary.Depth("q"), 100u);
}

TEST_F(ReplicationTest, ShardedPrimaryReplicatesInApplyOrderPerQueue) {
  // With shards>1 the primary has one replication stream per shard;
  // the per-shard delivery tickets must still hand the sink each
  // queue's records in apply order, even under concurrent producers.
  auto backup = std::make_unique<QueueRepository>("sh-backup");
  ASSERT_TRUE(backup->Open().ok());
  RepositoryOptions options;
  options.shards = 4;
  options.replication_sink = [&backup](const Slice& record) {
    return backup->ApplyReplicatedRecord(record);
  };
  QueueRepository primary("sh-primary", options);
  ASSERT_TRUE(primary.Open().ok());
  ASSERT_EQ(primary.shard_count(), 4u);

  // One queue per shard, one producer thread per queue.
  std::vector<std::string> queues;
  for (size_t shard = 0; shard < 4; ++shard) {
    for (int i = 0;; ++i) {
      std::string name = "rq" + std::to_string(i);
      if (primary.shard_of(name) == shard) {
        queues.push_back(name);
        break;
      }
    }
    ASSERT_TRUE(primary.CreateQueue(queues.back()).ok());
  }
  constexpr int kPerQueue = 50;
  std::vector<std::thread> producers;
  for (const std::string& queue : queues) {
    producers.emplace_back([&primary, queue]() {
      for (int n = 0; n < kPerQueue; ++n) {
        ASSERT_TRUE(
            primary.Enqueue(nullptr, queue, std::to_string(n)).ok());
      }
    });
  }
  for (auto& thread : producers) thread.join();

  // The backup saw every record, and each queue's contents come back
  // in the exact order the primary committed them.
  for (const std::string& queue : queues) {
    ASSERT_EQ(*backup->Depth(queue), static_cast<size_t>(kPerQueue)) << queue;
    for (int n = 0; n < kPerQueue; ++n) {
      auto got = backup->Dequeue(nullptr, queue);
      ASSERT_TRUE(got.ok()) << queue << " #" << n;
      EXPECT_EQ(got->contents, std::to_string(n)) << queue;
    }
  }
}

// ---- Sequence-tracked apply (PR 9: networked shipping) --------------
// ApplyReplicatedRecord(record, seq) embeds the shipped sequence in
// the applied record, so the watermark is atomic with the effects and
// re-shipped records dedup instead of double-applying.

TEST_F(ReplicationTest, SeqTrackedApplyDedupsReshippedRecords) {
  auto standby = std::make_unique<QueueRepository>("standby");
  ASSERT_TRUE(standby->Open().ok());
  // Capture the primary's records instead of applying them directly.
  std::vector<std::string> shipped;
  RepositoryOptions options;
  options.replication_sink = [&shipped](const Slice& record) {
    shipped.push_back(record.ToString());
    return Status::OK();
  };
  QueueRepository head("head-seq", options);
  ASSERT_TRUE(head.Open().ok());
  ASSERT_TRUE(head.CreateQueue("q").ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "q", "a").ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "q", "b").ok());
  ASSERT_EQ(shipped.size(), 3u);

  for (size_t i = 0; i < shipped.size(); ++i) {
    ASSERT_TRUE(
        standby->ApplyReplicatedRecord(Slice(shipped[i]), i + 1).ok());
  }
  EXPECT_EQ(standby->applied_repl_seq(), 3u);
  EXPECT_EQ(*standby->Depth("q"), 2u);

  // A sender that lost its ack re-ships everything: at-or-below the
  // watermark is a silent no-op, not a duplicate apply.
  for (size_t i = 0; i < shipped.size(); ++i) {
    ASSERT_TRUE(
        standby->ApplyReplicatedRecord(Slice(shipped[i]), i + 1).ok());
  }
  EXPECT_EQ(standby->applied_repl_seq(), 3u);
  EXPECT_EQ(*standby->Depth("q"), 2u);
}

TEST_F(ReplicationTest, AppliedWatermarkSurvivesCrashRecovery) {
  env::MemEnv env;
  RepositoryOptions options;
  options.env = &env;
  options.dir = "/standby";
  {
    QueueRepository standby("standby-wm", options);
    ASSERT_TRUE(standby.Open().ok());
    ASSERT_TRUE(standby.CommitReplWatermark(42).ok());
    EXPECT_EQ(standby.applied_repl_seq(), 42u);
  }
  env.SimulateCrash();
  QueueRepository recovered("standby-wm", options);
  ASSERT_TRUE(recovered.Open().ok());
  // The watermark rode the WAL record — the rebooted backup resumes
  // from 43, not from a reseed.
  EXPECT_EQ(recovered.applied_repl_seq(), 42u);
}

TEST_F(ReplicationTest, WatermarkSurvivesCheckpointedRecovery) {
  env::MemEnv env;
  RepositoryOptions options;
  options.env = &env;
  options.dir = "/standby-ckpt";
  {
    QueueRepository standby("standby-ckpt", options);
    ASSERT_TRUE(standby.Open().ok());
    ASSERT_TRUE(standby.CreateQueue("q").ok());
    ASSERT_TRUE(standby.CommitReplWatermark(7).ok());
    ASSERT_TRUE(standby.Checkpoint().ok());
    ASSERT_TRUE(standby.CommitReplWatermark(9).ok());
  }
  env.SimulateCrash();
  QueueRepository recovered("standby-ckpt", options);
  ASSERT_TRUE(recovered.Open().ok());
  // Checkpoint slice carries 7; the tail WAL replays up to 9.
  EXPECT_EQ(recovered.applied_repl_seq(), 9u);
}

TEST_F(ReplicationTest, CaptureReplicaSnapshotSeedsAnEquivalentStandby) {
  // Build a primary with every kind of replicated state: elements with
  // priorities, a stable registrant with a remembered op, a stopped
  // queue, and an armed trigger.
  QueueRepository head("snap-head");
  ASSERT_TRUE(head.Open().ok());
  ASSERT_TRUE(head.CreateQueue("work").ok());
  ASSERT_TRUE(head.CreateQueue("stopped").ok());
  ASSERT_TRUE(head.CreateQueue("join").ok());
  auto e1 = head.Enqueue(nullptr, "work", "first", 5);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "work", "second").ok());
  ASSERT_TRUE(head.Register("work", "tagger", /*stable=*/true).ok());
  ASSERT_TRUE(
      head.Enqueue(nullptr, "work", "tagged", 0, "tagger", "rid#1").ok());
  ASSERT_TRUE(head.StopQueue("stopped").ok());
  TriggerSpec trigger;
  trigger.watched_queue = "work";
  trigger.remaining = 100;
  trigger.target_queue = "join";
  trigger.contents = "go";
  ASSERT_TRUE(head.SetTrigger(trigger).ok());

  bool barrier_ran = false;
  std::vector<std::string> records;
  ASSERT_TRUE(head.CaptureReplicaSnapshot([&] { barrier_ran = true; },
                                          &records)
                  .ok());
  EXPECT_TRUE(barrier_ran);
  ASSERT_FALSE(records.empty());

  QueueRepository standby("snap-standby");
  ASSERT_TRUE(standby.Open().ok());
  for (const std::string& record : records) {
    ASSERT_TRUE(standby.ApplyReplicatedRecord(Slice(record)).ok());
  }
  ASSERT_TRUE(standby.CommitReplWatermark(17).ok());

  EXPECT_EQ(standby.applied_repl_seq(), 17u);
  EXPECT_EQ(*standby.Depth("work"), 3u);
  EXPECT_TRUE(standby.QueueExists("stopped"));
  auto mirrored = standby.Read("work", *e1);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored->contents, "first");
  EXPECT_EQ(mirrored->priority, 5u);
  // The stable registrant's remembered tag crossed over — a clerk
  // failing over to the seeded standby resynchronizes exactly as
  // ClientFailsOverWithFullResync proved for record-at-a-time
  // replication.
  auto reg = standby.Register("work", "tagger", /*stable=*/true);
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(reg->last_tag, "rid#1");
  // A stopped queue stays stopped on the standby.
  EXPECT_TRUE(standby.Enqueue(nullptr, "stopped", "x")
                  .status()
                  .IsFailedPrecondition());
  // Eids never regress: new standby allocations run past the
  // primary's watermark.
  auto fresh = standby.Enqueue(nullptr, "work", "new");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, *e1);
}

// ---- Hostile records (satellite: the applier's trust boundary) ------
// A backup's ApplyReplicatedRecord faces the network: truncated,
// corrupted, duplicated, or reordered records must yield a clean
// status — never a crash, never a half-applied record.

TEST_F(ReplicationTest, TruncatedRecordsRejectWithoutPartialApply) {
  auto standby = std::make_unique<QueueRepository>("trunc");
  ASSERT_TRUE(standby->Open().ok());
  std::vector<std::string> shipped;
  RepositoryOptions options;
  options.replication_sink = [&shipped](const Slice& record) {
    shipped.push_back(record.ToString());
    return Status::OK();
  };
  QueueRepository head("trunc-head", options);
  ASSERT_TRUE(head.Open().ok());
  ASSERT_TRUE(head.CreateQueue("q").ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "q", "payload", 3).ok());
  ASSERT_EQ(shipped.size(), 2u);

  // Seed the queue, then try every truncation of the enqueue record.
  ASSERT_TRUE(standby->ApplyReplicatedRecord(Slice(shipped[0]), 1).ok());
  const std::string& enq = shipped[1];
  for (size_t len = 0; len < enq.size(); ++len) {
    Status s =
        standby->ApplyReplicatedRecord(Slice(enq.data(), len), 2);
    EXPECT_FALSE(s.ok()) << "truncation at " << len << " applied";
    // Nothing half-applied: depth unchanged, watermark unchanged.
    EXPECT_EQ(*standby->Depth("q"), 0u) << "truncation at " << len;
    EXPECT_EQ(standby->applied_repl_seq(), 1u) << "truncation at " << len;
  }
  // The intact record still applies afterwards.
  ASSERT_TRUE(standby->ApplyReplicatedRecord(Slice(enq), 2).ok());
  EXPECT_EQ(*standby->Depth("q"), 1u);
  EXPECT_EQ(standby->applied_repl_seq(), 2u);
}

TEST_F(ReplicationTest, BitFlippedRecordsNeverCrashTheApplier) {
  // Flip every bit of a small record. Some flips still decode (a
  // changed payload byte is indistinguishable from a different
  // payload — the wire CRC exists to catch those in transit); the
  // applier's own contract is that *no* flip crashes it and every
  // rejected flip leaves state untouched.
  std::vector<std::string> shipped;
  RepositoryOptions options;
  options.replication_sink = [&shipped](const Slice& record) {
    shipped.push_back(record.ToString());
    return Status::OK();
  };
  QueueRepository head("flip-head", options);
  ASSERT_TRUE(head.Open().ok());
  ASSERT_TRUE(head.CreateQueue("q").ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "q", "x").ok());
  const std::string enq = shipped[1];

  for (size_t bit = 0; bit < enq.size() * 8; ++bit) {
    auto standby = std::make_unique<QueueRepository>("flip");
    ASSERT_TRUE(standby->Open().ok());
    ASSERT_TRUE(standby->ApplyReplicatedRecord(Slice(shipped[0]), 1).ok());
    std::string mutated = enq;
    mutated[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutated[bit / 8]) ^ (1u << (bit % 8)));
    Status s = standby->ApplyReplicatedRecord(Slice(mutated), 2);
    if (!s.ok()) {
      EXPECT_EQ(*standby->Depth("q"), 0u) << "bit " << bit;
      EXPECT_EQ(standby->applied_repl_seq(), 1u) << "bit " << bit;
    }
  }
}

TEST_F(ReplicationTest, StaleAndReorderedSequencesDedupNotDiverge) {
  std::vector<std::string> shipped;
  RepositoryOptions options;
  options.replication_sink = [&shipped](const Slice& record) {
    shipped.push_back(record.ToString());
    return Status::OK();
  };
  QueueRepository head("reorder-head", options);
  ASSERT_TRUE(head.Open().ok());
  ASSERT_TRUE(head.CreateQueue("q").ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "q", "a").ok());
  ASSERT_TRUE(head.Enqueue(nullptr, "q", "b").ok());
  ASSERT_EQ(shipped.size(), 3u);

  auto standby = std::make_unique<QueueRepository>("reorder");
  ASSERT_TRUE(standby->Open().ok());
  for (size_t i = 0; i < shipped.size(); ++i) {
    ASSERT_TRUE(
        standby->ApplyReplicatedRecord(Slice(shipped[i]), i + 1).ok());
  }
  // An old record arriving late (seq below watermark) is dropped even
  // though its bytes are perfectly valid.
  ASSERT_TRUE(standby->ApplyReplicatedRecord(Slice(shipped[1]), 2).ok());
  EXPECT_EQ(*standby->Depth("q"), 2u);
  EXPECT_EQ(standby->applied_repl_seq(), 3u);
}

}  // namespace
}  // namespace rrq::queue
