#include "net/io_backend.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>

#include "net/tcp_transport.h"

namespace rrq::net {
namespace {

// Skips the calling test when the host kernel cannot run the io_uring
// backend (probe logs the reason once). Tests that compare uring
// against epoll need real uring, not the fallback ladder.
#define SKIP_WITHOUT_URING()                                            \
  do {                                                                  \
    std::string why_;                                                   \
    if (!UringAvailable(&why_)) {                                       \
      GTEST_SKIP() << "io_uring unavailable on this host: " << why_;    \
    }                                                                   \
  } while (0)

TcpChannelOptions ChannelTo(uint16_t port, IoBackendKind backend) {
  TcpChannelOptions options;
  options.port = port;
  options.backend = backend;
  options.max_connect_attempts = 3;
  options.backoff_initial_micros = 1'000;
  return options;
}

TEST(IoBackendTest, ParseKnownNames) {
  IoBackendKind kind = IoBackendKind::kEpoll;
  EXPECT_TRUE(ParseIoBackend("auto", &kind));
  EXPECT_EQ(kind, IoBackendKind::kAuto);
  EXPECT_TRUE(ParseIoBackend("epoll", &kind));
  EXPECT_EQ(kind, IoBackendKind::kEpoll);
  EXPECT_TRUE(ParseIoBackend("uring", &kind));
  EXPECT_EQ(kind, IoBackendKind::kUring);
  EXPECT_TRUE(ParseIoBackend("io_uring", &kind));
  EXPECT_EQ(kind, IoBackendKind::kUring);
  EXPECT_FALSE(ParseIoBackend("kqueue", &kind));
  EXPECT_FALSE(ParseIoBackend("", &kind));
}

TEST(IoBackendTest, BackendNames) {
  EXPECT_STREQ(IoBackendName(IoBackendKind::kAuto), "auto");
  EXPECT_STREQ(IoBackendName(IoBackendKind::kEpoll), "epoll");
  EXPECT_STREQ(IoBackendName(IoBackendKind::kUring), "uring");
}

TEST(IoBackendTest, ProbeIsStable) {
  std::string r1;
  std::string r2;
  const bool a = UringAvailable(&r1);
  const bool b = UringAvailable(&r2);
  EXPECT_EQ(a, b);
  if (!a) {
    EXPECT_FALSE(r1.empty());
    EXPECT_EQ(r1, r2);
  }
}

TEST(IoBackendTest, ResolveEpollIsPassThrough) {
  std::string note = "unset";
  EXPECT_EQ(ResolveIoBackend(IoBackendKind::kEpoll, &note),
            IoBackendKind::kEpoll);
  EXPECT_TRUE(note.empty());
}

TEST(IoBackendTest, ResolveAutoMatchesProbe) {
  std::string note;
  const IoBackendKind resolved = ResolveIoBackend(IoBackendKind::kAuto, &note);
  if (UringAvailable(nullptr)) {
    EXPECT_EQ(resolved, IoBackendKind::kUring);
  } else {
    EXPECT_EQ(resolved, IoBackendKind::kEpoll);
    EXPECT_FALSE(note.empty());  // degrade is always explained
  }
}

TEST(IoBackendTest, ServerReportsEpollBackend) {
  TcpServerOptions options;
  options.backend = IoBackendKind::kEpoll;
  TcpServer server(options, [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_STREQ(server.io_backend_name(), "epoll");

  TcpChannel channel(ChannelTo(server.port(), IoBackendKind::kEpoll));
  std::string reply;
  ASSERT_TRUE(channel.Call("x", &reply).ok());
  EXPECT_STREQ(channel.io_backend_name(), "poll");

  const IoLoopStats stats = server.io_stats();
  EXPECT_STREQ(stats.backend, "epoll");
  EXPECT_GT(stats.waits, 0u);
  EXPECT_GT(stats.recvs, 0u);
  EXPECT_EQ(stats.enters, 0u);  // no ring syscalls on the epoll path
  EXPECT_GT(stats.io_syscalls(), 0u);
}

TEST(IoBackendTest, ServerReportsUringBackend) {
  SKIP_WITHOUT_URING();
  TcpServerOptions options;
  options.backend = IoBackendKind::kUring;
  TcpServer server(options, [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_STREQ(server.io_backend_name(), "uring");

  TcpChannel channel(ChannelTo(server.port(), IoBackendKind::kUring));
  std::string reply;
  ASSERT_TRUE(channel.Call("x", &reply).ok());
  EXPECT_STREQ(channel.io_backend_name(), "uring");

  const IoLoopStats stats = server.io_stats();
  EXPECT_STREQ(stats.backend, "uring");
  EXPECT_GT(stats.enters, 0u);
  EXPECT_GT(stats.sqes, 0u);
  EXPECT_GT(stats.cqes, 0u);
  // Inbound bytes arrive as provided-buffer completions, never via a
  // loop-thread recv syscall.
  EXPECT_EQ(stats.recvs, 0u);
}

TEST(IoBackendTest, ForcedUringNeverFailsStartup) {
  // Even `--net-backend uring` on a kernel without io_uring must come
  // up (on epoll, with a logged reason) rather than refuse to start.
  TcpServerOptions options;
  options.backend = IoBackendKind::kUring;
  TcpServer server(options, [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());
  const bool have_uring = UringAvailable(nullptr);
  EXPECT_STREQ(server.io_backend_name(), have_uring ? "uring" : "epoll");

  TcpChannel channel(ChannelTo(server.port(), IoBackendKind::kUring));
  std::string reply;
  ASSERT_TRUE(channel.Call("x", &reply).ok());
  EXPECT_STREQ(channel.io_backend_name(), have_uring ? "uring" : "poll");
}

// Runs `rounds` pipelined 1x8 bursts against a fresh server on
// `backend` and returns the combined client+server loop-syscall count
// across all of them.
uint64_t BurstSyscalls(IoBackendKind backend, int rounds) {
  TcpServerOptions options;
  options.backend = backend;
  TcpServer server(options, [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  EXPECT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port(), backend));
  // Prime the connection so the bursts measure steady-state I/O, not
  // connect + v2 negotiation.
  std::string reply;
  EXPECT_TRUE(channel.Call("prime", &reply).ok());

  const uint64_t before =
      server.io_stats().io_syscalls() + channel.io_stats().io_syscalls();

  constexpr int kBurst = 8;
  std::mutex mu;
  std::condition_variable cv;
  for (int round = 0; round < rounds; ++round) {
    int done = 0;
    for (int i = 0; i < kBurst; ++i) {
      channel.CallAsync("burst", [&](Status s, std::string /*reply*/) {
        EXPECT_TRUE(s.ok()) << s.ToString();
        std::lock_guard<std::mutex> lock(mu);
        ++done;
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kBurst; });
  }

  return server.io_stats().io_syscalls() + channel.io_stats().io_syscalls() -
         before;
}

TEST(IoBackendTest, UringBurstUsesStrictlyFewerSyscalls) {
  SKIP_WITHOUT_URING();
  // Batched submission is the point of the backend: pipelined 1x8
  // bursts must cost strictly fewer loop syscalls on uring (a couple
  // of enters per burst) than the readiness loops spend on epoll/poll
  // (a send per call plus wait/recv pairs per wakeup). A single burst
  // is noisy — a lucky scheduling run can coalesce an entire epoll
  // burst — so compare totals across enough rounds that the
  // structural gap dominates the jitter.
  constexpr int kRounds = 10;
  const uint64_t epoll_total = BurstSyscalls(IoBackendKind::kEpoll, kRounds);
  const uint64_t uring_total = BurstSyscalls(IoBackendKind::kUring, kRounds);
  EXPECT_LT(uring_total, epoll_total)
      << "uring=" << uring_total << " epoll=" << epoll_total;
}

}  // namespace
}  // namespace rrq::net
