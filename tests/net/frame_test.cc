#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>

#include "util/coding.h"
#include "util/random.h"

namespace rrq::net {
namespace {

TEST(FrameTest, RoundTripSingleFrame) {
  std::string wire;
  AppendFrame(&wire, "hello queue");
  ASSERT_EQ(wire.size(), kFrameHeaderSize + 11);

  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  ASSERT_TRUE(reader.Next(&payload).ok());
  EXPECT_EQ(payload, "hello queue");
  EXPECT_TRUE(reader.Next(&payload).IsNotFound());
  EXPECT_TRUE(reader.AtEnd().ok());
}

TEST(FrameTest, RoundTripEmptyPayload) {
  std::string wire;
  AppendFrame(&wire, "");
  FrameReader reader;
  reader.Feed(wire);
  std::string payload = "sentinel";
  ASSERT_TRUE(reader.Next(&payload).ok());
  EXPECT_TRUE(payload.empty());
  EXPECT_TRUE(reader.AtEnd().ok());
}

TEST(FrameTest, ManyFramesByteAtATime) {
  std::string wire;
  std::vector<std::string> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(std::string(i * 7, static_cast<char>('a' + i)));
    AppendFrame(&wire, sent.back());
  }

  FrameReader reader;
  std::vector<std::string> received;
  for (char c : wire) {
    reader.Feed(Slice(&c, 1));
    std::string payload;
    Status s = reader.Next(&payload);
    if (s.ok()) {
      received.push_back(payload);
    } else {
      ASSERT_TRUE(s.IsNotFound()) << s.ToString();
    }
  }
  EXPECT_EQ(received, sent);
  EXPECT_TRUE(reader.AtEnd().ok());
}

TEST(FrameTest, IncompleteFrameIsNotFoundThenTornAtEnd) {
  std::string wire;
  AppendFrame(&wire, "partially delivered");

  FrameReader reader;
  reader.Feed(Slice(wire.data(), wire.size() - 1));
  std::string payload;
  EXPECT_TRUE(reader.Next(&payload).IsNotFound());
  // The peer hangs up here: a torn frame.
  EXPECT_TRUE(reader.AtEnd().IsCorruption());
}

TEST(FrameTest, BitFlipInPayloadIsCorruption) {
  std::string wire;
  AppendFrame(&wire, "checksummed payload");
  wire[kFrameHeaderSize + 3] ^= 0x40;

  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  EXPECT_TRUE(reader.Next(&payload).IsCorruption());
}

TEST(FrameTest, BitFlipInCrcIsCorruption) {
  std::string wire;
  AppendFrame(&wire, "checksummed payload");
  wire[5] ^= 0x01;  // inside the masked-CRC field

  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  EXPECT_TRUE(reader.Next(&payload).IsCorruption());
}

TEST(FrameTest, OversizedLengthIsCorruptionWithoutAllocation) {
  std::string wire;
  util::PutFixed32(&wire, kMaxFramePayload + 1);
  util::PutFixed32(&wire, 0xdeadbeef);

  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  EXPECT_TRUE(reader.Next(&payload).IsCorruption());
}

TEST(FrameTest, PoisonedReaderStaysPoisoned) {
  std::string bad;
  AppendFrame(&bad, "frame one");
  bad[kFrameHeaderSize] ^= 0xff;

  FrameReader reader;
  reader.Feed(bad);
  std::string payload;
  ASSERT_TRUE(reader.Next(&payload).IsCorruption());

  // Even a perfectly good frame after the bad one must not decode: the
  // stream cannot be resynchronized.
  std::string good;
  AppendFrame(&good, "frame two");
  reader.Feed(good);
  EXPECT_TRUE(reader.Next(&payload).IsCorruption());
  EXPECT_TRUE(reader.AtEnd().IsCorruption());
}

TEST(FrameTest, RandomGarbageNeverDecodes) {
  util::Rng rng(301);
  int decoded = 0;
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const int len = 1 + rng.Uniform(64);
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    FrameReader reader;
    reader.Feed(garbage);
    std::string payload;
    Status s = reader.Next(&payload);
    // A random 4-byte CRC match is a ~2^-32 event; treat any decode as
    // a bug in practice.
    if (s.ok()) ++decoded;
    EXPECT_TRUE(s.ok() || s.IsNotFound() || s.IsCorruption()) << s.ToString();
  }
  EXPECT_EQ(decoded, 0);
}

TEST(FrameTest, StatusCodecRoundTrip) {
  for (const Status& original :
       {Status::OK(), Status::NotFound("nf"), Status::Unavailable("net down"),
        Status::Corruption("bad bytes")}) {
    std::string wire;
    EncodeStatus(original, &wire);
    Slice input(wire);
    Status decoded = DecodeStatus(&input);
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_TRUE(input.empty());
  }
}

TEST(FrameTest, StatusCodecRejectsInvalidCode) {
  std::string wire;
  util::PutVarint32(&wire, 200);  // out of StatusCode range
  util::PutLengthPrefixed(&wire, "msg");
  Slice input(wire);
  EXPECT_TRUE(DecodeStatus(&input).IsCorruption());
}

}  // namespace
}  // namespace rrq::net
