// Robustness of the byte-protocol trust boundary: truncated,
// bit-flipped, and random-garbage request buffers must come back as
// clean errors (Corruption / InvalidArgument) or decode by luck into a
// harmless op — never crash, hang, or out-of-bounds read. Every fuzz
// input runs against a fresh volatile repository with no queues, so
// even a buffer that parses as a Dequeue returns NotFound immediately
// instead of blocking on a wait timeout decoded from garbage.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/io_backend.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "net/wire.h"
#include "queue/queue_repository.h"
#include "util/coding.h"
#include "util/random.h"

namespace rrq::net {
namespace {

// Dispatches one buffer against a one-shot volatile repository.
Status FuzzOne(const std::string& buffer) {
  queue::QueueRepository repo("fuzz", {});
  Status open = repo.Open();
  EXPECT_TRUE(open.ok()) << open.ToString();
  QueueServiceDispatcher dispatcher(&repo);
  std::string reply;
  return dispatcher.Handle(buffer, &reply);
}

bool IsAcceptableFuzzOutcome(const Status& s) {
  // OK means the buffer happened to parse as a well-formed request (the
  // app-level status rides inside the reply). Anything else must be a
  // clean decode rejection.
  return s.ok() || s.IsCorruption() || s.IsInvalidArgument();
}

// One well-formed request per op, the corpus truncation/flips start from.
std::vector<std::string> ValidRequests() {
  std::vector<std::string> corpus;
  {
    std::string r;
    r.push_back(1);  // Register
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "clerk-1");
    r.push_back(1);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(2);  // Deregister
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "clerk-1");
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(3);  // Enqueue
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "request body");
    util::PutVarint32(&r, 7);
    util::PutLengthPrefixed(&r, "clerk-1");
    util::PutLengthPrefixed(&r, "tag-1");
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(4);  // Dequeue (timeout 0: never waits even if q exists)
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "clerk-1");
    util::PutLengthPrefixed(&r, "tag-2");
    util::PutFixed64(&r, 0);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(5);  // Read
    util::PutLengthPrefixed(&r, "q");
    util::PutFixed64(&r, 42);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(6);  // Kill
    util::PutLengthPrefixed(&r, "q");
    util::PutFixed64(&r, 42);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(7);  // CreateQueue
    util::PutLengthPrefixed(&r, "q");
    EncodeQueueOptions({}, &r);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(8);  // Depth
    util::PutLengthPrefixed(&r, "q");
    corpus.push_back(r);
  }
  return corpus;
}

TEST(ProtocolFuzzTest, ValidCorpusDispatches) {
  for (const std::string& request : ValidRequests()) {
    Status s = FuzzOne(request);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

TEST(ProtocolFuzzTest, EveryProperPrefixIsRejected) {
  for (const std::string& request : ValidRequests()) {
    for (size_t len = 0; len < request.size(); ++len) {
      Status s = FuzzOne(request.substr(0, len));
      EXPECT_TRUE(s.IsCorruption() || s.IsInvalidArgument())
          << "prefix of length " << len << " of op "
          << static_cast<int>(request[0]) << ": " << s.ToString();
    }
  }
}

TEST(ProtocolFuzzTest, SingleBitFlipsNeverCrash) {
  for (const std::string& request : ValidRequests()) {
    for (size_t byte = 0; byte < request.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = request;
        mutated[byte] ^= static_cast<char>(1u << bit);
        Status s = FuzzOne(mutated);
        EXPECT_TRUE(IsAcceptableFuzzOutcome(s))
            << "op " << static_cast<int>(request[0]) << " byte " << byte
            << " bit " << bit << ": " << s.ToString();
      }
    }
  }
}

TEST(ProtocolFuzzTest, RandomGarbageAlwaysTerminatesCleanly) {
  util::Rng rng(0xfeed);
  std::set<StatusCode> seen;
  for (int round = 0; round < 2000; ++round) {
    std::string garbage;
    const size_t len = rng.Uniform(48);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Status s = FuzzOne(garbage);
    ASSERT_TRUE(IsAcceptableFuzzOutcome(s))
        << "round " << round << ": " << s.ToString();
    seen.insert(s.code());
  }
  // The generator must actually exercise the rejection paths.
  EXPECT_TRUE(seen.count(StatusCode::kInvalidArgument) > 0 ||
              seen.count(StatusCode::kCorruption) > 0);
}

TEST(ProtocolFuzzTest, FrameReaderSurvivesRandomChunkedGarbage) {
  util::Rng rng(0xcafe);
  for (int round = 0; round < 200; ++round) {
    FrameReader reader;
    bool poisoned = false;
    for (int chunk = 0; chunk < 8; ++chunk) {
      std::string bytes;
      const size_t len = 1 + rng.Uniform(32);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<char>(rng.Uniform(256)));
      }
      reader.Feed(bytes);
      std::string payload;
      Status s = reader.Next(&payload);
      ASSERT_TRUE(s.ok() || s.IsNotFound() || s.IsCorruption())
          << s.ToString();
      if (s.IsCorruption()) poisoned = true;
      if (poisoned) {
        // Once poisoned, always poisoned.
        EXPECT_TRUE(reader.Next(&payload).IsCorruption());
      }
    }
  }
}

TEST(ProtocolFuzzTest, TruncatedRepliesAreRejectedByTheClientCodec) {
  // Client-side decoders face the same trust boundary: a reply cut
  // short mid-field must error, not read past the end.
  queue::Element element;
  element.eid = 9;
  element.contents = "hello";
  std::string encoded;
  EncodeElement(element, &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    Slice input(encoded.data(), len);
    queue::Element decoded;
    EXPECT_FALSE(DecodeElement(&input, &decoded).ok()) << "len " << len;
  }

  std::string options_encoded;
  EncodeQueueOptions({}, &options_encoded);
  for (size_t len = 0; len < options_encoded.size(); ++len) {
    Slice input(options_encoded.data(), len);
    queue::QueueOptions decoded;
    EXPECT_FALSE(DecodeQueueOptions(&input, &decoded).ok()) << "len " << len;
  }
}

// ---- Wire v2 correlation-id fuzzing ---------------------------------
//
// Both peers of the multiplexed protocol face a trust boundary at the
// correlation id: a corrupt, duplicate, or unknown id must never
// crash, hang, or cross-wire replies. Framing violations poison the
// one connection (and only it); an unknown-but-well-formed id is
// discarded per the demux rules.

int ConnectTo(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendRaw(int fd, const std::string& bytes) {
  return send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(bytes.size());
}

// Reads one frame off `fd`, feeding `reader` as needed. Returns false
// on EOF, socket error, or stream corruption.
bool ReadOneFrame(int fd, FrameReader* reader, std::string* frame) {
  while (true) {
    Status s = reader->Next(frame);
    if (s.ok()) return true;
    if (!s.IsNotFound()) return false;
    char buf[4096];
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    reader->Feed(Slice(buf, static_cast<size_t>(n)));
  }
}

// True when the peer closed the connection (recv returns 0 or reset).
bool WaitForClose(int fd) {
  char buf[256];
  for (int i = 0; i < 200; ++i) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    if (n < 0) return errno == ECONNRESET || errno == EPIPE;
  }
  return false;
}

std::string MakeHelloFrame(uint32_t version) {
  std::string payload;
  AppendHelloPayload(&payload, version);
  std::string wire;
  AppendFrame(&wire, payload);
  return wire;
}

std::string MakeV2CallFrame(uint64_t corr_id, const std::string& body) {
  std::string payload(1, static_cast<char>(kMsgCallV2));
  util::PutVarint64(&payload, corr_id);
  payload += body;
  std::string wire;
  AppendFrame(&wire, payload);
  return wire;
}

std::string MakeV2ReplyFrame(uint64_t corr_id, const Status& s,
                             const std::string& body) {
  std::string payload(1, static_cast<char>(kMsgReplyV2));
  util::PutVarint64(&payload, corr_id);
  EncodeStatus(s, &payload);
  payload += body;
  std::string wire;
  AppendFrame(&wire, payload);
  return wire;
}

// Transport-facing fuzz cases run against both event-loop backends —
// framing violations and demux rules must hold whether the bytes
// arrive via epoll readiness recv or a uring provided-buffer CQE. The
// uring row skips (with the probe's reason) where the kernel cannot
// run it.
class ProtocolFuzzTransportTest
    : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    std::string why;
    if (GetParam() == IoBackendKind::kUring && !UringAvailable(&why)) {
      GTEST_SKIP() << "io_uring unavailable on this host: " << why;
    }
  }

  TcpServerOptions ServerOpts() const {
    TcpServerOptions options;
    options.backend = GetParam();
    return options;
  }

  TcpChannelOptions FuzzChannelTo(uint16_t port) const {
    TcpChannelOptions options;
    options.port = port;
    options.backend = GetParam();
    options.max_connect_attempts = 5;
    options.backoff_initial_micros = 1'000;
    options.call_timeout_micros = 2'000'000;
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, ProtocolFuzzTransportTest,
    ::testing::Values(IoBackendKind::kEpoll, IoBackendKind::kUring),
    [](const ::testing::TestParamInfo<IoBackendKind>& info) {
      return std::string(IoBackendName(info.param));
    });

TEST_P(ProtocolFuzzTransportTest, ServerDropsCorruptAndUnknownCorrelationFrames) {
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  // A kMsgCallV2 frame whose correlation varint never terminates.
  {
    const int fd = ConnectTo(server.port());
    ASSERT_GE(fd, 0);
    std::string payload(1, static_cast<char>(kMsgCallV2));
    payload.append(10, static_cast<char>(0x80));
    std::string wire;
    AppendFrame(&wire, payload);
    ASSERT_TRUE(SendRaw(fd, wire));
    EXPECT_TRUE(WaitForClose(fd));
    close(fd);
  }
  // An unknown frame kind.
  {
    const int fd = ConnectTo(server.port());
    ASSERT_GE(fd, 0);
    std::string payload(1, static_cast<char>(9));
    payload += "mystery";
    std::string wire;
    AppendFrame(&wire, payload);
    ASSERT_TRUE(SendRaw(fd, wire));
    EXPECT_TRUE(WaitForClose(fd));
    close(fd);
  }
  // A second hello after the handshake already completed.
  {
    const int fd = ConnectTo(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendRaw(fd, MakeHelloFrame(kProtocolV2)));
    FrameReader reader;
    std::string frame;
    ASSERT_TRUE(ReadOneFrame(fd, &reader, &frame));  // Server's hello.
    ASSERT_TRUE(SendRaw(fd, MakeHelloFrame(kProtocolV2)));
    EXPECT_TRUE(WaitForClose(fd));
    close(fd);
  }
  EXPECT_GE(server.protocol_errors(), 3u);

  // None of it hurt well-behaved clients.
  TcpChannelOptions options;
  options.port = server.port();
  options.backend = GetParam();
  TcpChannel channel(options);
  std::string reply;
  ASSERT_TRUE(channel.Call("fine", &reply).ok());
  EXPECT_EQ(reply, "fine");
}

TEST_P(ProtocolFuzzTransportTest, ServerAnswersDuplicateCorrelationIdsIndependently) {
  // The server does not police id uniqueness — ids are client
  // bookkeeping. Two calls with the same id get two replies carrying
  // that id, and the connection stays healthy.
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign("r:" + request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendRaw(fd, MakeHelloFrame(kProtocolV2)));
  FrameReader reader;
  std::string frame;
  ASSERT_TRUE(ReadOneFrame(fd, &reader, &frame));
  ASSERT_FALSE(frame.empty());
  ASSERT_EQ(static_cast<unsigned char>(frame[0]), kMsgHello);

  ASSERT_TRUE(SendRaw(fd, MakeV2CallFrame(7, "a")));
  ASSERT_TRUE(SendRaw(fd, MakeV2CallFrame(7, "b")));
  std::set<std::string> bodies;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(ReadOneFrame(fd, &reader, &frame));
    Slice input(frame);
    ASSERT_FALSE(input.empty());
    ASSERT_EQ(static_cast<unsigned char>(input[0]), kMsgReplyV2);
    input.remove_prefix(1);
    uint64_t id = 0;
    ASSERT_TRUE(util::GetVarint64(&input, &id).ok());
    EXPECT_EQ(id, 7u);
    ASSERT_TRUE(DecodeStatus(&input).ok());
    bodies.insert(input.ToString());
  }
  EXPECT_EQ(bodies, (std::set<std::string>{"r:a", "r:b"}));
  close(fd);
}

// A scripted v2 peer for client-side reply fuzzing: completes the
// hello handshake, then answers each call with whatever raw bytes the
// script produces for that call's correlation id.
class ScriptedV2Server {
 public:
  using Script = std::function<std::string(uint64_t corr_id)>;

  explicit ScriptedV2Server(Script script) : script_(std::move(script)) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    listen(listen_fd_, 8);
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Run(); });
  }

  ~ScriptedV2Server() {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  void Run() {
    while (true) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      Serve(fd);
      close(fd);
    }
  }

  void Serve(int fd) {
    FrameReader reader;
    std::string frame;
    bool hello_done = false;
    while (ReadOneFrame(fd, &reader, &frame)) {
      if (frame.empty()) return;
      if (!hello_done) {
        if (static_cast<unsigned char>(frame[0]) != kMsgHello) return;
        if (!SendRaw(fd, MakeHelloFrame(kProtocolV2))) return;
        hello_done = true;
        continue;
      }
      if (static_cast<unsigned char>(frame[0]) != kMsgCallV2) return;
      Slice input(frame);
      input.remove_prefix(1);
      uint64_t id = 0;
      if (!util::GetVarint64(&input, &id).ok()) return;
      const std::string out = script_(id);
      if (!out.empty() && !SendRaw(fd, out)) return;
    }
  }

  Script script_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST_P(ProtocolFuzzTransportTest, ClientDiscardsUnknownCorrelationIdReplies) {
  ScriptedV2Server server([](uint64_t id) {
    // A ghost reply for an id that was never issued, then the real one.
    return MakeV2ReplyFrame(id + 1'000'000, Status::OK(), "ghost") +
           MakeV2ReplyFrame(id, Status::OK(), "real");
  });

  TcpChannel channel(FuzzChannelTo(server.port()));
  std::string reply;
  ASSERT_TRUE(channel.Call("x", &reply).ok());
  EXPECT_EQ(reply, "real");
  EXPECT_EQ(channel.late_replies(), 1u);
  EXPECT_EQ(channel.connects(), 1u);
}

TEST_P(ProtocolFuzzTransportTest, ClientIgnoresDuplicateReplies) {
  ScriptedV2Server server([](uint64_t id) {
    return MakeV2ReplyFrame(id, Status::OK(), "first") +
           MakeV2ReplyFrame(id, Status::OK(), "dup");
  });

  TcpChannel channel(FuzzChannelTo(server.port()));
  std::string reply;
  ASSERT_TRUE(channel.Call("x", &reply).ok());
  EXPECT_EQ(reply, "first");
  // The duplicate lands as an unknown id (the call is already gone)
  // and is dropped without poisoning the connection.
  for (int i = 0; i < 200 && channel.late_replies() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(channel.late_replies(), 1u);
  ASSERT_TRUE(channel.Call("y", &reply).ok());
  EXPECT_EQ(reply, "first");
  EXPECT_EQ(channel.connects(), 1u);
}

TEST_P(ProtocolFuzzTransportTest, ClientPoisonsConnectionOnCorruptCorrelationVarint) {
  ScriptedV2Server server([](uint64_t /*id*/) {
    std::string payload(1, static_cast<char>(kMsgReplyV2));
    payload.append(10, static_cast<char>(0x80));  // Varint never ends.
    std::string wire;
    AppendFrame(&wire, payload);
    return wire;
  });

  TcpChannel channel(FuzzChannelTo(server.port()));
  std::string reply;
  Status s = channel.Call("x", &reply);
  EXPECT_FALSE(s.ok());
  // The channel recovers by reconnecting — and fails the same way
  // again, proving the failure is per-connection, not a wedged state.
  s = channel.Call("y", &reply);
  EXPECT_FALSE(s.ok());
  EXPECT_GE(channel.connects(), 2u);
}

TEST_P(ProtocolFuzzTransportTest, ClientPoisonsConnectionOnWrongReplyKind) {
  ScriptedV2Server server([](uint64_t id) {
    // A call frame where a reply should be: framing violation.
    return MakeV2CallFrame(id, "confused peer");
  });

  TcpChannel channel(FuzzChannelTo(server.port()));
  std::string reply;
  Status s = channel.Call("x", &reply);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace rrq::net
