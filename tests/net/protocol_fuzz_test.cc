// Robustness of the byte-protocol trust boundary: truncated,
// bit-flipped, and random-garbage request buffers must come back as
// clean errors (Corruption / InvalidArgument) or decode by luck into a
// harmless op — never crash, hang, or out-of-bounds read. Every fuzz
// input runs against a fresh volatile repository with no queues, so
// even a buffer that parses as a Dequeue returns NotFound immediately
// instead of blocking on a wait timeout decoded from garbage.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/queue_wire.h"
#include "queue/queue_repository.h"
#include "util/coding.h"
#include "util/random.h"

namespace rrq::net {
namespace {

// Dispatches one buffer against a one-shot volatile repository.
Status FuzzOne(const std::string& buffer) {
  queue::QueueRepository repo("fuzz", {});
  Status open = repo.Open();
  EXPECT_TRUE(open.ok()) << open.ToString();
  QueueServiceDispatcher dispatcher(&repo);
  std::string reply;
  return dispatcher.Handle(buffer, &reply);
}

bool IsAcceptableFuzzOutcome(const Status& s) {
  // OK means the buffer happened to parse as a well-formed request (the
  // app-level status rides inside the reply). Anything else must be a
  // clean decode rejection.
  return s.ok() || s.IsCorruption() || s.IsInvalidArgument();
}

// One well-formed request per op, the corpus truncation/flips start from.
std::vector<std::string> ValidRequests() {
  std::vector<std::string> corpus;
  {
    std::string r;
    r.push_back(1);  // Register
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "clerk-1");
    r.push_back(1);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(2);  // Deregister
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "clerk-1");
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(3);  // Enqueue
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "request body");
    util::PutVarint32(&r, 7);
    util::PutLengthPrefixed(&r, "clerk-1");
    util::PutLengthPrefixed(&r, "tag-1");
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(4);  // Dequeue (timeout 0: never waits even if q exists)
    util::PutLengthPrefixed(&r, "q");
    util::PutLengthPrefixed(&r, "clerk-1");
    util::PutLengthPrefixed(&r, "tag-2");
    util::PutFixed64(&r, 0);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(5);  // Read
    util::PutLengthPrefixed(&r, "q");
    util::PutFixed64(&r, 42);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(6);  // Kill
    util::PutLengthPrefixed(&r, "q");
    util::PutFixed64(&r, 42);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(7);  // CreateQueue
    util::PutLengthPrefixed(&r, "q");
    EncodeQueueOptions({}, &r);
    corpus.push_back(r);
  }
  {
    std::string r;
    r.push_back(8);  // Depth
    util::PutLengthPrefixed(&r, "q");
    corpus.push_back(r);
  }
  return corpus;
}

TEST(ProtocolFuzzTest, ValidCorpusDispatches) {
  for (const std::string& request : ValidRequests()) {
    Status s = FuzzOne(request);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

TEST(ProtocolFuzzTest, EveryProperPrefixIsRejected) {
  for (const std::string& request : ValidRequests()) {
    for (size_t len = 0; len < request.size(); ++len) {
      Status s = FuzzOne(request.substr(0, len));
      EXPECT_TRUE(s.IsCorruption() || s.IsInvalidArgument())
          << "prefix of length " << len << " of op "
          << static_cast<int>(request[0]) << ": " << s.ToString();
    }
  }
}

TEST(ProtocolFuzzTest, SingleBitFlipsNeverCrash) {
  for (const std::string& request : ValidRequests()) {
    for (size_t byte = 0; byte < request.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = request;
        mutated[byte] ^= static_cast<char>(1u << bit);
        Status s = FuzzOne(mutated);
        EXPECT_TRUE(IsAcceptableFuzzOutcome(s))
            << "op " << static_cast<int>(request[0]) << " byte " << byte
            << " bit " << bit << ": " << s.ToString();
      }
    }
  }
}

TEST(ProtocolFuzzTest, RandomGarbageAlwaysTerminatesCleanly) {
  util::Rng rng(0xfeed);
  std::set<StatusCode> seen;
  for (int round = 0; round < 2000; ++round) {
    std::string garbage;
    const size_t len = rng.Uniform(48);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Status s = FuzzOne(garbage);
    ASSERT_TRUE(IsAcceptableFuzzOutcome(s))
        << "round " << round << ": " << s.ToString();
    seen.insert(s.code());
  }
  // The generator must actually exercise the rejection paths.
  EXPECT_TRUE(seen.count(StatusCode::kInvalidArgument) > 0 ||
              seen.count(StatusCode::kCorruption) > 0);
}

TEST(ProtocolFuzzTest, FrameReaderSurvivesRandomChunkedGarbage) {
  util::Rng rng(0xcafe);
  for (int round = 0; round < 200; ++round) {
    FrameReader reader;
    bool poisoned = false;
    for (int chunk = 0; chunk < 8; ++chunk) {
      std::string bytes;
      const size_t len = 1 + rng.Uniform(32);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<char>(rng.Uniform(256)));
      }
      reader.Feed(bytes);
      std::string payload;
      Status s = reader.Next(&payload);
      ASSERT_TRUE(s.ok() || s.IsNotFound() || s.IsCorruption())
          << s.ToString();
      if (s.IsCorruption()) poisoned = true;
      if (poisoned) {
        // Once poisoned, always poisoned.
        EXPECT_TRUE(reader.Next(&payload).IsCorruption());
      }
    }
  }
}

TEST(ProtocolFuzzTest, TruncatedRepliesAreRejectedByTheClientCodec) {
  // Client-side decoders face the same trust boundary: a reply cut
  // short mid-field must error, not read past the end.
  queue::Element element;
  element.eid = 9;
  element.contents = "hello";
  std::string encoded;
  EncodeElement(element, &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    Slice input(encoded.data(), len);
    queue::Element decoded;
    EXPECT_FALSE(DecodeElement(&input, &decoded).ok()) << "len " << len;
  }

  std::string options_encoded;
  EncodeQueueOptions({}, &options_encoded);
  for (size_t len = 0; len < options_encoded.size(); ++len) {
    Slice input(options_encoded.data(), len);
    queue::QueueOptions decoded;
    EXPECT_FALSE(DecodeQueueOptions(&input, &decoded).ok()) << "len " << len;
  }
}

}  // namespace
}  // namespace rrq::net
