#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/io_backend.h"
#include "net/queue_wire.h"
#include "net/wire.h"
#include "queue/queue_repository.h"

namespace rrq::net {
namespace {

// The whole transport contract runs against both event-loop backends:
// every case is parameterized over epoll and io_uring, and the uring
// row skips (with the probe's reason) on kernels that cannot run it.
class TcpTransportTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    std::string why;
    if (GetParam() == IoBackendKind::kUring && !UringAvailable(&why)) {
      GTEST_SKIP() << "io_uring unavailable on this host: " << why;
    }
  }

  TcpServerOptions ServerOpts() const {
    TcpServerOptions options;
    options.backend = GetParam();
    return options;
  }

  TcpChannelOptions ChannelTo(uint16_t port) const {
    TcpChannelOptions options;
    options.port = port;
    options.backend = GetParam();
    options.max_connect_attempts = 3;
    options.backoff_initial_micros = 1'000;
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, TcpTransportTest,
    ::testing::Values(IoBackendKind::kEpoll, IoBackendKind::kUring),
    [](const ::testing::TestParamInfo<IoBackendKind>& info) {
      return std::string(IoBackendName(info.param));
    });

TEST_P(TcpTransportTest, CallRoundTrip) {
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign("echo:" + request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  TcpChannel channel(ChannelTo(server.port()));
  std::string reply;
  ASSERT_TRUE(channel.Call("ping", &reply).ok());
  EXPECT_EQ(reply, "echo:ping");
  ASSERT_TRUE(channel.Call("pong", &reply).ok());
  EXPECT_EQ(reply, "echo:pong");
  EXPECT_EQ(channel.connects(), 1u);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST_P(TcpTransportTest, HandlerErrorStatusPropagates) {
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* /*reply*/) {
    return Status::NotFound("no queue " + request.ToString());
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port()));
  std::string reply;
  Status s = channel.Call("q1", &reply);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  // The connection survives an application-level error.
  s = channel.Call("q2", &reply);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_EQ(channel.connects(), 1u);
}

TEST_P(TcpTransportTest, LargePayloadRoundTrip) {
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port()));
  std::string big(1 << 20, 'x');
  big[12345] = 'y';
  std::string reply;
  ASSERT_TRUE(channel.Call(big, &reply).ok());
  EXPECT_EQ(reply, big);
}

TEST_P(TcpTransportTest, NoServerIsUnavailable) {
  TcpServer probe({}, [](const Slice&, std::string*) { return Status::OK(); });
  ASSERT_TRUE(probe.Start().ok());
  const uint16_t dead_port = probe.port();
  probe.Stop();

  TcpChannel channel(ChannelTo(dead_port));
  std::string reply;
  Status s = channel.Call("ping", &reply);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST_P(TcpTransportTest, ReconnectsAfterServerRestartOnSamePort) {
  auto echo = [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  };
  auto server = std::make_unique<TcpServer>(ServerOpts(), echo);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  TcpChannelOptions options = ChannelTo(port);
  options.max_connect_attempts = 10;
  TcpChannel channel(options);
  std::string reply;
  ASSERT_TRUE(channel.Call("one", &reply).ok());

  // Server goes down: in-flight channel state is now garbage.
  server->Stop();
  server.reset();
  Status s = channel.Call("two", &reply);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();

  // Server comes back on the same port; the channel recovers by
  // reconnecting on the next Call — never by resending "two".
  TcpServerOptions restart_options = ServerOpts();
  restart_options.port = port;
  server = std::make_unique<TcpServer>(restart_options, echo);
  ASSERT_TRUE(server->Start().ok());

  Status recovered = Status::Unavailable("never called");
  for (int attempt = 0; attempt < 10; ++attempt) {
    recovered = channel.Call("three", &reply);
    if (recovered.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(reply, "three");
  EXPECT_GE(channel.connects(), 2u);
}

TEST_P(TcpTransportTest, OneWayIsDeliveredWithoutReply) {
  std::atomic<int> one_ways{0};
  TcpServer server(ServerOpts(), [&one_ways](const Slice& request, std::string* reply) {
    if (request == Slice("oneway")) {
      one_ways.fetch_add(1);
    } else {
      reply->assign("acked");
    }
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port()));
  ASSERT_TRUE(channel.SendOneWay("oneway").ok());
  // Since wire v2 the server dispatches to a worker pool, so a call
  // submitted after the one-way may complete first; poll instead of
  // relying on ordering.
  std::string reply;
  ASSERT_TRUE(channel.Call("sync", &reply).ok());
  EXPECT_EQ(reply, "acked");
  for (int i = 0; i < 200 && one_ways.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(one_ways.load(), 1);
  EXPECT_EQ(channel.one_ways_lost(), 0u);
}

TEST_P(TcpTransportTest, OneWayToDeadServerIsSilentlyLost) {
  TcpServer probe({}, [](const Slice&, std::string*) { return Status::OK(); });
  ASSERT_TRUE(probe.Start().ok());
  const uint16_t dead_port = probe.port();
  probe.Stop();

  TcpChannel channel(ChannelTo(dead_port));
  // §5 contract: no failure signal for a lost one-way.
  EXPECT_TRUE(channel.SendOneWay("lost").ok());
  EXPECT_EQ(channel.one_ways_lost(), 1u);
}

TEST_P(TcpTransportTest, CallDeadlineExpiresAsUnavailable) {
  TcpServer server(ServerOpts(), [](const Slice&, std::string* reply) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    reply->assign("late");
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options = ChannelTo(server.port());
  options.call_timeout_micros = 50'000;
  TcpChannel channel(options);
  std::string reply;
  Status s = channel.Call("slow", &reply);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST_P(TcpTransportTest, GarbageBytesDropTheConnection) {
  TcpServer server(ServerOpts(), [](const Slice&, std::string* reply) {
    reply->assign("ok");
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  // Raw socket spraying non-frame bytes at the server.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[] = "\xff\xff\xff\xff not a frame at all";
  ASSERT_GT(send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);

  // The server must close on us (recv sees EOF), not crash or hang.
  char buf[64];
  ssize_t n = -1;
  for (int i = 0; i < 100; ++i) {
    n = recv(fd, buf, sizeof(buf), 0);
    if (n >= 0) break;
  }
  EXPECT_EQ(n, 0);
  close(fd);
  EXPECT_GE(server.protocol_errors(), 1u);

  // And keeps serving well-behaved clients.
  TcpChannel channel(ChannelTo(server.port()));
  std::string reply;
  ASSERT_TRUE(channel.Call("still alive?", &reply).ok());
  EXPECT_EQ(reply, "ok");
}

TEST_P(TcpTransportTest, InvalidAddressFailsFastWithoutRetry) {
  TcpChannelOptions options;
  options.host = "not-a-host-name";
  options.port = 1;
  TcpChannel channel(options);
  std::string reply;
  Status s = channel.Call("x", &reply);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// ---- Wire v2: multiplexing, deadlines, negotiation -------------------

TEST_P(TcpTransportTest, ConcurrentCallsOnSharedChannelDemuxCorrectly) {
  // Many threads share ONE channel; the server's worker pool completes
  // requests out of submission order (the handler sleeps longer for
  // lower-numbered requests), so the reply demux must route every
  // reply to the call that made the matching request.
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    const std::string body = request.ToString();
    const int shuffle = 1 + static_cast<int>(body.size() % 5);
    std::this_thread::sleep_for(std::chrono::milliseconds(shuffle));
    reply->assign("echo:" + body);
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port()));
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::string request =
            "t" + std::to_string(t) + ":" + std::to_string(i) +
            std::string(static_cast<size_t>(i % 7), '.');
        std::string reply;
        Status s = channel.Call(request, &reply);
        if (!s.ok()) {
          failures.fetch_add(1);
        } else if (reply != "echo:" + request) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // All of it over a single multiplexed connection.
  EXPECT_EQ(channel.connects(), 1u);
  EXPECT_EQ(channel.negotiated_version(), kProtocolV2);
  EXPECT_EQ(server.requests_served(),
            static_cast<uint64_t>(kThreads * kCallsPerThread));
}

TEST_P(TcpTransportTest, DeadlineExpiryDoesNotPoisonTheConnection) {
  // Explicit worker count: with the default (hardware concurrency, 1
  // on small CI machines) the slow request would occupy the only
  // worker and starve the fast one into its own deadline.
  TcpServerOptions server_options = ServerOpts();
  server_options.workers = 4;
  TcpServer server(server_options, [](const Slice& request,
                                      std::string* reply) {
    if (request == Slice("slow")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
    reply->assign("done:" + request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options = ChannelTo(server.port());
  options.call_timeout_micros = 60'000;
  TcpChannel channel(options);

  std::string reply;
  Status s = channel.Call("slow", &reply);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(channel.deadline_expiries(), 1u);

  // The very next call succeeds on the SAME connection: only the one
  // call failed, not the channel.
  ASSERT_TRUE(channel.Call("fast", &reply).ok());
  EXPECT_EQ(reply, "done:fast");
  EXPECT_EQ(channel.connects(), 1u);

  // The straggler reply for "slow" eventually arrives and is discarded
  // by correlation id instead of corrupting a later call.
  for (int i = 0; i < 300 && channel.late_replies() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(channel.late_replies(), 1u);
  ASSERT_TRUE(channel.Call("after", &reply).ok());
  EXPECT_EQ(reply, "done:after");
  EXPECT_EQ(channel.connects(), 1u);
}

TEST_P(TcpTransportTest, V1ChannelInteroperatesWithV2Server) {
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign("echo:" + request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  // A channel capped at v1 never sends a hello; the server must serve
  // it with the PR 3 serialized behavior.
  TcpChannelOptions options = ChannelTo(server.port());
  options.max_protocol_version = kProtocolV1;
  TcpChannel channel(options);
  std::string reply;
  ASSERT_TRUE(channel.Call("old", &reply).ok());
  EXPECT_EQ(reply, "echo:old");
  ASSERT_TRUE(channel.Call("timer", &reply).ok());
  EXPECT_EQ(reply, "echo:timer");
  EXPECT_EQ(channel.negotiated_version(), kProtocolV1);
  EXPECT_EQ(channel.connects(), 1u);
  EXPECT_EQ(server.v1_connections(), 1u);
}

TEST_P(TcpTransportTest, RawV1BytesInteroperateWithV2Server) {
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign("echo:" + request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  // Hand-rolled v1 exchange, no TcpChannel involved: the first frame
  // is a bare kMsgCall, and the reply must be the id-less v1 layout.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string payload(1, static_cast<char>(kMsgCall));
  payload += "legacy";
  std::string wire;
  AppendFrame(&wire, payload);
  ASSERT_EQ(send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  FrameReader reader;
  std::string frame;
  Status next = Status::NotFound("no data");
  while (next.IsNotFound()) {
    char buf[4096];
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    reader.Feed(Slice(buf, static_cast<size_t>(n)));
    next = reader.Next(&frame);
  }
  ASSERT_TRUE(next.ok()) << next.ToString();
  Slice reply(frame);
  ASSERT_TRUE(DecodeStatus(&reply).ok());
  EXPECT_EQ(reply, Slice("echo:legacy"));
  close(fd);
}

// A minimal PR 3-era peer: speaks only wire v1 and, like the old
// thread-per-connection server, drops any connection whose frame kind
// it does not recognize (which is what a real v1 binary does when a
// v2 hello arrives).
class MiniV1Server {
 public:
  MiniV1Server() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    listen(listen_fd_, 8);
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Run(); });
  }

  ~MiniV1Server() {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    thread_.join();
  }

  uint16_t port() const { return port_; }
  int rejected_hellos() const { return rejected_hellos_.load(); }

 private:
  void Run() {
    while (true) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // Listener closed: shut down.
      ServeConnection(fd);
      close(fd);
    }
  }

  void ServeConnection(int fd) {
    FrameReader reader;
    std::string frame;
    while (true) {
      char buf[4096];
      const ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return;
      reader.Feed(Slice(buf, static_cast<size_t>(n)));
      while (true) {
        Status s = reader.Next(&frame);
        if (s.IsNotFound()) break;
        if (!s.ok() || frame.empty()) return;
        const auto kind = static_cast<unsigned char>(frame[0]);
        if (kind != kMsgCall) {
          // kMsgHello lands here: unknown kind, drop the connection.
          if (kind == kMsgHello) rejected_hellos_.fetch_add(1);
          return;
        }
        std::string payload;
        EncodeStatus(Status::OK(), &payload);
        payload += "v1:";
        payload.append(frame.data() + 1, frame.size() - 1);
        std::string wire;
        AppendFrame(&wire, payload);
        if (send(fd, wire.data(), wire.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(wire.size())) {
          return;
        }
      }
    }
  }

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<int> rejected_hellos_{0};
  std::thread thread_;
};

TEST_P(TcpTransportTest, V2ChannelFallsBackAgainstV1Server) {
  MiniV1Server server;

  TcpChannelOptions options = ChannelTo(server.port());
  options.max_connect_attempts = 10;
  TcpChannel channel(options);
  std::string reply;
  ASSERT_TRUE(channel.Call("antique", &reply).ok());
  EXPECT_EQ(reply, "v1:antique");
  EXPECT_EQ(channel.negotiated_version(), kProtocolV1);
  // The hello-probe connection the server dropped never became an
  // established connection, so connects() counts only the v1 one; the
  // server-side rejected-hello count proves the probe happened.
  EXPECT_EQ(channel.connects(), 1u);
  EXPECT_EQ(server.rejected_hellos(), 1);

  // Later calls stick with v1 without re-probing.
  ASSERT_TRUE(channel.Call("again", &reply).ok());
  EXPECT_EQ(reply, "v1:again");
  EXPECT_EQ(channel.connects(), 1u);
  EXPECT_EQ(server.rejected_hellos(), 1);
}

// ---- Per-call deadlines: options, long-polls, stragglers -------------

TEST_P(TcpTransportTest, CallOptionsRaiseButNeverLowerTheDeadline) {
  TcpServer server(ServerOpts(), [](const Slice&, std::string* reply) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    reply->assign("late");
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options = ChannelTo(server.port());
  options.call_timeout_micros = 50'000;
  TcpChannel channel(options);

  // Raised: a 2s per-call minimum outlives the 200ms handler.
  std::string reply;
  CallOptions raised;
  raised.min_deadline_micros = 2'000'000;
  ASSERT_TRUE(channel.Call("a", &reply, raised).ok());
  EXPECT_EQ(reply, "late");
  EXPECT_EQ(channel.deadline_expiries(), 0u);

  // min_deadline_micros below the channel default must NOT lower it:
  // with a 2s channel default even a 1ms minimum waits the handler out.
  TcpChannelOptions generous = ChannelTo(server.port());
  generous.call_timeout_micros = 2'000'000;
  TcpChannel channel2(generous);
  CallOptions tiny;
  tiny.min_deadline_micros = 1'000;
  ASSERT_TRUE(channel2.Call("b", &reply, tiny).ok());
  EXPECT_EQ(reply, "late");
  EXPECT_EQ(channel2.deadline_expiries(), 0u);
}

TEST_P(TcpTransportTest, BlockingDequeueOutlivesChannelDefaultDeadline) {
  // THE long-poll bug this PR fixes: a blocking Dequeue whose
  // timeout_micros exceeds the channel's default call deadline used to
  // be expired client-side while the server's *destructive* dequeue
  // committed — the reply was then discarded as a late straggler and
  // the element silently lost. The fix derives the call deadline from
  // the op's own timeout (plus kBlockingCallMarginMicros), so the call
  // must now return the element.
  queue::QueueRepository repo("qm");
  ASSERT_TRUE(repo.Open().ok());
  ASSERT_TRUE(repo.CreateQueue("q").ok());
  QueueServiceDispatcher dispatcher(&repo);
  TcpServerOptions server_options = ServerOpts();
  server_options.workers = 2;
  TcpServer server(server_options,
                   [&dispatcher](const Slice& request, std::string* reply) {
                     return dispatcher.Handle(request, reply);
                   });
  server.set_blocking_hint(QueueRequestMayBlock);
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options = ChannelTo(server.port());
  options.call_timeout_micros = 150'000;  // Channel default: 150ms.
  TcpChannel channel(options);
  ChannelQueueApi api(&channel);
  ASSERT_TRUE(api.Register("q", "c", /*stable=*/true).ok());

  // The element arrives mid-poll, well after the channel default
  // deadline, via a second channel.
  std::thread producer([&server, this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    TcpChannel side(ChannelTo(server.port()));
    ChannelQueueApi side_api(&side);
    auto enqueued = side_api.Enqueue("q", "payload", 0, "", Slice(),
                                     /*one_way=*/false);
    ASSERT_TRUE(enqueued.ok()) << enqueued.status().ToString();
  });

  auto got = api.Dequeue("q", "c", Slice(), /*timeout_micros=*/5'000'000);
  producer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->contents, "payload");
  // The call was never expired and its reply never discarded.
  EXPECT_EQ(channel.deadline_expiries(), 0u);
  EXPECT_EQ(channel.late_replies(), 0u);
  // And the committed dequeue was delivered, not lost: the queue is
  // empty AND the retained copy names our registrant's element.
  EXPECT_EQ(*repo.Depth("q"), 0u);
}

TEST_P(TcpTransportTest, LateReplyAccountingMatchesStragglersExactly) {
  // Several calls expire; each eventually produces exactly one
  // straggler reply that is discarded by correlation id. Fast calls
  // interleaved with the stragglers demux cleanly and the per-channel
  // counters match: deadline_expiries == late_replies == the number of
  // slow calls, and nothing else is miscounted or misdelivered.
  TcpServerOptions server_options = ServerOpts();
  server_options.workers = 8;
  TcpServer server(server_options,
                   [](const Slice& request, std::string* reply) {
                     if (request.ToString().rfind("slow", 0) == 0) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(2000));
                     }
                     reply->assign("done:" + request.ToString());
                     return Status::OK();
                   });
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options = ChannelTo(server.port());
  // Far above a sanitized-build round trip — full-suite ASan/TSan
  // runs on the 1-core CI box showed a legitimate fast call can take
  // hundreds of ms under scheduler starvation (and the suite now runs
  // every test twice, once per backend) — and still half the slow
  // handler's 2s, so only the slow calls expire.
  options.call_timeout_micros = 1'000'000;
  TcpChannel channel(options);

  constexpr int kSlow = 3;
  std::vector<std::thread> slow_calls;
  std::atomic<int> expiries_seen{0};
  slow_calls.reserve(kSlow);
  for (int i = 0; i < kSlow; ++i) {
    slow_calls.emplace_back([&channel, &expiries_seen, i] {
      std::string reply;
      Status s = channel.Call("slow" + std::to_string(i), &reply);
      if (IsCallDeadlineExpiry(s)) expiries_seen.fetch_add(1);
    });
  }
  // Interleaved fast traffic on the same channel while the slow calls
  // are parked server-side. Join before any fatal assertion: an early
  // ASSERT return with joinable threads would terminate() and bury
  // the failure message.
  std::vector<Status> fast(10);
  std::vector<std::string> fast_replies(10);
  for (int i = 0; i < 10; ++i) {
    fast[static_cast<size_t>(i)] =
        channel.Call("fast" + std::to_string(i), &fast_replies[i]);
  }
  for (auto& t : slow_calls) t.join();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fast[i].ok()) << i << ": " << fast[i].ToString();
    ASSERT_EQ(fast_replies[i], "done:fast" + std::to_string(i));
  }
  EXPECT_EQ(expiries_seen.load(), kSlow);
  EXPECT_EQ(channel.deadline_expiries(), static_cast<uint64_t>(kSlow));

  // Every straggler arrives and is discarded — no more, no fewer.
  for (int i = 0; i < 1000 && channel.late_replies() < kSlow; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(channel.late_replies(), static_cast<uint64_t>(kSlow));
  std::string reply;
  ASSERT_TRUE(channel.Call("after", &reply).ok());
  EXPECT_EQ(reply, "done:after");
  EXPECT_EQ(channel.late_replies(), static_cast<uint64_t>(kSlow));
  EXPECT_EQ(channel.connects(), 1u);
}

TEST_P(TcpTransportTest, ConcurrentRetriesAfterConnectionLossAllRecover) {
  // Regression test for a reconnect-race deadlock. When a v2
  // connection dies, the reader fails every pending call BEFORE it
  // announces its exit via reader_done_, so the failed callers retry
  // immediately and pile up inside EnsureConnectedLocked() waiting for
  // the old reader. The first waiter to wake joined it, reconnected,
  // and reset reader_done_ for the NEW reader — and any second waiter
  // that re-tested only reader_done_ went back to sleep waiting for a
  // healthy connection to fail, i.e. forever. ASan/TSan runs of
  // clerk_pool_exactly_once_test hit exactly that hang. The fix
  // re-checks sock_ on every wakeup; this test drives many rounds of
  // the race and hangs (ctest timeout) without it.
  // The server stays up the whole time — the winner's reconnect must
  // SUCCEED (and reset reader_done_) for the loser to strand.
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options = ChannelTo(server.port());
  options.max_connect_attempts = 5;
  TcpChannel channel(options);
  std::string warm;
  ASSERT_TRUE(channel.Call("warm", &warm).ok());

  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> successes{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&channel, &stop, &successes] {
      while (!stop.load(std::memory_order_relaxed)) {
        struct Waiter {
          std::mutex mu;
          std::condition_variable cv;
          bool done = false;
          Status status;
        } w;
        channel.CallAsync("r", [&w](Status s, std::string) {
          const bool failed = !s.ok();
          {
            std::lock_guard<std::mutex> lock(w.mu);
            w.done = true;
            w.status = std::move(s);
            // Notify under the lock: the caller frees the waiter the
            // moment it wakes, and a notify outside the lock could
            // still be touching the cv when that happens.
            w.cv.notify_one();
          }
          // Teardown fires failure callbacks on the demux reader
          // BEFORE it announces its exit. Dawdling here after waking
          // the caller guarantees the caller's instant retry reaches
          // the reconnect path first — the pile-up that stranded
          // waiters. (Touches nothing after notify: the caller frees
          // the waiter as soon as it wakes.)
          if (failed) std::this_thread::sleep_for(std::chrono::milliseconds(2));
        });
        std::unique_lock<std::mutex> lock(w.mu);
        w.cv.wait(lock, [&w] { return w.done; });
        if (w.status.ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    channel.BreakConnectionForTest();
  }

  // Every caller must still be making progress after the last break;
  // a stranded caller would hang the join (and trip the ctest
  // timeout), which is precisely the pre-fix failure mode.
  const uint64_t before = successes.load();
  for (int i = 0; i < 1000 && successes.load() < before + kCallers; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(successes.load(), before + kCallers);
  stop.store(true);
  for (auto& th : callers) th.join();
  EXPECT_GT(successes.load(), 0u);
}

TEST_P(TcpTransportTest, SequentialConnectionChurnDoesNotLeak) {
  // Regression test for the PR 3 connection-thread leak: the old
  // server spawned a detached-until-Stop thread per connection and
  // never reaped finished ones. A few hundred sequential connections
  // must leave the server with zero live connection state.
  TcpServer server(ServerOpts(), [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kConnections = 300;
  for (int i = 0; i < kConnections; ++i) {
    TcpChannel channel(ChannelTo(server.port()));
    std::string reply;
    ASSERT_TRUE(channel.Call(std::to_string(i), &reply).ok()) << i;
    ASSERT_EQ(reply, std::to_string(i));
  }
  EXPECT_GE(server.connections_accepted(),
            static_cast<uint64_t>(kConnections));
  // Channels close as they go out of scope; the event loop notices the
  // EOFs and retires the per-connection state promptly.
  for (int i = 0; i < 500 && server.active_connections() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kConnections));
}

}  // namespace
}  // namespace rrq::net
