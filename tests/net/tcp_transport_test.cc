#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "net/frame.h"

namespace rrq::net {
namespace {

TcpChannelOptions ChannelTo(uint16_t port) {
  TcpChannelOptions options;
  options.port = port;
  options.max_connect_attempts = 3;
  options.backoff_initial_micros = 1'000;
  return options;
}

TEST(TcpTransportTest, CallRoundTrip) {
  TcpServer server({}, [](const Slice& request, std::string* reply) {
    reply->assign("echo:" + request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  TcpChannel channel(ChannelTo(server.port()));
  std::string reply;
  ASSERT_TRUE(channel.Call("ping", &reply).ok());
  EXPECT_EQ(reply, "echo:ping");
  ASSERT_TRUE(channel.Call("pong", &reply).ok());
  EXPECT_EQ(reply, "echo:pong");
  EXPECT_EQ(channel.connects(), 1u);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(TcpTransportTest, HandlerErrorStatusPropagates) {
  TcpServer server({}, [](const Slice& request, std::string* /*reply*/) {
    return Status::NotFound("no queue " + request.ToString());
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port()));
  std::string reply;
  Status s = channel.Call("q1", &reply);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  // The connection survives an application-level error.
  s = channel.Call("q2", &reply);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_EQ(channel.connects(), 1u);
}

TEST(TcpTransportTest, LargePayloadRoundTrip) {
  TcpServer server({}, [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port()));
  std::string big(1 << 20, 'x');
  big[12345] = 'y';
  std::string reply;
  ASSERT_TRUE(channel.Call(big, &reply).ok());
  EXPECT_EQ(reply, big);
}

TEST(TcpTransportTest, NoServerIsUnavailable) {
  TcpServer probe({}, [](const Slice&, std::string*) { return Status::OK(); });
  ASSERT_TRUE(probe.Start().ok());
  const uint16_t dead_port = probe.port();
  probe.Stop();

  TcpChannel channel(ChannelTo(dead_port));
  std::string reply;
  Status s = channel.Call("ping", &reply);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(TcpTransportTest, ReconnectsAfterServerRestartOnSamePort) {
  auto echo = [](const Slice& request, std::string* reply) {
    reply->assign(request.ToString());
    return Status::OK();
  };
  auto server = std::make_unique<TcpServer>(TcpServerOptions{}, echo);
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  TcpChannelOptions options = ChannelTo(port);
  options.max_connect_attempts = 10;
  TcpChannel channel(options);
  std::string reply;
  ASSERT_TRUE(channel.Call("one", &reply).ok());

  // Server goes down: in-flight channel state is now garbage.
  server->Stop();
  server.reset();
  Status s = channel.Call("two", &reply);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();

  // Server comes back on the same port; the channel recovers by
  // reconnecting on the next Call — never by resending "two".
  TcpServerOptions restart_options;
  restart_options.port = port;
  server = std::make_unique<TcpServer>(restart_options, echo);
  ASSERT_TRUE(server->Start().ok());

  Status recovered = Status::Unavailable("never called");
  for (int attempt = 0; attempt < 10; ++attempt) {
    recovered = channel.Call("three", &reply);
    if (recovered.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(reply, "three");
  EXPECT_GE(channel.connects(), 2u);
}

TEST(TcpTransportTest, OneWayIsDeliveredWithoutReply) {
  std::atomic<int> one_ways{0};
  TcpServer server({}, [&one_ways](const Slice& request, std::string* reply) {
    if (request == Slice("oneway")) {
      one_ways.fetch_add(1);
    } else {
      reply->assign("acked");
    }
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannel channel(ChannelTo(server.port()));
  ASSERT_TRUE(channel.SendOneWay("oneway").ok());
  // A Call on the same channel orders after the one-way frame, so once
  // it returns the one-way has been handled.
  std::string reply;
  ASSERT_TRUE(channel.Call("sync", &reply).ok());
  EXPECT_EQ(reply, "acked");
  EXPECT_EQ(one_ways.load(), 1);
  EXPECT_EQ(channel.one_ways_lost(), 0u);
}

TEST(TcpTransportTest, OneWayToDeadServerIsSilentlyLost) {
  TcpServer probe({}, [](const Slice&, std::string*) { return Status::OK(); });
  ASSERT_TRUE(probe.Start().ok());
  const uint16_t dead_port = probe.port();
  probe.Stop();

  TcpChannel channel(ChannelTo(dead_port));
  // §5 contract: no failure signal for a lost one-way.
  EXPECT_TRUE(channel.SendOneWay("lost").ok());
  EXPECT_EQ(channel.one_ways_lost(), 1u);
}

TEST(TcpTransportTest, CallDeadlineExpiresAsUnavailable) {
  TcpServer server({}, [](const Slice&, std::string* reply) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    reply->assign("late");
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  TcpChannelOptions options = ChannelTo(server.port());
  options.call_timeout_micros = 50'000;
  TcpChannel channel(options);
  std::string reply;
  Status s = channel.Call("slow", &reply);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(TcpTransportTest, GarbageBytesDropTheConnection) {
  TcpServer server({}, [](const Slice&, std::string* reply) {
    reply->assign("ok");
    return Status::OK();
  });
  ASSERT_TRUE(server.Start().ok());

  // Raw socket spraying non-frame bytes at the server.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[] = "\xff\xff\xff\xff not a frame at all";
  ASSERT_GT(send(fd, garbage, sizeof(garbage), 0), 0);

  // The server must close on us (recv sees EOF), not crash or hang.
  char buf[64];
  ssize_t n = -1;
  for (int i = 0; i < 100; ++i) {
    n = recv(fd, buf, sizeof(buf), 0);
    if (n >= 0) break;
  }
  EXPECT_EQ(n, 0);
  close(fd);
  EXPECT_GE(server.protocol_errors(), 1u);

  // And keeps serving well-behaved clients.
  TcpChannel channel(ChannelTo(server.port()));
  std::string reply;
  ASSERT_TRUE(channel.Call("still alive?", &reply).ok());
  EXPECT_EQ(reply, "ok");
}

TEST(TcpTransportTest, InvalidAddressFailsFastWithoutRetry) {
  TcpChannelOptions options;
  options.host = "not-a-host-name";
  options.port = 1;
  TcpChannel channel(options);
  std::string reply;
  Status s = channel.Call("x", &reply);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

}  // namespace
}  // namespace rrq::net
