#include "comm/network.h"

#include <gtest/gtest.h>

namespace rrq::comm {
namespace {

TEST(NetworkTest, RpcRoundTrip) {
  Network net(1);
  ASSERT_TRUE(net.RegisterEndpoint("echo", [](const Slice& req,
                                              std::string* reply) {
                   *reply = "echo:" + req.ToString();
                   return Status::OK();
                 })
                  .ok());
  std::string reply;
  ASSERT_TRUE(net.Call("client", "echo", "hello", &reply).ok());
  EXPECT_EQ(reply, "echo:hello");
  EXPECT_EQ(net.messages_sent(), 2u);  // Request + reply.
}

TEST(NetworkTest, CallToMissingEndpointIsUnavailable) {
  Network net(1);
  std::string reply;
  EXPECT_TRUE(net.Call("client", "nobody", "x", &reply).IsUnavailable());
}

TEST(NetworkTest, DuplicateEndpointRejected) {
  Network net(1);
  auto handler = [](const Slice&, std::string*) { return Status::OK(); };
  ASSERT_TRUE(net.RegisterEndpoint("e", handler).ok());
  EXPECT_TRUE(net.RegisterEndpoint("e", handler).IsAlreadyExists());
  net.RemoveEndpoint("e");
  EXPECT_TRUE(net.RegisterEndpoint("e", handler).ok());
}

TEST(NetworkTest, PartitionBlocksBothDirections) {
  Network net(1);
  int executions = 0;
  ASSERT_TRUE(net.RegisterEndpoint("server", [&executions](const Slice&,
                                                           std::string*) {
                   ++executions;
                   return Status::OK();
                 })
                  .ok());
  net.Partition("client", "server");
  std::string reply;
  EXPECT_TRUE(net.Call("client", "server", "x", &reply).IsUnavailable());
  EXPECT_EQ(executions, 0);  // Request never arrived.
  net.Heal("client", "server");
  EXPECT_TRUE(net.Call("client", "server", "x", &reply).ok());
  EXPECT_EQ(executions, 1);
}

TEST(NetworkTest, LostReplyStillExecutesHandler) {
  // The §2 failure: with a 100% drop on the reply leg only, the server
  // executes but the client can't tell.
  Network net(7);
  int executions = 0;
  ASSERT_TRUE(net.RegisterEndpoint("server", [&executions](const Slice&,
                                                           std::string*) {
                   ++executions;
                   return Status::OK();
                 })
                  .ok());
  LinkFaults faults;
  faults.drop_probability = 0.5;
  net.SetLinkFaults("client", "server", faults);
  int unavailable = 0;
  for (int i = 0; i < 200; ++i) {
    std::string reply;
    if (!net.Call("client", "server", "x", &reply).ok()) ++unavailable;
  }
  EXPECT_GT(unavailable, 0);
  // Some failures executed anyway (dropped reply, not dropped request).
  EXPECT_GT(executions, 200 - unavailable);
  EXPECT_GT(net.messages_dropped(), 0u);
}

TEST(NetworkTest, OneWayMessagesDropSilently) {
  Network net(3);
  int deliveries = 0;
  ASSERT_TRUE(net.RegisterEndpoint("sink", [&deliveries](const Slice&,
                                                         std::string*) {
                   ++deliveries;
                   return Status::OK();
                 })
                  .ok());
  LinkFaults faults;
  faults.drop_probability = 0.5;
  net.SetLinkFaults("a", "sink", faults);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(net.SendOneWay("a", "sink", "m").ok());  // Never fails.
  }
  EXPECT_GT(deliveries, 50);
  EXPECT_LT(deliveries, 150);
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  Network net(5);
  int deliveries = 0;
  ASSERT_TRUE(net.RegisterEndpoint("sink", [&deliveries](const Slice&,
                                                         std::string*) {
                   ++deliveries;
                   return Status::OK();
                 })
                  .ok());
  LinkFaults faults;
  faults.duplicate_probability = 1.0;
  net.SetLinkFaults("a", "sink", faults);
  ASSERT_TRUE(net.SendOneWay("a", "sink", "m").ok());
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(net.messages_duplicated(), 1u);
}

TEST(NetworkTest, FaultsAreSymmetricPerLink) {
  Network net(1);
  auto ok_handler = [](const Slice&, std::string* r) {
    *r = "ok";
    return Status::OK();
  };
  ASSERT_TRUE(net.RegisterEndpoint("s1", ok_handler).ok());
  ASSERT_TRUE(net.RegisterEndpoint("s2", ok_handler).ok());
  net.Partition("c", "s1");
  std::string reply;
  EXPECT_TRUE(net.Call("c", "s1", "x", &reply).IsUnavailable());
  EXPECT_TRUE(net.Call("c", "s2", "x", &reply).ok());  // Other link fine.
}

}  // namespace
}  // namespace rrq::comm
