#include "comm/queue_service.h"

#include <gtest/gtest.h>

#include "txn/txn_manager.h"

namespace rrq::comm {
namespace {

class QueueServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    ASSERT_TRUE(repo_->CreateQueue("q").ok());
    service_ = std::make_unique<QueueService>(&net_, "qm-svc", repo_.get());
    api_ = std::make_unique<RemoteQueueApi>(&net_, "client", "qm-svc");
  }

  Network net_{11};
  std::unique_ptr<queue::QueueRepository> repo_;
  std::unique_ptr<QueueService> service_;
  std::unique_ptr<RemoteQueueApi> api_;
};

TEST_F(QueueServiceTest, EnqueueDequeueOverNetwork) {
  auto eid = api_->Enqueue("q", "payload", 3, "", Slice(), false);
  ASSERT_TRUE(eid.ok()) << eid.status().ToString();
  EXPECT_NE(*eid, queue::kInvalidElementId);
  auto got = api_->Dequeue("q", "", Slice(), 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "payload");
  EXPECT_EQ(got->priority, 3u);
  EXPECT_EQ(got->eid, *eid);
}

TEST_F(QueueServiceTest, ErrorStatusesCrossTheWire) {
  auto got = api_->Dequeue("q", "", Slice(), 0);
  EXPECT_TRUE(got.status().IsNotFound());
  auto missing = api_->Dequeue("no-such-queue", "", Slice(), 0);
  EXPECT_TRUE(missing.status().IsNotFound());
  auto unregistered = api_->Enqueue("q", "x", 0, "stranger", "tag", false);
  EXPECT_TRUE(unregistered.status().IsNotConnected());
}

TEST_F(QueueServiceTest, RegistrationRoundTrip) {
  auto fresh = api_->Register("q", "client-1", true);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->was_registered);

  ASSERT_TRUE(api_->Enqueue("q", "body", 0, "client-1", "rid-1", false).ok());
  auto again = api_->Register("q", "client-1", true);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->was_registered);
  EXPECT_EQ(again->last_op, queue::OpType::kEnqueue);
  EXPECT_EQ(again->last_tag, "rid-1");
  EXPECT_EQ(again->last_element, "body");

  ASSERT_TRUE(api_->Deregister("q", "client-1").ok());
  auto after = api_->Register("q", "client-1", true);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->was_registered);
}

TEST_F(QueueServiceTest, ReadAndKillOverNetwork) {
  auto eid = api_->Enqueue("q", "target", 0, "", Slice(), false);
  ASSERT_TRUE(eid.ok());
  auto read = api_->Read("q", *eid);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->contents, "target");
  auto killed = api_->KillElement("q", *eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  auto again = api_->KillElement("q", *eid);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST_F(QueueServiceTest, OneWayEnqueueReturnsNoEid) {
  auto eid = api_->Enqueue("q", "fire-and-forget", 0, "", Slice(), true);
  ASSERT_TRUE(eid.ok());
  EXPECT_EQ(*eid, queue::kInvalidElementId);
  EXPECT_EQ(*repo_->Depth("q"), 1u);  // It did arrive.
}

TEST_F(QueueServiceTest, ShutdownMakesServiceUnavailable) {
  service_->Shutdown();
  auto got = api_->Enqueue("q", "x", 0, "", Slice(), false);
  EXPECT_TRUE(got.status().IsUnavailable());
  ASSERT_TRUE(service_->Restart().ok());
  EXPECT_TRUE(api_->Enqueue("q", "x", 0, "", Slice(), false).ok());
}

TEST_F(QueueServiceTest, LostReplyLeavesOperationApplied) {
  // Drop everything after the first two messages: the enqueue request
  // gets through, the acknowledgement does not.
  LinkFaults faults;
  faults.drop_probability = 1.0;
  // First do a clean enqueue to show the difference.
  ASSERT_TRUE(api_->Enqueue("q", "clean", 0, "", Slice(), false).ok());
  net_.SetLinkFaults("client", "qm-svc", faults);
  auto lost = api_->Enqueue("q", "in-doubt", 0, "", Slice(), false);
  EXPECT_TRUE(lost.status().IsUnavailable());
  // With a full drop the request itself was lost; depth unchanged.
  EXPECT_EQ(*repo_->Depth("q"), 1u);
}

TEST_F(QueueServiceTest, TagsWorkRemotely) {
  ASSERT_TRUE(api_->Register("q", "c", true).ok());
  ASSERT_TRUE(api_->Enqueue("q", "r", 0, "c", "send-rid", false).ok());
  auto got = api_->Dequeue("q", "c", "recv-tag", 0);
  ASSERT_TRUE(got.ok());
  auto info = api_->Register("q", "c", true);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->last_op, queue::OpType::kDequeue);
  EXPECT_EQ(info->last_tag, "recv-tag");
}

}  // namespace
}  // namespace rrq::comm
