// The tentpole end-to-end: TWO rrqd daemons in child processes — a
// primary shipping its WAL to a backup over the replication protocol
// (ack'd mode) — under a 4-clerk pool workload. The primary is
// SIGKILLed mid-workload, the backup is promoted through the admin op,
// the pool is repointed at it, and every clerk finishes its run there.
// Afterwards the *backup's* durable state is audited: the demo server
// enqueued "exec:<rid>:<count>" into a replicated audit queue
// atomically with each execution, so draining that queue on the
// survivor yields the exact multiset of executions that exist in the
// post-failover history — which must be exactly one per rid.
//
// Single-shard daemons: a cross-shard commit replicates as one record
// per shard (atomic per shard, not across shards — DESIGN.md §12), so
// the strongest audit runs with one shard. Ack'd mode makes the test
// deterministic: any result a clerk observed was acknowledged by the
// backup first, so the backup is always a consistent prefix ending at
// a client-observed point.
//
// Both daemons bind ephemeral ports (--port 0 / --repl-port 0) and
// report them on stdout — no fixed-port collisions across parallel
// ctest jobs.

#include <signal.h>
#include <stdlib.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/clerk_pool.h"
#include "core/property_checker.h"
#include "env/env.h"
#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/queue_repository.h"
#include "testing/subprocess.h"

namespace rrq {
namespace {

constexpr int kClerks = 4;
constexpr int kRequestsPerClerk = 12;
// Pool-wide completions before the primary is assassinated.
constexpr int kKillAfter = 12;
// Each driver holds its kHoldIndex-th request until the failover has
// happened, so every clerk provably works against the promoted backup.
constexpr int kHoldIndex = 6;

uint16_t ParsePort(const std::string& listening_line) {
  const size_t colon = listening_line.rfind(':');
  if (colon == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::strtoul(listening_line.c_str() + colon + 1, nullptr, 10));
}

std::string ParseRidFromReply(const std::string& reply) {
  // Reply bodies are "done:<rid>:<count>".
  const size_t first = reply.find(':');
  const size_t last = reply.rfind(':');
  if (first == std::string::npos || last <= first) return "";
  return reply.substr(first + 1, last - first - 1);
}

TEST(ReplicatedFailoverTest, PoolSurvivesPrimarySigkillViaPromotedBackup) {
  char primary_template[] = "/tmp/rrq_failover_p_XXXXXX";
  char backup_template[] = "/tmp/rrq_failover_b_XXXXXX";
  ASSERT_NE(mkdtemp(primary_template), nullptr);
  ASSERT_NE(mkdtemp(backup_template), nullptr);
  const std::string primary_dir = primary_template;
  const std::string backup_dir = backup_template;

  // Backup first (the primary's sender needs somewhere to connect).
  testing::Subprocess backup;
  ASSERT_TRUE(backup
                  .Spawn({RRQD_BINARY, "--dir", backup_dir, "--port", "0",
                          "--threads", "2", "--shards", "1", "--role",
                          "backup", "--repl-port", "0", "--audit-queue",
                          "audit"})
                  .ok());
  auto backup_line = backup.WaitForLine("rrqd: listening on", 30'000'000);
  ASSERT_TRUE(backup_line.ok()) << backup_line.status().ToString();
  const uint16_t backup_port = ParsePort(*backup_line);
  ASSERT_NE(backup_port, 0);
  auto repl_line = backup.WaitForLine("repl listening on", 30'000'000);
  ASSERT_TRUE(repl_line.ok()) << repl_line.status().ToString();
  const uint16_t repl_port = ParsePort(*repl_line);
  ASSERT_NE(repl_port, 0);

  testing::Subprocess primary;
  ASSERT_TRUE(primary
                  .Spawn({RRQD_BINARY, "--dir", primary_dir, "--port", "0",
                          "--threads", "2", "--shards", "1", "--role",
                          "primary", "--replicate-to",
                          "127.0.0.1:" + std::to_string(repl_port),
                          "--repl-mode", "ack", "--audit-queue", "audit"})
                  .ok());
  auto primary_line = primary.WaitForLine("rrqd: listening on", 30'000'000);
  ASSERT_TRUE(primary_line.ok()) << primary_line.status().ToString();
  const uint16_t primary_port = ParsePort(*primary_line);
  ASSERT_NE(primary_port, 0);

  // Wait for the pipeline to reach "shipping" (seed done, backup
  // bound to the stream) before any workload: from here on the
  // primary can die at any instant.
  {
    net::TcpChannelOptions admin_options;
    admin_options.port = primary_port;
    net::TcpChannel admin(admin_options);
    net::ChannelQueueApi api(&admin);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      auto status = api.ReplicationStatus();
      if (status.ok() && status->state == "shipping") break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << (status.ok() ? status->state : status.status().ToString());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  client::ClerkPoolOptions pool_options;
  pool_options.channel.port = primary_port;
  pool_options.channel.call_timeout_micros = 10'000'000;
  pool_options.channel.max_connect_attempts = 25;
  pool_options.channel.backoff_initial_micros = 5'000;
  pool_options.clerks = kClerks;
  pool_options.receive_timeout_micros = 200'000;
  pool_options.max_recovery_attempts = 128;
  pool_options.max_poll_attempts = 400;
  client::ClerkPool pool(pool_options);
  ASSERT_TRUE(pool.Start().ok());

  std::mutex audit_mu;
  core::PropertyChecker checker;
  std::set<std::string> submitted;

  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  std::atomic<bool> failed_over{false};

  // The assassin-and-coroner: kill the primary mid-workload, promote
  // the backup, repoint the pool.
  std::thread killer([&] {
    while (completed.load(std::memory_order_acquire) < kKillAfter) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(primary.Signal(SIGKILL).ok());
    auto status = primary.Wait();
    ASSERT_TRUE(status.ok()) << status.status().ToString();

    net::TcpChannelOptions admin_options;
    admin_options.port = backup_port;
    net::TcpChannel admin(admin_options);
    net::ChannelQueueApi api(&admin);
    Status promoted = api.Promote();
    ASSERT_TRUE(promoted.ok()) << promoted.ToString();
    // Promote is idempotent: a racing second operator is a no-op.
    ASSERT_TRUE(api.Promote().ok());
    auto info = api.ReplicationStatus();
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->role, "backup");
    EXPECT_TRUE(info->promoted);
    EXPECT_GT(info->acked_seq, 0u);

    ASSERT_TRUE(pool.Repoint("127.0.0.1", backup_port).ok());
    failed_over.store(true, std::memory_order_release);
  });

  // One driver per clerk slot; rids are minted deterministically as
  // "pool-<i>#<j>" so the audit knows every rid up front.
  std::vector<std::thread> drivers;
  drivers.reserve(kClerks);
  for (int i = 0; i < kClerks; ++i) {
    drivers.emplace_back([&, i] {
      for (int j = 1; j <= kRequestsPerClerk; ++j) {
        if (j == kHoldIndex) {
          while (!failed_over.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        }
        const std::string rid =
            pool.client_id(static_cast<size_t>(i)) + "#" + std::to_string(j);
        {
          std::lock_guard<std::mutex> lock(audit_mu);
          submitted.insert(rid);
          checker.RecordSubmission(rid);
        }
        auto reply = pool.Execute(static_cast<size_t>(i), "work-" + rid);
        if (!reply.ok()) {
          ADD_FAILURE() << "request " << rid << ": "
                        << reply.status().ToString();
          failures.fetch_add(1);
          return;
        }
        const std::string replied_rid = ParseRidFromReply(*reply);
        EXPECT_EQ(replied_rid, rid) << *reply;
        {
          std::lock_guard<std::mutex> lock(audit_mu);
          if (submitted.count(replied_rid) == 0) {
            checker.RecordMismatchedReply(replied_rid);
          } else {
            checker.RecordReplyProcessed(replied_rid);
          }
        }
        completed.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& t : drivers) t.join();
  killer.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_TRUE(pool.Stop().ok());

  // The survivor's durable state is the only history that counts.
  ASSERT_TRUE(backup.Signal(SIGTERM).ok());
  auto exit_status = backup.Wait();
  ASSERT_TRUE(exit_status.ok()) << exit_status.status().ToString();

  queue::RepositoryOptions repo_options;
  repo_options.env = env::Env::Default();
  repo_options.dir = backup_dir + "/qm";
  repo_options.shards = 1;
  queue::QueueRepository survivor("qm", repo_options);
  ASSERT_TRUE(survivor.Open().ok());
  ASSERT_TRUE(survivor.QueueExists("audit"));
  for (;;) {
    auto element = survivor.Dequeue(nullptr, "audit");
    if (!element.ok()) break;
    // Audit entries are "exec:<rid>:<count>".
    const std::string& entry = element->contents;
    const size_t first = entry.find(':');
    const size_t last = entry.rfind(':');
    ASSERT_NE(first, std::string::npos) << entry;
    ASSERT_GT(last, first) << entry;
    checker.RecordCommittedExecution(entry.substr(first + 1, last - first - 1));
  }

  const auto verdict = checker.Check();
  EXPECT_EQ(verdict.submitted,
            static_cast<uint64_t>(kClerks * kRequestsPerClerk));
  EXPECT_TRUE(verdict.ExactlyOnceHolds())
      << "duplicates=" << verdict.duplicate_executions
      << " lost=" << verdict.lost_requests
      << " phantom=" << verdict.phantom_executions;
  EXPECT_TRUE(verdict.AtLeastOnceRepliesHold())
      << "unprocessed=" << verdict.unprocessed_replies;
  EXPECT_TRUE(verdict.MatchingHolds())
      << "mismatched=" << verdict.mismatched_replies;
  EXPECT_TRUE(verdict.AllHold());
}

}  // namespace
}  // namespace rrq
