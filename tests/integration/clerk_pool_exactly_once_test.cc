// The paper's guarantees for a whole clerk *pool*: K clerks share one
// pipelined TCP connection to an rrqd daemon in a child process; the
// daemon is SIGKILLed mid-workload and restarted on the same state
// directory (on a fresh ephemeral port — the shared channel is
// retargeted — so a parallel test grabbing the old port can never
// flake the respawn). Every clerk must ride out the shared-channel loss —
// the one failure drops all K sessions at once — and resolve its own
// §2 uncertainty through re-Connect. Afterwards the daemon's durable
// KvStore is opened in-process and the per-rid execution counters fed
// to the PropertyChecker: exactly-once per clerk, across a process
// that genuinely died under a multiplexed socket.
//
// The daemon binary path arrives via the RRQD_BINARY compile
// definition (see tests/CMakeLists.txt).

#include <signal.h>
#include <stdlib.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/clerk_pool.h"
#include "core/property_checker.h"
#include "env/env.h"
#include "storage/kv_store.h"
#include "testing/subprocess.h"
#include "txn/txn_manager.h"

namespace rrq {
namespace {

constexpr int kClerks = 4;
constexpr int kRequestsPerClerk = 12;
// Total completions (across all clerks) before the daemon is killed.
constexpr int kKillAfter = 12;
// Each driver holds its request with this 1-based index until the kill
// has landed, so every clerk provably works against the restarted
// daemon.
constexpr int kHoldIndex = 6;

uint16_t ParsePort(const std::string& listening_line) {
  const size_t colon = listening_line.rfind(':');
  if (colon == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::strtoul(listening_line.c_str() + colon + 1, nullptr, 10));
}

std::vector<std::string> RrqdArgv(const std::string& dir, uint16_t port) {
  // Forced uring: the daemon this pool hammers (and SIGKILLs) runs the
  // io_uring backend wherever the kernel has it, degrading to epoll
  // with a logged reason elsewhere — never a startup failure (§13).
  return {RRQD_BINARY,  "--dir",     dir,
          "--port",     std::to_string(port),
          "--threads",  "2",
          "--net-backend", "uring"};
}

std::string ParseRidFromReply(const std::string& reply) {
  // Reply bodies are "done:<rid>:<count>".
  const size_t first = reply.find(':');
  const size_t last = reply.rfind(':');
  if (first == std::string::npos || last <= first) return "";
  return reply.substr(first + 1, last - first - 1);
}

TEST(ClerkPoolExactlyOnceTest, PoolSurvivesDaemonSigkillMidWorkload) {
  char dir_template[] = "/tmp/rrq_pool_e1_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  testing::Subprocess daemon;
  ASSERT_TRUE(daemon.Spawn(RrqdArgv(dir, 0)).ok());
  auto listening = daemon.WaitForLine("listening on", 30'000'000);
  ASSERT_TRUE(listening.ok()) << listening.status().ToString();
  const uint16_t port = ParsePort(*listening);
  ASSERT_NE(port, 0);

  client::ClerkPoolOptions pool_options;
  pool_options.channel.port = port;
  pool_options.channel.call_timeout_micros = 10'000'000;
  pool_options.channel.max_connect_attempts = 25;
  pool_options.channel.backoff_initial_micros = 5'000;
  pool_options.clerks = kClerks;
  pool_options.receive_timeout_micros = 200'000;
  pool_options.max_recovery_attempts = 64;
  client::ClerkPool pool(pool_options);
  ASSERT_TRUE(pool.Start().ok());

  std::mutex audit_mu;
  core::PropertyChecker checker;
  std::set<std::string> submitted;

  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  std::atomic<bool> killed{false};

  // The assassin: once kKillAfter requests have completed across the
  // pool, SIGKILL the daemon, pause, restart it on the same state
  // directory but a fresh ephemeral port, and retarget the shared
  // channel at the reborn daemon.
  std::thread killer([&daemon, &pool, &completed, &killed, &dir]() {
    while (completed.load(std::memory_order_acquire) < kKillAfter) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(daemon.Signal(SIGKILL).ok());
    auto status = daemon.Wait();
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_TRUE(daemon.Spawn(RrqdArgv(dir, 0)).ok());
    auto line = daemon.WaitForLine("listening on", 30'000'000);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    const uint16_t new_port = ParsePort(*line);
    ASSERT_NE(new_port, 0);
    ASSERT_TRUE(pool.Repoint("127.0.0.1", new_port).ok());
    killed.store(true, std::memory_order_release);
  });

  // One driver thread per clerk, all multiplexing the one socket. Slot
  // i's ReliableClient mints rids "pool-<i>#<j>" deterministically, so
  // the audit knows each rid before its reply is seen.
  std::vector<std::thread> drivers;
  drivers.reserve(kClerks);
  for (int i = 0; i < kClerks; ++i) {
    drivers.emplace_back([&, i] {
      for (int j = 1; j <= kRequestsPerClerk; ++j) {
        if (j == kHoldIndex) {
          while (!killed.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        }
        const std::string rid =
            pool.client_id(static_cast<size_t>(i)) + "#" + std::to_string(j);
        {
          std::lock_guard<std::mutex> lock(audit_mu);
          submitted.insert(rid);
          checker.RecordSubmission(rid);
        }
        auto reply = pool.Execute(static_cast<size_t>(i),
                                  "work-" + rid);
        if (!reply.ok()) {
          ADD_FAILURE() << "request " << rid << ": "
                        << reply.status().ToString();
          failures.fetch_add(1);
          return;
        }
        const std::string replied_rid = ParseRidFromReply(*reply);
        EXPECT_EQ(replied_rid, rid) << *reply;
        {
          std::lock_guard<std::mutex> lock(audit_mu);
          if (submitted.count(replied_rid) == 0) {
            checker.RecordMismatchedReply(replied_rid);
          } else {
            checker.RecordReplyProcessed(replied_rid);
          }
        }
        completed.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& t : drivers) t.join();
  killer.join();
  ASSERT_EQ(failures.load(), 0);

  // The one channel must have actually ridden out a daemon death, and
  // every clerk must have resynchronized over it at least once.
  EXPECT_GE(pool.channel()->connects(), 2u);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_GE(pool.reliable(i)->reconnects(), 2u) << "slot " << i;
    EXPECT_EQ(pool.reliable(i)->completed(),
              static_cast<uint64_t>(kRequestsPerClerk))
        << "slot " << i;
  }
  EXPECT_TRUE(pool.Stop().ok());

  // Shut the daemon down cleanly and open its state in-process.
  ASSERT_TRUE(daemon.Signal(SIGTERM).ok());
  auto exit_status = daemon.Wait();
  ASSERT_TRUE(exit_status.ok()) << exit_status.status().ToString();

  env::Env* env = env::Env::Default();
  txn::TxnManagerOptions txn_options;
  txn_options.env = env;
  txn_options.dir = dir + "/txn";
  txn::TransactionManager txn_mgr(txn_options);
  ASSERT_TRUE(txn_mgr.Open().ok());

  storage::KvStoreOptions db_options;
  db_options.env = env;
  db_options.dir = dir + "/db";
  db_options.in_doubt_resolver = [&txn_mgr](txn::TxnId id) {
    return txn_mgr.WasCommitted(id);
  };
  storage::KvStore db("db", db_options);
  ASSERT_TRUE(db.Open().ok());

  // The daemon's handler incremented exec/<rid> once per committed
  // execution — the ground truth for exactly-once, per clerk.
  for (const std::string& key : db.ScanKeys("exec/")) {
    const std::string rid = key.substr(5);
    auto count = db.GetCommitted(key);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    const uint64_t n = std::strtoull(count->c_str(), nullptr, 10);
    ASSERT_GE(n, 1u);
    for (uint64_t e = 0; e < n; ++e) checker.RecordCommittedExecution(rid);
  }

  const auto verdict = checker.Check();
  EXPECT_EQ(verdict.submitted,
            static_cast<uint64_t>(kClerks * kRequestsPerClerk));
  EXPECT_TRUE(verdict.ExactlyOnceHolds())
      << "duplicates=" << verdict.duplicate_executions
      << " lost=" << verdict.lost_requests
      << " phantom=" << verdict.phantom_executions;
  EXPECT_TRUE(verdict.AtLeastOnceRepliesHold())
      << "unprocessed=" << verdict.unprocessed_replies;
  EXPECT_TRUE(verdict.MatchingHolds())
      << "mismatched=" << verdict.mismatched_replies;
  EXPECT_TRUE(verdict.AllHold());
}

}  // namespace
}  // namespace rrq
