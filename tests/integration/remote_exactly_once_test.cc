// The paper's guarantees, out of process: a ReliableClient talks over
// real loopback TCP to an rrqd daemon in a child process; the daemon
// is SIGKILLed mid-workload and restarted on the same state directory
// (on a fresh ephemeral port — the channel is retargeted — so a
// parallel test grabbing the old port can never flake the respawn). Afterwards the daemon's durable KvStore is opened
// in-process and the per-rid execution counters it kept are fed to the
// PropertyChecker: every submitted request must have executed exactly
// once, every reply processed at least once, and every processed reply
// must match a submitted rid — across a process that genuinely died.
//
// The daemon binary path arrives via the RRQD_BINARY compile
// definition (see tests/CMakeLists.txt).

#include <signal.h>
#include <stdlib.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/reliable_client.h"
#include "core/property_checker.h"
#include "env/env.h"
#include "net/remote_queue_api.h"
#include "storage/kv_store.h"
#include "testing/subprocess.h"
#include "txn/txn_manager.h"

namespace rrq {
namespace {

constexpr int kRequests = 24;
constexpr int kKillAfter = 8;

uint16_t ParsePort(const std::string& listening_line) {
  const size_t colon = listening_line.rfind(':');
  if (colon == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::strtoul(listening_line.c_str() + colon + 1, nullptr, 10));
}

std::vector<std::string> RrqdArgv(const std::string& dir, uint16_t port) {
  return {RRQD_BINARY,  "--dir",     dir,
          "--port",     std::to_string(port),
          "--threads",  "2"};
}

std::string ParseRidFromReply(const std::string& reply) {
  // Reply bodies are "done:<rid>:<count>".
  const size_t first = reply.find(':');
  const size_t last = reply.rfind(':');
  if (first == std::string::npos || last <= first) return "";
  return reply.substr(first + 1, last - first - 1);
}

TEST(RemoteExactlyOnceTest, SurvivesDaemonSigkillMidWorkload) {
  char dir_template[] = "/tmp/rrq_remote_e1_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  testing::Subprocess daemon;
  ASSERT_TRUE(daemon.Spawn(RrqdArgv(dir, 0)).ok());
  auto listening = daemon.WaitForLine("listening on", 30'000'000);
  ASSERT_TRUE(listening.ok()) << listening.status().ToString();
  const uint16_t port = ParsePort(*listening);
  ASSERT_NE(port, 0);

  net::TcpChannelOptions channel_options;
  channel_options.port = port;
  channel_options.call_timeout_micros = 10'000'000;
  channel_options.max_connect_attempts = 25;
  channel_options.backoff_initial_micros = 5'000;
  net::TcpRemoteQueueApi api(channel_options);

  // A remote client must provision its own reply queue on the daemon.
  ASSERT_TRUE(api.CreateQueue("reply.c").ok());

  core::PropertyChecker checker;
  std::set<std::string> submitted;

  client::ReliableClientOptions client_options;
  client_options.clerk.client_id = "c";
  client_options.clerk.request_queue = "requests";
  client_options.clerk.reply_queue = "reply.c";
  client_options.clerk.api = &api;
  client_options.clerk.receive_timeout_micros = 200'000;
  client_options.max_recovery_attempts = 64;
  client::ReliableClient client(
      client_options,
      [&checker, &submitted](const std::string& reply, bool /*maybe_dup*/) {
        const std::string rid = ParseRidFromReply(reply);
        if (submitted.count(rid) == 0) {
          checker.RecordMismatchedReply(rid);
        } else {
          checker.RecordReplyProcessed(rid);
        }
        return Status::OK();
      });
  ASSERT_TRUE(client.Start().ok());

  // The assassin: once kKillAfter requests have completed, SIGKILL the
  // daemon, pause, and restart it on the same state directory but a
  // fresh ephemeral port, then retarget the channel. The main loop
  // holds request kKillAfter+1 until the restart has landed, so the
  // remaining requests provably run against a daemon that died and
  // recovered.
  std::atomic<int> completed{0};
  std::atomic<bool> killed{false};
  std::thread killer([&daemon, &api, &completed, &killed, &dir]() {
    while (completed.load(std::memory_order_acquire) < kKillAfter) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(daemon.Signal(SIGKILL).ok());
    auto status = daemon.Wait();
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_TRUE(daemon.Spawn(RrqdArgv(dir, 0)).ok());
    auto line = daemon.WaitForLine("listening on", 30'000'000);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    const uint16_t new_port = ParsePort(*line);
    ASSERT_NE(new_port, 0);
    api.channel()->SetTarget("127.0.0.1", new_port);
    killed.store(true, std::memory_order_release);
  });

  for (int i = 1; i <= kRequests; ++i) {
    if (i == kKillAfter + 1) {
      while (!killed.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    const std::string rid = "c#" + std::to_string(i);
    submitted.insert(rid);
    checker.RecordSubmission(rid);
    auto reply = client.Execute("work-" + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << "request " << rid << ": "
                            << reply.status().ToString();
    EXPECT_EQ(ParseRidFromReply(*reply), rid) << *reply;
    completed.store(i, std::memory_order_release);
  }
  killer.join();
  // The channel must have actually ridden out a daemon death.
  EXPECT_GE(api.channel()->connects(), 2u);
  EXPECT_TRUE(client.Stop().ok());

  // Shut the daemon down cleanly and open its state in-process.
  ASSERT_TRUE(daemon.Signal(SIGTERM).ok());
  auto exit_status = daemon.Wait();
  ASSERT_TRUE(exit_status.ok()) << exit_status.status().ToString();

  env::Env* env = env::Env::Default();
  txn::TxnManagerOptions txn_options;
  txn_options.env = env;
  txn_options.dir = dir + "/txn";
  txn::TransactionManager txn_mgr(txn_options);
  ASSERT_TRUE(txn_mgr.Open().ok());

  storage::KvStoreOptions db_options;
  db_options.env = env;
  db_options.dir = dir + "/db";
  db_options.in_doubt_resolver = [&txn_mgr](txn::TxnId id) {
    return txn_mgr.WasCommitted(id);
  };
  storage::KvStore db("db", db_options);
  ASSERT_TRUE(db.Open().ok());

  // The daemon's handler incremented exec/<rid> once per committed
  // execution — the ground truth for exactly-once.
  for (const std::string& key : db.ScanKeys("exec/")) {
    const std::string rid = key.substr(5);
    auto count = db.GetCommitted(key);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    const uint64_t n = std::strtoull(count->c_str(), nullptr, 10);
    ASSERT_GE(n, 1u);
    for (uint64_t e = 0; e < n; ++e) checker.RecordCommittedExecution(rid);
  }

  const auto verdict = checker.Check();
  EXPECT_EQ(verdict.submitted, static_cast<uint64_t>(kRequests));
  EXPECT_TRUE(verdict.ExactlyOnceHolds())
      << "duplicates=" << verdict.duplicate_executions
      << " lost=" << verdict.lost_requests
      << " phantom=" << verdict.phantom_executions;
  EXPECT_TRUE(verdict.AtLeastOnceRepliesHold())
      << "unprocessed=" << verdict.unprocessed_replies;
  EXPECT_TRUE(verdict.MatchingHolds())
      << "mismatched=" << verdict.mismatched_replies;
  EXPECT_TRUE(verdict.AllHold());
}

}  // namespace
}  // namespace rrq
