// Head-to-head: the §2 raw-message baselines really do lose or
// duplicate requests under the same fault levels the queued protocol
// survives. This is the paper's central motivating comparison.
#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/property_checker.h"
#include "core/request_system.h"
#include "storage/kv_store.h"

namespace rrq::core {
namespace {

struct BaselineRun {
  uint64_t executed = 0;   // Committed server-side executions.
  uint64_t completed = 0;  // Client saw a reply.
  uint64_t unknown = 0;    // Client gave up with fate unknown.
  PropertyChecker checker;
};

void RunBaseline(RetryPolicy policy, double drop_probability, int requests,
                 BaselineRun* out) {
  comm::Network net(/*seed=*/policy == RetryPolicy::kAtMostOnce ? 77 : 78);
  txn::TransactionManager txn_mgr;
  ASSERT_TRUE(txn_mgr.Open().ok());

  RawMessageServer server(
      &net, "srv", &txn_mgr,
      [out](txn::Transaction* t, const std::string& rid,
            const std::string&) -> Result<std::string> {
        t->OnCommit([out, rid]() {
          out->checker.RecordCommittedExecution(rid);
          ++out->executed;
        });
        return std::string("ok");
      });
  ASSERT_TRUE(server.Register().ok());

  comm::LinkFaults faults;
  faults.drop_probability = drop_probability;
  net.SetLinkFaults("cli", "srv", faults);

  RawMessageClient client(&net, "cli", "srv", policy);
  for (int i = 0; i < requests; ++i) {
    const std::string rid = "raw#" + std::to_string(i);
    out->checker.RecordSubmission(rid);
    auto reply = client.Execute(rid, "work");
    if (reply.ok()) {
      ++out->completed;
      out->checker.RecordReplyProcessed(rid);
    } else {
      ++out->unknown;
    }
  }
}

TEST(BaselineTest, AtMostOnceLosesRequests) {
  BaselineRun run;
  RunBaseline(RetryPolicy::kAtMostOnce, 0.25, 200, &run);
  auto verdict = run.checker.Check();
  // Without queues and without retry, some requests are simply lost.
  EXPECT_GT(verdict.lost_requests, 0u);
  // And at-most-once means no duplicates.
  EXPECT_EQ(verdict.duplicate_executions, 0u);
  EXPECT_GT(run.unknown, 0u);
}

TEST(BaselineTest, AtLeastOnceDuplicatesRequests) {
  BaselineRun run;
  RunBaseline(RetryPolicy::kAtLeastOnce, 0.25, 200, &run);
  auto verdict = run.checker.Check();
  // Blind retry executes some non-idempotent requests twice or more.
  EXPECT_GT(verdict.duplicate_executions, 0u);
}

TEST(BaselineTest, AtMostOnceUncertaintyIsReal) {
  // The §2 dilemma in one assertion: among the failures the client
  // observed, some requests DID execute (lost reply) and some did NOT
  // (lost request) — the client cannot tell which from the error.
  BaselineRun run;
  RunBaseline(RetryPolicy::kAtMostOnce, 0.25, 300, &run);
  auto verdict = run.checker.Check();
  const uint64_t executed_but_failed =
      run.executed - run.completed;  // Executions the client missed.
  EXPECT_GT(executed_but_failed, 0u);
  EXPECT_GT(verdict.lost_requests, 0u);
}

TEST(BaselineTest, QueuedProtocolSurvivesSameFaultLevel) {
  SystemOptions options;
  options.remote_clients = true;
  options.client_link_faults.drop_probability = 0.25;
  options.seed = 79;
  options.receive_timeout_micros = 20'000;
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;
  auto server = system.MakeServer(
      [&checker](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        const std::string rid = request.rid;
        t->OnCommit(
            [&checker, rid]() { checker.RecordCommittedExecution(rid); });
        return std::string("ok");
      });
  ASSERT_TRUE(server->Start().ok());
  auto client = system.MakeClient("queued", nullptr);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    checker.RecordSubmission("queued#" + std::to_string(i + 1));
    auto reply = (*client)->Execute("w");
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.status().ToString();
    checker.RecordReplyProcessed("queued#" + std::to_string(i + 1));
  }
  server->Stop();
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold()) << "dups=" << verdict.duplicate_executions
                                 << " lost=" << verdict.lost_requests;
  EXPECT_EQ(verdict.submitted, static_cast<uint64_t>(kRequests));
  // The network really was this hostile.
  EXPECT_GT(system.network()->messages_dropped(), 0u);
}

}  // namespace
}  // namespace rrq::core
