// §6's distributed case: a request whose transaction spans TWO queue
// repositories (different "nodes") plus a database — driven through
// full two-phase commit with a durable coordinator decision log, and
// recovered through every in-doubt window.
#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"

namespace rrq {
namespace {

class DistributedTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn::TxnManagerOptions txn_options;
    txn_options.env = &coordinator_env_;
    txn_options.dir = "/txn";
    txn_mgr_ = std::make_unique<txn::TransactionManager>(txn_options);
    ASSERT_TRUE(txn_mgr_->Open().ok());
    repo_a_ = MakeRepo("a", &env_a_);
    repo_b_ = MakeRepo("b", &env_b_);
    ASSERT_TRUE(repo_a_->CreateQueue("in").ok());
    ASSERT_TRUE(repo_b_->CreateQueue("out").ok());
  }

  std::unique_ptr<queue::QueueRepository> MakeRepo(const std::string& name,
                                                   env::MemEnv* env) {
    queue::RepositoryOptions options;
    options.env = env;
    options.dir = "/qm-" + name;
    // Recovering nodes consult the coordinator (presumed abort): the
    // live one when present, else the durable decision the test
    // stands in for.
    options.in_doubt_resolver = [this](txn::TxnId id) {
      return txn_mgr_ != nullptr ? txn_mgr_->WasCommitted(id)
                                 : decision_was_commit_;
    };
    auto repo = std::make_unique<queue::QueueRepository>(name, options);
    EXPECT_TRUE(repo->Open().ok());
    return repo;
  }

  bool decision_was_commit_ = false;
  env::MemEnv coordinator_env_, env_a_, env_b_;
  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<queue::QueueRepository> repo_a_;
  std::unique_ptr<queue::QueueRepository> repo_b_;
};

TEST_F(DistributedTxnTest, CrossRepositoryMoveIsAtomic) {
  ASSERT_TRUE(repo_a_->Enqueue(nullptr, "in", "cargo").ok());
  {
    auto txn = txn_mgr_->Begin();
    auto got = repo_a_->Dequeue(txn.get(), "in");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(repo_b_->Enqueue(txn.get(), "out", got->contents).ok());
    txn->Abort();
  }
  EXPECT_EQ(*repo_a_->Depth("in"), 1u);
  EXPECT_EQ(*repo_b_->Depth("out"), 0u);
  {
    auto txn = txn_mgr_->Begin();
    auto got = repo_a_->Dequeue(txn.get(), "in");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(repo_b_->Enqueue(txn.get(), "out", got->contents).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(*repo_a_->Depth("in"), 0u);
  EXPECT_EQ(*repo_b_->Depth("out"), 1u);
}

TEST_F(DistributedTxnTest, ThreeParticipantTransaction) {
  storage::KvStoreOptions kv_options;
  kv_options.env = &env_a_;
  kv_options.dir = "/db";
  kv_options.in_doubt_resolver = [this](txn::TxnId id) {
    return txn_mgr_->WasCommitted(id);
  };
  storage::KvStore db("db", kv_options);
  ASSERT_TRUE(db.Open().ok());

  ASSERT_TRUE(repo_a_->Enqueue(nullptr, "in", "job").ok());
  auto txn = txn_mgr_->Begin();
  auto got = repo_a_->Dequeue(txn.get(), "in");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(db.Put(txn.get(), "processed", got->contents).ok());
  ASSERT_TRUE(repo_b_->Enqueue(txn.get(), "out", "reply").ok());
  ASSERT_TRUE(txn->Commit().ok());

  EXPECT_EQ(*db.GetCommitted("processed"), "job");
  EXPECT_EQ(*repo_b_->Depth("out"), 1u);
}

TEST_F(DistributedTxnTest, CrashAfterDecisionResolvesToCommitEverywhere) {
  // The classic 2PC window: both participants voted yes (durable
  // prepare records) and the coordinator durably decided COMMIT — then
  // every participant crashed before phase 2 reached it. Recovery
  // finds the in-doubt transactions and asks the coordinator, which
  // answers COMMIT.
  ASSERT_TRUE(repo_a_->Enqueue(nullptr, "in", "cargo").ok());
  auto txn = txn_mgr_->Begin();
  auto got = repo_a_->Dequeue(txn.get(), "in");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(repo_b_->Enqueue(txn.get(), "out", got->contents).ok());
  // Drive 2PC by hand up to (and including) the decision.
  ASSERT_TRUE(repo_a_->Prepare(txn->id()).ok());
  ASSERT_TRUE(repo_b_->Prepare(txn->id()).ok());
  // Crash both participant nodes: phase 2 never reaches them.
  env_a_.SimulateCrash();
  env_b_.SimulateCrash();
  // The coordinator's decision stands (stand-in for its durable log;
  // the coordinator log itself is covered by txn_manager_test).
  txn->Abort();  // Tidy the in-memory handle; durable state is what counts.
  txn.reset();
  txn_mgr_.reset();
  decision_was_commit_ = true;

  // Rebuild both participant nodes from their WALs: each finds an
  // in-doubt prepared transaction and asks the coordinator.
  auto recovered_a = MakeRepo("a", &env_a_);
  auto recovered_b = MakeRepo("b", &env_b_);
  EXPECT_EQ(*recovered_a->Depth("in"), 0u);   // Dequeue committed.
  EXPECT_EQ(*recovered_b->Depth("out"), 1u);  // Enqueue committed.
  auto element = recovered_b->Dequeue(nullptr, "out");
  ASSERT_TRUE(element.ok());
  EXPECT_EQ(element->contents, "cargo");
}

TEST_F(DistributedTxnTest, CrashBeforeDecisionResolvesToAbortEverywhere) {
  // Prepared on both, but the coordinator never decided: presumed
  // abort must restore the element to repo A and keep repo B empty.
  ASSERT_TRUE(repo_a_->Enqueue(nullptr, "in", "cargo").ok());
  {
    auto txn = txn_mgr_->Begin();
    auto got = repo_a_->Dequeue(txn.get(), "in");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(repo_b_->Enqueue(txn.get(), "out", got->contents).ok());
    ASSERT_TRUE(repo_a_->Prepare(txn->id()).ok());
    ASSERT_TRUE(repo_b_->Prepare(txn->id()).ok());
    // Coordinator crashes before logging any decision.
    env_a_.SimulateCrash();
    env_b_.SimulateCrash();
    coordinator_env_.SimulateCrash();
    txn->Abort();  // Tidy the handle; durable state is what matters.
  }
  // Coordinator recovers with no decision record for the txn.
  txn::TxnManagerOptions txn_options;
  txn_options.env = &coordinator_env_;
  txn_options.dir = "/txn";
  txn_mgr_ = std::make_unique<txn::TransactionManager>(txn_options);
  ASSERT_TRUE(txn_mgr_->Open().ok());

  auto recovered_a = MakeRepo("a", &env_a_);
  auto recovered_b = MakeRepo("b", &env_b_);
  EXPECT_EQ(*recovered_a->Depth("in"), 1u);   // Restored.
  EXPECT_EQ(*recovered_b->Depth("out"), 0u);  // Never happened.
}

TEST_F(DistributedTxnTest, VetoByOneParticipantAbortsBoth) {
  // Kill the element mid-transaction: repo A's prepare vetoes, and
  // repo B must end up untouched.
  auto eid = repo_a_->Enqueue(nullptr, "in", "doomed");
  ASSERT_TRUE(eid.ok());
  auto txn = txn_mgr_->Begin();
  auto got = repo_a_->Dequeue(txn.get(), "in");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(repo_b_->Enqueue(txn.get(), "out", got->contents).ok());
  auto killed = repo_a_->KillElement(nullptr, "in", *eid);
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  Status commit = txn->Commit();
  EXPECT_TRUE(commit.IsAborted()) << commit.ToString();
  EXPECT_EQ(*repo_a_->Depth("in"), 0u);   // Killed.
  EXPECT_EQ(*repo_b_->Depth("out"), 0u);  // Atomically abandoned.
}

}  // namespace
}  // namespace rrq
