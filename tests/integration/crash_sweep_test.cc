// Deterministic crash-point sweep (tier-1): every mutating I/O
// operation of the canonical workload becomes, in turn, a power
// failure; after each, a fresh incarnation recovers and the paper's §3
// guarantees plus the on-disk file-set invariant must hold.
//
// By default (CI smoke) the clean-crash sweeps are exhaustive and the
// torn-write sweeps run a strided subset. Set RRQ_CRASH_SWEEP_FULL=1
// to sweep every index in every mode (scripts/tsan.sh does).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "testing/crash_sweep.h"

namespace rrq::testing {
namespace {

bool FullSweep() {
  const char* flag = std::getenv("RRQ_CRASH_SWEEP_FULL");
  return flag != nullptr && flag[0] == '1';
}

void ExpectClean(const SweepConfig& config) {
  SweepResult result = RunCrashSweep(config);
  EXPECT_GT(result.total_ops, 100u)
      << "workload shrank: the sweep no longer covers the interesting paths";
  std::string report;
  for (const std::string& violation : result.violations) {
    report += "\n  " + violation;
  }
  EXPECT_TRUE(result.violations.empty())
      << result.violations.size() << " violation(s) across "
      << result.points_run << " crash points (N=" << result.total_ops
      << "):" << report;
  ::testing::Test::RecordProperty("crash_points_total",
                                  static_cast<int>(result.total_ops));
  ::testing::Test::RecordProperty("crash_points_run",
                                  static_cast<int>(result.points_run));
}

TEST(CrashSweepTest, GroupCommitEveryCrashPointRecovers) {
  SweepConfig config;
  config.group_commit = true;
  ExpectClean(config);
}

TEST(CrashSweepTest, PerOpSyncEveryCrashPointRecovers) {
  SweepConfig config;
  config.group_commit = false;
  ExpectClean(config);
}

TEST(CrashSweepTest, TornWritesGroupCommit) {
  SweepConfig config;
  config.group_commit = true;
  config.torn_writes = true;
  config.stride = FullSweep() ? 1 : 3;
  ExpectClean(config);
}

TEST(CrashSweepTest, TornWritesPerOpSync) {
  SweepConfig config;
  config.group_commit = false;
  config.torn_writes = true;
  config.stride = FullSweep() ? 1 : 3;
  ExpectClean(config);
}

// Sharded repository (4 WAL streams, per-shard checkpoint slices):
// crash-before-op. Recovery must resolve cross-shard prepares
// atomically and the GC must retire per-shard orphan generations —
// CheckGenerationFileSet asserts no WAL-<g>-<s>/CHECKPOINT-<g>-<s>
// stragglers survive.
TEST(CrashSweepTest, ShardedEveryCrashPointRecovers) {
  SweepConfig config;
  config.group_commit = true;
  config.shards = 4;
  config.stride = FullSweep() ? 1 : 3;
  ExpectClean(config);
}

TEST(CrashSweepTest, ShardedTornWrites) {
  SweepConfig config;
  config.group_commit = true;
  config.torn_writes = true;
  config.shards = 4;
  config.stride = FullSweep() ? 1 : 3;
  ExpectClean(config);
}

}  // namespace
}  // namespace rrq::testing
