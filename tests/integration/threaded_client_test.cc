// §5's "concurrency within a client" extension: a client is identified
// by client-id plus thread-id, and the system maintains a
// [req-tag, reply-tag] pair per thread. In this library that falls out
// of persistent registration naturally: each thread registers as
// "<client>/<thread>" with its own reply queue, and recovers its own
// tags independently.
#include <gtest/gtest.h>

#include "core/property_checker.h"
#include "core/request_system.h"

namespace rrq::core {
namespace {

TEST(ThreadedClientTest, ThreadsOfOneClientKeepIndependentSessions) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;
  auto server = system.MakeServer(
      [&checker](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        const std::string rid = request.rid;
        t->OnCommit(
            [&checker, rid]() { checker.RecordCommittedExecution(rid); });
        return "for:" + request.rid;
      },
      /*threads=*/2);
  ASSERT_TRUE(server->Start().ok());

  constexpr int kThreads = 3;
  constexpr int kRequestsEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&system, &checker, &failures, t]() {
      const std::string id = "big-client/thread-" + std::to_string(t);
      auto client = system.MakeClient(id, nullptr);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequestsEach; ++i) {
        checker.RecordSubmission(id + "#" + std::to_string(i + 1));
        auto reply = (*client)->Execute("w");
        if (!reply.ok()) {
          ++failures;
        } else {
          checker.RecordReplyProcessed(id + "#" + std::to_string(i + 1));
        }
      }
      (*client)->Stop();
    });
  }
  for (auto& thread : threads) thread.join();
  server->Stop();
  EXPECT_EQ(failures.load(), 0);
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold());
  EXPECT_EQ(verdict.submitted,
            static_cast<uint64_t>(kThreads * kRequestsEach));
}

TEST(ThreadedClientTest, OneThreadCrashDoesNotDisturbSiblings) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> { return "r:" + request.body; });
  ASSERT_TRUE(server->Start().ok());

  // Thread 0 crashes mid-request; thread 1 keeps working throughout.
  auto t1 = system.MakeClient("c/thread-1", nullptr);
  ASSERT_TRUE(t1.ok());
  {
    auto t0 = system.MakeClient("c/thread-0", nullptr);
    ASSERT_TRUE(t0.ok());
    // t0 sends and crashes before receiving.
    client::Clerk* clerk = (*t0)->clerk();
    queue::RequestEnvelope envelope;
    envelope.rid = "c/thread-0#77";
    envelope.reply_queue = RequestSystem::ReplyQueueName("c/thread-0");
    envelope.body = "orphaned";
    ASSERT_TRUE(
        clerk->Send(queue::EncodeRequestEnvelope(envelope), "c/thread-0#77")
            .ok());
  }
  // Sibling unaffected.
  ASSERT_TRUE((*t1)->Execute("sibling-work").ok());

  // Thread 0's new incarnation recovers ITS OWN pending reply only.
  int processed = 0;
  client::ReliableClientOptions options;
  options.clerk = system.MakeClerkOptions("c/thread-0");
  client::ReliableClient reborn(options,
                                [&processed](const std::string& reply, bool) {
                                  ++processed;
                                  EXPECT_EQ(reply, "r:orphaned");
                                  return Status::OK();
                                });
  ASSERT_TRUE(reborn.Start().ok());
  EXPECT_EQ(processed, 1);
  server->Stop();
}

}  // namespace
}  // namespace rrq::core
