// End-to-end tests of the System Model (Fig 4/5): clerk + request
// queue + server + reply queue, via the RequestSystem facade.
#include <gtest/gtest.h>

#include "core/property_checker.h"
#include "core/request_system.h"

namespace rrq::core {
namespace {

server::RequestHandler EchoHandler(PropertyChecker* checker = nullptr) {
  return [checker](txn::Transaction* t,
                   const queue::RequestEnvelope& request)
             -> Result<std::string> {
    if (checker != nullptr) {
      const std::string rid = request.rid;
      t->OnCommit([checker, rid]() { checker->RecordCommittedExecution(rid); });
    }
    return "echo:" + request.body;
  };
}

TEST(SystemModelTest, SingleRequestRoundTrip) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(EchoHandler());

  int processed = 0;
  auto client = system.MakeClient(
      "alice",
      [&processed](const std::string&, bool) {
        ++processed;
        return Status::OK();
      });
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::thread server_thread([&server]() {
    while (server->processed_count() < 1) {
      server->ProcessOne();
    }
  });
  auto reply = (*client)->Execute("hello");
  server_thread.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "echo:hello");
  EXPECT_EQ(processed, 1);
  ASSERT_TRUE((*client)->Stop().ok());
}

TEST(SystemModelTest, SequenceOfRequestsStaysOrdered) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(EchoHandler());
  ASSERT_TRUE(server->Start().ok());

  auto client = system.MakeClient("bob", nullptr);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 20; ++i) {
    auto reply = (*client)->Execute("req-" + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "echo:req-" + std::to_string(i));
  }
  EXPECT_EQ((*client)->completed(), 20u);
  server->Stop();
}

TEST(SystemModelTest, ManyClientsOneServerPool) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;
  auto server = system.MakeServer(EchoHandler(&checker), /*threads=*/2);
  ASSERT_TRUE(server->Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 10;
  std::vector<std::thread> client_threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    client_threads.emplace_back([&system, &checker, &failures, c]() {
      auto client = system.MakeClient("client-" + std::to_string(c), nullptr);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequestsEach; ++i) {
        const std::string body = std::to_string(c) + ":" + std::to_string(i);
        checker.RecordSubmission("client-" + std::to_string(c) + "#" +
                                 std::to_string(i + 1));
        auto reply = (*client)->Execute(body);
        if (!reply.ok() || *reply != "echo:" + body) {
          ++failures;
        } else {
          checker.RecordReplyProcessed("client-" + std::to_string(c) + "#" +
                                       std::to_string(i + 1));
        }
      }
      (*client)->Stop();
    });
  }
  for (auto& thread : client_threads) thread.join();
  server->Stop();
  EXPECT_EQ(failures.load(), 0);
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold()) << "dups=" << verdict.duplicate_executions
                                 << " lost=" << verdict.lost_requests;
  EXPECT_EQ(verdict.submitted,
            static_cast<uint64_t>(kClients * kRequestsEach));
}

TEST(SystemModelTest, RemoteClientsOverCleanNetwork) {
  SystemOptions options;
  options.remote_clients = true;
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(EchoHandler());
  ASSERT_TRUE(server->Start().ok());
  auto client = system.MakeClient("remote-1", nullptr);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Execute("over-the-wire");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "echo:over-the-wire");
  server->Stop();
  EXPECT_GT(system.network()->messages_sent(), 0u);
}

TEST(SystemModelTest, RemoteClientsSurviveLossyNetwork) {
  SystemOptions options;
  options.remote_clients = true;
  options.client_link_faults.drop_probability = 0.15;
  options.seed = 1234;
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;
  auto server = system.MakeServer(EchoHandler(&checker));
  ASSERT_TRUE(server->Start().ok());

  auto client = system.MakeClient("lossy-1", nullptr);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  constexpr int kRequests = 25;
  for (int i = 0; i < kRequests; ++i) {
    checker.RecordSubmission("lossy-1#" + std::to_string(i + 1));
    auto reply = (*client)->Execute("r" + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.status().ToString();
    EXPECT_EQ(*reply, "echo:r" + std::to_string(i));
    checker.RecordReplyProcessed("lossy-1#" + std::to_string(i + 1));
  }
  server->Stop();
  // Despite dropped messages, exactly-once holds.
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold()) << "dups=" << verdict.duplicate_executions
                                 << " lost=" << verdict.lost_requests;
  EXPECT_GT(system.network()->messages_dropped(), 0u);
}

TEST(SystemModelTest, FailureRepliesForPoisonRequests) {
  SystemOptions options;
  options.request_queue_options.max_aborts = 2;
  options.request_queue_options.error_queue = "requests.err";
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        if (request.body == "poison") return Status::IOError("cannot");
        return "ok:" + request.body;
      });
  ASSERT_TRUE(server->Start().ok());

  auto client = system.MakeClient("carol", nullptr);
  ASSERT_TRUE(client.ok());
  // §3: the system replies even for requests it could not execute —
  // the reply is the promise it will never retry.
  auto failed = (*client)->Execute("poison");
  EXPECT_TRUE(failed.status().IsAborted()) << failed.status().ToString();
  // The session remains usable for the next request.
  auto good = (*client)->Execute("fine");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(*good, "ok:fine");
  server->Stop();
}

}  // namespace
}  // namespace rrq::core
