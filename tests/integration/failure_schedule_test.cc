// Property test: randomized crash schedules, parameterized by seed.
// Each run interleaves client requests with server crash injection,
// queue-manager crash/recovery, and (remote mode) message loss, then
// asserts the §3 guarantees via PropertyChecker.
#include <gtest/gtest.h>

#include "core/property_checker.h"
#include "core/request_system.h"
#include "util/random.h"

namespace rrq::core {
namespace {

class FailureScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FailureScheduleTest, GuaranteesHoldUnderRandomCrashes) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);

  SystemOptions options;
  options.seed = seed;
  options.receive_timeout_micros = 20'000;
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;

  auto make_server = [&system, &checker]() {
    return system.MakeServer(
        [&checker](txn::Transaction* t, const queue::RequestEnvelope& request)
            -> Result<std::string> {
          const std::string rid = request.rid;
          t->OnCommit(
              [&checker, rid]() { checker.RecordCommittedExecution(rid); });
          return "done:" + request.body;
        });
  };
  auto server = make_server();
  ASSERT_TRUE(server->Start().ok());

  auto client = system.MakeClient("prop-client", nullptr);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    // Randomly schedule a fault before this request.
    const uint64_t fault = rng.Uniform(10);
    if (fault < 3) {
      // Server crash mid-transaction on the next request.
      server->InjectCrashBeforeCommit(0);
    } else if (fault == 3) {
      // Whole back-end crash: stop the server, crash, recover, restart.
      server->Stop();
      server.reset();
      ASSERT_TRUE(system.CrashAndRecover().ok());
      server = make_server();
      ASSERT_TRUE(server->Start().ok());
    }

    const std::string rid = "prop-client#" + std::to_string(i + 1);
    checker.RecordSubmission(rid);
    auto reply = (*client)->Execute("payload-" + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << "seed " << seed << " request " << i << ": "
                            << reply.status().ToString();
    EXPECT_EQ(*reply, "done:payload-" + std::to_string(i));
    checker.RecordReplyProcessed(rid);
  }
  server->Stop();

  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold())
      << "seed " << seed << ": dups=" << verdict.duplicate_executions
      << " lost=" << verdict.lost_requests
      << " unprocessed=" << verdict.unprocessed_replies;
  EXPECT_EQ(verdict.submitted, static_cast<uint64_t>(kRequests));
}

TEST_P(FailureScheduleTest, GuaranteesHoldUnderMessageLossAndClientCrashes) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed * 7919 + 13);

  SystemOptions options;
  options.seed = seed;
  options.remote_clients = true;
  options.client_link_faults.drop_probability = 0.10;
  options.receive_timeout_micros = 20'000;
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;

  auto server = system.MakeServer(
      [&checker](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        const std::string rid = request.rid;
        t->OnCommit(
            [&checker, rid]() { checker.RecordCommittedExecution(rid); });
        return std::string("ok");
      });
  ASSERT_TRUE(server->Start().ok());

  // The client is crashed (destroyed) and reborn at random points;
  // rids continue across incarnations thanks to tag recovery.
  auto reply_processor = [&checker](const std::string&, bool) {
    return Status::OK();
  };
  auto client = system.MakeClient("mortal", reply_processor);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr int kRequests = 15;
  int submitted = 0;
  while (submitted < kRequests) {
    if (rng.Uniform(5) == 0) {
      // Client crash + rebirth: Start() resynchronizes.
      client->reset();
      client::ReliableClientOptions copts;
      copts.clerk = system.MakeClerkOptions("mortal");
      auto reborn = std::make_unique<client::ReliableClient>(
          copts, reply_processor);
      ASSERT_TRUE(reborn->Start().ok());
      *client = std::move(reborn);
    }
    const std::string body = "w" + std::to_string(submitted);
    auto reply = (*client)->Execute(body);
    ASSERT_TRUE(reply.ok()) << "seed " << seed << ": "
                            << reply.status().ToString();
    // Record the rid the clerk actually used (seq continues across
    // incarnations).
    const std::string rid = (*client)->clerk()->last_sent_rid();
    checker.RecordSubmission(rid);
    checker.RecordReplyProcessed(rid);
    ++submitted;
  }
  server->Stop();

  // Every submitted rid executed exactly once — no rid may execute
  // twice despite resends after lost acknowledgements, and none may
  // vanish.
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold())
      << "seed " << seed << ": dups=" << verdict.duplicate_executions
      << " lost=" << verdict.lost_requests
      << " phantom=" << verdict.phantom_executions;
  EXPECT_EQ(verdict.submitted, static_cast<uint64_t>(kRequests));
}

TEST_P(FailureScheduleTest, ExactlyOnceHoldsUnderMessageDuplication) {
  // One-way sends over a duplicating (and mildly lossy) network: the
  // network may deliver the same enqueue message twice, but persistent
  // registration dedups it — no rid may ever execute twice.
  const uint64_t seed = GetParam();
  SystemOptions options;
  options.seed = seed * 13 + 5;
  options.remote_clients = true;
  options.send_mode = client::SendMode::kOneWay;
  options.client_link_faults.duplicate_probability = 0.30;
  options.client_link_faults.drop_probability = 0.05;
  options.receive_timeout_micros = 20'000;
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;
  auto server = system.MakeServer(
      [&checker](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        const std::string rid = request.rid;
        t->OnCommit(
            [&checker, rid]() { checker.RecordCommittedExecution(rid); });
        return std::string("ok");
      });
  ASSERT_TRUE(server->Start().ok());
  auto client = system.MakeClient("dup-prone", nullptr);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr int kRequests = 15;
  for (int i = 0; i < kRequests; ++i) {
    auto reply = (*client)->Execute("w" + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << "seed " << seed << ": "
                            << reply.status().ToString();
    const std::string rid = (*client)->clerk()->last_sent_rid();
    checker.RecordSubmission(rid);
    checker.RecordReplyProcessed(rid);
  }
  server->Stop();
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold())
      << "seed " << seed << ": dups=" << verdict.duplicate_executions
      << " lost=" << verdict.lost_requests
      << " phantom=" << verdict.phantom_executions;
  EXPECT_GT(system.network()->messages_duplicated(), 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureScheduleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace rrq::core
