// §7 end-to-end: cancellation through the client API — KillElement for
// still-queued requests, prepare-veto for in-flight dequeues, saga
// compensation for committed pipeline stages.
#include <gtest/gtest.h>

#include "core/request_system.h"
#include "server/pipeline.h"
#include "storage/kv_store.h"

namespace rrq::core {
namespace {

TEST(CancellationTest, CancelBeforeServerTouchesIt) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  // No server running.
  auto client = system.MakeClient("canceller", nullptr);
  ASSERT_TRUE(client.ok());

  // Fire a request and cancel it before any server dequeues it. Use
  // the raw clerk so Execute's receive loop doesn't block us.
  client::Clerk* clerk = (*client)->clerk();
  queue::RequestEnvelope envelope;
  envelope.rid = "canceller#777";
  envelope.reply_queue = RequestSystem::ReplyQueueName("canceller");
  envelope.body = "never-run";
  // The ReliableClient has already connected this clerk; drive it
  // directly.
  ASSERT_TRUE(
      clerk->Send(queue::EncodeRequestEnvelope(envelope), "canceller#777")
          .ok());
  auto killed = clerk->CancelLastRequest();
  ASSERT_TRUE(killed.ok()) << killed.status().ToString();
  EXPECT_TRUE(*killed);
  EXPECT_EQ(*system.repo()->Depth(RequestSystem::kRequestQueue), 0u);
}

TEST(CancellationTest, CancelRacesDequeuerAndWins) {
  // The §7 semantics: killing an element held by an uncommitted
  // dequeuer aborts that transaction and deletes the element, undoing
  // any database work the server did for it.
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  storage::KvStore db("db", {});
  ASSERT_TRUE(db.Open().ok());
  {
    auto txn = system.txn_manager()->Begin();
    ASSERT_TRUE(db.Put(txn.get(), "applied", "0").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::atomic<bool> server_in_handler{false};
  std::atomic<bool> cancel_done{false};
  auto server = system.MakeServer(
      [&](txn::Transaction* t,
          const queue::RequestEnvelope&) -> Result<std::string> {
        RRQ_RETURN_IF_ERROR(db.Put(t, "applied", "1"));
        server_in_handler.store(true);
        // Hold the transaction open until the cancel lands.
        for (int i = 0; i < 1000 && !cancel_done.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return std::string("too-late?");
      });

  auto client = system.MakeClient("racer", nullptr);
  ASSERT_TRUE(client.ok());
  client::Clerk* clerk = (*client)->clerk();
  queue::RequestEnvelope envelope;
  envelope.rid = "racer#1";
  envelope.reply_queue = RequestSystem::ReplyQueueName("racer");
  envelope.body = "cancel-me";
  ASSERT_TRUE(
      clerk->Send(queue::EncodeRequestEnvelope(envelope), "racer#1").ok());

  std::thread server_thread([&server]() { server->ProcessOne(); });
  while (!server_in_handler.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto killed = clerk->CancelLastRequest();
  cancel_done.store(true);
  server_thread.join();
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  // The server's transaction was vetoed: no database effect.
  EXPECT_EQ(*db.GetCommitted("applied"), "0");
  EXPECT_EQ(server->processed_count(), 0u);
}

TEST(CancellationTest, MultiTransactionCancelNeedsCompensation) {
  // §7: "With multi-transaction requests, the cancellation request
  // fails once the first transaction in the sequence has committed.
  // Later cancellation can still be arranged by supporting
  // compensating transactions and sagas."
  txn::TransactionManager txn_mgr;
  ASSERT_TRUE(txn_mgr.Open().ok());
  queue::QueueRepository repo("qm");
  ASSERT_TRUE(repo.Open().ok());
  ASSERT_TRUE(repo.CreateQueue("rep").ok());
  storage::KvStore db("bank", {});
  ASSERT_TRUE(db.Open().ok());
  {
    auto txn = txn_mgr.Begin();
    ASSERT_TRUE(db.Put(txn.get(), "A", "1000").ok());
    ASSERT_TRUE(db.Put(txn.get(), "B", "0").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto adjust = [&db](txn::Transaction* t, const std::string& account,
                      int delta) -> Status {
    auto v = db.GetForUpdate(t, account);
    if (!v.ok()) return v.status();
    return db.Put(t, account, std::to_string(std::stoi(*v) + delta));
  };

  server::PipelineStage debit{
      "debit",
      [&adjust](txn::Transaction* t, const queue::RequestEnvelope&)
          -> Result<server::StageResult> {
        RRQ_RETURN_IF_ERROR(adjust(t, "A", -100));
        return server::StageResult{"debited", "100"};
      },
      [&adjust](txn::Transaction* t, const std::string& amount) -> Status {
        return adjust(t, "A", std::stoi(amount));
      }};
  server::PipelineStage credit{
      "credit",
      [&adjust](txn::Transaction* t, const queue::RequestEnvelope&)
          -> Result<server::StageResult> {
        RRQ_RETURN_IF_ERROR(adjust(t, "B", +100));
        return server::StageResult{"credited", "100"};
      },
      [&adjust](txn::Transaction* t, const std::string& amount) -> Status {
        return adjust(t, "B", -std::stoi(amount));
      }};
  server::PipelineOptions poptions;
  poptions.queue_prefix = "xfer";
  poptions.poll_timeout_micros = 0;
  server::Pipeline pipeline(poptions, &repo, &txn_mgr, {debit, credit});
  ASSERT_TRUE(pipeline.Setup().ok());

  queue::RequestEnvelope envelope;
  envelope.rid = "xfer#1";
  envelope.reply_queue = "rep";
  envelope.body = "transfer 100 A->B";
  ASSERT_TRUE(repo.Enqueue(nullptr, pipeline.entry_queue(),
                           queue::EncodeRequestEnvelope(envelope))
                  .ok());

  // First transaction commits.
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());
  EXPECT_EQ(*db.GetCommitted("A"), "900");

  // Plain KillElement-style cancel is now impossible (the element left
  // the entry queue); the saga path takes over.
  auto outcome = pipeline.Cancel("xfer#1");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, server::CancelOutcome::kCompensating);
  ASSERT_TRUE(pipeline.ProcessOneCompensation().ok());

  // Compensated: money restored, client told.
  EXPECT_EQ(*db.GetCommitted("A"), "1000");
  EXPECT_EQ(*db.GetCommitted("B"), "0");
  auto reply = repo.Dequeue(nullptr, "rep");
  ASSERT_TRUE(reply.ok());
  queue::ReplyEnvelope decoded;
  ASSERT_TRUE(queue::DecodeReplyEnvelope(reply->contents, &decoded).ok());
  EXPECT_EQ(decoded.rid, "xfer#1");
  EXPECT_FALSE(decoded.success);
}

}  // namespace
}  // namespace rrq::core
