// Adversarial validation of the §3 guarantees (Exactly-Once Request
// Processing, At-Least-Once Reply Processing, Request-Reply Matching)
// under server crashes, queue-manager crashes, and client crashes.
#include <gtest/gtest.h>

#include "core/property_checker.h"
#include "core/request_system.h"
#include "storage/kv_store.h"

namespace rrq::core {
namespace {

// A handler over a real transactional store, so "executed" has
// observable weight: each request appends its rid to an account log
// and increments a counter.
class CountingBackend {
 public:
  explicit CountingBackend(txn::TransactionManager* txn_mgr)
      : txn_mgr_(txn_mgr), store_("db", {}) {
    EXPECT_TRUE(store_.Open().ok());
    auto txn = txn_mgr_->Begin();
    EXPECT_TRUE(store_.Put(txn.get(), "counter", "0").ok());
    EXPECT_TRUE(txn->Commit().ok());
  }

  server::RequestHandler Handler(PropertyChecker* checker) {
    return [this, checker](txn::Transaction* t,
                           const queue::RequestEnvelope& request)
               -> Result<std::string> {
      RRQ_ASSIGN_OR_RETURN(std::string counter,
                           store_.GetForUpdate(t, "counter"));
      const int next = std::stoi(counter) + 1;
      RRQ_RETURN_IF_ERROR(store_.Put(t, "counter", std::to_string(next)));
      RRQ_RETURN_IF_ERROR(store_.Put(t, "done/" + request.rid, "1"));
      const std::string rid = request.rid;
      t->OnCommit([checker, rid]() { checker->RecordCommittedExecution(rid); });
      return std::to_string(next);
    };
  }

  int counter() { return std::stoi(*store_.GetCommitted("counter")); }

 private:
  txn::TransactionManager* txn_mgr_;
  storage::KvStore store_;
};

TEST(ExactlyOnceTest, ServerCrashesNeverLoseOrDuplicate) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;
  CountingBackend backend(system.txn_manager());
  auto server = system.MakeServer(backend.Handler(&checker));
  // Crash the server mid-transaction every few requests.
  ASSERT_TRUE(server->Start().ok());

  auto client = system.MakeClient("c", nullptr);
  ASSERT_TRUE(client.ok());
  constexpr int kRequests = 30;
  for (int i = 0; i < kRequests; ++i) {
    if (i % 5 == 0) server->InjectCrashBeforeCommit(0);
    checker.RecordSubmission("c#" + std::to_string(i + 1));
    auto reply = (*client)->Execute("w" + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    checker.RecordReplyProcessed("c#" + std::to_string(i + 1));
  }
  server->Stop();

  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.ExactlyOnceHolds())
      << "dups=" << verdict.duplicate_executions
      << " lost=" << verdict.lost_requests;
  EXPECT_EQ(backend.counter(), kRequests);  // Database agrees.
  EXPECT_GT(server->aborted_count(), 0u);   // Crashes really happened.
}

TEST(ExactlyOnceTest, QueueManagerCrashPreservesRequests) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;

  auto client = system.MakeClient("c", nullptr);
  ASSERT_TRUE(client.ok());

  // Submit while no server is running, so requests pile up durably.
  std::thread submitter([&client, &checker]() {
    for (int i = 0; i < 5; ++i) {
      checker.RecordSubmission("c#" + std::to_string(i + 1));
      auto reply = (*client)->Execute("r" + std::to_string(i));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      checker.RecordReplyProcessed("c#" + std::to_string(i + 1));
    }
  });

  // Let the first request land, then crash the queue manager.
  while (true) {
    auto depth = system.repo()->Depth(RequestSystem::kRequestQueue);
    if (depth.ok() && *depth >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(system.CrashAndRecover().ok());

  // Requests survived; a freshly built server drains them.
  PropertyChecker* checker_ptr = &checker;
  auto server = system.MakeServer(
      [checker_ptr](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        const std::string rid = request.rid;
        t->OnCommit(
            [checker_ptr, rid]() { checker_ptr->RecordCommittedExecution(rid); });
        return std::string("ok");
      });
  ASSERT_TRUE(server->Start().ok());
  submitter.join();
  server->Stop();

  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold()) << "dups=" << verdict.duplicate_executions
                                 << " lost=" << verdict.lost_requests;
}

TEST(ExactlyOnceTest, ClientCrashAfterSendStillGetsReplyOnce) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  PropertyChecker checker;
  CountingBackend backend(system.txn_manager());
  auto server = system.MakeServer(backend.Handler(&checker));
  ASSERT_TRUE(server->Start().ok());

  // First incarnation: Send directly through a raw clerk, then "crash"
  // before receiving.
  {
    client::Clerk clerk(system.MakeClerkOptions("phoenix"));
    Status s = system.repo()->CreateQueue(
        RequestSystem::ReplyQueueName("phoenix"));
    ASSERT_TRUE(s.ok() || s.IsAlreadyExists());
    ASSERT_TRUE(clerk.Connect().ok());
    queue::RequestEnvelope envelope;
    envelope.rid = "phoenix#1";
    envelope.reply_queue = RequestSystem::ReplyQueueName("phoenix");
    envelope.body = "survive-me";
    checker.RecordSubmission("phoenix#1");
    ASSERT_TRUE(
        clerk.Send(queue::EncodeRequestEnvelope(envelope), "phoenix#1").ok());
    // Crash: no Receive, no Disconnect.
  }

  // Second incarnation: ReliableClient::Start resynchronizes, finds
  // the outstanding request, and processes its reply.
  int processed = 0;
  client::ReliableClientOptions options;
  options.clerk = system.MakeClerkOptions("phoenix");
  client::ReliableClient reborn(options,
                                [&](const std::string&, bool) {
                                  ++processed;
                                  checker.RecordReplyProcessed("phoenix#1");
                                  return Status::OK();
                                });
  ASSERT_TRUE(reborn.Start().ok());
  server->Stop();

  EXPECT_EQ(processed, 1);
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold()) << "dups=" << verdict.duplicate_executions
                                 << " lost=" << verdict.lost_requests;
  EXPECT_EQ(backend.counter(), 1);

  // And the reborn client continues normally with fresh rids.
  auto server2 = system.MakeServer(backend.Handler(&checker));
  ASSERT_TRUE(server2->Start().ok());
  auto reply = reborn.Execute("next");
  server2->Stop();
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
}

TEST(ExactlyOnceTest, ClientCrashAfterReceiveReprocessesReply) {
  // At-least-once reply processing: crash between Receive-commit and
  // processing means the reply is processed again after recovery.
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> { return "R:" + request.body; });
  ASSERT_TRUE(server->Start().ok());

  // Run a full Execute (reply processed once)...
  int processed = 0;
  {
    client::ReliableClientOptions options;
    options.clerk = system.MakeClerkOptions("lazarus");
    Status s = system.repo()->CreateQueue(
        RequestSystem::ReplyQueueName("lazarus"));
    ASSERT_TRUE(s.ok() || s.IsAlreadyExists());
    client::ReliableClient first(options, [&processed](const std::string&,
                                                       bool) {
      ++processed;
      return Status::OK();
    });
    ASSERT_TRUE(first.Start().ok());
    ASSERT_TRUE(first.Execute("job").ok());
    EXPECT_EQ(processed, 1);
    // ...then crash WITHOUT disconnecting: to the system this is
    // indistinguishable from a crash right before processing.
  }

  client::ReliableClientOptions options;
  options.clerk = system.MakeClerkOptions("lazarus");
  client::ReliableClient reborn(options, [&processed](const std::string&,
                                                      bool maybe_duplicate) {
    ++processed;
    EXPECT_TRUE(maybe_duplicate);  // The client knows it may be a repeat.
    return Status::OK();
  });
  ASSERT_TRUE(reborn.Start().ok());
  server->Stop();
  // Reply processed at least once — here, twice (no testable device).
  EXPECT_EQ(processed, 2);
  EXPECT_EQ(reborn.redeliveries(), 1u);
}

TEST(ExactlyOnceTest, TestableDeviceMakesReplyProcessingExactlyOnce) {
  // Same crash point as above, but with a ticket printer: the device
  // state proves the reply was processed, so it is NOT reprinted (§3).
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> { return "TICKET:" + request.body; });
  ASSERT_TRUE(server->Start().ok());

  client::TicketPrinter printer;  // Survives client crashes.
  {
    auto client = system.MakeClient("teller", nullptr, &printer);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Execute("seat-4A").ok());
    ASSERT_EQ(printer.printed().size(), 1u);
    // Crash without disconnecting.
  }
  {
    client::ReliableClientOptions options;
    options.clerk = system.MakeClerkOptions("teller");
    options.device = &printer;
    client::ReliableClient reborn(options, nullptr);
    ASSERT_TRUE(reborn.Start().ok());
  }
  server->Stop();
  // Exactly one ticket, despite the crash-and-resync.
  auto printed = printer.printed();
  ASSERT_EQ(printed.size(), 1u);
  EXPECT_EQ(printed[0], "TICKET:seat-4A");
}

TEST(ExactlyOnceTest, DeviceCrashBeforeEmitStillPrintsExactlyOnce) {
  // Crash between Receive-commit and Emit: the device state equals the
  // checkpoint, so the recovered client MUST print.
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto server = system.MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> { return "TICKET:" + request.body; });
  ASSERT_TRUE(server->Start().ok());

  client::TicketPrinter printer;
  {
    // Drive the clerk manually so we can stop before Emit.
    Status s = system.repo()->CreateQueue(
        RequestSystem::ReplyQueueName("teller2"));
    ASSERT_TRUE(s.ok() || s.IsAlreadyExists());
    client::Clerk clerk(system.MakeClerkOptions("teller2"));
    ASSERT_TRUE(clerk.Connect().ok());
    queue::RequestEnvelope envelope;
    envelope.rid = "teller2#1";
    envelope.reply_queue = RequestSystem::ReplyQueueName("teller2");
    envelope.body = "seat-9C";
    ASSERT_TRUE(
        clerk.Send(queue::EncodeRequestEnvelope(envelope), "teller2#1").ok());
    // Receive with the device state as ckpt, then crash before Emit.
    Result<std::string> reply = Status::NotFound("pending");
    for (int i = 0; i < 100 && !reply.ok(); ++i) {
      reply = clerk.Receive(printer.ReadState());
    }
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    // CRASH: not printed.
  }
  EXPECT_EQ(printer.printed().size(), 0u);
  {
    client::ReliableClientOptions options;
    options.clerk = system.MakeClerkOptions("teller2");
    options.device = &printer;
    client::ReliableClient reborn(options, nullptr);
    ASSERT_TRUE(reborn.Start().ok());
  }
  server->Stop();
  auto printed = printer.printed();
  ASSERT_EQ(printed.size(), 1u);
  EXPECT_EQ(printed[0], "TICKET:seat-9C");
}

}  // namespace
}  // namespace rrq::core
