// Crash-consistency sweep over the backup applier's mutation points:
// every I/O operation a sequence of ApplyReplicatedRecord(record, seq)
// calls performs becomes, in turn, a simulated power failure. The
// recovered backup reports its watermark, applying resumes from there
// (re-shipping everything — dedup must absorb the overlap), and the
// final state must be byte-identical to an uncrashed run. This is the
// property the whole failover design rests on: a backup that crashes
// mid-apply and resumes never diverges from the primary's history.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "env/crash_point_env.h"
#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "util/random.h"

namespace rrq::repl {
namespace {

using queue::QueueRepository;
using queue::RepositoryOptions;

// A canonical record stream with some of everything the applier can
// mutate: queue creation, tagged enqueues from a stable registrant,
// destructive dequeues, a stop, and a trigger arm.
std::vector<std::string> CanonicalRecords() {
  std::vector<std::string> shipped;
  RepositoryOptions options;
  options.replication_sink = [&shipped](const Slice& record) {
    shipped.push_back(record.ToString());
    return Status::OK();
  };
  QueueRepository head("sweep-head", options);
  EXPECT_TRUE(head.Open().ok());
  EXPECT_TRUE(head.CreateQueue("work").ok());
  EXPECT_TRUE(head.CreateQueue("side").ok());
  EXPECT_TRUE(head.Register("work", "clerk-0", /*stable=*/true).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(head.Enqueue(nullptr, "work", "w" + std::to_string(i),
                             static_cast<uint32_t>(i % 2), "clerk-0",
                             "rid#" + std::to_string(i))
                    .ok());
  }
  EXPECT_TRUE(head.Dequeue(nullptr, "work").ok());
  EXPECT_TRUE(head.Enqueue(nullptr, "side", "s0").ok());
  EXPECT_TRUE(head.StopQueue("side").ok());
  queue::TriggerSpec trigger;
  trigger.watched_queue = "work";
  trigger.remaining = 50;
  trigger.target_queue = "side";
  trigger.contents = "join";
  EXPECT_TRUE(head.SetTrigger(trigger).ok());
  return shipped;
}

// Applies records [resume_from-1 ...] seq-tracked; stops early once
// the env has crashed. Errors during the armed window are expected.
void ApplyAll(QueueRepository* repo, const std::vector<std::string>& records,
              env::CrashPointEnv* env) {
  for (size_t i = 0; i < records.size(); ++i) {
    Status s = repo->ApplyReplicatedRecord(Slice(records[i]), i + 1);
    if (env != nullptr && env->crashed()) return;
    ASSERT_TRUE(s.ok()) << "record " << i << ": " << s.ToString();
  }
}

// Deterministic fingerprint: the snapshot record stream plus the
// applied watermark. Queue maps are ordered and each queue has at
// most one registrant, so equal states produce equal bytes.
std::string Fingerprint(QueueRepository* repo) {
  std::vector<std::string> records;
  EXPECT_TRUE(repo->CaptureReplicaSnapshot(nullptr, &records).ok());
  std::string fp = "wm=" + std::to_string(repo->applied_repl_seq());
  for (const std::string& r : records) {
    fp += "|";
    fp += r;
  }
  return fp;
}

RepositoryOptions BackupOptions(env::Env* env) {
  RepositoryOptions options;
  options.env = env;
  options.dir = "/backup";
  options.shards = 2;
  return options;
}

TEST(ApplierCrashSweepTest, EveryCrashPointRecoversAndConverges) {
  const std::vector<std::string> records = CanonicalRecords();
  ASSERT_GE(records.size(), 8u);

  // Uncrashed baseline.
  std::string want;
  uint64_t total_ops = 0;
  {
    env::MemEnv base;
    env::CrashPointEnv env(&base);
    QueueRepository backup("sweep-backup", BackupOptions(&env));
    ASSERT_TRUE(backup.Open().ok());
    ApplyAll(&backup, records, nullptr);
    EXPECT_EQ(backup.applied_repl_seq(), records.size());
    want = Fingerprint(&backup);
    total_ops = env.mutating_op_count();
  }
  ASSERT_GT(total_ops, 0u);

  util::Rng torn_rng(0x5eed);
  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("crash point " + std::to_string(k));
    env::MemEnv base;
    env::CrashPointEnv env(&base);
    {
      QueueRepository backup("sweep-backup", BackupOptions(&env));
      ASSERT_TRUE(backup.Open().ok());
      env.ResetCounter();
      env.ArmCrash(k, &torn_rng);
      ApplyAll(&backup, records, &env);
      env.Disarm();
    }
    base.SimulateCrash();

    // Next incarnation: recover, read the watermark, re-apply the
    // whole stream (a sender that lost its ack re-ships; dedup takes
    // care of the prefix).
    QueueRepository recovered("sweep-backup", BackupOptions(&env));
    ASSERT_TRUE(recovered.Open().ok());
    ASSERT_LE(recovered.applied_repl_seq(), records.size());
    ApplyAll(&recovered, records, nullptr);
    EXPECT_EQ(recovered.applied_repl_seq(), records.size());
    EXPECT_EQ(Fingerprint(&recovered), want);
  }
}

}  // namespace
}  // namespace rrq::repl
