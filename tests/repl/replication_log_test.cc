// The primary-side replication log: sequencing, ack trimming,
// retention overflow, and the blocking fetch/ack waits the sender and
// ack-mode committers park on.
#include "repl/replication_log.h"

#include <gtest/gtest.h>

#include <thread>

namespace rrq::repl {
namespace {

TEST(ReplicationLogTest, AppendsSequenceFromOne) {
  ReplicationLog log;
  EXPECT_EQ(log.head_seq(), 0u);
  EXPECT_EQ(log.base_seq(), 1u);
  EXPECT_EQ(log.Append("a"), 1u);
  EXPECT_EQ(log.Append("b"), 2u);
  EXPECT_EQ(log.head_seq(), 2u);
  EXPECT_EQ(log.base_seq(), 1u);
}

TEST(ReplicationLogTest, FetchReturnsFromRequestedSeq) {
  ReplicationLog log;
  log.Append("a");
  log.Append("b");
  log.Append("c");
  std::vector<std::string> records;
  ASSERT_TRUE(log.Fetch(2, 10, 0, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "b");
  EXPECT_EQ(records[1], "c");
  // max_records bounds the batch.
  records.clear();
  ASSERT_TRUE(log.Fetch(1, 2, 0, &records).ok());
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "a");
}

TEST(ReplicationLogTest, AckTrimsAndIsMonotonic) {
  ReplicationLog log;
  for (int i = 0; i < 5; ++i) log.Append("r" + std::to_string(i));
  log.Acked(3);
  EXPECT_EQ(log.acked(), 3u);
  EXPECT_EQ(log.base_seq(), 4u);
  // A stale (lower) ack neither regresses nor un-trims.
  log.Acked(1);
  EXPECT_EQ(log.acked(), 3u);
  EXPECT_EQ(log.base_seq(), 4u);
  // Fetching below the base is the fell-behind verdict.
  std::vector<std::string> records;
  Status s = log.Fetch(2, 10, 0, &records);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
}

TEST(ReplicationLogTest, RetentionDropsOldestAndFlagsOverflow) {
  ReplicationLog log(/*max_buffered=*/3);
  for (int i = 1; i <= 5; ++i) log.Append(std::to_string(i));
  EXPECT_EQ(log.head_seq(), 5u);
  EXPECT_EQ(log.base_seq(), 3u);
  EXPECT_TRUE(log.overflowed());  // Unacked records were dropped.
  std::vector<std::string> records;
  EXPECT_TRUE(log.Fetch(1, 10, 0, &records).IsAborted());
  ASSERT_TRUE(log.Fetch(3, 10, 0, &records).ok());
  EXPECT_EQ(records.size(), 3u);
}

TEST(ReplicationLogTest, AckedTrimmingIsNotOverflow) {
  ReplicationLog log(/*max_buffered=*/3);
  for (int i = 1; i <= 3; ++i) log.Append(std::to_string(i));
  log.Acked(3);
  for (int i = 4; i <= 6; ++i) log.Append(std::to_string(i));
  EXPECT_FALSE(log.overflowed());
}

TEST(ReplicationLogTest, FetchPastHeadTimesOutNotFound) {
  ReplicationLog log;
  log.Append("a");
  std::vector<std::string> records;
  Status s = log.Fetch(2, 10, 1'000, &records);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_TRUE(records.empty());
}

TEST(ReplicationLogTest, BlockedFetchWakesOnAppend) {
  ReplicationLog log;
  std::vector<std::string> records;
  std::thread appender([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Append("late");
  });
  Status s = log.Fetch(1, 10, 5'000'000, &records);
  appender.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "late");
}

TEST(ReplicationLogTest, WaitAckedReleasesOnAck) {
  ReplicationLog log;
  log.Append("a");
  std::thread acker([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Acked(1);
  });
  EXPECT_TRUE(log.WaitAcked(1, 5'000'000).ok());
  acker.join();
}

TEST(ReplicationLogTest, WaitAckedTimesOutUnavailable) {
  ReplicationLog log;
  log.Append("a");
  Status s = log.WaitAcked(1, 1'000);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(ReplicationLogTest, ShutdownCancelsBlockedWaiters) {
  ReplicationLog log;
  log.Append("a");
  std::thread stopper([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Shutdown();
  });
  std::vector<std::string> records;
  EXPECT_TRUE(log.Fetch(2, 10, 60'000'000, &records).IsCancelled());
  EXPECT_TRUE(log.WaitAcked(1, 60'000'000).IsCancelled());
  stopper.join();
}

TEST(ReplicationLogTest, SnapshotSuspendsAckWaits) {
  // While a seed snapshot is in progress the sender can't advance
  // acks, so WaitAcked must not park (ack mode degrades to async for
  // the duration of the seed).
  ReplicationLog log;
  log.Append("a");
  log.BeginSnapshot();
  EXPECT_TRUE(log.WaitAcked(1, 60'000'000).ok());  // No blocking.
  log.EndSnapshot();
  // The gate re-engages once the snapshot ends.
  Status s = log.WaitAcked(1, 1'000);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(ReplicationLogTest, BeginSnapshotReleasesParkedAckWaiters) {
  // A committer already parked in WaitAcked when the seed starts must
  // be released immediately — the capture drain waits on it.
  ReplicationLog log;
  log.Append("a");
  std::thread snapshotter([&log] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.BeginSnapshot();
  });
  EXPECT_TRUE(log.WaitAcked(1, 60'000'000).ok());
  snapshotter.join();
  log.EndSnapshot();
}

TEST(ReplicationLogTest, FetchZeroIsInvalid) {
  ReplicationLog log;
  std::vector<std::string> records;
  EXPECT_TRUE(log.Fetch(0, 10, 0, &records).IsInvalidArgument());
}

}  // namespace
}  // namespace rrq::repl
