// The replication byte protocol is a trust boundary: roundtrips must
// be exact, and truncated/trailing/malformed payloads must fail closed
// (mirrors tests/net/protocol_fuzz_test.cc for the queue protocol).
#include "repl/repl_wire.h"

#include <gtest/gtest.h>

namespace rrq::repl {
namespace {

TEST(ReplWireTest, HelloRoundtrip) {
  std::string request;
  EncodeHello(0xdeadbeefcafe, &request);
  Slice input(request);
  unsigned char op = 0;
  uint64_t stream = 0;
  ASSERT_TRUE(DecodeRequestHeader(&input, &op, &stream).ok());
  EXPECT_EQ(op, kReplHello);
  EXPECT_EQ(stream, 0xdeadbeefcafeull);
  EXPECT_TRUE(input.empty());
}

TEST(ReplWireTest, ShipRoundtrip) {
  std::string request;
  EncodeShip(7, 41, {"alpha", "", "gamma"}, &request);
  Slice input(request);
  unsigned char op = 0;
  uint64_t stream = 0;
  ASSERT_TRUE(DecodeRequestHeader(&input, &op, &stream).ok());
  EXPECT_EQ(op, kReplShip);
  EXPECT_EQ(stream, 7u);
  uint64_t first_seq = 0;
  std::vector<std::string> records;
  ASSERT_TRUE(DecodeShipBody(&input, &first_seq, &records).ok());
  EXPECT_EQ(first_seq, 41u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2], "gamma");
}

TEST(ReplWireTest, SnapshotRoundtrips) {
  std::string request;
  EncodeSnapshotBegin(9, 123, &request);
  {
    Slice input(request);
    unsigned char op = 0;
    uint64_t stream = 0;
    ASSERT_TRUE(DecodeRequestHeader(&input, &op, &stream).ok());
    EXPECT_EQ(op, kReplSnapshotBegin);
    uint64_t barrier = 0;
    ASSERT_TRUE(DecodeSnapshotBeginBody(&input, &barrier).ok());
    EXPECT_EQ(barrier, 123u);
  }
  request.clear();
  EncodeSnapshotChunk(9, "record-bytes", &request);
  {
    Slice input(request);
    unsigned char op = 0;
    uint64_t stream = 0;
    ASSERT_TRUE(DecodeRequestHeader(&input, &op, &stream).ok());
    EXPECT_EQ(op, kReplSnapshotChunk);
    std::string record;
    ASSERT_TRUE(DecodeSnapshotChunkBody(&input, &record).ok());
    EXPECT_EQ(record, "record-bytes");
  }
  request.clear();
  EncodeSnapshotEnd(9, &request);
  {
    Slice input(request);
    unsigned char op = 0;
    uint64_t stream = 0;
    ASSERT_TRUE(DecodeRequestHeader(&input, &op, &stream).ok());
    EXPECT_EQ(op, kReplSnapshotEnd);
    EXPECT_TRUE(input.empty());
  }
}

TEST(ReplWireTest, ReplyCarriesWatermarkEvenOnError) {
  std::string reply;
  EncodeReplReply(Status::FailedPrecondition("sequence gap"), 55, &reply);
  uint64_t watermark = 0;
  Status s = DecodeReplReply(Slice(reply), &watermark);
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  EXPECT_EQ(watermark, 55u);

  reply.clear();
  EncodeReplReply(Status::OK(), 56, &reply);
  ASSERT_TRUE(DecodeReplReply(Slice(reply), &watermark).ok());
  EXPECT_EQ(watermark, 56u);
}

TEST(ReplWireTest, TruncationsFailClosed) {
  std::vector<std::string> requests(4);
  EncodeHello(7, &requests[0]);
  EncodeShip(7, 3, {"abc", "defg"}, &requests[1]);
  EncodeSnapshotBegin(7, 12, &requests[2]);
  EncodeSnapshotChunk(7, "chunk", &requests[3]);
  for (const std::string& full : requests) {
    for (size_t len = 0; len < full.size(); ++len) {
      Slice input(full.data(), len);
      unsigned char op = 0;
      uint64_t stream = 0;
      Status header = DecodeRequestHeader(&input, &op, &stream);
      if (!header.ok()) continue;  // Failed closed at the header.
      Status body;
      uint64_t u64 = 0;
      std::vector<std::string> records;
      std::string record;
      switch (op) {
        case kReplShip:
          body = DecodeShipBody(&input, &u64, &records);
          break;
        case kReplSnapshotBegin:
          body = DecodeSnapshotBeginBody(&input, &u64);
          break;
        case kReplSnapshotChunk:
          body = DecodeSnapshotChunkBody(&input, &record);
          break;
        default:
          continue;  // Hello/End bodies are empty; nothing to fail.
      }
      EXPECT_FALSE(body.ok())
          << "truncation to " << len << " of a " << full.size()
          << "-byte op " << static_cast<int>(full[0]) << " decoded";
    }
  }
}

TEST(ReplWireTest, TrailingBytesRejected) {
  std::string request;
  EncodeShip(7, 3, {"abc"}, &request);
  request.push_back('\0');
  Slice input(request);
  unsigned char op = 0;
  uint64_t stream = 0;
  ASSERT_TRUE(DecodeRequestHeader(&input, &op, &stream).ok());
  uint64_t first_seq = 0;
  std::vector<std::string> records;
  EXPECT_FALSE(DecodeShipBody(&input, &first_seq, &records).ok());

  request.clear();
  EncodeSnapshotChunk(7, "chunk", &request);
  request.push_back('x');
  Slice chunk_input(request);
  ASSERT_TRUE(DecodeRequestHeader(&chunk_input, &op, &stream).ok());
  std::string record;
  EXPECT_FALSE(DecodeSnapshotChunkBody(&chunk_input, &record).ok());
}

TEST(ReplWireTest, AbsurdShipCountRejected) {
  // A corrupt varint count larger than the remaining bytes must not
  // drive a huge reserve/loop.
  std::string request;
  EncodeShip(7, 3, {}, &request);
  // Patch the count varint (last byte of the empty-ship encoding) to
  // a large value with no records following.
  request.back() = static_cast<char>(0x7f);
  Slice input(request);
  unsigned char op = 0;
  uint64_t stream = 0;
  ASSERT_TRUE(DecodeRequestHeader(&input, &op, &stream).ok());
  uint64_t first_seq = 0;
  std::vector<std::string> records;
  EXPECT_FALSE(DecodeShipBody(&input, &first_seq, &records).ok());
}

}  // namespace
}  // namespace rrq::repl
