// The full shipping pipeline, in-process but over real TCP: a primary
// repository whose sink feeds a ReplicationLog, a ReplicationSender
// draining it to a TcpServer-hosted ReplicaApplier, and a durable
// backup repository behind it. Covers the fresh-seed snapshot path,
// tailing, backup restart with watermark resume (no double apply),
// promotion fencing the dead primary's stream, and the applier's gap /
// wrong-stream rejections.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/mem_env.h"
#include "net/tcp_transport.h"
#include "queue/queue_repository.h"
#include "repl/repl_wire.h"
#include "repl/replica_applier.h"
#include "repl/replication_log.h"
#include "repl/replication_sender.h"

namespace rrq::repl {
namespace {

// Polls `pred` until true or ~5s; returns its final value.
bool Eventually(const std::function<bool()>& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// One backup node: durable repository + applier + replication server.
struct BackupNode {
  explicit BackupNode(env::MemEnv* env) : env_(env) {
    queue::RepositoryOptions repo_options;
    repo_options.env = env_;
    repo_options.dir = "/backup/qm";
    repo = std::make_unique<queue::QueueRepository>("backup", repo_options);
    EXPECT_TRUE(repo->Open().ok());
    ReplicaApplierOptions applier_options;
    applier_options.env = env_;
    applier_options.dir = "/backup";
    applier_options.repo = repo.get();
    applier = std::make_unique<ReplicaApplier>(applier_options);
    EXPECT_TRUE(applier->Open().ok());
    server = std::make_unique<net::TcpServer>(
        net::TcpServerOptions{},
        [this](const Slice& request, std::string* reply) {
          return applier->Handle(request, reply);
        });
    EXPECT_TRUE(server->Start().ok());
  }
  ~BackupNode() { server->Stop(); }

  env::MemEnv* env_;
  std::unique_ptr<queue::QueueRepository> repo;
  std::unique_ptr<ReplicaApplier> applier;
  std::unique_ptr<net::TcpServer> server;
};

ReplicationSenderOptions SenderTo(uint16_t port, uint64_t stream_id) {
  ReplicationSenderOptions options;
  options.port = port;
  options.stream_id = stream_id;
  options.backoff_initial_micros = 1'000;
  options.backoff_max_micros = 20'000;
  options.channel.max_connect_attempts = 3;
  options.channel.backoff_initial_micros = 1'000;
  return options;
}

TEST(ReplPipelineTest, FreshBackupIsSnapshotSeededThenTailed) {
  ReplicationLog log;
  queue::RepositoryOptions primary_options;
  primary_options.replication_sink = [&log](const Slice& record) {
    log.Append(record.ToString());
    return Status::OK();
  };
  queue::QueueRepository primary("primary", primary_options);
  ASSERT_TRUE(primary.Open().ok());
  // State that exists BEFORE the backup: must arrive via snapshot.
  ASSERT_TRUE(primary.CreateQueue("q").ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "pre-1").ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "pre-2").ok());

  env::MemEnv backup_env;
  BackupNode backup(&backup_env);
  ReplicationSender sender(SenderTo(backup.server->port(), 0xfeed), &log,
                           &primary);
  ASSERT_TRUE(sender.Start().ok());

  // Depth becomes visible when the last snapshot chunk applies; the
  // stream binding and barrier watermark install with the trailing
  // kReplSnapshotEnd, so wait for the whole seed to land.
  ASSERT_TRUE(Eventually([&] {
    return *backup.repo->Depth("q") == 2 &&
           backup.repo->applied_repl_seq() == 3;
  }));
  EXPECT_EQ(backup.applier->stream_id(), 0xfeedull);
  // The seed installed the barrier watermark (3 records shipped to
  // the log before the snapshot: create + 2 enqueues).
  EXPECT_EQ(backup.repo->applied_repl_seq(), 3u);

  // Post-seed commits arrive by tailing, not re-seeding.
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "post-1").ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "post-2").ok());
  ASSERT_TRUE(Eventually([&] { return *backup.repo->Depth("q") == 4; }));
  EXPECT_EQ(backup.repo->applied_repl_seq(), 5u);
  EXPECT_TRUE(Eventually([&] { return log.acked() == 5; }));
  EXPECT_EQ(sender.state().state, "shipping");
  EXPECT_GE(sender.state().snapshot_records_sent, 1u);

  // Contents and order made it intact.
  for (const char* want : {"pre-1", "pre-2", "post-1", "post-2"}) {
    auto got = backup.repo->Dequeue(nullptr, "q");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->contents, want);
  }
  sender.Stop();
}

TEST(ReplPipelineTest, RestartedBackupResumesWithoutDoubleApply) {
  ReplicationLog log;
  queue::RepositoryOptions primary_options;
  primary_options.replication_sink = [&log](const Slice& record) {
    log.Append(record.ToString());
    return Status::OK();
  };
  queue::QueueRepository primary("primary", primary_options);
  ASSERT_TRUE(primary.Open().ok());
  ASSERT_TRUE(primary.CreateQueue("q").ok());

  env::MemEnv backup_env;
  uint64_t watermark_before = 0;
  {
    BackupNode backup(&backup_env);
    ReplicationSender sender(SenderTo(backup.server->port(), 0xabba), &log,
                             &primary);
    ASSERT_TRUE(sender.Start().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(primary.Enqueue(nullptr, "q", std::to_string(i)).ok());
    }
    ASSERT_TRUE(Eventually([&] { return *backup.repo->Depth("q") == 5; }));
    watermark_before = backup.repo->applied_repl_seq();
    sender.Stop();
  }

  // The backup node dies and recovers from its own WAL: same stream,
  // watermark intact, so the sender resumes — and the re-shipped
  // overlap (everything still in the log) dedups instead of
  // double-applying.
  backup_env.SimulateCrash();
  BackupNode reborn(&backup_env);
  EXPECT_EQ(reborn.repo->applied_repl_seq(), watermark_before);
  EXPECT_EQ(reborn.applier->stream_id(), 0xabbaull);

  ReplicationSender sender(SenderTo(reborn.server->port(), 0xabba), &log,
                           &primary);
  ASSERT_TRUE(sender.Start().ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "after-restart").ok());
  ASSERT_TRUE(Eventually([&] { return *reborn.repo->Depth("q") == 6; }));
  EXPECT_EQ(*reborn.repo->Depth("q"), 6u);  // Exactly 6 — no dupes.
  EXPECT_EQ(sender.state().state, "shipping");
  sender.Stop();
}

TEST(ReplPipelineTest, PromotionFencesTheOldStream) {
  ReplicationLog log;
  queue::RepositoryOptions primary_options;
  primary_options.replication_sink = [&log](const Slice& record) {
    log.Append(record.ToString());
    return Status::OK();
  };
  queue::QueueRepository primary("primary", primary_options);
  ASSERT_TRUE(primary.Open().ok());
  ASSERT_TRUE(primary.CreateQueue("q").ok());

  env::MemEnv backup_env;
  BackupNode backup(&backup_env);
  ReplicationSender sender(SenderTo(backup.server->port(), 0xcafe), &log,
                           &primary);
  ASSERT_TRUE(sender.Start().ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "x").ok());
  ASSERT_TRUE(Eventually([&] { return *backup.repo->Depth("q") == 1; }));

  const uint64_t cut = backup.applier->Promote();
  EXPECT_EQ(cut, backup.repo->applied_repl_seq());
  EXPECT_TRUE(backup.applier->promoted());

  // The partitioned ex-primary keeps committing; none of it may reach
  // the promoted backup.
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "too-late").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(*backup.repo->Depth("q"), 1u);
  // A direct ship states the refusal explicitly.
  std::string request, reply;
  EncodeShip(0xcafe, cut + 1, {"r"}, &request);
  ASSERT_TRUE(backup.applier->Handle(Slice(request), &reply).ok());
  uint64_t watermark = 0;
  Status s = DecodeReplReply(Slice(reply), &watermark);
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  EXPECT_EQ(watermark, cut);
  // The promoted node serves writes of its own now.
  EXPECT_TRUE(backup.repo->Enqueue(nullptr, "q", "new-era").ok());
  sender.Stop();
}

TEST(ReplPipelineTest, GapAndWrongStreamRejected) {
  env::MemEnv backup_env;
  BackupNode backup(&backup_env);
  auto call = [&](const std::string& request, uint64_t* watermark) {
    std::string reply;
    EXPECT_TRUE(backup.applier->Handle(Slice(request), &reply).ok());
    return DecodeReplReply(Slice(reply), watermark);
  };

  // Seed via the snapshot protocol directly (empty snapshot, barrier 4).
  std::string request;
  uint64_t watermark = 0;
  EncodeHello(0x1111, &request);
  ASSERT_TRUE(call(request, &watermark).ok());
  EXPECT_EQ(watermark, 0u);
  request.clear();
  EncodeSnapshotBegin(0x1111, 4, &request);
  ASSERT_TRUE(call(request, &watermark).ok());
  request.clear();
  EncodeSnapshotEnd(0x1111, &request);
  ASSERT_TRUE(call(request, &watermark).ok());
  EXPECT_EQ(watermark, 4u);

  // A ship that skips ahead is rejected with the watermark to rewind
  // to; nothing applies.
  std::vector<std::string> shipped;
  {
    queue::RepositoryOptions opts;
    opts.replication_sink = [&shipped](const Slice& record) {
      shipped.push_back(record.ToString());
      return Status::OK();
    };
    queue::QueueRepository head("head", opts);
    ASSERT_TRUE(head.Open().ok());
    ASSERT_TRUE(head.CreateQueue("q").ok());
  }
  request.clear();
  EncodeShip(0x1111, 7, shipped, &request);
  Status gap = call(request, &watermark);
  EXPECT_TRUE(gap.IsFailedPrecondition()) << gap.ToString();
  EXPECT_EQ(watermark, 4u);
  EXPECT_EQ(backup.applier->gaps_rejected(), 1u);
  EXPECT_FALSE(backup.repo->QueueExists("q"));

  // The next contiguous sequence applies fine.
  request.clear();
  EncodeShip(0x1111, 5, shipped, &request);
  ASSERT_TRUE(call(request, &watermark).ok());
  EXPECT_EQ(watermark, 5u);
  EXPECT_TRUE(backup.repo->QueueExists("q"));

  // A hello from any other stream is refused: reseed required.
  request.clear();
  EncodeHello(0x2222, &request);
  Status other = call(request, &watermark);
  EXPECT_TRUE(other.IsFailedPrecondition()) << other.ToString();

  // So is adopting a fresh stream into a non-empty repository.
  env::MemEnv dirty_env;
  BackupNode dirty(&dirty_env);
  ASSERT_TRUE(dirty.repo->CreateQueue("leftover").ok());
  request.clear();
  EncodeHello(0x3333, &request);
  std::string reply;
  ASSERT_TRUE(dirty.applier->Handle(Slice(request), &reply).ok());
  Status unseeded = DecodeReplReply(Slice(reply), &watermark);
  EXPECT_TRUE(unseeded.IsFailedPrecondition()) << unseeded.ToString();
}

TEST(ReplPipelineTest, EmptyPrimarySeedHasNonzeroWatermarkAndResumes) {
  // A primary that never committed anything still seeds at a nonzero
  // barrier (the sender pads its empty log with one no-op record). A
  // zero-barrier seed would leave the backup's watermark at 0 —
  // indistinguishable from "fresh" on the next hello, so every
  // reconnect would retry a seed the bound stream then refuses, and
  // replication would wedge.
  ReplicationLog log;
  queue::RepositoryOptions primary_options;
  primary_options.replication_sink = [&log](const Slice& record) {
    log.Append(record.ToString());
    return Status::OK();
  };
  queue::QueueRepository primary("primary", primary_options);
  ASSERT_TRUE(primary.Open().ok());

  env::MemEnv backup_env;
  BackupNode backup(&backup_env);
  {
    ReplicationSender sender(SenderTo(backup.server->port(), 0xbead), &log,
                             &primary);
    ASSERT_TRUE(sender.Start().ok());
    ASSERT_TRUE(
        Eventually([&] { return sender.state().state == "shipping"; }));
    sender.Stop();
  }
  EXPECT_EQ(backup.applier->stream_id(), 0xbeadull);
  EXPECT_GE(backup.repo->applied_repl_seq(), 1u);  // Never 0 once seeded.

  // A reconnecting sender resumes the bound stream instead of wedging
  // on a refused re-seed, and new commits tail through.
  ReplicationSender again(SenderTo(backup.server->port(), 0xbead), &log,
                          &primary);
  ASSERT_TRUE(again.Start().ok());
  ASSERT_TRUE(Eventually([&] { return again.state().state == "shipping"; }));
  ASSERT_TRUE(primary.CreateQueue("q").ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "tailed").ok());
  ASSERT_TRUE(Eventually([&] {
    auto depth = backup.repo->Depth("q");
    return depth.ok() && *depth == 1;
  }));
  again.Stop();
}

TEST(ReplPipelineTest, ZeroBarrierSeedRejected) {
  // Belt and braces on the backup side: a snapshot that announces
  // barrier 0 is refused outright (it would commit watermark 0 and
  // recreate the ambiguity above).
  env::MemEnv backup_env;
  BackupNode backup(&backup_env);
  std::string request, reply;
  uint64_t watermark = 0;
  EncodeSnapshotBegin(0x4444, 0, &request);
  ASSERT_TRUE(backup.applier->Handle(Slice(request), &reply).ok());
  Status s = DecodeReplReply(Slice(reply), &watermark);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(ReplPipelineTest, SeedingReleasesParkedAckWaiters) {
  // An ack-mode committer parked in WaitAcked holds its shard's
  // replication ticket, and CaptureReplicaSnapshot's delivery drain
  // waits on that ticket while the sender — the only thread that can
  // advance acks — is the one doing the capture. BeginSnapshot breaks
  // the cycle: the parked waiter releases (async-degraded) and the
  // seed proceeds instead of stalling a full ack timeout per commit.
  ReplicationLog log;
  queue::RepositoryOptions primary_options;
  primary_options.replication_sink = [&log](const Slice& record) {
    const uint64_t seq = log.Append(record.ToString());
    return log.WaitAcked(seq, 20'000'000);
  };
  queue::QueueRepository primary("primary", primary_options);
  ASSERT_TRUE(primary.Open().ok());

  // Park a committer before any sender exists.
  std::thread committer(
      [&primary] { EXPECT_TRUE(primary.CreateQueue("q").ok()); });
  ASSERT_TRUE(Eventually([&] { return log.head_seq() == 1; }));

  env::MemEnv backup_env;
  BackupNode backup(&backup_env);
  ReplicationSender sender(SenderTo(backup.server->port(), 0xfade), &log,
                           &primary);
  ASSERT_TRUE(sender.Start().ok());
  // Well under the 20s ack timeout: only the release path gets here.
  ASSERT_TRUE(Eventually([&] { return sender.state().state == "shipping"; }));
  committer.join();
  EXPECT_TRUE(Eventually([&] { return backup.repo->QueueExists("q"); }));
  sender.Stop();
}

TEST(ReplPipelineTest, AckModeSinkReleasesOnBackupAck) {
  // The semi-synchronous gate end to end: a committer blocks in the
  // sink until the backup acked its record.
  ReplicationLog log;
  queue::RepositoryOptions primary_options;
  primary_options.replication_sink = [&log](const Slice& record) {
    const uint64_t seq = log.Append(record.ToString());
    return log.WaitAcked(seq, 5'000'000);
  };
  queue::QueueRepository primary("primary", primary_options);
  ASSERT_TRUE(primary.Open().ok());

  env::MemEnv backup_env;
  BackupNode backup(&backup_env);
  ReplicationSender sender(SenderTo(backup.server->port(), 0xd00d), &log,
                           &primary);
  ASSERT_TRUE(sender.Start().ok());
  // Let the initial (empty) seed finish so commits don't park their
  // ack waits behind the snapshot barrier.
  ASSERT_TRUE(Eventually([&] { return sender.state().state == "shipping"; }));
  ASSERT_TRUE(primary.CreateQueue("q").ok());
  ASSERT_TRUE(primary.Enqueue(nullptr, "q", "acked").ok());
  // The OK from Enqueue *is* the proof: the sink only returned after
  // the ack. The backup must already be caught up.
  EXPECT_EQ(*backup.repo->Depth("q"), 1u);
  sender.Stop();
}

}  // namespace
}  // namespace rrq::repl
