#include "txn/lock_manager.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace rrq::txn {
namespace {

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kShared, 0).ok());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kShared, 0).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "k", LockMode::kShared));
}

TEST(LockManagerTest, ExclusiveExcludesEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).ok());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kShared, 0).IsBusy());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kExclusive, 0).IsBusy());
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kShared, 0).ok());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kExclusive, 0).IsBusy());
}

TEST(LockManagerTest, ReentrantAcquisition) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kShared, 0).ok());  // X covers S.
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kShared, 0).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kExclusive));
  // Another reader is now excluded.
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kShared, 0).IsBusy());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kShared, 0).ok());
  ASSERT_TRUE(lm.Lock(2, "k", LockMode::kShared, 0).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).IsBusy());
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "a", LockMode::kExclusive, 0).ok());
  ASSERT_TRUE(lm.Lock(1, "b", LockMode::kExclusive, 0).ok());
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.Holds(1, "a", LockMode::kShared));
  EXPECT_TRUE(lm.Lock(2, "a", LockMode::kExclusive, 0).ok());
  EXPECT_TRUE(lm.Lock(2, "b", LockMode::kExclusive, 0).ok());
}

TEST(LockManagerTest, UnlockSingleKey) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "a", LockMode::kExclusive, 0).ok());
  ASSERT_TRUE(lm.Lock(1, "b", LockMode::kExclusive, 0).ok());
  lm.Unlock(1, "a");
  EXPECT_TRUE(lm.Lock(2, "a", LockMode::kExclusive, 0).ok());
  EXPECT_TRUE(lm.Lock(2, "b", LockMode::kExclusive, 0).IsBusy());
}

TEST(LockManagerTest, BlockedWaiterAcquiresAfterRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&lm, &acquired]() {
    Status s = lm.Lock(2, "k", LockMode::kExclusive);
    EXPECT_TRUE(s.ok()) << s.ToString();
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(lm.wait_count(), 1u);
}

TEST(LockManagerTest, WaitTimesOut) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).ok());
  Status s = lm.Lock(2, "k", LockMode::kExclusive, 20'000);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "a", LockMode::kExclusive, 0).ok());
  ASSERT_TRUE(lm.Lock(2, "b", LockMode::kExclusive, 0).ok());

  std::atomic<int> aborted{0};
  std::atomic<int> succeeded{0};
  std::thread t1([&]() {
    Status s = lm.Lock(1, "b", LockMode::kExclusive, 2'000'000);
    if (s.IsAborted()) {
      ++aborted;
      lm.ReleaseAll(1);
    } else if (s.ok()) {
      ++succeeded;
      lm.ReleaseAll(1);
    }
  });
  std::thread t2([&]() {
    Status s = lm.Lock(2, "a", LockMode::kExclusive, 2'000'000);
    if (s.IsAborted()) {
      ++aborted;
      lm.ReleaseAll(2);
    } else if (s.ok()) {
      ++succeeded;
      lm.ReleaseAll(2);
    }
  });
  t1.join();
  t2.join();
  // At least one transaction must have been chosen as a victim, and
  // the other must then have made progress.
  EXPECT_GE(aborted.load(), 1);
  EXPECT_GE(lm.deadlock_count(), 1u);
  EXPECT_EQ(aborted.load() + succeeded.load(), 2);
}

TEST(LockManagerTest, SelfUpgradeDeadlockDetected) {
  // Two readers both trying to upgrade: a classic conversion deadlock.
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kShared, 0).ok());
  ASSERT_TRUE(lm.Lock(2, "k", LockMode::kShared, 0).ok());
  std::atomic<int> aborted{0};
  std::thread t1([&]() {
    Status s = lm.Lock(1, "k", LockMode::kExclusive, 2'000'000);
    if (s.IsAborted()) ++aborted;
    lm.ReleaseAll(1);
  });
  std::thread t2([&]() {
    Status s = lm.Lock(2, "k", LockMode::kExclusive, 2'000'000);
    if (s.IsAborted()) ++aborted;
    lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  EXPECT_GE(aborted.load(), 1);
}

TEST(LockManagerTest, StatsAccumulate) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kExclusive, 0).ok());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kExclusive, 10'000).IsTimedOut());
  EXPECT_GE(lm.wait_count(), 1u);
  EXPECT_GE(lm.total_wait_micros(), 5'000u);
}

TEST(LockManagerTest, ManyThreadsManyKeysNoLostLocks) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::atomic<int> counters[4] = {{0}, {0}, {0}, {0}};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lm, &counters, t]() {
      for (int i = 0; i < kIterations; ++i) {
        TxnId txn = static_cast<TxnId>(t * kIterations + i + 1);
        const std::string key = "k" + std::to_string(i % 4);
        Status s = lm.Lock(txn, key, LockMode::kExclusive);
        ASSERT_TRUE(s.ok()) << s.ToString();
        // Exclusive section: no concurrent holder of this key.
        int expected = counters[i % 4].fetch_add(1) + 1;
        EXPECT_EQ(counters[i % 4].load(), expected);
        counters[i % 4].fetch_sub(1);
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace rrq::txn
