#include "txn/txn_manager.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"

namespace rrq::txn {
namespace {

/// Scripted in-memory participant for driving the coordinator.
class FakeResource final : public ResourceManager {
 public:
  explicit FakeResource(std::string name) : name_(std::move(name)) {}

  std::string_view rm_name() const override { return name_; }

  Status Prepare(TxnId txn) override {
    ++prepares;
    last_txn = txn;
    if (veto) return Status::Aborted("scripted veto");
    return Status::OK();
  }
  Status CommitTxn(TxnId txn) override {
    ++commits;
    last_txn = txn;
    return Status::OK();
  }
  void AbortTxn(TxnId txn) override {
    ++aborts;
    last_txn = txn;
  }

  int prepares = 0;
  int commits = 0;
  int aborts = 0;
  bool veto = false;
  TxnId last_txn = kInvalidTxnId;

 private:
  std::string name_;
};

TEST(TxnIdTest, EpochAndCounterRoundTrip) {
  TxnId id = MakeTxnId(7, 123456789);
  EXPECT_EQ(TxnIdEpoch(id), 7);
  EXPECT_EQ(TxnIdCounter(id), 123456789u);
}

TEST(TxnManagerTest, SingleParticipantUsesFusedPath) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  FakeResource rm("rm");
  auto txn = mgr.Begin();
  txn->Enlist(&rm);
  ASSERT_TRUE(txn->Commit().ok());
  // Default PrepareAndCommit = Prepare + CommitTxn.
  EXPECT_EQ(rm.prepares, 1);
  EXPECT_EQ(rm.commits, 1);
  EXPECT_EQ(rm.aborts, 0);
  EXPECT_EQ(mgr.commit_count(), 1u);
}

TEST(TxnManagerTest, TwoParticipantsTwoPhase) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  FakeResource a("a"), b("b");
  auto txn = mgr.Begin();
  txn->Enlist(&a);
  txn->Enlist(&b);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(a.prepares, 1);
  EXPECT_EQ(b.prepares, 1);
  EXPECT_EQ(a.commits, 1);
  EXPECT_EQ(b.commits, 1);
}

TEST(TxnManagerTest, VetoAbortsEveryone) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  FakeResource a("a"), b("b");
  b.veto = true;
  auto txn = mgr.Begin();
  txn->Enlist(&a);
  txn->Enlist(&b);
  Status s = txn->Commit();
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_EQ(a.aborts, 1);
  EXPECT_EQ(b.aborts, 1);
  EXPECT_EQ(a.commits, 0);
  EXPECT_EQ(b.commits, 0);
  EXPECT_EQ(mgr.abort_count(), 1u);
}

TEST(TxnManagerTest, EnlistIsIdempotent) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  FakeResource rm("rm");
  auto txn = mgr.Begin();
  txn->Enlist(&rm);
  txn->Enlist(&rm);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(rm.commits, 1);
}

TEST(TxnManagerTest, ExplicitAbortUndoesParticipants) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  FakeResource rm("rm");
  auto txn = mgr.Begin();
  txn->Enlist(&rm);
  ASSERT_TRUE(txn->Abort().ok());
  EXPECT_EQ(rm.aborts, 1);
  EXPECT_EQ(txn->state(), TxnState::kAborted);
  // Abort is idempotent; commit afterwards is rejected.
  EXPECT_TRUE(txn->Abort().ok());
  EXPECT_TRUE(txn->Commit().IsFailedPrecondition());
}

TEST(TxnManagerTest, DestructionAbortsActiveTransaction) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  FakeResource rm("rm");
  {
    auto txn = mgr.Begin();
    txn->Enlist(&rm);
  }
  EXPECT_EQ(rm.aborts, 1);
}

TEST(TxnManagerTest, CallbacksFireOnCommitOnly) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  int committed = 0, aborted = 0;
  {
    auto txn = mgr.Begin();
    txn->OnCommit([&committed]() { ++committed; });
    txn->OnAbort([&aborted]() { ++aborted; });
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 0);
  {
    auto txn = mgr.Begin();
    txn->OnCommit([&committed]() { ++committed; });
    txn->OnAbort([&aborted]() { ++aborted; });
    txn->Abort();
  }
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 1);
}

TEST(TxnManagerTest, TransactionIdsAreUnique) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  auto t1 = mgr.Begin();
  auto t2 = mgr.Begin();
  EXPECT_NE(t1->id(), t2->id());
  EXPECT_NE(t1->id(), kInvalidTxnId);
}

TEST(TxnManagerTest, LocksReleasedAtCommitAndAbort) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  {
    auto txn = mgr.Begin();
    ASSERT_TRUE(txn->Lock("k", LockMode::kExclusive).ok());
    auto other = mgr.Begin();
    EXPECT_TRUE(
        mgr.lock_manager()->Lock(other->id(), "k", LockMode::kShared, 0)
            .IsBusy());
    ASSERT_TRUE(txn->Commit().ok());
    EXPECT_TRUE(
        mgr.lock_manager()->Lock(other->id(), "k", LockMode::kShared, 0).ok());
    other->Abort();
  }
}

TEST(TxnManagerTest, EpochAdvancesAcrossRestarts) {
  env::MemEnv env;
  uint16_t epoch1, epoch2;
  {
    TxnManagerOptions options;
    options.env = &env;
    options.dir = "/txn";
    TransactionManager mgr(options);
    ASSERT_TRUE(mgr.Open().ok());
    epoch1 = TxnIdEpoch(mgr.Begin()->id());
  }
  {
    TxnManagerOptions options;
    options.env = &env;
    options.dir = "/txn";
    TransactionManager mgr(options);
    ASSERT_TRUE(mgr.Open().ok());
    epoch2 = TxnIdEpoch(mgr.Begin()->id());
  }
  EXPECT_GT(epoch2, epoch1);
}

TEST(TxnManagerTest, CommitDecisionSurvivesCrashUntilForgotten) {
  env::MemEnv env;
  // A participant that "hangs" at commit: prepare succeeds, the
  // decision is logged, then we crash the coordinator before the
  // forget record is durable.
  class StuckResource final : public ResourceManager {
   public:
    std::string_view rm_name() const override { return "stuck"; }
    Status Prepare(TxnId) override { return Status::OK(); }
    Status CommitTxn(TxnId id) override {
      committed_id = id;
      return Status::OK();
    }
    void AbortTxn(TxnId) override {}
    TxnId committed_id = kInvalidTxnId;
  };

  TxnId decided = kInvalidTxnId;
  {
    TxnManagerOptions options;
    options.env = &env;
    options.dir = "/txn";
    TransactionManager mgr(options);
    ASSERT_TRUE(mgr.Open().ok());
    StuckResource a, b;
    auto txn = mgr.Begin();
    txn->Enlist(&a);
    txn->Enlist(&b);
    decided = txn->id();
    ASSERT_TRUE(txn->Commit().ok());
    // In this incarnation the decision has been forgotten already
    // (both participants acked); simulate a crash where the forget
    // record (unsynced) is lost but the commit record (synced) stays.
  }
  env.SimulateCrash();
  {
    TxnManagerOptions options;
    options.env = &env;
    options.dir = "/txn";
    TransactionManager mgr(options);
    ASSERT_TRUE(mgr.Open().ok());
    // The synced commit decision must be visible for in-doubt
    // resolution after recovery (presumed abort would otherwise wreck
    // a prepared participant).
    EXPECT_TRUE(mgr.WasCommitted(decided));
  }
}

TEST(RunInTransactionTest, RetriesOnAbort) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  int calls = 0;
  Status s = RunInTransaction(&mgr, 5, [&calls](Transaction*) -> Status {
    ++calls;
    if (calls < 3) return Status::Aborted("try again");
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RunInTransactionTest, GivesUpAfterMaxAttempts) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  int calls = 0;
  Status s = RunInTransaction(&mgr, 3, [&calls](Transaction*) -> Status {
    ++calls;
    return Status::Busy("always");
  });
  EXPECT_TRUE(s.IsBusy());
  EXPECT_EQ(calls, 3);
}

TEST(RunInTransactionTest, NonRetryableErrorsStopImmediately) {
  TransactionManager mgr;
  ASSERT_TRUE(mgr.Open().ok());
  int calls = 0;
  Status s = RunInTransaction(&mgr, 5, [&calls](Transaction*) -> Status {
    ++calls;
    return Status::InvalidArgument("bad");
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace rrq::txn
