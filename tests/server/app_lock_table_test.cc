#include "server/app_lock_table.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"

namespace rrq::server {
namespace {

class AppLockTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    storage::KvStoreOptions options;
    options.env = &env_;
    options.dir = "/locks";
    store_ = std::make_unique<storage::KvStore>("locks", options);
    ASSERT_TRUE(store_->Open().ok());
    table_ = std::make_unique<AppLockTable>(store_.get());
  }

  env::MemEnv env_;
  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<storage::KvStore> store_;
  std::unique_ptr<AppLockTable> table_;
};

TEST_F(AppLockTableTest, AcquireReleaseRoundTrip) {
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-1").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(*table_->Holder("acct/1"), "req-1");
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(table_->Release(txn.get(), "acct/1", "req-1").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_TRUE(table_->Holder("acct/1").status().IsNotFound());
}

TEST_F(AppLockTableTest, ConflictingOwnerGetsBusy) {
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-1").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = txn_mgr_->Begin();
  EXPECT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-2").IsBusy());
  txn->Abort();
}

TEST_F(AppLockTableTest, ReentrantForSameOwner) {
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-1").ok());
  EXPECT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-1").ok());
  ASSERT_TRUE(txn->Commit().ok());
}

TEST_F(AppLockTableTest, ReleaseByNonOwnerRejected) {
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-1").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto txn = txn_mgr_->Begin();
  EXPECT_TRUE(
      table_->Release(txn.get(), "acct/1", "req-2").IsFailedPrecondition());
  EXPECT_TRUE(
      table_->Release(txn.get(), "never-locked", "req-2").IsFailedPrecondition());
  txn->Abort();
}

TEST_F(AppLockTableTest, ReleaseAllInFinalTransaction) {
  // §6: all the request's application locks release atomically with
  // the final transaction's commit.
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(table_->Acquire(txn.get(), "a", "req-1").ok());
    ASSERT_TRUE(table_->Acquire(txn.get(), "b", "req-1").ok());
    ASSERT_TRUE(table_->Acquire(txn.get(), "c", "req-1").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto final_txn = txn_mgr_->Begin();
  ASSERT_TRUE(table_->ReleaseAll(final_txn.get(), {"a", "b", "c"}, "req-1").ok());
  // Until the final transaction commits, the locks still bind.
  EXPECT_EQ(*table_->Holder("a"), "req-1");
  ASSERT_TRUE(final_txn->Commit().ok());
  EXPECT_TRUE(table_->Holder("a").status().IsNotFound());
  EXPECT_TRUE(table_->Holder("b").status().IsNotFound());
  EXPECT_TRUE(table_->Holder("c").status().IsNotFound());
}

TEST_F(AppLockTableTest, AbortedAcquireLeavesLockFree) {
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-1").ok());
  txn->Abort();
  EXPECT_TRUE(table_->Holder("acct/1").status().IsNotFound());
}

TEST_F(AppLockTableTest, LocksSurviveCrash) {
  // Application locks exist precisely because they must span
  // transactions — and transactions may be separated by crashes.
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(table_->Acquire(txn.get(), "acct/1", "req-1").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  env_.SimulateCrash();
  storage::KvStoreOptions options;
  options.env = &env_;
  options.dir = "/locks";
  storage::KvStore recovered("locks", options);
  ASSERT_TRUE(recovered.Open().ok());
  AppLockTable recovered_table(&recovered);
  EXPECT_EQ(*recovered_table.Holder("acct/1"), "req-1");
}

}  // namespace
}  // namespace rrq::server
