#include "server/pipeline.h"

#include <gtest/gtest.h>

#include "storage/kv_store.h"

namespace rrq::server {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    ASSERT_TRUE(repo_->CreateQueue("rep").ok());
  }

  PipelineOptions Options() {
    PipelineOptions options;
    options.queue_prefix = "pipe";
    options.poll_timeout_micros = 0;
    return options;
  }

  void Submit(Pipeline* pipeline, const std::string& rid,
              const std::string& body) {
    queue::RequestEnvelope envelope;
    envelope.rid = rid;
    envelope.reply_queue = "rep";
    envelope.body = body;
    ASSERT_TRUE(repo_->Enqueue(nullptr, pipeline->entry_queue(),
                               queue::EncodeRequestEnvelope(envelope))
                    .ok());
  }

  queue::ReplyEnvelope TakeReply() {
    auto got = repo_->Dequeue(nullptr, "rep");
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    queue::ReplyEnvelope reply;
    if (got.ok()) {
      EXPECT_TRUE(queue::DecodeReplyEnvelope(got->contents, &reply).ok());
    }
    return reply;
  }

  static PipelineStage AppendStage(const std::string& name) {
    PipelineStage stage;
    stage.name = name;
    stage.handler = [name](txn::Transaction*,
                           const queue::RequestEnvelope& request)
        -> Result<StageResult> {
      return StageResult{request.body + "+" + name, ""};
    };
    return stage;
  }

  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<queue::QueueRepository> repo_;
};

TEST_F(PipelineTest, ThreeStagesRunSerially) {
  Pipeline pipeline(Options(), repo_.get(), txn_mgr_.get(),
                    {AppendStage("debit"), AppendStage("credit"),
                     AppendStage("log")});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "rid-1", "xfer");
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());
  // After stage 0, the request sits between stages.
  EXPECT_EQ(*repo_->Depth(pipeline.StageQueue(1)), 1u);
  ASSERT_TRUE(pipeline.ProcessOneAt(1).ok());
  ASSERT_TRUE(pipeline.ProcessOneAt(2).ok());
  auto reply = TakeReply();
  EXPECT_EQ(reply.rid, "rid-1");
  EXPECT_TRUE(reply.success);
  EXPECT_EQ(reply.body, "xfer+debit+credit+log");
  EXPECT_EQ(pipeline.completed_count(), 1u);
}

TEST_F(PipelineTest, StageFailureKeepsRequestAtThatStage) {
  int attempts = 0;
  PipelineStage flaky;
  flaky.name = "flaky";
  flaky.handler = [&attempts](txn::Transaction*, const queue::RequestEnvelope&)
      -> Result<StageResult> {
    if (++attempts < 3) return Status::Aborted("transient");
    return StageResult{"finally", ""};
  };
  PipelineOptions options = Options();
  options.max_attempts = 1;  // One attempt per ProcessOneAt call.
  Pipeline pipeline(options, repo_.get(), txn_mgr_.get(), {flaky});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "rid-2", "x");
  EXPECT_FALSE(pipeline.ProcessOneAt(0).ok());
  EXPECT_EQ(*repo_->Depth(pipeline.StageQueue(0)), 1u);  // Still there.
  EXPECT_FALSE(pipeline.ProcessOneAt(0).ok());
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());
  EXPECT_EQ(TakeReply().body, "finally");
}

TEST_F(PipelineTest, RetryBudgetRetriesWithinOneCall) {
  int attempts = 0;
  PipelineStage flaky;
  flaky.name = "flaky";
  flaky.handler = [&attempts](txn::Transaction*, const queue::RequestEnvelope&)
      -> Result<StageResult> {
    if (++attempts < 3) return Status::Aborted("deadlock victim");
    return StageResult{"done", ""};
  };
  PipelineOptions options = Options();
  options.max_attempts = 5;
  Pipeline pipeline(options, repo_.get(), txn_mgr_.get(), {flaky});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "rid-3", "x");
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());
  EXPECT_EQ(attempts, 3);
}

TEST_F(PipelineTest, ScratchPadCarriesStateAcrossTransactions) {
  // §6: state crosses transaction boundaries only via the request.
  PipelineStage first;
  first.name = "first";
  first.handler = [](txn::Transaction*, const queue::RequestEnvelope& request)
      -> Result<StageResult> {
    StageResult result;
    result.body = request.body;
    result.compensation = "undo:" + request.body;  // Rides the scratch pad.
    return result;
  };
  PipelineStage second;
  second.name = "second";
  std::string observed_scratch;
  second.handler = [&observed_scratch](txn::Transaction*,
                                       const queue::RequestEnvelope& request)
      -> Result<StageResult> {
    observed_scratch = request.scratch;
    return StageResult{"ok", ""};
  };
  Pipeline pipeline(Options(), repo_.get(), txn_mgr_.get(), {first, second});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "rid-4", "payload");
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());
  ASSERT_TRUE(pipeline.ProcessOneAt(1).ok());
  EXPECT_FALSE(observed_scratch.empty());  // Compensation log is aboard.
}

TEST_F(PipelineTest, CancelInEntryQueueKills) {
  Pipeline pipeline(Options(), repo_.get(), txn_mgr_.get(),
                    {AppendStage("a"), AppendStage("b")});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "rid-5", "x");
  auto outcome = pipeline.Cancel("rid-5");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, CancelOutcome::kKilledInQueue);
  EXPECT_EQ(*repo_->Depth(pipeline.StageQueue(0)), 0u);
}

TEST_F(PipelineTest, CancelMidPipelineCompensatesCommittedStages) {
  // A two-stage saga over a KV store: stage A debits, stage B credits.
  storage::KvStore store("bank", {});
  ASSERT_TRUE(store.Open().ok());
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(store.Put(txn.get(), "src", "100").ok());
    ASSERT_TRUE(store.Put(txn.get(), "dst", "0").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto adjust = [&store](txn::Transaction* t, const std::string& account,
                         int delta) -> Status {
    auto v = store.GetForUpdate(t, account);
    if (!v.ok()) return v.status();
    return store.Put(t, account, std::to_string(std::stoi(*v) + delta));
  };

  PipelineStage debit;
  debit.name = "debit";
  debit.handler = [&adjust](txn::Transaction* t, const queue::RequestEnvelope&)
      -> Result<StageResult> {
    RRQ_RETURN_IF_ERROR(adjust(t, "src", -40));
    return StageResult{"debited", "src:40"};
  };
  debit.compensate = [&adjust](txn::Transaction* t,
                               const std::string& record) -> Status {
    (void)record;
    return adjust(t, "src", +40);
  };
  PipelineStage credit;
  credit.name = "credit";
  credit.handler = [&adjust](txn::Transaction* t,
                             const queue::RequestEnvelope&)
      -> Result<StageResult> {
    RRQ_RETURN_IF_ERROR(adjust(t, "dst", +40));
    return StageResult{"credited", "dst:40"};
  };
  credit.compensate = [&adjust](txn::Transaction* t,
                                const std::string&) -> Status {
    return adjust(t, "dst", -40);
  };

  Pipeline pipeline(Options(), repo_.get(), txn_mgr_.get(), {debit, credit});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "rid-6", "transfer");
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());  // Debit committed.
  EXPECT_EQ(*store.GetCommitted("src"), "60");

  // Cancel between the stages (§7: too late for KillElement; saga time).
  auto outcome = pipeline.Cancel("rid-6");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, CancelOutcome::kCompensating);
  // One compensation step (the committed debit) runs, then the
  // cancelled reply goes out.
  ASSERT_TRUE(pipeline.ProcessOneCompensation().ok());
  EXPECT_EQ(*store.GetCommitted("src"), "100");  // Money restored.
  EXPECT_EQ(*store.GetCommitted("dst"), "0");
  auto reply = TakeReply();
  EXPECT_EQ(reply.rid, "rid-6");
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.body, "request cancelled");
}

TEST_F(PipelineTest, CancelCompletedRequestIsTooLate) {
  Pipeline pipeline(Options(), repo_.get(), txn_mgr_.get(),
                    {AppendStage("only")});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "rid-7", "x");
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());
  auto outcome = pipeline.Cancel("rid-7");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, CancelOutcome::kTooLate);
}

TEST_F(PipelineTest, CancelTargetsOnlyTheNamedRid) {
  Pipeline pipeline(Options(), repo_.get(), txn_mgr_.get(),
                    {AppendStage("a")});
  ASSERT_TRUE(pipeline.Setup().ok());
  Submit(&pipeline, "keep", "x");
  Submit(&pipeline, "kill", "y");
  auto outcome = pipeline.Cancel("kill");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, CancelOutcome::kKilledInQueue);
  EXPECT_EQ(*repo_->Depth(pipeline.StageQueue(0)), 1u);
  ASSERT_TRUE(pipeline.ProcessOneAt(0).ok());
  EXPECT_EQ(TakeReply().rid, "keep");
}

TEST_F(PipelineTest, ThreadedPipelineCompletesAll) {
  PipelineOptions options = Options();
  options.poll_timeout_micros = 5'000;
  Pipeline pipeline(options, repo_.get(), txn_mgr_.get(),
                    {AppendStage("a"), AppendStage("b"), AppendStage("c")});
  ASSERT_TRUE(pipeline.Setup().ok());
  constexpr int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    Submit(&pipeline, "rid-" + std::to_string(i), "r" + std::to_string(i));
  }
  ASSERT_TRUE(pipeline.Start().ok());
  for (int i = 0; i < 1000 && pipeline.completed_count() < kRequests; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pipeline.Stop();
  EXPECT_EQ(pipeline.completed_count(), static_cast<uint64_t>(kRequests));
  EXPECT_EQ(*repo_->Depth("rep"), static_cast<size_t>(kRequests));
}

}  // namespace
}  // namespace rrq::server
