#include "server/interactive.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"

namespace rrq::server {
namespace {

// ---------------------------------------------------------------------------
// IoLog

class IoLogTest : public ::testing::Test {
 protected:
  env::MemEnv env_;
};

TEST_F(IoLogTest, RecordAndLookup) {
  IoLog log(&env_, "/iolog");
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Record("rid-1", 1, "name?", "Alice").ok());
  auto hit = log.Lookup("rid-1", 1, "name?");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, "Alice");
  EXPECT_EQ(log.replay_count(), 1u);
}

TEST_F(IoLogTest, MissingEntryIsNotFound) {
  IoLog log(&env_, "/iolog");
  ASSERT_TRUE(log.Open().ok());
  EXPECT_TRUE(log.Lookup("rid-1", 1, "x").status().IsNotFound());
}

TEST_F(IoLogTest, DivergentPromptInvalidatesSuffix) {
  // §8.3: once the replayed output differs, the rest of the logged
  // conversation is useless.
  IoLog log(&env_, "/iolog");
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Record("rid-1", 1, "q1", "a1").ok());
  ASSERT_TRUE(log.Record("rid-1", 2, "q2", "a2").ok());
  ASSERT_TRUE(log.Record("rid-1", 3, "q3", "a3").ok());
  // Replay matches step 1...
  EXPECT_TRUE(log.Lookup("rid-1", 1, "q1").ok());
  // ...diverges at step 2...
  EXPECT_TRUE(log.Lookup("rid-1", 2, "DIFFERENT").status().IsNotFound());
  // ...which also discards step 3.
  EXPECT_TRUE(log.Lookup("rid-1", 3, "q3").status().IsNotFound());
  // Step 1 survives (it was before the divergence point).
  EXPECT_TRUE(log.Lookup("rid-1", 1, "q1").ok());
}

TEST_F(IoLogTest, SurvivesClientCrash) {
  {
    IoLog log(&env_, "/iolog");
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.Record("rid-1", 1, "q1", "a1").ok());
  }
  env_.SimulateCrash();
  IoLog recovered(&env_, "/iolog");
  ASSERT_TRUE(recovered.Open().ok());
  auto hit = recovered.Lookup("rid-1", 1, "q1");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, "a1");
}

TEST_F(IoLogTest, ForgetDropsRequest) {
  IoLog log(&env_, "/iolog");
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Record("rid-1", 1, "q", "a").ok());
  ASSERT_TRUE(log.Record("rid-2", 1, "q", "b").ok());
  log.Forget("rid-1");
  EXPECT_TRUE(log.Lookup("rid-1", 1, "q").status().IsNotFound());
  EXPECT_TRUE(log.Lookup("rid-2", 1, "q").ok());
}

// ---------------------------------------------------------------------------
// Conversational server + interactive client

class ConversationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    ASSERT_TRUE(repo_->CreateQueue("req").ok());
    ASSERT_TRUE(repo_->CreateQueue("rep").ok());
    io_log_ = std::make_unique<IoLog>(&env_, "/iolog");
    ASSERT_TRUE(io_log_->Open().ok());
  }

  void Submit(const std::string& rid, const std::string& body) {
    queue::RequestEnvelope envelope;
    envelope.rid = rid;
    envelope.reply_queue = "rep";
    envelope.scratch = "client-ep";  // Interactive convention.
    envelope.body = body;
    ASSERT_TRUE(
        repo_->Enqueue(nullptr, "req", queue::EncodeRequestEnvelope(envelope))
            .ok());
  }

  ConversationalServerOptions Options() {
    ConversationalServerOptions options;
    options.name = "conv";
    options.request_queue = "req";
    options.default_reply_queue = "rep";
    options.poll_timeout_micros = 0;
    return options;
  }

  env::MemEnv env_;
  comm::Network net_{21};
  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<queue::QueueRepository> repo_;
  std::unique_ptr<IoLog> io_log_;
};

TEST_F(ConversationTest, PromptWireFormatRoundTrip) {
  std::string wire = EncodePrompt("rid-1", 3, "how many?");
  std::string rid, prompt;
  uint32_t step = 0;
  ASSERT_TRUE(DecodePrompt(wire, &rid, &step, &prompt).ok());
  EXPECT_EQ(rid, "rid-1");
  EXPECT_EQ(step, 3u);
  EXPECT_EQ(prompt, "how many?");
}

TEST_F(ConversationTest, SingleTransactionConversationCompletes) {
  InteractiveClient client(&net_, "client-ep", io_log_.get(),
                           [](uint32_t step, const std::string&) {
                             return Result<std::string>(
                                 "answer-" + std::to_string(step));
                           });
  ASSERT_TRUE(client.Register().ok());

  ConversationalServer server(
      Options(), repo_.get(), txn_mgr_.get(), &net_,
      [](txn::Transaction*, const queue::RequestEnvelope& request,
         const AskFn& ask) -> Result<std::string> {
        RRQ_ASSIGN_OR_RETURN(std::string first, ask("first?"));
        RRQ_ASSIGN_OR_RETURN(std::string second, ask("second?"));
        return request.body + "/" + first + "/" + second;
      });

  Submit("rid-1", "order");
  ASSERT_TRUE(server.ProcessOne().ok());
  auto reply_element = repo_->Dequeue(nullptr, "rep");
  ASSERT_TRUE(reply_element.ok());
  queue::ReplyEnvelope reply;
  ASSERT_TRUE(
      queue::DecodeReplyEnvelope(reply_element->contents, &reply).ok());
  EXPECT_EQ(reply.body, "order/answer-1/answer-2");
  EXPECT_EQ(client.fresh_input_count(), 2u);
}

TEST_F(ConversationTest, AbortedConversationReplaysLoggedInputs) {
  // The §8.3 scenario: the transaction aborts after the user already
  // answered; on re-execution the answers replay from the IoLog and
  // the user is NOT asked again.
  int user_asks = 0;
  InteractiveClient client(&net_, "client-ep", io_log_.get(),
                           [&user_asks](uint32_t step, const std::string&) {
                             ++user_asks;
                             return Result<std::string>(
                                 "input-" + std::to_string(step));
                           });
  ASSERT_TRUE(client.Register().ok());

  int executions = 0;
  ConversationalServer server(
      Options(), repo_.get(), txn_mgr_.get(), &net_,
      [&executions](txn::Transaction*, const queue::RequestEnvelope&,
                    const AskFn& ask) -> Result<std::string> {
        RRQ_ASSIGN_OR_RETURN(std::string a, ask("alpha?"));
        RRQ_ASSIGN_OR_RETURN(std::string b, ask("beta?"));
        if (++executions == 1) {
          return Status::Aborted("server crash after inputs gathered");
        }
        return a + "+" + b;
      });

  Submit("rid-1", "x");
  EXPECT_FALSE(server.ProcessOne().ok());  // First run aborts.
  EXPECT_EQ(user_asks, 2);
  ASSERT_TRUE(server.ProcessOne().ok());  // Replay run succeeds.
  EXPECT_EQ(user_asks, 2);                // User was not re-asked.
  EXPECT_EQ(io_log_->replay_count(), 2u);

  auto reply_element = repo_->Dequeue(nullptr, "rep");
  ASSERT_TRUE(reply_element.ok());
  queue::ReplyEnvelope reply;
  ASSERT_TRUE(
      queue::DecodeReplyEnvelope(reply_element->contents, &reply).ok());
  EXPECT_EQ(reply.body, "input-1+input-2");
}

TEST_F(ConversationTest, LostIntermediateExchangeAbortsAndRetries) {
  InteractiveClient client(&net_, "client-ep", io_log_.get(),
                           [](uint32_t, const std::string&) {
                             return Result<std::string>("ans");
                           });
  ASSERT_TRUE(client.Register().ok());

  ConversationalServer server(
      Options(), repo_.get(), txn_mgr_.get(), &net_,
      [](txn::Transaction*, const queue::RequestEnvelope&,
         const AskFn& ask) -> Result<std::string> {
        RRQ_ASSIGN_OR_RETURN(std::string a, ask("q?"));
        return a;
      });

  Submit("rid-1", "x");
  net_.Partition("conv", "client-ep");
  EXPECT_FALSE(server.ProcessOne().ok());
  EXPECT_EQ(server.aborted_count(), 1u);
  EXPECT_EQ(*repo_->Depth("req"), 1u);  // Request survived.
  net_.Heal("conv", "client-ep");
  ASSERT_TRUE(server.ProcessOne().ok());
  EXPECT_EQ(server.completed_count(), 1u);
}

TEST_F(ConversationTest, ClientCrashDuringConversationRecoversViaLog) {
  // First incarnation answers one question, then the client "crashes"
  // (endpoint gone). The server aborts. A recovered client (fresh
  // IoLog instance over the same durable file) replays.
  {
    InteractiveClient client(&net_, "client-ep", io_log_.get(),
                             [](uint32_t, const std::string&) {
                               return Result<std::string>("first-answer");
                             });
    ASSERT_TRUE(client.Register().ok());
    ConversationalServer server(
        Options(), repo_.get(), txn_mgr_.get(), &net_,
        [&client](txn::Transaction*, const queue::RequestEnvelope&,
                  const AskFn& ask) -> Result<std::string> {
          RRQ_ASSIGN_OR_RETURN(std::string a, ask("q1?"));
          client.Unregister();  // Client dies mid-conversation.
          RRQ_ASSIGN_OR_RETURN(std::string b, ask("q2?"));
          return a + b;
        });
    Submit("rid-1", "x");
    EXPECT_FALSE(server.ProcessOne().ok());
  }
  env_.SimulateCrash();

  // Recovered client: the durable IoLog still has (rid-1, 1).
  IoLog recovered_log(&env_, "/iolog");
  ASSERT_TRUE(recovered_log.Open().ok());
  int fresh = 0;
  InteractiveClient reborn(&net_, "client-ep", &recovered_log,
                           [&fresh](uint32_t, const std::string&) {
                             ++fresh;
                             return Result<std::string>("second-answer");
                           });
  ASSERT_TRUE(reborn.Register().ok());
  ConversationalServer server(
      Options(), repo_.get(), txn_mgr_.get(), &net_,
      [](txn::Transaction*, const queue::RequestEnvelope&,
         const AskFn& ask) -> Result<std::string> {
        RRQ_ASSIGN_OR_RETURN(std::string a, ask("q1?"));
        RRQ_ASSIGN_OR_RETURN(std::string b, ask("q2?"));
        return a + "|" + b;
      });
  ASSERT_TRUE(server.ProcessOne().ok());
  EXPECT_EQ(fresh, 1);  // Only q2 needed fresh input.
  auto reply_element = repo_->Dequeue(nullptr, "rep");
  ASSERT_TRUE(reply_element.ok());
  queue::ReplyEnvelope reply;
  ASSERT_TRUE(
      queue::DecodeReplyEnvelope(reply_element->contents, &reply).ok());
  EXPECT_EQ(reply.body, "first-answer|second-answer");
}

}  // namespace
}  // namespace rrq::server
