#include "server/forwarder.h"

#include <gtest/gtest.h>

#include <set>

#include "env/mem_env.h"

namespace rrq::server {
namespace {

class ForwarderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    local_ = std::make_unique<queue::QueueRepository>("front");
    ASSERT_TRUE(local_->Open().ok());
    remote_ = std::make_unique<queue::QueueRepository>("back");
    ASSERT_TRUE(remote_->Open().ok());
    ASSERT_TRUE(local_->CreateQueue("outbox").ok());
    ASSERT_TRUE(remote_->CreateQueue("requests").ok());
  }

  Forwarder::Options Options() {
    Forwarder::Options options;
    options.source_queue = "outbox";
    options.target_queue = "requests";
    options.poll_timeout_micros = 0;
    options.retry_backoff_micros = 1'000;
    return options;
  }

  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<queue::QueueRepository> local_;
  std::unique_ptr<queue::QueueRepository> remote_;
};

TEST_F(ForwarderTest, MovesElementsPreservingContentsAndPriority) {
  ASSERT_TRUE(local_->Enqueue(nullptr, "outbox", "first", 1).ok());
  ASSERT_TRUE(local_->Enqueue(nullptr, "outbox", "urgent", 9).ok());
  Forwarder forwarder(Options(), local_.get(), remote_.get(), txn_mgr_.get());
  ASSERT_TRUE(forwarder.ForwardOne().ok());
  ASSERT_TRUE(forwarder.ForwardOne().ok());
  EXPECT_TRUE(forwarder.ForwardOne().IsNotFound());  // Drained.
  EXPECT_EQ(*local_->Depth("outbox"), 0u);
  EXPECT_EQ(*remote_->Depth("requests"), 2u);
  // Priority survives the hop: "urgent" dequeues first remotely.
  auto got = remote_->Dequeue(nullptr, "requests");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->contents, "urgent");
  EXPECT_EQ(got->priority, 9u);
  EXPECT_EQ(forwarder.forwarded_count(), 2u);
}

TEST_F(ForwarderTest, FailedMoveLeavesElementLocal) {
  ASSERT_TRUE(local_->Enqueue(nullptr, "outbox", "stranded").ok());
  // "Partition": the remote queue refuses traffic.
  ASSERT_TRUE(remote_->StopQueue("requests").ok());
  Forwarder forwarder(Options(), local_.get(), remote_.get(), txn_mgr_.get());
  EXPECT_FALSE(forwarder.ForwardOne().ok());
  EXPECT_EQ(forwarder.failed_attempts(), 1u);
  // Safe at home; nothing leaked to the remote side.
  EXPECT_EQ(*local_->Depth("outbox"), 1u);
  ASSERT_TRUE(remote_->StartQueue("requests").ok());
  EXPECT_EQ(*remote_->Depth("requests"), 0u);
  // Heal: the same element moves, exactly once.
  ASSERT_TRUE(forwarder.ForwardOne().ok());
  EXPECT_EQ(*remote_->Depth("requests"), 1u);
}

TEST_F(ForwarderTest, BackgroundRelaySurvivesPartitionWindow) {
  // §1's scenario end-to-end: the client keeps submitting locally
  // while the back end is unreachable; when the partition heals, the
  // backlog drains with nothing lost or duplicated.
  ASSERT_TRUE(remote_->StopQueue("requests").ok());
  Forwarder forwarder(Options(), local_.get(), remote_.get(), txn_mgr_.get());
  ASSERT_TRUE(forwarder.Start().ok());

  std::set<std::string> sent;
  for (int i = 0; i < 30; ++i) {
    const std::string body = "req-" + std::to_string(i);
    ASSERT_TRUE(local_->Enqueue(nullptr, "outbox", body).ok());
    sent.insert(body);
    if (i == 15) {
      // Mid-stream, the partition heals — but only after the relay
      // thread has demonstrably hit it at least once, so the
      // failed_attempts assertion below never depends on scheduling.
      for (int w = 0; w < 2000 && forwarder.failed_attempts() == 0; ++w) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      ASSERT_TRUE(remote_->StartQueue("requests").ok());
    }
  }
  // Wait for the relay to drain the outbox.
  for (int i = 0; i < 1000 && *local_->Depth("outbox") > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  forwarder.Stop();

  EXPECT_EQ(*local_->Depth("outbox"), 0u);
  std::set<std::string> received;
  while (true) {
    auto got = remote_->Dequeue(nullptr, "requests");
    if (!got.ok()) break;
    EXPECT_TRUE(received.insert(got->contents).second)
        << "duplicate: " << got->contents;
  }
  EXPECT_EQ(received, sent);  // Nothing lost, nothing duplicated.
  EXPECT_GT(forwarder.failed_attempts(), 0u);  // The partition was real.
}

TEST_F(ForwarderTest, CrashMidMoveNeverDuplicates) {
  // Durable repos + crash between prepare and commit: presumed abort
  // keeps the element local; a coordinator-confirmed commit moves it.
  env::MemEnv env_local, env_remote;
  queue::RepositoryOptions lo, ro;
  lo.env = &env_local;
  lo.dir = "/front";
  ro.env = &env_remote;
  ro.dir = "/back";
  auto durable_local = std::make_unique<queue::QueueRepository>("front", lo);
  auto durable_remote = std::make_unique<queue::QueueRepository>("back", ro);
  ASSERT_TRUE(durable_local->Open().ok());
  ASSERT_TRUE(durable_remote->Open().ok());
  ASSERT_TRUE(durable_local->CreateQueue("outbox").ok());
  ASSERT_TRUE(durable_remote->CreateQueue("requests").ok());
  ASSERT_TRUE(durable_local->Enqueue(nullptr, "outbox", "precious").ok());

  // Drive the move by hand up to prepared-everywhere, then crash both.
  auto txn = txn_mgr_->Begin();
  auto got = durable_local->Dequeue(txn.get(), "outbox");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(
      durable_remote->Enqueue(txn.get(), "requests", got->contents).ok());
  ASSERT_TRUE(durable_local->Prepare(txn->id()).ok());
  ASSERT_TRUE(durable_remote->Prepare(txn->id()).ok());
  env_local.SimulateCrash();
  env_remote.SimulateCrash();
  txn->Abort();

  // Recovery with presumed abort: element home, remote empty.
  durable_local.reset();
  durable_remote.reset();
  queue::QueueRepository recovered_local("front", lo);
  queue::QueueRepository recovered_remote("back", ro);
  ASSERT_TRUE(recovered_local.Open().ok());
  ASSERT_TRUE(recovered_remote.Open().ok());
  EXPECT_EQ(*recovered_local.Depth("outbox"), 1u);
  EXPECT_EQ(*recovered_remote.Depth("requests"), 0u);
}

}  // namespace
}  // namespace rrq::server
