#include "server/server.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "storage/kv_store.h"

namespace rrq::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    queue::QueueOptions qopts;
    qopts.max_aborts = 2;
    qopts.error_queue = "req.err";
    ASSERT_TRUE(repo_->CreateQueue("req", qopts).ok());
    ASSERT_TRUE(repo_->CreateQueue("rep").ok());
  }

  ServerOptions Options() {
    ServerOptions options;
    options.request_queue = "req";
    options.default_reply_queue = "rep";
    options.poll_timeout_micros = 0;
    return options;
  }

  void SubmitRequest(const std::string& rid, const std::string& body,
                     const std::string& reply_queue = "") {
    queue::RequestEnvelope envelope;
    envelope.rid = rid;
    envelope.reply_queue = reply_queue;
    envelope.body = body;
    ASSERT_TRUE(
        repo_->Enqueue(nullptr, "req", queue::EncodeRequestEnvelope(envelope))
            .ok());
  }

  queue::ReplyEnvelope TakeReply(const std::string& queue = "rep") {
    auto got = repo_->Dequeue(nullptr, queue);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    queue::ReplyEnvelope reply;
    if (got.ok()) {
      EXPECT_TRUE(queue::DecodeReplyEnvelope(got->contents, &reply).ok());
    }
    return reply;
  }

  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<queue::QueueRepository> repo_;
};

TEST_F(ServerTest, ProcessesOneRequestAndReplies) {
  Server server(Options(), repo_.get(), txn_mgr_.get(),
                [](txn::Transaction*, const queue::RequestEnvelope& request)
                    -> Result<std::string> {
                  return "echo:" + request.body;
                });
  SubmitRequest("rid-1", "hello");
  ASSERT_TRUE(server.ProcessOne().ok());
  auto reply = TakeReply();
  EXPECT_EQ(reply.rid, "rid-1");
  EXPECT_TRUE(reply.success);
  EXPECT_EQ(reply.body, "echo:hello");
  EXPECT_EQ(server.processed_count(), 1u);
}

TEST_F(ServerTest, EmptyQueueReturnsNotFound) {
  Server server(Options(), repo_.get(), txn_mgr_.get(),
                [](txn::Transaction*, const queue::RequestEnvelope&)
                    -> Result<std::string> { return std::string("x"); });
  EXPECT_TRUE(server.ProcessOne().IsNotFound());
}

TEST_F(ServerTest, EnvelopeReplyQueueOverridesDefault) {
  ASSERT_TRUE(repo_->CreateQueue("special").ok());
  Server server(Options(), repo_.get(), txn_mgr_.get(),
                [](txn::Transaction*, const queue::RequestEnvelope&)
                    -> Result<std::string> { return std::string("ok"); });
  SubmitRequest("rid-2", "x", "special");
  ASSERT_TRUE(server.ProcessOne().ok());
  EXPECT_EQ(*repo_->Depth("rep"), 0u);
  auto reply = TakeReply("special");
  EXPECT_EQ(reply.rid, "rid-2");
}

TEST_F(ServerTest, HandlerErrorAbortsAndRequeues) {
  int calls = 0;
  Server server(Options(), repo_.get(), txn_mgr_.get(),
                [&calls](txn::Transaction*, const queue::RequestEnvelope&)
                    -> Result<std::string> {
                  ++calls;
                  return Status::IOError("backend hiccup");
                });
  SubmitRequest("rid-3", "x");
  EXPECT_FALSE(server.ProcessOne().ok());
  EXPECT_EQ(server.aborted_count(), 1u);
  // The request is back in the queue with a bumped abort count.
  EXPECT_EQ(*repo_->Depth("req"), 1u);
  EXPECT_FALSE(server.ProcessOne().ok());
  EXPECT_EQ(calls, 2);
  // max_aborts=2: now it is in the error queue.
  EXPECT_EQ(*repo_->Depth("req"), 0u);
  EXPECT_EQ(*repo_->Depth("req.err"), 1u);
}

TEST_F(ServerTest, ErrorScavengerSendsFailureReply) {
  Server server(Options(), repo_.get(), txn_mgr_.get(),
                [](txn::Transaction*, const queue::RequestEnvelope&)
                    -> Result<std::string> {
                  return Status::IOError("always fails");
                });
  SubmitRequest("rid-4", "poison");
  server.ProcessOne();
  server.ProcessOne();  // Drains to error queue.
  ASSERT_TRUE(server.ScavengeOneError().ok());
  auto reply = TakeReply();
  EXPECT_EQ(reply.rid, "rid-4");
  EXPECT_FALSE(reply.success);  // §3: the failure reply is the promise.
  EXPECT_EQ(server.failure_replies(), 1u);
}

TEST_F(ServerTest, InjectedCrashPreservesRequest) {
  Server server(Options(), repo_.get(), txn_mgr_.get(),
                [](txn::Transaction*, const queue::RequestEnvelope& request)
                    -> Result<std::string> { return request.body; });
  SubmitRequest("rid-5", "survives");
  server.InjectCrashBeforeCommit(0);
  EXPECT_TRUE(server.ProcessOne().IsAborted());
  EXPECT_EQ(*repo_->Depth("req"), 1u);  // Request survived the crash.
  ASSERT_TRUE(server.ProcessOne().ok());
  auto reply = TakeReply();
  EXPECT_EQ(reply.rid, "rid-5");
}

TEST_F(ServerTest, HandlerDatabaseUpdatesAtomicWithDequeue) {
  storage::KvStore store("db", {});
  ASSERT_TRUE(store.Open().ok());
  {
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(store.Put(txn.get(), "balance", "100").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  Server server(
      Options(), repo_.get(), txn_mgr_.get(),
      [&store](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        RRQ_ASSIGN_OR_RETURN(std::string balance,
                             store.GetForUpdate(t, "balance"));
        const int updated = std::stoi(balance) - std::stoi(request.body);
        RRQ_RETURN_IF_ERROR(store.Put(t, "balance", std::to_string(updated)));
        if (updated < 0) return Status::InvalidArgument("overdraft");
        return std::to_string(updated);
      });
  SubmitRequest("rid-6", "30");
  ASSERT_TRUE(server.ProcessOne().ok());
  EXPECT_EQ(*store.GetCommitted("balance"), "70");

  // A failing request leaves the database untouched.
  SubmitRequest("rid-7", "500");
  EXPECT_FALSE(server.ProcessOne().ok());
  EXPECT_EQ(*store.GetCommitted("balance"), "70");
}

TEST_F(ServerTest, ThreadedServersDrainQueue) {
  std::atomic<int> handled{0};
  ServerOptions options = Options();
  options.threads = 3;
  options.poll_timeout_micros = 5'000;
  Server server(options, repo_.get(), txn_mgr_.get(),
                [&handled](txn::Transaction*, const queue::RequestEnvelope&)
                    -> Result<std::string> {
                  ++handled;
                  return std::string("ok");
                });
  constexpr int kRequests = 100;
  for (int i = 0; i < kRequests; ++i) {
    SubmitRequest("rid-" + std::to_string(i), "x");
  }
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 500 && handled.load() < kRequests; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  EXPECT_EQ(handled.load(), kRequests);
  EXPECT_EQ(*repo_->Depth("rep"), static_cast<size_t>(kRequests));
}

TEST_F(ServerTest, SchedulerSelectsByContent) {
  // §10 request scheduling: "highest dollar amount first".
  ServerOptions options = Options();
  options.scheduler =
      [](const std::vector<queue::Element*>& candidates) -> size_t {
    size_t best = 0;
    long best_amount = -1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      queue::RequestEnvelope envelope;
      if (!queue::DecodeRequestEnvelope(candidates[i]->contents, &envelope)
               .ok()) {
        continue;
      }
      long amount = std::stol(envelope.body);
      if (amount > best_amount) {
        best_amount = amount;
        best = i;
      }
    }
    return best;
  };
  std::vector<std::string> service_order;
  Server server(options, repo_.get(), txn_mgr_.get(),
                [&service_order](txn::Transaction*,
                                 const queue::RequestEnvelope& request)
                    -> Result<std::string> {
                  service_order.push_back(request.body);
                  return request.body;
                });
  SubmitRequest("w1", "120");
  SubmitRequest("w2", "9500");
  SubmitRequest("w3", "700");
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(server.ProcessOne().ok());
  ASSERT_EQ(service_order.size(), 3u);
  EXPECT_EQ(service_order[0], "9500");
  EXPECT_EQ(service_order[1], "700");
  EXPECT_EQ(service_order[2], "120");
}

}  // namespace
}  // namespace rrq::server
