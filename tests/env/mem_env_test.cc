#include "env/mem_env.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rrq::env {
namespace {

class MemEnvTest : public ::testing::Test {
 protected:
  MemEnv env_;
};

TEST_F(MemEnvTest, WriteThenReadBack) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("hello ").ok());
  ASSERT_TRUE(file->Append("world").ok());
  ASSERT_TRUE(file->Close().ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &data).ok());
  EXPECT_EQ(data, "hello world");
}

TEST_F(MemEnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> file;
  EXPECT_TRUE(env_.NewSequentialFile("/missing", &file).IsNotFound());
  EXPECT_FALSE(env_.FileExists("/missing"));
  uint64_t size;
  EXPECT_TRUE(env_.GetFileSize("/missing", &size).IsNotFound());
}

TEST_F(MemEnvTest, WritableTruncatesAppendablePreserves) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("aaa").ok());
  file.reset();

  ASSERT_TRUE(env_.NewAppendableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("bbb").ok());
  file.reset();
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &data).ok());
  EXPECT_EQ(data, "aaabbb");

  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("c").ok());
  file.reset();
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &data).ok());
  EXPECT_EQ(data, "c");
}

TEST_F(MemEnvTest, RandomAccessReads) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("0123456789").ok());

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(env_.NewRandomAccessFile("/f", &reader).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(reader->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");
  // Reads past EOF return empty.
  ASSERT_TRUE(reader->Read(100, 4, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_F(MemEnvTest, SequentialReadAndSkip) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("0123456789").ok());

  std::unique_ptr<SequentialFile> reader;
  ASSERT_TRUE(env_.NewSequentialFile("/f", &reader).ok());
  char scratch[4];
  Slice result;
  ASSERT_TRUE(reader->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "012");
  ASSERT_TRUE(reader->Skip(4).ok());
  ASSERT_TRUE(reader->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "789");
  ASSERT_TRUE(reader->Read(3, &result, scratch).ok());
  EXPECT_TRUE(result.empty());  // EOF.
}

TEST_F(MemEnvTest, RenameReplacesTarget) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/a", &file).ok());
  ASSERT_TRUE(file->Append("A").ok());
  ASSERT_TRUE(env_.NewWritableFile("/b", &file).ok());
  ASSERT_TRUE(file->Append("B").ok());
  file.reset();

  ASSERT_TRUE(env_.RenameFile("/a", "/b").ok());
  EXPECT_FALSE(env_.FileExists("/a"));
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/b", &data).ok());
  EXPECT_EQ(data, "A");
}

TEST_F(MemEnvTest, GetChildrenListsDirectChildrenOnly) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/dir/a", &file).ok());
  ASSERT_TRUE(env_.NewWritableFile("/dir/b", &file).ok());
  ASSERT_TRUE(env_.NewWritableFile("/dir/sub/c", &file).ok());
  ASSERT_TRUE(env_.NewWritableFile("/other/d", &file).ok());

  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/dir", &children).ok());
  EXPECT_EQ(children.size(), 2u);
}

TEST_F(MemEnvTest, CrashDropsUnsyncedBytes) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("-volatile").ok());

  env_.SimulateCrash();

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &data).ok());
  EXPECT_EQ(data, "durable");
}

TEST_F(MemEnvTest, CrashWithNoSyncLosesEverything) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("gone").ok());
  env_.SimulateCrash();
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &data).ok());
  EXPECT_TRUE(data.empty());
}

TEST_F(MemEnvTest, TornWriteKeepsPrefixOfUnsyncedTail) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("SYNCED").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("UNSYNCED").ok());

  util::Rng rng(99);
  env_.SimulateCrash(&rng);

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &data).ok());
  ASSERT_GE(data.size(), 6u);
  ASSERT_LE(data.size(), 14u);
  EXPECT_EQ(data.substr(0, 6), "SYNCED");
}

TEST_F(MemEnvTest, SyncAfterCrashReestablishesDurability) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("one").ok());
  ASSERT_TRUE(file->Sync().ok());
  env_.SimulateCrash();
  // Reopen (as a recovering process would) and continue.
  ASSERT_TRUE(env_.NewAppendableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("two").ok());
  ASSERT_TRUE(file->Sync().ok());
  env_.SimulateCrash();
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/f", &data).ok());
  EXPECT_EQ(data, "onetwo");
}

TEST_F(MemEnvTest, RemoveFileWithOpenHandleKeepsHandleUsable) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("x").ok());
  ASSERT_TRUE(env_.RemoveFile("/f").ok());
  EXPECT_FALSE(env_.FileExists("/f"));
  // Open handle still works (POSIX unlink semantics).
  EXPECT_TRUE(file->Append("y").ok());
}

}  // namespace
}  // namespace rrq::env
