#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "env/env.h"

namespace rrq::env {
namespace {

class PosixEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    char tmpl[] = "/tmp/rrq_posix_env_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const std::string& child : children) {
        env_->RemoveFile(dir_ + "/" + child);
      }
    }
    env_->RemoveDir(dir_);
  }

  Env* env_ = nullptr;
  std::string dir_;
};

TEST_F(PosixEnvTest, WriteSyncReadRoundTrip) {
  const std::string path = dir_ + "/file";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("hello posix").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, path, &data).ok());
  EXPECT_EQ(data, "hello posix");
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(path, &size).ok());
  EXPECT_EQ(size, 11u);
}

TEST_F(PosixEnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> file;
  EXPECT_TRUE(env_->NewSequentialFile(dir_ + "/nope", &file).IsNotFound());
}

TEST_F(PosixEnvTest, AppendableFilePreservesContents) {
  const std::string path = dir_ + "/file";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("one").ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_TRUE(env_->NewAppendableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("two").ok());
  ASSERT_TRUE(file->Close().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, path, &data).ok());
  EXPECT_EQ(data, "onetwo");
}

TEST_F(PosixEnvTest, RandomAccessPread) {
  const std::string path = dir_ + "/file";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("0123456789").ok());
  ASSERT_TRUE(file->Close().ok());

  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(env_->NewRandomAccessFile(path, &reader).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(reader->Read(2, 5, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "23456");
}

TEST_F(PosixEnvTest, RenameAndChildren) {
  const std::string a = dir_ + "/a";
  const std::string b = dir_ + "/b";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile(a, &file).ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_TRUE(env_->RenameFile(a, b).ok());
  EXPECT_FALSE(env_->FileExists(a));
  EXPECT_TRUE(env_->FileExists(b));

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], "b");
}

TEST_F(PosixEnvTest, AtomicWriteStringToFile) {
  const std::string path = dir_ + "/current";
  ASSERT_TRUE(WriteStringToFileSync(env_, "v1", path).ok());
  ASSERT_TRUE(WriteStringToFileSync(env_, "v2", path).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, path, &data).ok());
  EXPECT_EQ(data, "v2");
}

}  // namespace
}  // namespace rrq::env
