#include "env/faulty_env.h"

#include <gtest/gtest.h>

#include "env/mem_env.h"

namespace rrq::env {
namespace {

TEST(FaultyEnvTest, PassesThroughWithoutFaults) {
  MemEnv base;
  FaultyEnv env(&base);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("data").ok());
  ASSERT_TRUE(file->Sync().ok());
  std::string out;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &out).ok());
  EXPECT_EQ(out, "data");
  EXPECT_EQ(env.injected_fault_count(), 0u);
}

TEST(FaultyEnvTest, CountsOperations) {
  MemEnv base;
  FaultyEnv env(&base);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("12345").ok());
  ASSERT_TRUE(file->Append("678").ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(env.append_count(), 2u);
  EXPECT_EQ(env.bytes_appended(), 8u);
  EXPECT_EQ(env.sync_count(), 1u);
}

TEST(FaultyEnvTest, InjectsSyncFailures) {
  MemEnv base;
  FaultConfig config;
  config.sync_failure_one_in = 1;  // Every sync fails.
  FaultyEnv env(&base, config);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append("x").ok());
  EXPECT_TRUE(file->Sync().IsIOError());
  EXPECT_GE(env.injected_fault_count(), 1u);
}

TEST(FaultyEnvTest, InjectsWriteFailuresAtConfiguredRate) {
  MemEnv base;
  FaultConfig config;
  config.write_failure_one_in = 4;
  config.seed = 7;
  FaultyEnv env(&base, config);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  int failures = 0;
  const int kWrites = 400;
  for (int i = 0; i < kWrites; ++i) {
    if (!file->Append("x").ok()) ++failures;
  }
  EXPECT_GT(failures, kWrites / 8);
  EXPECT_LT(failures, kWrites / 2);
}

TEST(FaultyEnvTest, SuppressionDisablesFaults) {
  MemEnv base;
  FaultConfig config;
  config.write_failure_one_in = 1;
  FaultyEnv env(&base, config);
  env.SetFaultsSuppressed(true);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(file->Append("x").ok());
  }
  env.SetFaultsSuppressed(false);
  EXPECT_TRUE(file->Append("x").IsIOError());
}

TEST(FaultyEnvTest, OpenFailuresInjected) {
  MemEnv base;
  FaultConfig config;
  config.open_failure_one_in = 1;
  FaultyEnv env(&base, config);
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(env.NewWritableFile("/f", &file).IsIOError());
}

TEST(FaultyEnvTest, MetadataOpsPassThrough) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_TRUE(env.CreateDirIfMissing("/d").ok());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/d/f", &file).ok());
  EXPECT_TRUE(env.FileExists("/d/f"));
  ASSERT_TRUE(env.RenameFile("/d/f", "/d/g").ok());
  EXPECT_TRUE(env.FileExists("/d/g"));
  ASSERT_TRUE(env.RemoveFile("/d/g").ok());
  EXPECT_FALSE(env.FileExists("/d/g"));
}

}  // namespace
}  // namespace rrq::env
