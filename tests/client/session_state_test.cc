#include "client/session_state.h"

#include <gtest/gtest.h>

namespace rrq::client {
namespace {

TEST(SessionStateTest, InitialStateIsDisconnected) {
  SessionStateMachine machine;
  EXPECT_EQ(machine.state(), SessionState::kDisconnected);
}

TEST(SessionStateTest, NonInteractiveHappyPath) {
  // Fig 1: Connect -> Send -> Receive -> Send -> Receive -> Disconnect.
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  EXPECT_EQ(machine.state(), SessionState::kConnected);
  ASSERT_TRUE(machine.Apply(SessionEvent::kSend).ok());
  EXPECT_EQ(machine.state(), SessionState::kReqSent);
  ASSERT_TRUE(machine.Apply(SessionEvent::kReceiveReply).ok());
  EXPECT_EQ(machine.state(), SessionState::kReplyRecvd);
  ASSERT_TRUE(machine.Apply(SessionEvent::kSend).ok());
  ASSERT_TRUE(machine.Apply(SessionEvent::kReceiveReply).ok());
  ASSERT_TRUE(machine.Apply(SessionEvent::kDisconnect).ok());
  EXPECT_EQ(machine.state(), SessionState::kDisconnected);
}

TEST(SessionStateTest, InteractiveHappyPath) {
  // Fig 7: Send -> (ReceiveIntermediate -> SendIntermediate)* -> Receive.
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  ASSERT_TRUE(machine.Apply(SessionEvent::kSend).ok());
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(machine.Apply(SessionEvent::kReceiveIntermediate).ok());
    EXPECT_EQ(machine.state(), SessionState::kIntermediateIo);
    ASSERT_TRUE(machine.Apply(SessionEvent::kSendIntermediate).ok());
    EXPECT_EQ(machine.state(), SessionState::kReqSent);
  }
  ASSERT_TRUE(machine.Apply(SessionEvent::kReceiveReply).ok());
  EXPECT_EQ(machine.state(), SessionState::kReplyRecvd);
}

TEST(SessionStateTest, DoubleSendRejected) {
  // §3: one request at a time.
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  ASSERT_TRUE(machine.Apply(SessionEvent::kSend).ok());
  EXPECT_TRUE(machine.Apply(SessionEvent::kSend).IsFailedPrecondition());
}

TEST(SessionStateTest, ReceiveWithoutSendRejected) {
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  EXPECT_TRUE(
      machine.Apply(SessionEvent::kReceiveReply).IsFailedPrecondition());
}

TEST(SessionStateTest, OperationsWhileDisconnectedRejected) {
  SessionStateMachine machine;
  EXPECT_TRUE(machine.Apply(SessionEvent::kSend).IsFailedPrecondition());
  EXPECT_TRUE(
      machine.Apply(SessionEvent::kReceiveReply).IsFailedPrecondition());
  EXPECT_TRUE(machine.Apply(SessionEvent::kDisconnect).IsFailedPrecondition());
}

TEST(SessionStateTest, DoubleConnectRejected) {
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  EXPECT_TRUE(machine.Apply(SessionEvent::kConnect).IsFailedPrecondition());
}

TEST(SessionStateTest, IntermediateEventsRequireInteractiveContext) {
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  EXPECT_TRUE(machine.Apply(SessionEvent::kReceiveIntermediate)
                  .IsFailedPrecondition());
  EXPECT_TRUE(
      machine.Apply(SessionEvent::kSendIntermediate).IsFailedPrecondition());
}

TEST(SessionStateTest, ResumeAtImplementsConnectBranches) {
  // Fig 1: the Connect operation branches to Req-Sent or Reply-Recvd
  // based on the recovered rids.
  {
    SessionStateMachine machine;
    ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
    ASSERT_TRUE(machine.ResumeAt(SessionState::kReqSent).ok());
    // Can immediately Receive the outstanding reply.
    EXPECT_TRUE(machine.Apply(SessionEvent::kReceiveReply).ok());
  }
  {
    SessionStateMachine machine;
    ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
    ASSERT_TRUE(machine.ResumeAt(SessionState::kReplyRecvd).ok());
    EXPECT_TRUE(machine.Apply(SessionEvent::kSend).ok());
  }
}

TEST(SessionStateTest, ResumeAtOnlyValidAtConnectTime) {
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  ASSERT_TRUE(machine.Apply(SessionEvent::kSend).ok());
  EXPECT_TRUE(
      machine.ResumeAt(SessionState::kReplyRecvd).IsFailedPrecondition());
}

TEST(SessionStateTest, ResumeTargetsValidated) {
  SessionStateMachine machine;
  ASSERT_TRUE(machine.Apply(SessionEvent::kConnect).ok());
  EXPECT_TRUE(
      machine.ResumeAt(SessionState::kDisconnected).IsInvalidArgument());
  EXPECT_TRUE(
      machine.ResumeAt(SessionState::kIntermediateIo).IsInvalidArgument());
}

TEST(SessionStateTest, NamesAreHumanReadable) {
  EXPECT_EQ(SessionStateName(SessionState::kReqSent), "Req-Sent");
  EXPECT_EQ(SessionEventName(SessionEvent::kReceiveReply), "Receive");
}

}  // namespace
}  // namespace rrq::client
