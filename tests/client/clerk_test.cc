#include "client/clerk.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <utility>

#include "queue/queue_api.h"
#include "txn/txn_manager.h"

namespace rrq::client {
namespace {

class ClerkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    ASSERT_TRUE(repo_->CreateQueue("req").ok());
    ASSERT_TRUE(repo_->CreateQueue("rep").ok());
    api_ = std::make_unique<queue::LocalQueueApi>(repo_.get());
  }

  ClerkOptions Options(const std::string& id = "c1") {
    ClerkOptions options;
    options.client_id = id;
    options.request_queue = "req";
    options.reply_queue = "rep";
    options.api = api_.get();
    options.receive_timeout_micros = 50'000;
    return options;
  }

  // Acts as a trivial in-line server: dequeue request, reply with f(body).
  void ServeOne(const std::string& transform = "done:") {
    auto got = repo_->Dequeue(nullptr, "req");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(
        repo_->Enqueue(nullptr, "rep", transform + got->contents).ok());
  }

  std::unique_ptr<queue::QueueRepository> repo_;
  std::unique_ptr<queue::LocalQueueApi> api_;
};

TEST_F(ClerkTest, FreshConnectIsConnectedState) {
  Clerk clerk(Options());
  auto cr = clerk.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_TRUE(cr->s_rid.empty());
  EXPECT_TRUE(cr->r_rid.empty());
  EXPECT_EQ(cr->resumed_state, SessionState::kConnected);
  EXPECT_EQ(clerk.state(), SessionState::kConnected);
}

TEST_F(ClerkTest, SendReceiveRoundTrip) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("ping", "rid-1").ok());
  EXPECT_EQ(clerk.state(), SessionState::kReqSent);
  ServeOne();
  auto reply = clerk.Receive("my-ckpt");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "done:ping");
  EXPECT_EQ(clerk.state(), SessionState::kReplyRecvd);
}

TEST_F(ClerkTest, SendRequiresRid) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  EXPECT_TRUE(clerk.Send("x", "").IsInvalidArgument());
}

TEST_F(ClerkTest, OperationsBeforeConnectRejected) {
  Clerk clerk(Options());
  EXPECT_TRUE(clerk.Send("x", "rid").IsNotConnected());
  EXPECT_TRUE(clerk.Receive("").status().IsNotConnected());
  EXPECT_TRUE(clerk.Rereceive().status().IsNotConnected());
  EXPECT_TRUE(clerk.Disconnect().IsFailedPrecondition());
}

TEST_F(ClerkTest, ReconnectAfterSendResumesReqSent) {
  {
    Clerk clerk(Options());
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("work", "rid-9").ok());
    // Client crashes here (no Disconnect).
  }
  Clerk reborn(Options());
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->s_rid, "rid-9");
  EXPECT_TRUE(cr->r_rid.empty());
  EXPECT_EQ(cr->resumed_state, SessionState::kReqSent);
  // The reborn client can Receive the pending reply directly.
  ServeOne();
  auto reply = reborn.Receive("");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "done:work");
}

TEST_F(ClerkTest, ReconnectAfterReceiveResumesReplyRecvd) {
  {
    Clerk clerk(Options());
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("w", "rid-1").ok());
    ServeOne();
    ASSERT_TRUE(clerk.Receive("ckpt-data").ok());
    // Crash after receive, before processing.
  }
  Clerk reborn(Options());
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->s_rid, "rid-1");
  EXPECT_EQ(cr->r_rid, "rid-1");
  EXPECT_EQ(cr->ckpt, "ckpt-data");
  EXPECT_EQ(cr->resumed_state, SessionState::kReplyRecvd);
  // Rereceive returns the retained copy.
  auto replay = reborn.Rereceive();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, "done:w");
}

TEST_F(ClerkTest, TransceiveFusesSendAndReceive) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  // Pre-position the reply so the fused call completes instantly.
  std::thread server([this]() {
    // Wait for the request to show up, then serve it.
    for (int i = 0; i < 100; ++i) {
      auto got = repo_->Dequeue(nullptr, "req");
      if (got.ok()) {
        ASSERT_TRUE(repo_->Enqueue(nullptr, "rep", "t:" + got->contents).ok());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto reply = clerk.Transceive("body", "rid-t", "ck");
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "t:body");
}

TEST_F(ClerkTest, CancelLastRequestBeforeServiceSucceeds) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("cancel-me", "rid-c").ok());
  auto killed = clerk.CancelLastRequest();
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  EXPECT_EQ(*repo_->Depth("req"), 0u);
}

TEST_F(ClerkTest, CancelAfterServiceFails) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("too-late", "rid-l").ok());
  ServeOne();
  auto killed = clerk.CancelLastRequest();
  ASSERT_TRUE(killed.ok());
  EXPECT_FALSE(*killed);
}

TEST_F(ClerkTest, CancelWithNothingSentRejected) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  EXPECT_TRUE(clerk.CancelLastRequest().status().IsFailedPrecondition());
}

TEST_F(ClerkTest, DisconnectForgetsEverything) {
  {
    Clerk clerk(Options());
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("w", "rid-1").ok());
    ServeOne();
    ASSERT_TRUE(clerk.Receive("").ok());
    ASSERT_TRUE(clerk.Disconnect().ok());
  }
  Clerk reborn(Options());
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_TRUE(cr->s_rid.empty());
  EXPECT_EQ(cr->resumed_state, SessionState::kConnected);
}

TEST_F(ClerkTest, ReceiveTimesOutWhenServerSilent) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("slow", "rid-s").ok());
  auto reply = clerk.Receive("");
  EXPECT_TRUE(reply.status().IsTimedOut()) << reply.status().ToString();
  // Still in Req-Sent; a later Receive can succeed.
  ServeOne();
  EXPECT_TRUE(clerk.Receive("").ok());
}

TEST_F(ClerkTest, ReplyTagEncodingRoundTrip) {
  std::string tag = EncodeReplyTag("rid-x", "ckpt-y");
  std::string rid, ckpt;
  ASSERT_TRUE(DecodeReplyTag(tag, &rid, &ckpt).ok());
  EXPECT_EQ(rid, "rid-x");
  EXPECT_EQ(ckpt, "ckpt-y");
  // Empty tag (fresh registration) decodes to empty pieces.
  ASSERT_TRUE(DecodeReplyTag(Slice(), &rid, &ckpt).ok());
  EXPECT_TRUE(rid.empty());
  EXPECT_TRUE(ckpt.empty());
}

TEST_F(ClerkTest, TwoClientsKeepSeparateState) {
  ASSERT_TRUE(repo_->CreateQueue("rep2").ok());
  Clerk c1(Options("c1"));
  ClerkOptions o2 = Options("c2");
  o2.reply_queue = "rep2";
  Clerk c2(o2);
  ASSERT_TRUE(c1.Connect().ok());
  ASSERT_TRUE(c2.Connect().ok());
  ASSERT_TRUE(c1.Send("from-c1", "c1#1").ok());
  ASSERT_TRUE(c2.Send("from-c2", "c2#1").ok());

  // Server replies to each client's own queue.
  for (int i = 0; i < 2; ++i) {
    auto got = repo_->Dequeue(nullptr, "req");
    ASSERT_TRUE(got.ok());
    const std::string target = got->contents == "from-c1" ? "rep" : "rep2";
    ASSERT_TRUE(repo_->Enqueue(nullptr, target, "r:" + got->contents).ok());
  }
  auto r1 = c1.Receive("");
  auto r2 = c2.Receive("");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, "r:from-c1");
  EXPECT_EQ(*r2, "r:from-c2");
}

// ---- Failure classification (§2): definite vs uncertain --------------

// Wraps a real api and fails the next Enqueue/Dequeue with a chosen
// status. With execute_first the real op still commits — modeling a
// lost acknowledgement or an undecodable reply, the §2 uncertainty.
class FlakyApi : public queue::QueueApi {
 public:
  explicit FlakyApi(queue::QueueApi* base) : base_(base) {}

  void FailNextEnqueue(Status status, bool execute_first) {
    enqueue_failure_ = std::move(status);
    enqueue_executes_ = execute_first;
  }
  void FailNextDequeue(Status status, bool execute_first) {
    dequeue_failure_ = std::move(status);
    dequeue_executes_ = execute_first;
  }

  Result<queue::RegistrationInfo> Register(const std::string& queue,
                                           const std::string& registrant,
                                           bool stable) override {
    return base_->Register(queue, registrant, stable);
  }
  Status Deregister(const std::string& queue,
                    const std::string& registrant) override {
    return base_->Deregister(queue, registrant);
  }
  Result<queue::ElementId> Enqueue(const std::string& queue,
                                   const Slice& contents, uint32_t priority,
                                   const std::string& registrant,
                                   const Slice& tag, bool one_way) override {
    if (!enqueue_failure_.ok()) {
      Status failure = std::move(enqueue_failure_);
      enqueue_failure_ = Status::OK();
      if (enqueue_executes_) {
        auto real =
            base_->Enqueue(queue, contents, priority, registrant, tag, one_way);
        EXPECT_TRUE(real.ok()) << real.status().ToString();
      }
      return failure;
    }
    return base_->Enqueue(queue, contents, priority, registrant, tag, one_way);
  }
  Result<queue::Element> Dequeue(const std::string& queue,
                                 const std::string& registrant,
                                 const Slice& tag,
                                 uint64_t timeout_micros) override {
    if (!dequeue_failure_.ok()) {
      Status failure = std::move(dequeue_failure_);
      dequeue_failure_ = Status::OK();
      if (dequeue_executes_) {
        auto real = base_->Dequeue(queue, registrant, tag, timeout_micros);
        EXPECT_TRUE(real.ok()) << real.status().ToString();
      }
      return failure;
    }
    return base_->Dequeue(queue, registrant, tag, timeout_micros);
  }
  Result<queue::Element> Read(const std::string& queue,
                              queue::ElementId eid) override {
    return base_->Read(queue, eid);
  }
  Result<bool> KillElement(const std::string& queue,
                           queue::ElementId eid) override {
    return base_->KillElement(queue, eid);
  }

 private:
  queue::QueueApi* base_;
  Status enqueue_failure_;
  bool enqueue_executes_ = false;
  Status dequeue_failure_;
  bool dequeue_executes_ = false;
};

TEST_F(ClerkTest, SendDefiniteFailureLeavesSessionIntact) {
  FlakyApi flaky(api_.get());
  ClerkOptions options = Options();
  options.api = &flaky;
  Clerk clerk(options);
  ASSERT_TRUE(clerk.Connect().ok());

  // NotFound is definite: the enqueue certainly did not execute, so
  // the session must stay Connected and the very next Send (same rid!)
  // must be accepted without any reconnect ceremony.
  flaky.FailNextEnqueue(Status::NotFound("no such queue"), false);
  EXPECT_TRUE(clerk.Send("work", "rid-1").IsNotFound());
  EXPECT_EQ(clerk.state(), SessionState::kConnected);
  EXPECT_TRUE(clerk.last_sent_rid().empty());

  ASSERT_TRUE(clerk.Send("work", "rid-1").ok());
  EXPECT_EQ(clerk.state(), SessionState::kReqSent);
  EXPECT_EQ(clerk.last_sent_rid(), "rid-1");
}

TEST_F(ClerkTest, SendLostAckResolvedByReconnectNotResend) {
  FlakyApi flaky(api_.get());
  ClerkOptions options = Options();
  options.api = &flaky;
  {
    Clerk clerk(options);
    ASSERT_TRUE(clerk.Connect().ok());
    // The enqueue commits but the ack is lost: the clerk cannot know,
    // so it must drop the session rather than sit in a state where a
    // blind retry would double-submit or be confusingly rejected.
    flaky.FailNextEnqueue(Status::Unavailable("ack lost"), true);
    EXPECT_TRUE(clerk.Send("work", "rid-7").IsUnavailable());
    EXPECT_EQ(clerk.state(), SessionState::kDisconnected);
  }
  // Re-Connect resolves the uncertainty: the system remembers rid-7,
  // so the request is NOT resent (§2's never-resend rule) and the
  // reply is received normally.
  Clerk reborn(options);
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->s_rid, "rid-7");
  EXPECT_EQ(cr->resumed_state, SessionState::kReqSent);
  ServeOne();
  auto reply = reborn.Receive("");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "done:work");
  EXPECT_EQ(*repo_->Depth("req"), 0u);
}

TEST_F(ClerkTest, SendLostBeforeCommitIsSafeToResend) {
  FlakyApi flaky(api_.get());
  ClerkOptions options = Options();
  options.api = &flaky;
  {
    Clerk clerk(options);
    ASSERT_TRUE(clerk.Connect().ok());
    flaky.FailNextEnqueue(Status::Unavailable("connection reset"), false);
    EXPECT_TRUE(clerk.Send("work", "rid-3").IsUnavailable());
    EXPECT_EQ(clerk.state(), SessionState::kDisconnected);
  }
  Clerk reborn(options);
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  // The system never saw rid-3: resending the same rid is safe and
  // must be accepted by a fresh session.
  EXPECT_TRUE(cr->s_rid.empty());
  EXPECT_EQ(cr->resumed_state, SessionState::kConnected);
  ASSERT_TRUE(reborn.Send("work", "rid-3").ok());
  ServeOne();
  EXPECT_TRUE(reborn.Receive("").ok());
}

TEST_F(ClerkTest, ReceiveCorruptionDropsSessionAndRereceiveRecovers) {
  FlakyApi flaky(api_.get());
  ClerkOptions options = Options();
  options.api = &flaky;
  {
    Clerk clerk(options);
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("work", "rid-c").ok());
    ServeOne();
    // The dequeue commits server-side but the reply fails to decode in
    // transit: the op executed, so the session must NOT stay Req-Sent
    // (the pre-fix behavior, which stranded the committed dequeue and
    // lost the element) — it must drop for re-Connect resolution.
    flaky.FailNextDequeue(Status::Corruption("undecodable reply"), true);
    EXPECT_TRUE(clerk.Receive("ck").status().IsCorruption());
    EXPECT_EQ(clerk.state(), SessionState::kDisconnected);
  }
  Clerk reborn(options);
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  // The registration proves the dequeue committed for rid-c...
  EXPECT_EQ(cr->r_rid, "rid-c");
  EXPECT_EQ(cr->resumed_state, SessionState::kReplyRecvd);
  // ...and the retained copy delivers the reply: nothing was lost.
  auto replay = reborn.Rereceive();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, "done:work");
}

TEST_F(ClerkTest, ReceiveUncertainFailureResolvedByReconnect) {
  FlakyApi flaky(api_.get());
  ClerkOptions options = Options();
  options.api = &flaky;
  {
    Clerk clerk(options);
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("work", "rid-u").ok());
    flaky.FailNextDequeue(Status::Unavailable("connection reset"), false);
    EXPECT_TRUE(clerk.Receive("").status().IsUnavailable());
    EXPECT_EQ(clerk.state(), SessionState::kDisconnected);
  }
  Clerk reborn(options);
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  // The dequeue never committed: still Req-Sent, Receive again.
  EXPECT_EQ(cr->s_rid, "rid-u");
  EXPECT_EQ(cr->resumed_state, SessionState::kReqSent);
  ServeOne();
  auto reply = reborn.Receive("");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "done:work");
}

// ---- Pipelined variants ----------------------------------------------

TEST_F(ClerkTest, AsyncSendReceiveRoundTrip) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  Status send_status = Status::Unavailable("never completed");
  clerk.SendAsync("ping", "rid-a", [&](Status s) { send_status = s; });
  ASSERT_TRUE(send_status.ok()) << send_status.ToString();
  EXPECT_EQ(clerk.state(), SessionState::kReqSent);
  ServeOne();
  Result<std::string> reply = Status::Unavailable("never completed");
  clerk.ReceiveAsync("ck", [&](Result<std::string> r) { reply = std::move(r); });
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "done:ping");
  EXPECT_EQ(clerk.state(), SessionState::kReplyRecvd);
}

TEST_F(ClerkTest, AsyncTransceiveSerializedRoundTrip) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  std::thread server([this]() {
    for (int i = 0; i < 100; ++i) {
      auto got = repo_->Dequeue(nullptr, "req");
      if (got.ok()) {
        ASSERT_TRUE(repo_->Enqueue(nullptr, "rep", "t:" + got->contents).ok());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Result<std::string> reply = Status::Unavailable("never completed");
  clerk.TransceiveAsync("body", "rid-t", "ck", /*overlap_receive=*/false,
                        [&](Result<std::string> r) { reply = std::move(r); });
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "t:body");
  EXPECT_EQ(clerk.state(), SessionState::kReplyRecvd);
}

TEST_F(ClerkTest, AsyncTransceiveOverlappedRoundTrip) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  std::thread server([this]() {
    for (int i = 0; i < 100; ++i) {
      auto got = repo_->Dequeue(nullptr, "req");
      if (got.ok()) {
        ASSERT_TRUE(repo_->Enqueue(nullptr, "rep", "o:" + got->contents).ok());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Result<std::string> reply = Status::Unavailable("never completed");
  clerk.TransceiveAsync("body", "rid-o", "ck", /*overlap_receive=*/true,
                        [&](Result<std::string> r) { reply = std::move(r); });
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "o:body");
  EXPECT_EQ(clerk.state(), SessionState::kReplyRecvd);
  EXPECT_EQ(clerk.last_sent_rid(), "rid-o");
}

}  // namespace
}  // namespace rrq::client
