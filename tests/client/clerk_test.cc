#include "client/clerk.h"

#include <gtest/gtest.h>

#include "queue/queue_api.h"
#include "txn/txn_manager.h"

namespace rrq::client {
namespace {

class ClerkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    ASSERT_TRUE(repo_->CreateQueue("req").ok());
    ASSERT_TRUE(repo_->CreateQueue("rep").ok());
    api_ = std::make_unique<queue::LocalQueueApi>(repo_.get());
  }

  ClerkOptions Options(const std::string& id = "c1") {
    ClerkOptions options;
    options.client_id = id;
    options.request_queue = "req";
    options.reply_queue = "rep";
    options.api = api_.get();
    options.receive_timeout_micros = 50'000;
    return options;
  }

  // Acts as a trivial in-line server: dequeue request, reply with f(body).
  void ServeOne(const std::string& transform = "done:") {
    auto got = repo_->Dequeue(nullptr, "req");
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(
        repo_->Enqueue(nullptr, "rep", transform + got->contents).ok());
  }

  std::unique_ptr<queue::QueueRepository> repo_;
  std::unique_ptr<queue::LocalQueueApi> api_;
};

TEST_F(ClerkTest, FreshConnectIsConnectedState) {
  Clerk clerk(Options());
  auto cr = clerk.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_TRUE(cr->s_rid.empty());
  EXPECT_TRUE(cr->r_rid.empty());
  EXPECT_EQ(cr->resumed_state, SessionState::kConnected);
  EXPECT_EQ(clerk.state(), SessionState::kConnected);
}

TEST_F(ClerkTest, SendReceiveRoundTrip) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("ping", "rid-1").ok());
  EXPECT_EQ(clerk.state(), SessionState::kReqSent);
  ServeOne();
  auto reply = clerk.Receive("my-ckpt");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "done:ping");
  EXPECT_EQ(clerk.state(), SessionState::kReplyRecvd);
}

TEST_F(ClerkTest, SendRequiresRid) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  EXPECT_TRUE(clerk.Send("x", "").IsInvalidArgument());
}

TEST_F(ClerkTest, OperationsBeforeConnectRejected) {
  Clerk clerk(Options());
  EXPECT_TRUE(clerk.Send("x", "rid").IsNotConnected());
  EXPECT_TRUE(clerk.Receive("").status().IsNotConnected());
  EXPECT_TRUE(clerk.Rereceive().status().IsNotConnected());
  EXPECT_TRUE(clerk.Disconnect().IsFailedPrecondition());
}

TEST_F(ClerkTest, ReconnectAfterSendResumesReqSent) {
  {
    Clerk clerk(Options());
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("work", "rid-9").ok());
    // Client crashes here (no Disconnect).
  }
  Clerk reborn(Options());
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->s_rid, "rid-9");
  EXPECT_TRUE(cr->r_rid.empty());
  EXPECT_EQ(cr->resumed_state, SessionState::kReqSent);
  // The reborn client can Receive the pending reply directly.
  ServeOne();
  auto reply = reborn.Receive("");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "done:work");
}

TEST_F(ClerkTest, ReconnectAfterReceiveResumesReplyRecvd) {
  {
    Clerk clerk(Options());
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("w", "rid-1").ok());
    ServeOne();
    ASSERT_TRUE(clerk.Receive("ckpt-data").ok());
    // Crash after receive, before processing.
  }
  Clerk reborn(Options());
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->s_rid, "rid-1");
  EXPECT_EQ(cr->r_rid, "rid-1");
  EXPECT_EQ(cr->ckpt, "ckpt-data");
  EXPECT_EQ(cr->resumed_state, SessionState::kReplyRecvd);
  // Rereceive returns the retained copy.
  auto replay = reborn.Rereceive();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, "done:w");
}

TEST_F(ClerkTest, TransceiveFusesSendAndReceive) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  // Pre-position the reply so the fused call completes instantly.
  std::thread server([this]() {
    // Wait for the request to show up, then serve it.
    for (int i = 0; i < 100; ++i) {
      auto got = repo_->Dequeue(nullptr, "req");
      if (got.ok()) {
        ASSERT_TRUE(repo_->Enqueue(nullptr, "rep", "t:" + got->contents).ok());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto reply = clerk.Transceive("body", "rid-t", "ck");
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "t:body");
}

TEST_F(ClerkTest, CancelLastRequestBeforeServiceSucceeds) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("cancel-me", "rid-c").ok());
  auto killed = clerk.CancelLastRequest();
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  EXPECT_EQ(*repo_->Depth("req"), 0u);
}

TEST_F(ClerkTest, CancelAfterServiceFails) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("too-late", "rid-l").ok());
  ServeOne();
  auto killed = clerk.CancelLastRequest();
  ASSERT_TRUE(killed.ok());
  EXPECT_FALSE(*killed);
}

TEST_F(ClerkTest, CancelWithNothingSentRejected) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  EXPECT_TRUE(clerk.CancelLastRequest().status().IsFailedPrecondition());
}

TEST_F(ClerkTest, DisconnectForgetsEverything) {
  {
    Clerk clerk(Options());
    ASSERT_TRUE(clerk.Connect().ok());
    ASSERT_TRUE(clerk.Send("w", "rid-1").ok());
    ServeOne();
    ASSERT_TRUE(clerk.Receive("").ok());
    ASSERT_TRUE(clerk.Disconnect().ok());
  }
  Clerk reborn(Options());
  auto cr = reborn.Connect();
  ASSERT_TRUE(cr.ok());
  EXPECT_TRUE(cr->s_rid.empty());
  EXPECT_EQ(cr->resumed_state, SessionState::kConnected);
}

TEST_F(ClerkTest, ReceiveTimesOutWhenServerSilent) {
  Clerk clerk(Options());
  ASSERT_TRUE(clerk.Connect().ok());
  ASSERT_TRUE(clerk.Send("slow", "rid-s").ok());
  auto reply = clerk.Receive("");
  EXPECT_TRUE(reply.status().IsTimedOut()) << reply.status().ToString();
  // Still in Req-Sent; a later Receive can succeed.
  ServeOne();
  EXPECT_TRUE(clerk.Receive("").ok());
}

TEST_F(ClerkTest, ReplyTagEncodingRoundTrip) {
  std::string tag = EncodeReplyTag("rid-x", "ckpt-y");
  std::string rid, ckpt;
  ASSERT_TRUE(DecodeReplyTag(tag, &rid, &ckpt).ok());
  EXPECT_EQ(rid, "rid-x");
  EXPECT_EQ(ckpt, "ckpt-y");
  // Empty tag (fresh registration) decodes to empty pieces.
  ASSERT_TRUE(DecodeReplyTag(Slice(), &rid, &ckpt).ok());
  EXPECT_TRUE(rid.empty());
  EXPECT_TRUE(ckpt.empty());
}

TEST_F(ClerkTest, TwoClientsKeepSeparateState) {
  ASSERT_TRUE(repo_->CreateQueue("rep2").ok());
  Clerk c1(Options("c1"));
  ClerkOptions o2 = Options("c2");
  o2.reply_queue = "rep2";
  Clerk c2(o2);
  ASSERT_TRUE(c1.Connect().ok());
  ASSERT_TRUE(c2.Connect().ok());
  ASSERT_TRUE(c1.Send("from-c1", "c1#1").ok());
  ASSERT_TRUE(c2.Send("from-c2", "c2#1").ok());

  // Server replies to each client's own queue.
  for (int i = 0; i < 2; ++i) {
    auto got = repo_->Dequeue(nullptr, "req");
    ASSERT_TRUE(got.ok());
    const std::string target = got->contents == "from-c1" ? "rep" : "rep2";
    ASSERT_TRUE(repo_->Enqueue(nullptr, target, "r:" + got->contents).ok());
  }
  auto r1 = c1.Receive("");
  auto r2 = c2.Receive("");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, "r:from-c1");
  EXPECT_EQ(*r2, "r:from-c2");
}

}  // namespace
}  // namespace rrq::client
