#include "client/testable_device.h"

#include <gtest/gtest.h>

namespace rrq::client {
namespace {

TEST(TicketPrinterTest, StateAdvancesWithEachEmit) {
  TicketPrinter printer;
  EXPECT_EQ(printer.ReadState(), "1");
  ASSERT_TRUE(printer.Emit("ticket for Alice").ok());
  EXPECT_EQ(printer.ReadState(), "2");
  ASSERT_TRUE(printer.Emit("ticket for Bob").ok());
  EXPECT_EQ(printer.ReadState(), "3");
  auto printed = printer.printed();
  ASSERT_EQ(printed.size(), 2u);
  EXPECT_EQ(printed[0], "ticket for Alice");
  EXPECT_EQ(printed[1], "ticket for Bob");
}

TEST(TicketPrinterTest, StateComparisonDetectsProcessing) {
  // The §3 exactly-once discipline: read state, checkpoint it, emit;
  // a mismatch later proves the emit happened.
  TicketPrinter printer;
  const std::string ckpt = printer.ReadState();
  EXPECT_EQ(printer.ReadState(), ckpt);  // Not processed yet.
  ASSERT_TRUE(printer.Emit("t").ok());
  EXPECT_NE(printer.ReadState(), ckpt);  // Processed.
}

TEST(CashDispenserTest, DispensesParsedAmounts) {
  CashDispenser atm;
  EXPECT_EQ(atm.ReadState(), "0");
  ASSERT_TRUE(atm.Emit("250").ok());
  ASSERT_TRUE(atm.Emit("100").ok());
  EXPECT_EQ(atm.total_dispensed(), 350u);
  EXPECT_EQ(atm.dispense_count(), 2u);
  EXPECT_EQ(atm.ReadState(), "350");
}

TEST(CashDispenserTest, RejectsGarbage) {
  CashDispenser atm;
  EXPECT_TRUE(atm.Emit("not-money").IsInvalidArgument());
  EXPECT_TRUE(atm.Emit("-50").IsInvalidArgument());
  EXPECT_EQ(atm.total_dispensed(), 0u);
}

TEST(CashDispenserTest, AmountWithSuffixParsesLeadingNumber) {
  CashDispenser atm;
  ASSERT_TRUE(atm.Emit("75 dollars").ok());
  EXPECT_EQ(atm.total_dispensed(), 75u);
}

}  // namespace
}  // namespace rrq::client
