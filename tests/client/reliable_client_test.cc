// Unit-level tests of ReliableClient protocol behaviors against a
// local repository, with an inline server driven deterministically.
#include "client/reliable_client.h"

#include <gtest/gtest.h>

#include "queue/queue_api.h"
#include "queue/envelope.h"
#include "txn/txn_manager.h"

namespace rrq::client {
namespace {

class ReliableClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    ASSERT_TRUE(repo_->CreateQueue("req").ok());
    ASSERT_TRUE(repo_->CreateQueue("rep").ok());
    api_ = std::make_unique<queue::LocalQueueApi>(repo_.get());
  }

  ReliableClientOptions Options(const std::string& id = "c") {
    ReliableClientOptions options;
    options.clerk.client_id = id;
    options.clerk.request_queue = "req";
    options.clerk.reply_queue = "rep";
    options.clerk.api = api_.get();
    options.clerk.receive_timeout_micros = 10'000;
    return options;
  }

  // Serves exactly one request (waiting for it to arrive): echoes the
  // body in a success reply (or a failure reply when `success` is
  // false).
  void ServeOne(bool success = true) {
    auto got = repo_->Dequeue(nullptr, "req", "", Slice(), 2'000'000);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    queue::RequestEnvelope request;
    ASSERT_TRUE(queue::DecodeRequestEnvelope(got->contents, &request).ok());
    queue::ReplyEnvelope reply;
    reply.rid = request.rid;
    reply.success = success;
    reply.body = (success ? "ok:" : "failed:") + request.body;
    ASSERT_TRUE(repo_->Enqueue(nullptr, request.reply_queue.empty()
                                            ? "rep"
                                            : request.reply_queue,
                               queue::EncodeReplyEnvelope(reply))
                    .ok());
  }

  std::unique_ptr<queue::QueueRepository> repo_;
  std::unique_ptr<queue::LocalQueueApi> api_;
};

TEST_F(ReliableClientTest, ExecuteWrapsEnvelopeAndUnwrapsReply) {
  ReliableClient client(Options(), nullptr);
  ASSERT_TRUE(client.Start().ok());
  std::thread server([this]() { ServeOne(); });
  auto reply = client.Execute("payload");
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "ok:payload");
  EXPECT_EQ(client.completed(), 1u);
}

TEST_F(ReliableClientTest, FailureReplySurfacesAsAborted) {
  int processed = 0;
  ReliableClient client(Options(), [&processed](const std::string&, bool) {
    ++processed;
    return Status::OK();
  });
  ASSERT_TRUE(client.Start().ok());
  std::thread server([this]() { ServeOne(/*success=*/false); });
  auto reply = client.Execute("doomed");
  server.join();
  EXPECT_TRUE(reply.status().IsAborted()) << reply.status().ToString();
  // The failure reply still counts as processed (§3: replies to failed
  // requests are real replies).
  EXPECT_EQ(processed, 1);
  EXPECT_EQ(client.completed(), 1u);
}

TEST_F(ReliableClientTest, RidsIncrementPerRequest) {
  ReliableClient client(Options("rid-client"), nullptr);
  ASSERT_TRUE(client.Start().ok());
  for (int i = 1; i <= 3; ++i) {
    std::thread server([this]() { ServeOne(); });
    ASSERT_TRUE(client.Execute("x").ok());
    server.join();
    EXPECT_EQ(client.clerk()->last_sent_rid(),
              "rid-client#" + std::to_string(i));
  }
}

TEST_F(ReliableClientTest, SeqContinuesAcrossIncarnations) {
  {
    ReliableClient first(Options("phoenix"), nullptr);
    ASSERT_TRUE(first.Start().ok());
    std::thread server([this]() { ServeOne(); });
    ASSERT_TRUE(first.Execute("one").ok());
    server.join();
    // Crash without Stop.
  }
  ReliableClient reborn(Options("phoenix"), nullptr);
  ASSERT_TRUE(reborn.Start().ok());
  std::thread server([this]() { ServeOne(); });
  ASSERT_TRUE(reborn.Execute("two").ok());
  server.join();
  // The second incarnation did NOT reuse rid #1.
  EXPECT_EQ(reborn.clerk()->last_sent_rid(), "phoenix#2");
}

TEST_F(ReliableClientTest, ExecuteBeforeStartRejected) {
  ReliableClient client(Options(), nullptr);
  EXPECT_TRUE(client.Execute("x").status().IsFailedPrecondition());
}

TEST_F(ReliableClientTest, ProcessorErrorPropagates) {
  ReliableClient client(Options(), [](const std::string&, bool) {
    return Status::Internal("display exploded");
  });
  ASSERT_TRUE(client.Start().ok());
  std::thread server([this]() { ServeOne(); });
  auto reply = client.Execute("x");
  server.join();
  EXPECT_TRUE(reply.status().IsInternal());
}

TEST_F(ReliableClientTest, CancelInFlightThroughClient) {
  ReliableClient client(Options(), nullptr);
  ASSERT_TRUE(client.Start().ok());
  // No server: send directly via the clerk so Execute doesn't block.
  queue::RequestEnvelope envelope;
  envelope.rid = "c#1";
  envelope.reply_queue = "rep";
  envelope.body = "x";
  ASSERT_TRUE(client.clerk()
                  ->Send(queue::EncodeRequestEnvelope(envelope), "c#1")
                  .ok());
  auto killed = client.CancelInFlight();
  ASSERT_TRUE(killed.ok());
  EXPECT_TRUE(*killed);
  EXPECT_EQ(*repo_->Depth("req"), 0u);
}

TEST_F(ReliableClientTest, StopDisconnectsCleanly) {
  ReliableClient client(Options("tidy"), nullptr);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.Stop().ok());
  // The registration is gone: a new incarnation starts fresh.
  ReliableClient next(Options("tidy"), nullptr);
  ASSERT_TRUE(next.Start().ok());
  EXPECT_EQ(next.clerk()->last_sent_rid(), "");
}

}  // namespace
}  // namespace rrq::client
