// The shared-channel clerk pool against a real in-process TCP queue
// service: N clerks multiplexing one socket, each keeping its private
// reply queue and rid protocol. Covers provisioning, concurrent
// reliable execution over the single connection, the pipelined
// transceive path, long-poll receives that outlive the channel's
// default call deadline, and pool-wide resynchronization after the
// server restarts.

#include "client/clerk_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/queue_wire.h"
#include "net/tcp_transport.h"
#include "queue/envelope.h"
#include "queue/queue_repository.h"

namespace rrq::client {
namespace {

class ClerkPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_ = std::make_unique<queue::QueueRepository>("qm");
    ASSERT_TRUE(repo_->Open().ok());
    dispatcher_ = std::make_unique<net::QueueServiceDispatcher>(repo_.get());
    StartServer(0);
  }

  void TearDown() override { StopServerProgram(); }

  void StartServer(uint16_t port) {
    net::TcpServerOptions options;
    options.port = port;
    options.workers = 2;
    server_ = std::make_unique<net::TcpServer>(
        options, [this](const Slice& request, std::string* reply) {
          return dispatcher_->Handle(request, reply);
        });
    server_->set_blocking_hint(net::QueueRequestMayBlock);
    ASSERT_TRUE(server_->Start().ok());
  }

  ClerkPoolOptions PoolOptions(int clerks) {
    ClerkPoolOptions options;
    options.channel.port = server_->port();
    options.channel.max_connect_attempts = 10;
    options.channel.backoff_initial_micros = 1'000;
    options.clerks = clerks;
    options.receive_timeout_micros = 500'000;
    return options;
  }

  // A server program draining the shared request queue directly from
  // the repository and replying to each request's private reply queue.
  void StartServerProgram() {
    serving_.store(true);
    server_program_ = std::thread([this] {
      while (serving_.load()) {
        auto got = repo_->Dequeue(nullptr, "requests", "", Slice(), 20'000);
        if (!got.ok()) continue;
        queue::RequestEnvelope request;
        if (!queue::DecodeRequestEnvelope(got->contents, &request).ok()) {
          continue;
        }
        queue::ReplyEnvelope reply;
        reply.rid = request.rid;
        reply.body = "done:" + request.body;
        ASSERT_TRUE(repo_->Enqueue(nullptr, request.reply_queue,
                                   queue::EncodeReplyEnvelope(reply))
                        .ok());
      }
    });
  }

  void StopServerProgram() {
    if (server_program_.joinable()) {
      serving_.store(false);
      server_program_.join();
    }
  }

  std::unique_ptr<queue::QueueRepository> repo_;
  std::unique_ptr<net::QueueServiceDispatcher> dispatcher_;
  std::unique_ptr<net::TcpServer> server_;
  std::thread server_program_;
  std::atomic<bool> serving_{false};
};

TEST_F(ClerkPoolTest, StartProvisionsQueuesAndConnectsEveryClerk) {
  ClerkPool pool(PoolOptions(4));
  ASSERT_TRUE(pool.Start().ok());
  EXPECT_EQ(pool.size(), 4u);
  for (size_t i = 0; i < pool.size(); ++i) {
    ASSERT_NE(pool.clerk(i), nullptr);
    EXPECT_EQ(pool.clerk(i)->state(), SessionState::kConnected);
    EXPECT_EQ(pool.reply_queue(i), "reply.pool-" + std::to_string(i));
    EXPECT_EQ(pool.request_queue(i), "requests");
  }
  // All four Connect resynchronizations rode ONE connection.
  EXPECT_EQ(pool.channel()->connects(), 1u);
  EXPECT_TRUE(repo_->Depth("requests").ok());
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_TRUE(repo_->Depth(pool.reply_queue(i)).ok());
  }
  EXPECT_TRUE(pool.Stop().ok());
}

TEST_F(ClerkPoolTest, ConcurrentExecutesShareOneConnection) {
  StartServerProgram();
  constexpr int kClerks = 4;
  constexpr int kRequestsPerClerk = 8;
  ClerkPool pool(PoolOptions(kClerks));
  ASSERT_TRUE(pool.Start().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kClerks);
  for (int i = 0; i < kClerks; ++i) {
    drivers.emplace_back([&pool, &failures, i] {
      for (int r = 0; r < kRequestsPerClerk; ++r) {
        const std::string body =
            "c" + std::to_string(i) + ":" + std::to_string(r);
        auto reply = pool.Execute(static_cast<size_t>(i), body);
        if (!reply.ok() || *reply != "done:" + body) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(pool.reliable(i)->completed(),
              static_cast<uint64_t>(kRequestsPerClerk));
  }
  // The load-bearing claim: every clerk's whole workload multiplexed
  // over a single TCP connection.
  EXPECT_EQ(pool.channel()->connects(), 1u);
  EXPECT_TRUE(pool.Stop().ok());
}

TEST_F(ClerkPoolTest, PipelinedTransceiveChainsRunOnOneSocket) {
  // Self-loop mode: each clerk's request queue is its own reply queue,
  // so a transceive is a self-contained enqueue→dequeue pair and the
  // chains exercise the pure pool + wire path with no server program.
  constexpr int kClerks = 4;
  constexpr int kPairsPerClerk = 25;
  ClerkPoolOptions options = PoolOptions(kClerks);
  options.self_loop = true;
  options.receive_timeout_micros = 0;  // Element is committed by then.
  ClerkPool pool(options);
  ASSERT_TRUE(pool.Start().ok());

  std::mutex mu;
  std::condition_variable cv;
  int outstanding = kClerks;
  std::atomic<int> failures{0};

  // One closed-loop chain per clerk, all in flight together: each
  // completion launches the clerk's next transceive from the demux
  // callback.
  struct Chain {
    ClerkPool* pool;
    size_t slot;
    int remaining;
    std::mutex* mu;
    std::condition_variable* cv;
    int* outstanding;
    std::atomic<int>* failures;

    void Launch() {
      const int seq = remaining;
      const std::string body = "b" + std::to_string(slot) + ":" +
                               std::to_string(seq);
      const std::string rid = pool->client_id(slot) + "#" +
                              std::to_string(seq);
      pool->TransceiveAsync(
          slot, body, rid, Slice(), /*overlap_receive=*/false,
          [this, body](Result<std::string> reply) {
            if (!reply.ok() || *reply != body) failures->fetch_add(1);
            if (--remaining > 0) {
              Launch();
              return;
            }
            std::lock_guard<std::mutex> lock(*mu);
            if (--*outstanding == 0) cv->notify_one();
          });
    }
  };

  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(kClerks);
  for (int i = 0; i < kClerks; ++i) {
    auto chain = std::make_unique<Chain>();
    chain->pool = &pool;
    chain->slot = static_cast<size_t>(i);
    chain->remaining = kPairsPerClerk;
    chain->mu = &mu;
    chain->cv = &cv;
    chain->outstanding = &outstanding;
    chain->failures = &failures;
    chains.push_back(std::move(chain));
  }
  for (auto& chain : chains) chain->Launch();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.channel()->connects(), 1u);
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto stats = pool.slot_stats(i);
    EXPECT_EQ(stats.transceives, static_cast<uint64_t>(kPairsPerClerk));
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_EQ(stats.deadline_expiries, 0u);
  }
  EXPECT_TRUE(pool.Stop().ok());
}

TEST_F(ClerkPoolTest, LongPollReceiveOutlivesChannelDefaultDeadline) {
  // Pool-level regression for the headline bug: a clerk Receive whose
  // long-poll bound exceeds the channel's default call deadline must
  // wait the reply out, not fail with a client-side deadline while the
  // committed server-side dequeue loses the element.
  ClerkPoolOptions options = PoolOptions(1);
  options.channel.call_timeout_micros = 150'000;   // 150ms default...
  options.receive_timeout_micros = 5'000'000;      // ...5s long-poll.
  ClerkPool pool(options);
  ASSERT_TRUE(pool.Start().ok());

  queue::RequestEnvelope request;
  request.rid = "rid-lp";
  request.reply_queue = pool.reply_queue(0);
  request.body = "slow-work";
  ASSERT_TRUE(
      pool.clerk(0)->Send(queue::EncodeRequestEnvelope(request), "rid-lp")
          .ok());
  // No server program yet: the Receive parks server-side well past the
  // channel default before the reply shows up.
  std::thread late_server([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    StartServerProgram();
  });
  auto reply = pool.clerk(0)->Receive("");
  late_server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  queue::ReplyEnvelope envelope;
  ASSERT_TRUE(queue::DecodeReplyEnvelope(*reply, &envelope).ok());
  EXPECT_EQ(envelope.rid, "rid-lp");
  EXPECT_EQ(envelope.body, "done:slow-work");
  EXPECT_EQ(pool.channel()->deadline_expiries(), 0u);
  EXPECT_EQ(pool.channel()->late_replies(), 0u);
  EXPECT_TRUE(pool.Stop().ok());
}

TEST_F(ClerkPoolTest, ResynchronizeAllRecoversEveryClerkAfterRestart) {
  constexpr int kClerks = 3;
  ClerkPool pool(PoolOptions(kClerks));
  ASSERT_TRUE(pool.Start().ok());

  // Slot 0 has a request in flight when the server dies; the others
  // are idle. A channel failure drops all of them at once.
  queue::RequestEnvelope pending;
  pending.rid = "rid-r";
  pending.reply_queue = pool.reply_queue(0);
  pending.body = "pending";
  ASSERT_TRUE(
      pool.clerk(0)->Send(queue::EncodeRequestEnvelope(pending), "rid-r")
          .ok());
  const uint16_t port = server_->port();
  server_->Stop();
  server_.reset();

  // Every clerk observes the loss as an uncertain failure and lands
  // Disconnected — exactly where re-Connect can resolve it. (Slot 0
  // notices on its pending Receive, the idle slots on their next Send.)
  EXPECT_FALSE(pool.clerk(0)->Receive("").ok());
  for (int i = 1; i < kClerks; ++i) {
    const std::string rid = "rid-idle-" + std::to_string(i);
    EXPECT_FALSE(pool.clerk(static_cast<size_t>(i))->Send("x", rid).ok());
  }
  for (int i = 0; i < kClerks; ++i) {
    EXPECT_EQ(pool.clerk(static_cast<size_t>(i))->state(),
              SessionState::kDisconnected);
  }

  StartServer(port);
  ASSERT_TRUE(pool.ResynchronizeAll().ok());
  EXPECT_GE(pool.channel()->connects(), 2u);
  EXPECT_EQ(pool.resyncs(), static_cast<uint64_t>(kClerks));

  // Slot 0's uncertainty resolved by the registration: the system
  // remembers rid-r, so the session resumes Req-Sent and the reply is
  // received without resending.
  auto cr = pool.Resynchronize(0);
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->s_rid, "rid-r");
  EXPECT_EQ(cr->resumed_state, SessionState::kReqSent);
  StartServerProgram();
  auto reply = pool.clerk(0)->Receive("");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  queue::ReplyEnvelope envelope;
  ASSERT_TRUE(queue::DecodeReplyEnvelope(*reply, &envelope).ok());
  EXPECT_EQ(envelope.body, "done:pending");
  // The idle clerks resumed Connected and still work.
  for (int i = 1; i < kClerks; ++i) {
    EXPECT_EQ(pool.clerk(static_cast<size_t>(i))->state(),
              SessionState::kConnected);
  }
  auto executed = pool.Execute(1, "post-restart");
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_EQ(*executed, "done:post-restart");
  EXPECT_TRUE(pool.Stop().ok());
}

TEST_F(ClerkPoolTest, PoolLevelExecuteBalancesAcrossFreeSlots) {
  StartServerProgram();
  constexpr int kClerks = 2;
  constexpr int kDrivers = 6;
  constexpr int kRequestsPerDriver = 5;
  ClerkPool pool(PoolOptions(kClerks));
  ASSERT_TRUE(pool.Start().ok());

  // Sequentially the pool always hands out the lowest free slot, so a
  // lone caller rides slot 0 every time.
  for (int r = 0; r < 3; ++r) {
    auto reply = pool.Execute(Slice("solo:" + std::to_string(r)));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "done:solo:" + std::to_string(r));
  }
  EXPECT_EQ(pool.reliable(0)->completed(), 3u);
  EXPECT_EQ(pool.reliable(1)->completed(), 0u);

  // More drivers than slots: callers without a free slot block until
  // one is released, never fail, and every request completes. This is
  // the slot-claim protocol the failover test's drivers rely on.
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&pool, &failures, d] {
      for (int r = 0; r < kRequestsPerDriver; ++r) {
        const std::string body =
            "d" + std::to_string(d) + ":" + std::to_string(r);
        auto reply = pool.Execute(Slice(body));
        if (!reply.ok() || *reply != "done:" + body) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
  uint64_t completed = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    completed += pool.reliable(i)->completed();
  }
  EXPECT_EQ(completed, static_cast<uint64_t>(3 + kDrivers * kRequestsPerDriver));
  // Contention forced the pool past slot 0.
  EXPECT_GT(pool.reliable(1)->completed(), 0u);
  EXPECT_EQ(pool.channel()->connects(), 1u);
  EXPECT_TRUE(pool.Stop().ok());
}

}  // namespace
}  // namespace rrq::client
