// §11 streaming extension: a window of outstanding requests, each slot
// an independent fault-tolerant session.
#include "client/streaming_client.h"

#include <gtest/gtest.h>

#include "core/property_checker.h"
#include "core/request_system.h"

namespace rrq::client {
namespace {

class StreamingClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.Open().ok());
    server_ = system_.MakeServer(
        [this](txn::Transaction* t, const queue::RequestEnvelope& request)
            -> Result<std::string> {
          const std::string rid = request.rid;
          t->OnCommit([this, rid]() { checker_.RecordCommittedExecution(rid); });
          return "done:" + request.body;
        },
        /*threads=*/2);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  StreamingClient::StreamProcessor Processor() {
    return [this](const std::string& rid, const std::string& reply,
                  bool success) {
      checker_.RecordReplyProcessed(rid);
      std::lock_guard<std::mutex> guard(mu_);
      replies_[rid] = reply;
      EXPECT_TRUE(success);
      return Status::OK();
    };
  }

  core::RequestSystem system_;
  core::PropertyChecker checker_;
  std::unique_ptr<server::Server> server_;
  std::mutex mu_;
  std::map<std::string, std::string> replies_;
};

TEST_F(StreamingClientTest, PipelinesUpToWindowDepth) {
  auto stream = system_.MakeStreamingClient("streamer", 4, Processor());
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<std::string> rids;
  for (int i = 0; i < 20; ++i) {
    auto rid = (*stream)->Submit("job-" + std::to_string(i));
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    rids.push_back(*rid);
    EXPECT_LE((*stream)->in_flight(), 4);
  }
  ASSERT_TRUE((*stream)->Drain().ok());
  EXPECT_EQ((*stream)->completed(), 20u);
  // Every rid got its own matching reply.
  for (int i = 0; i < 20; ++i) {
    std::lock_guard<std::mutex> guard(mu_);
    ASSERT_TRUE(replies_.count(rids[static_cast<size_t>(i)]) == 1) << i;
    EXPECT_EQ(replies_[rids[static_cast<size_t>(i)]],
              "done:job-" + std::to_string(i));
  }
  ASSERT_TRUE((*stream)->Stop().ok());
}

TEST_F(StreamingClientTest, RidsAreUniqueAcrossSlots) {
  auto stream = system_.MakeStreamingClient("uniq", 3, Processor());
  ASSERT_TRUE(stream.ok());
  std::set<std::string> rids;
  for (int i = 0; i < 12; ++i) {
    auto rid = (*stream)->Submit("x");
    ASSERT_TRUE(rid.ok());
    EXPECT_TRUE(rids.insert(*rid).second) << "duplicate rid " << *rid;
  }
  ASSERT_TRUE((*stream)->Drain().ok());
}

TEST_F(StreamingClientTest, WindowOfOneBehavesSequentially) {
  auto stream = system_.MakeStreamingClient("solo", 1, Processor());
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*stream)->Submit("s").ok());
    EXPECT_LE((*stream)->in_flight(), 1);
  }
  ASSERT_TRUE((*stream)->Drain().ok());
  EXPECT_EQ((*stream)->completed(), 5u);
}

TEST_F(StreamingClientTest, RecoversInFlightWindowAfterClientCrash) {
  std::vector<std::string> rids;
  {
    auto stream = system_.MakeStreamingClient("mortal", 3, Processor());
    ASSERT_TRUE(stream.ok());
    for (int i = 0; i < 3; ++i) {
      auto rid = (*stream)->Submit("pending-" + std::to_string(i));
      ASSERT_TRUE(rid.ok());
      rids.push_back(*rid);
    }
    // Crash with a full window outstanding (no Drain, no Stop).
  }
  // The reborn stream resynchronizes every slot and collects the three
  // pending replies during Start().
  auto reborn = system_.MakeStreamingClient("mortal", 3, Processor());
  ASSERT_TRUE(reborn.ok()) << reborn.status().ToString();
  EXPECT_EQ((*reborn)->in_flight(), 0);
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const std::string& rid : rids) {
      EXPECT_TRUE(replies_.count(rid) == 1) << "lost reply for " << rid;
    }
  }
  // Exactly-once on the server side, across the crash. A reply becomes
  // visible when the server's transaction commits, but the handler's
  // OnCommit callback (which records the execution) runs in the worker
  // thread just after — so quiesce the server before consulting the
  // checker. Stop() joins the workers; TearDown's second Stop() is a
  // no-op.
  server_->Stop();
  for (const std::string& rid : rids) checker_.RecordSubmission(rid);
  auto verdict = checker_.Check();
  EXPECT_EQ(verdict.duplicate_executions, 0u);
  EXPECT_EQ(verdict.lost_requests, 0u);
}

TEST_F(StreamingClientTest, SurvivesLossyNetwork) {
  // Rebuild the fixture in remote mode with drops.
  server_->Stop();
  core::SystemOptions options;
  options.remote_clients = true;
  options.client_link_faults.drop_probability = 0.10;
  options.seed = 303;
  options.receive_timeout_micros = 10'000;
  core::RequestSystem lossy(options);
  core::RequestSystem* system = &lossy;
  ASSERT_TRUE(system->Open().ok());
  auto server = system->MakeServer(
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> { return "ok:" + request.body; },
      2);
  ASSERT_TRUE(server->Start().ok());

  std::set<std::string> seen;
  auto stream = system->MakeStreamingClient(
      "lossy-stream", 4,
      [&seen](const std::string& rid, const std::string&, bool) {
        seen.insert(rid);
        return Status::OK();
      });
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::set<std::string> submitted;
  for (int i = 0; i < 20; ++i) {
    auto rid = (*stream)->Submit("w");
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    submitted.insert(*rid);
  }
  ASSERT_TRUE((*stream)->Drain().ok());
  for (const std::string& rid : submitted) {
    EXPECT_TRUE(seen.count(rid) == 1) << "no reply processed for " << rid;
  }
  server->Stop();
}

}  // namespace
}  // namespace rrq::client
