// Group commit: concurrent committers share physical WAL syncs via the
// leader/follower protocol in LogWriter::SyncTo. These tests pin down
// the three properties the optimization must preserve or deliver:
// durability of every acknowledged record (including across a crash),
// batching (fewer physical syncs than durability requests under
// contention), and clean surfacing of leader sync failures.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "env/faulty_env.h"
#include "env/mem_env.h"
#include "queue/queue_repository.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace rrq::wal {
namespace {

// Delegating file whose Sync dawdles, giving followers time to pile up
// behind the leader so batching is observable deterministically.
class SlowSyncFile final : public env::WritableFile {
 public:
  explicit SlowSyncFile(std::unique_ptr<env::WritableFile> base)
      : base_(std::move(base)) {}

  Status Append(const Slice& data) override { return base_->Append(data); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<env::WritableFile> base_;
};

class GroupCommitTest : public ::testing::Test {
 protected:
  std::unique_ptr<LogWriter> NewWriter(bool group_commit = true,
                                       bool slow_sync = false) {
    std::unique_ptr<env::WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile("/log", &file).ok());
    if (slow_sync) file = std::make_unique<SlowSyncFile>(std::move(file));
    return std::make_unique<LogWriter>(std::move(file), 0, group_commit);
  }

  std::vector<std::string> ReadAll() {
    std::unique_ptr<env::SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile("/log", &file).ok());
    LogReader reader(std::move(file));
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    return records;
  }

  env::MemEnv env_;
};

TEST_F(GroupCommitTest, ConcurrentCommittersAllDurable) {
  auto writer = NewWriter();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        std::string record =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        uint64_t end_offset = 0;
        ASSERT_TRUE(writer->AddRecord(record, &end_offset).ok());
        ASSERT_TRUE(writer->SyncTo(end_offset).ok());
        // SyncTo returning OK is the durability acknowledgment.
        EXPECT_GE(writer->durable_offset(), end_offset);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(writer->record_count(), kThreads * kPerThread);
  EXPECT_EQ(writer->durable_offset(), writer->PhysicalSize());
  EXPECT_EQ(ReadAll().size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(GroupCommitTest, BatchesSyncsUnderContention) {
  auto writer = NewWriter(/*group_commit=*/true, /*slow_sync=*/true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t end_offset = 0;
        ASSERT_TRUE(writer->AddRecord("payload", &end_offset).ok());
        ASSERT_TRUE(writer->SyncTo(end_offset).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // With 8 committers stacked behind a 2ms sync, one leader must have
  // covered several followers: strictly fewer physical syncs than
  // durability requests, i.e. records-per-sync > 1.
  EXPECT_GT(writer->sync_request_count(), writer->sync_count());
  EXPECT_GT(static_cast<double>(writer->record_count()) /
                static_cast<double>(writer->sync_count()),
            1.0);
}

TEST_F(GroupCommitTest, AlreadyDurableRequestsSkipTheSync) {
  auto writer = NewWriter();
  uint64_t end_offset = 0;
  ASSERT_TRUE(writer->AddRecord("once", &end_offset).ok());
  ASSERT_TRUE(writer->SyncTo(end_offset).ok());
  EXPECT_EQ(writer->sync_count(), 1u);
  EXPECT_EQ(writer->sync_request_count(), 1u);
  // Re-requesting durability for covered bytes is free.
  ASSERT_TRUE(writer->SyncTo(end_offset).ok());
  ASSERT_TRUE(writer->SyncTo(end_offset / 2).ok());
  EXPECT_EQ(writer->sync_count(), 1u);
  EXPECT_EQ(writer->sync_request_count(), 1u);
}

TEST_F(GroupCommitTest, PerOpBaselineSyncsEveryRequest) {
  auto writer = NewWriter(/*group_commit=*/false);
  for (int i = 0; i < 10; ++i) {
    uint64_t end_offset = 0;
    ASSERT_TRUE(writer->AddRecord("op", &end_offset).ok());
    ASSERT_TRUE(writer->SyncTo(end_offset).ok());
  }
  EXPECT_EQ(writer->sync_count(), 10u);
  EXPECT_EQ(writer->sync_request_count(), 10u);
  EXPECT_EQ(writer->durable_offset(), writer->PhysicalSize());
}

TEST_F(GroupCommitTest, FailedLeaderSyncSurfacesAndDoesNotAdvance) {
  env::FaultConfig config;
  config.sync_failure_one_in = 1;  // Every sync fails until suppressed.
  env::FaultyEnv faulty(&env_, config);
  std::unique_ptr<env::WritableFile> file;
  ASSERT_TRUE(faulty.NewWritableFile("/flog", &file).ok());
  LogWriter writer(std::move(file));

  uint64_t end_offset = 0;
  ASSERT_TRUE(writer.AddRecord("doomed", &end_offset).ok());
  EXPECT_FALSE(writer.SyncTo(end_offset).ok());
  EXPECT_LT(writer.durable_offset(), end_offset);
  EXPECT_EQ(writer.sync_count(), 0u);

  // A later committer retries as leader and succeeds once the fault
  // clears; the watermark then covers the earlier record too.
  faulty.SetFaultsSuppressed(true);
  ASSERT_TRUE(writer.SyncTo(end_offset).ok());
  EXPECT_GE(writer.durable_offset(), end_offset);
  EXPECT_EQ(writer.sync_count(), 1u);
}

TEST_F(GroupCommitTest, CrashAfterGroupCommitKeepsEveryAcknowledgedRecord) {
  auto writer = NewWriter();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        std::string record =
            "ack-" + std::to_string(t) + "-" + std::to_string(i);
        uint64_t end_offset = 0;
        ASSERT_TRUE(writer->AddRecord(record, &end_offset).ok());
        ASSERT_TRUE(writer->SyncTo(end_offset).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every record above was acknowledged durable; the crash must not
  // lose any of them even though most shared a physical sync.
  env_.SimulateCrash();
  EXPECT_EQ(ReadAll().size(), static_cast<size_t>(kThreads * kPerThread));
}

// Repository-level: concurrent auto-commit enqueues ride the shared
// group-commit path end to end, and survive a crash + replay.
TEST(GroupCommitRepositoryTest, ConcurrentEnqueuesDurableAcrossCrash) {
  env::MemEnv env;
  queue::RepositoryOptions options;
  options.env = &env;
  options.dir = "/gc";
  auto repo = std::make_unique<queue::QueueRepository>("gc", options);
  ASSERT_TRUE(repo->Open().ok());
  ASSERT_TRUE(repo->CreateQueue("q").ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        auto r = repo->Enqueue(
            nullptr, "q",
            "job-" + std::to_string(t) + "-" + std::to_string(i));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Physical syncs never exceed durability requests; under contention
  // they are typically far fewer.
  EXPECT_LE(repo->wal_sync_count(), repo->wal_sync_request_count());
  EXPECT_GE(repo->wal_sync_count(), 1u);

  repo.reset();
  env.SimulateCrash();

  auto reborn = std::make_unique<queue::QueueRepository>("gc", options);
  ASSERT_TRUE(reborn->Open().ok());
  // All acknowledged enqueues replay from the group-committed WAL.
  auto depth = reborn->Depth("q");
  ASSERT_TRUE(depth.ok()) << depth.status().ToString();
  EXPECT_EQ(*depth, static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace rrq::wal
