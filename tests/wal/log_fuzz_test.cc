// Corruption fuzz: whatever bytes we mangle, the log reader must never
// crash, never return a record that was not written, and must keep its
// corruption flag honest.
#include <set>

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "util/random.h"
#include "wal/log_format.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace rrq::wal {
namespace {

class LogFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogFuzzTest, MangledLogsNeverYieldPhantomRecords) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  env::MemEnv env;

  // Write a log of known records (each self-identifying).
  std::set<std::string> written;
  {
    std::unique_ptr<env::WritableFile> file;
    ASSERT_TRUE(env.NewWritableFile("/log", &file).ok());
    LogWriter writer(std::move(file));
    const int records = static_cast<int>(rng.UniformRange(5, 60));
    for (int i = 0; i < records; ++i) {
      std::string record = "record-" + std::to_string(seed) + "-" +
                           std::to_string(i) + "-" +
                           rng.Bytes(rng.Uniform(2000));
      ASSERT_TRUE(writer.AddRecord(record).ok());
      written.insert(std::move(record));
    }
    ASSERT_TRUE(writer.Sync().ok());
  }

  // Mangle: random byte flips, a random truncation, or random splice.
  std::string data;
  ASSERT_TRUE(env::ReadFileToString(&env, "/log", &data).ok());
  const uint64_t mangle_kind = rng.Uniform(3);
  if (mangle_kind == 0 && !data.empty()) {
    const uint64_t flips = rng.UniformRange(1, 20);
    for (uint64_t i = 0; i < flips; ++i) {
      data[rng.Uniform(data.size())] ^= static_cast<char>(1 + rng.Uniform(255));
    }
  } else if (mangle_kind == 1 && !data.empty()) {
    data.resize(rng.Uniform(data.size()));
  } else if (!data.empty()) {
    // Splice random garbage into the middle.
    const size_t at = rng.Uniform(data.size());
    data.insert(at, rng.Bytes(rng.UniformRange(1, 100)));
  }
  {
    std::unique_ptr<env::WritableFile> file;
    ASSERT_TRUE(env.NewWritableFile("/log", &file).ok());
    ASSERT_TRUE(file->Append(data).ok());
  }

  // Read back: must terminate, and every returned record must be one
  // we actually wrote (CRCs make phantom records vanishingly unlikely;
  // this asserts the reader surfaces none).
  std::unique_ptr<env::SequentialFile> file;
  ASSERT_TRUE(env.NewSequentialFile("/log", &file).ok());
  LogReader reader(std::move(file));
  Slice record;
  std::string scratch;
  size_t returned = 0;
  while (reader.ReadRecord(&record, &scratch)) {
    EXPECT_TRUE(written.count(record.ToString()) == 1)
        << "seed " << seed << ": phantom record of size " << record.size();
    ++returned;
    ASSERT_LE(returned, written.size() + 1) << "reader failed to terminate";
  }
  // Nothing else to assert about EndedCleanly(): flips may hit padding.
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogFuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace rrq::wal
