#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "util/random.h"
#include "wal/log_format.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace rrq::wal {
namespace {

class LogTest : public ::testing::Test {
 protected:
  std::unique_ptr<LogWriter> NewWriter(const std::string& path = "/log") {
    std::unique_ptr<env::WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(path, &file).ok());
    return std::make_unique<LogWriter>(std::move(file));
  }

  std::unique_ptr<LogReader> NewReader(const std::string& path = "/log") {
    std::unique_ptr<env::SequentialFile> file;
    EXPECT_TRUE(env_.NewSequentialFile(path, &file).ok());
    return std::make_unique<LogReader>(std::move(file));
  }

  std::vector<std::string> ReadAll(const std::string& path = "/log") {
    auto reader = NewReader(path);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader->ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    clean_end_ = reader->EndedCleanly();
    return records;
  }

  env::MemEnv env_;
  bool clean_end_ = true;
};

TEST_F(LogTest, EmptyLogReadsNothing) {
  NewWriter();
  auto records = ReadAll();
  EXPECT_TRUE(records.empty());
  EXPECT_TRUE(clean_end_);
}

TEST_F(LogTest, SmallRecordsRoundTrip) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("alpha").ok());
  ASSERT_TRUE(writer->AddRecord("beta").ok());
  ASSERT_TRUE(writer->AddRecord("").ok());  // Empty records are legal.
  ASSERT_TRUE(writer->AddRecord("gamma").ok());
  auto records = ReadAll();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "beta");
  EXPECT_EQ(records[2], "");
  EXPECT_EQ(records[3], "gamma");
  EXPECT_TRUE(clean_end_);
}

TEST_F(LogTest, LargeRecordSpansBlocks) {
  auto writer = NewWriter();
  const std::string big(3 * kBlockSize + 123, 'z');
  ASSERT_TRUE(writer->AddRecord(big).ok());
  ASSERT_TRUE(writer->AddRecord("tail").ok());
  auto records = ReadAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], big);
  EXPECT_EQ(records[1], "tail");
}

// Parameterized sweep over record sizes that straddle block
// boundaries, the classic fragmentation edge cases.
class LogSizeTest : public LogTest,
                    public ::testing::WithParamInterface<int> {};

TEST_P(LogSizeTest, RoundTripsExactly) {
  const int size = GetParam();
  util::Rng rng(size);
  std::string payload = rng.Bytes(static_cast<size_t>(size));
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(payload).ok());
  ASSERT_TRUE(writer->AddRecord("sentinel").ok());
  auto records = ReadAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], payload);
  EXPECT_EQ(records[1], "sentinel");
}

INSTANTIATE_TEST_SUITE_P(
    BlockBoundaries, LogSizeTest,
    ::testing::Values(1, kBlockSize - kHeaderSize - 1,
                      kBlockSize - kHeaderSize, kBlockSize - kHeaderSize + 1,
                      kBlockSize, kBlockSize + 1, 2 * kBlockSize - 17,
                      5 * kBlockSize + 3));

TEST_F(LogTest, ManyRecordsAcrossBlocks) {
  auto writer = NewWriter();
  util::Rng rng(42);
  std::vector<std::string> expected;
  for (int i = 0; i < 500; ++i) {
    expected.push_back(rng.Bytes(rng.Uniform(400)));
    ASSERT_TRUE(writer->AddRecord(expected.back()).ok());
  }
  auto records = ReadAll();
  ASSERT_EQ(records.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(records[i], expected[i]) << i;
  }
}

TEST_F(LogTest, TornTailIsToleratedSilently) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("keep-me").ok());
  ASSERT_TRUE(writer->Sync().ok());
  ASSERT_TRUE(writer->AddRecord(std::string(1000, 'x')).ok());
  // Crash before the second record was synced.
  env_.SimulateCrash();

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "keep-me");
  EXPECT_TRUE(clean_end_);  // A torn tail is expected, not corruption.
}

TEST_F(LogTest, TornTailWithPartialBytes) {
  // Repeat with random torn-write prefixes of the unsynced tail.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    env::MemEnv env;
    std::unique_ptr<env::WritableFile> file;
    ASSERT_TRUE(env.NewWritableFile("/log", &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("stable-record").ok());
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.AddRecord(std::string(500, 'y')).ok());
    util::Rng rng(seed);
    env.SimulateCrash(&rng);

    std::unique_ptr<env::SequentialFile> read_file;
    ASSERT_TRUE(env.NewSequentialFile("/log", &read_file).ok());
    LogReader reader(std::move(read_file));
    Slice record;
    std::string scratch;
    std::vector<std::string> records;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    ASSERT_GE(records.size(), 1u) << "seed " << seed;
    EXPECT_EQ(records[0], "stable-record");
    // The torn record either fully survived (prefix == whole) or is
    // silently dropped; it must never be returned mangled.
    if (records.size() == 2) {
      EXPECT_EQ(records[1], std::string(500, 'y'));
    }
  }
}

TEST_F(LogTest, CorruptionInOneBlockDoesNotPoisonLaterBlocks) {
  auto writer = NewWriter();
  // r1 sits in block 0; r2 spans into block 1; r3 follows in block 1.
  ASSERT_TRUE(writer->AddRecord(std::string(100, 'a')).ok());
  ASSERT_TRUE(writer->AddRecord(std::string(kBlockSize, 'b')).ok());
  ASSERT_TRUE(writer->AddRecord("third").ok());
  ASSERT_TRUE(writer->Sync().ok());

  // Corrupt r1's payload. The reader must drop the rest of block 0
  // (its lengths can no longer be trusted) but resume at block 1.
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/log", &data).ok());
  size_t pos = data.find("aaaa");
  ASSERT_NE(pos, std::string::npos);
  data[pos] ^= 0x40;
  std::unique_ptr<env::WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/log", &file).ok());
  ASSERT_TRUE(file->Append(data).ok());
  ASSERT_TRUE(file->Sync().ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "third");
  EXPECT_FALSE(clean_end_);  // Mid-log corruption is flagged.
}

TEST_F(LogTest, CorruptTailRecordIsDroppedAndFlagged) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("first").ok());
  ASSERT_TRUE(writer->AddRecord("second").ok());
  ASSERT_TRUE(writer->Sync().ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, "/log", &data).ok());
  size_t pos = data.find("second");
  ASSERT_NE(pos, std::string::npos);
  data[pos] ^= 0x40;
  std::unique_ptr<env::WritableFile> file;
  ASSERT_TRUE(env_.NewWritableFile("/log", &file).ok());
  ASSERT_TRUE(file->Append(data).ok());
  ASSERT_TRUE(file->Sync().ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first");
  EXPECT_FALSE(clean_end_);  // Bit rot, not a torn tail: flag it.
}

TEST_F(LogTest, ResumeAppendingAtOffset) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord("one").ok());
  ASSERT_TRUE(writer->Sync().ok());
  const uint64_t offset = writer->PhysicalSize();
  writer.reset();

  // Reopen for append, as recovery does.
  std::unique_ptr<env::WritableFile> file;
  ASSERT_TRUE(env_.NewAppendableFile("/log", &file).ok());
  LogWriter resumed(std::move(file), offset);
  ASSERT_TRUE(resumed.AddRecord("two").ok());
  ASSERT_TRUE(resumed.Sync().ok());

  auto records = ReadAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "one");
  EXPECT_EQ(records[1], "two");
}

TEST_F(LogTest, ConcurrentWritersProduceValidLog) {
  auto writer = NewWriter();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        std::string record = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(writer->AddRecord(record).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto records = ReadAll();
  EXPECT_EQ(records.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_TRUE(clean_end_);
}

}  // namespace
}  // namespace rrq::wal
