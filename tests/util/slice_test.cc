#include "util/slice.h"

#include <gtest/gtest.h>

namespace rrq {
namespace {

TEST(SliceTest, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SliceTest, ConstructionFromVariousSources) {
  std::string str = "hello";
  Slice from_string(str);
  EXPECT_EQ(from_string.size(), 5u);
  Slice from_cstr("hello");
  EXPECT_EQ(from_cstr.size(), 5u);
  Slice from_ptr(str.data(), 3);
  EXPECT_EQ(from_ptr.ToString(), "hel");
  std::string_view sv = "abc";
  Slice from_sv(sv);
  EXPECT_EQ(from_sv.ToString(), "abc");
}

TEST(SliceTest, EqualityIsByteWise) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_NE(Slice("abc"), Slice("ab"));
  std::string binary1("a\0b", 3), binary2("a\0b", 3), binary3("a\0c", 3);
  EXPECT_EQ(Slice(binary1), Slice(binary2));
  EXPECT_NE(Slice(binary1), Slice(binary3));
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // Prefix sorts first.
}

TEST(SliceTest, RemovePrefix) {
  Slice s("hello world");
  s.remove_prefix(6);
  EXPECT_EQ(s.ToString(), "world");
  s.remove_prefix(5);
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, StartsWith) {
  Slice s("hello world");
  EXPECT_TRUE(s.starts_with(Slice("hello")));
  EXPECT_TRUE(s.starts_with(Slice("")));
  EXPECT_FALSE(s.starts_with(Slice("world")));
  EXPECT_FALSE(Slice("hi").starts_with(Slice("hello")));
}

TEST(SliceTest, IndexingAndClear) {
  Slice s("abc");
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[2], 'c');
  s.clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace rrq
