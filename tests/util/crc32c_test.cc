#include "util/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace rrq::util::crc32c {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors (RFC 3720 / iSCSI).
  char buf[32];
  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x8a9136aau);
  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x62a8ab43u);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x46dd794eu);
  const std::string numbers = "123456789";
  EXPECT_EQ(Value(numbers.data(), numbers.size()), 0xe3069283u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "hello recoverable world";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = Value(data.data(), split);
    uint32_t full = Extend(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(full, Value(data.data(), data.size())) << "split=" << split;
  }
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Value("a", 1), Value("b", 1));
  EXPECT_NE(Value("ab", 2), Value("ba", 2));
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  const uint32_t crcs[] = {0, 1, 0xdeadbeef, 0xffffffff, 0x12345678};
  for (uint32_t crc : crcs) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc);  // Masking must change the value.
  }
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Value("", 0), 0u);
}

}  // namespace
}  // namespace rrq::util::crc32c
