#include "util/logging.h"

#include <gtest/gtest.h>

namespace rrq::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroCompilesAndFilters) {
  // Below the threshold: the stream expression must not be evaluated.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  RRQ_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 0);
  RRQ_LOG(kError) << count();  // Emitted (to stderr) and evaluated.
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, DirectLogMessageHonorsLevel) {
  SetLogLevel(LogLevel::kError);
  // Nothing to assert on stderr contents portably; exercise the path.
  LogMessage(LogLevel::kDebug, __FILE__, __LINE__, "filtered out");
  LogMessage(LogLevel::kError, __FILE__, __LINE__, "emitted");
}

}  // namespace
}  // namespace rrq::util
