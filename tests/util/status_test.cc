#include "util/status.h"

#include <gtest/gtest.h>

namespace rrq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::NotFound("a"), StatusCode::kNotFound},
      {Status::AlreadyExists("b"), StatusCode::kAlreadyExists},
      {Status::InvalidArgument("c"), StatusCode::kInvalidArgument},
      {Status::Corruption("d"), StatusCode::kCorruption},
      {Status::IOError("e"), StatusCode::kIOError},
      {Status::Busy("f"), StatusCode::kBusy},
      {Status::Aborted("g"), StatusCode::kAborted},
      {Status::TimedOut("h"), StatusCode::kTimedOut},
      {Status::NotConnected("i"), StatusCode::kNotConnected},
      {Status::Unavailable("j"), StatusCode::kUnavailable},
      {Status::FailedPrecondition("k"), StatusCode::kFailedPrecondition},
      {Status::Cancelled("l"), StatusCode::kCancelled},
      {Status::Internal("m"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsBusy());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::IOError("disk gone");
  Status copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.code(), StatusCode::kIOError);
  EXPECT_EQ(copy.message(), "disk gone");
  // Copy-assign over an error.
  Status target = Status::Busy("other");
  target = original;
  EXPECT_EQ(target.code(), StatusCode::kIOError);
  // Copy-assign an OK status clears.
  target = Status::OK();
  EXPECT_TRUE(target.ok());
}

TEST(StatusTest, MovePreservesState) {
  Status original = Status::TimedOut("slow");
  Status moved = std::move(original);
  EXPECT_EQ(moved.code(), StatusCode::kTimedOut);
  EXPECT_EQ(moved.message(), "slow");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Busy("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Busy("inner"); };
  auto outer = [&fails]() -> Status {
    RRQ_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsBusy());

  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer2 = [&succeeds]() -> Status {
    RRQ_RETURN_IF_ERROR(succeeds());
    return Status::NotFound("reached");
  };
  EXPECT_TRUE(outer2().IsNotFound());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace rrq
