#include "util/coding.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace rrq::util {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  const uint32_t values[] = {0, 1, 0xff, 0x1234, 0xdeadbeef,
                             std::numeric_limits<uint32_t>::max()};
  for (uint32_t v : values) {
    std::string buf;
    PutFixed32(&buf, v);
    ASSERT_EQ(buf.size(), 4u);
    Slice input(buf);
    uint32_t out = 0;
    ASSERT_TRUE(GetFixed32(&input, &out).ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(input.empty());
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  const uint64_t values[] = {0, 1, 0xffffffffull, 0x0123456789abcdefull,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutFixed64(&buf, v);
    ASSERT_EQ(buf.size(), 8u);
    Slice input(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetFixed64(&input, &out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, FixedIsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x04030201);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(CodingTest, Varint64RoundTripAcrossBoundaries) {
  std::vector<uint64_t> values = {0};
  for (int shift = 0; shift < 64; shift += 7) {
    values.push_back((1ull << shift) - 1);
    values.push_back(1ull << shift);
    values.push_back((1ull << shift) + 1);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice input(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&input, &out).ok()) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Varint32RejectsOutOfRange) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  Slice input(buf);
  uint32_t out = 0;
  EXPECT_TRUE(GetVarint32(&input, &out).IsCorruption());
}

TEST(CodingTest, TruncatedInputsFailCleanly) {
  std::string buf;
  PutFixed64(&buf, 12345);
  buf.resize(5);
  Slice input(buf);
  uint64_t out = 0;
  EXPECT_TRUE(GetFixed64(&input, &out).IsCorruption());

  std::string vbuf;
  PutVarint64(&vbuf, 1ull << 40);
  vbuf.resize(2);  // Cut mid-varint.
  Slice vinput(vbuf);
  EXPECT_TRUE(GetVarint64(&vinput, &out).IsCorruption());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  const std::string payloads[] = {"", "a", std::string(1000, 'x'),
                                  std::string("\0binary\xff", 8)};
  for (const std::string& p : payloads) {
    std::string buf;
    PutLengthPrefixed(&buf, p);
    Slice input(buf);
    Slice out;
    ASSERT_TRUE(GetLengthPrefixed(&input, &out).ok());
    EXPECT_EQ(out.ToString(), p);
    EXPECT_TRUE(input.empty());
  }
}

TEST(CodingTest, LengthPrefixedTruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  buf.resize(buf.size() - 3);
  Slice input(buf);
  Slice out;
  EXPECT_TRUE(GetLengthPrefixed(&input, &out).IsCorruption());
}

TEST(CodingTest, SequentialDecodingConsumesExactly) {
  std::string buf;
  PutVarint64(&buf, 7);
  PutLengthPrefixed(&buf, "abc");
  PutFixed32(&buf, 99);
  Slice input(buf);
  uint64_t v = 0;
  std::string s;
  uint32_t f = 0;
  ASSERT_TRUE(GetVarint64(&input, &v).ok());
  ASSERT_TRUE(GetLengthPrefixedString(&input, &s).ok());
  ASSERT_TRUE(GetFixed32(&input, &f).ok());
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(f, 99u);
  EXPECT_TRUE(input.empty());
}

}  // namespace
}  // namespace rrq::util
