#include "util/clock.h"

#include <thread>

#include <gtest/gtest.h>

namespace rrq::util {
namespace {

TEST(RealClockTest, TimeAdvancesMonotonically) {
  RealClock* clock = RealClock::Instance();
  const uint64_t a = clock->NowMicros();
  const uint64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
}

TEST(RealClockTest, SleepAdvancesAtLeastRequested) {
  RealClock* clock = RealClock::Instance();
  const uint64_t before = clock->NowMicros();
  clock->SleepMicros(2000);
  EXPECT_GE(clock->NowMicros() - before, 2000u);
}

TEST(RealClockTest, InstanceIsProcessWide) {
  EXPECT_EQ(RealClock::Instance(), RealClock::Instance());
}

TEST(SimClockTest, StartsWhereTold) {
  SimClock clock(500);
  EXPECT_EQ(clock.NowMicros(), 500u);
}

TEST(SimClockTest, AdvanceAndVirtualSleep) {
  SimClock clock;
  clock.Advance(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.SleepMicros(50);  // Virtual: no wall time passes.
  EXPECT_EQ(clock.NowMicros(), 150u);
}

TEST(SimClockTest, ThreadSafeAdvance) {
  SimClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock]() {
      for (int i = 0; i < 1000; ++i) clock.Advance(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(clock.NowMicros(), 4000u);
}

}  // namespace
}  // namespace rrq::util
