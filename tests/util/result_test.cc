#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace rrq {
namespace {

Result<int> Half(int n) {
  if (n % 2 != 0) return Status::InvalidArgument("odd");
  return n / 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = *std::move(r);
  EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, FunctionReturningResult) {
  auto ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  auto err = Half(3);
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto chain = [](int n) -> Result<int> {
    RRQ_ASSIGN_OR_RETURN(int h, Half(n));
    RRQ_ASSIGN_OR_RETURN(int q, Half(h));
    return q;
  };
  auto ok = chain(20);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(chain(10).status().IsInvalidArgument());  // 10/2=5 is odd.
}

TEST(ResultTest, CopyableResultCopies) {
  Result<std::string> a = std::string("x");
  Result<std::string> b = a;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "x");
  EXPECT_EQ(*a, "x");
}

}  // namespace
}  // namespace rrq
