// Tests for the annotated synchronization wrappers every subsystem
// locks through (util/thread_annotations.h): the runtime semantics the
// wrappers must preserve over the std primitives — mutual exclusion,
// CV wait/notify with the LevelDB-style adopt/release dance, deadline
// waits, try-lock, early-unlock/relock, and reader/writer sharing.
// (The *annotations* themselves are exercised at compile time by the
// RRQ_THREAD_SAFETY=ON clang CI job; under gcc they are no-ops.)
#include "util/thread_annotations.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace rrq {
namespace {

TEST(MutexTest, MutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLock) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Contended try-lock must fail, not block. std::mutex makes
  // same-thread re-try-lock UB, so probe from another thread.
  bool acquired = true;
  std::thread prober([&mu, &acquired] { acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, ScopedUnlockRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();  // e.g. dropping the lock across a physical sync
  {
    MutexLock reentrant(mu);  // must not deadlock: lock really released
  }
  lock.Lock();  // destructor unlocks again
}

TEST(CondVarTest, WaitSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, WaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(20);
  // Nobody signals: the deadline must fire and the lock must still be
  // held afterwards (guarded state stays accessible).
  EXPECT_EQ(cv.WaitUntil(mu, deadline), std::cv_status::timeout);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(10)),
            std::cv_status::timeout);
}

TEST(CondVarTest, WaitReleasesLockWhileBlocked) {
  // The adopt/release dance inside Wait() must actually release the
  // mutex while blocked — otherwise the signaler below would deadlock
  // trying to set the predicate.
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  // Keep signaling until the waiter observes the predicate; acquiring
  // mu here proves Wait() released it.
  bool done = false;
  while (!done) {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.Signal();
    std::this_thread::yield();
    done = true;
  }
  waiter.join();
}

TEST(SharedMutexTest, ConcurrentReadersExclusiveWriter) {
  SharedMutex mu;
  int value = 0;
  // Two readers hold the lock shared at once; a writer excludes both.
  {
    ReaderMutexLock r1(mu);
    bool second_reader_ok = false;
    std::thread t([&mu, &second_reader_ok] {
      ReaderMutexLock r2(mu);  // must not block on r1
      second_reader_ok = true;
    });
    t.join();
    EXPECT_TRUE(second_reader_ok);
  }
  constexpr int kWriters = 4;
  constexpr int kIters = 10'000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&mu, &value] {
      for (int i = 0; i < kIters; ++i) {
        WriterMutexLock lock(mu);
        ++value;
      }
    });
  }
  for (auto& t : writers) t.join();
  WriterMutexLock lock(mu);
  EXPECT_EQ(value, kWriters * kIters);
}

}  // namespace
}  // namespace rrq
