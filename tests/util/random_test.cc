#include "util/random.h"

#include <set>

#include <gtest/gtest.h>

namespace rrq::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.03);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BytesHasRequestedLength) {
  Rng rng(13);
  EXPECT_EQ(rng.Bytes(0).size(), 0u);
  EXPECT_EQ(rng.Bytes(100).size(), 100u);
}

TEST(RngTest, ZipfSkewsTowardZero) {
  Rng rng(17);
  const uint64_t n = 100;
  int low_bucket = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    uint64_t v = rng.Zipf(n, 0.99);
    ASSERT_LT(v, n);
    if (v < n / 10) ++low_bucket;
  }
  // With heavy skew, far more than 10% of draws land in the lowest 10%.
  EXPECT_GT(low_bucket, trials / 4);
}

}  // namespace
}  // namespace rrq::util
