#include "storage/kv_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "env/faulty_env.h"
#include "env/mem_env.h"

namespace rrq::storage {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    txn_mgr_ = std::make_unique<txn::TransactionManager>();
    ASSERT_TRUE(txn_mgr_->Open().ok());
    store_ = MakeStore();
  }

  std::unique_ptr<KvStore> MakeStore() {
    KvStoreOptions options;
    options.env = &env_;
    options.dir = "/kv";
    auto store = std::make_unique<KvStore>("kv", options);
    EXPECT_TRUE(store->Open().ok());
    return store;
  }

  Status Put(const std::string& key, const std::string& value) {
    auto txn = txn_mgr_->Begin();
    RRQ_RETURN_IF_ERROR(store_->Put(txn.get(), key, value));
    return txn->Commit();
  }

  env::MemEnv env_;
  std::unique_ptr<txn::TransactionManager> txn_mgr_;
  std::unique_ptr<KvStore> store_;
};

TEST_F(KvStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(Put("alpha", "1").ok());
  auto txn = txn_mgr_->Begin();
  auto v = store_->Get(txn.get(), "alpha");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
  txn->Abort();
  EXPECT_EQ(*store_->GetCommitted("alpha"), "1");
}

TEST_F(KvStoreTest, GetMissingIsNotFound) {
  auto txn = txn_mgr_->Begin();
  EXPECT_TRUE(store_->Get(txn.get(), "nope").status().IsNotFound());
  txn->Abort();
  EXPECT_TRUE(store_->GetCommitted("nope").status().IsNotFound());
}

TEST_F(KvStoreTest, TransactionReadsOwnWrites) {
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Put(txn.get(), "k", "v1").ok());
  EXPECT_EQ(*store_->Get(txn.get(), "k"), "v1");
  ASSERT_TRUE(store_->Put(txn.get(), "k", "v2").ok());
  EXPECT_EQ(*store_->Get(txn.get(), "k"), "v2");
  ASSERT_TRUE(store_->Delete(txn.get(), "k").ok());
  EXPECT_TRUE(store_->Get(txn.get(), "k").status().IsNotFound());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_TRUE(store_->GetCommitted("k").status().IsNotFound());
}

TEST_F(KvStoreTest, AbortDiscardsWrites) {
  ASSERT_TRUE(Put("k", "old").ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Put(txn.get(), "k", "new").ok());
  txn->Abort();
  EXPECT_EQ(*store_->GetCommitted("k"), "old");
}

TEST_F(KvStoreTest, UncommittedWritesInvisibleToOthers) {
  auto writer = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Put(writer.get(), "k", "v").ok());
  EXPECT_TRUE(store_->GetCommitted("k").status().IsNotFound());
  // A reader blocks on the lock (bounded) rather than seeing dirt.
  auto reader = txn_mgr_->Begin();
  EXPECT_TRUE(store_->Get(reader.get(), "k").status().IsTimedOut() ||
              store_->Get(reader.get(), "k").status().IsBusy());
  reader->Abort();
  ASSERT_TRUE(writer->Commit().ok());
}

TEST_F(KvStoreTest, DeleteThenGetNotFound) {
  ASSERT_TRUE(Put("k", "v").ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Delete(txn.get(), "k").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_TRUE(store_->GetCommitted("k").status().IsNotFound());
}

TEST_F(KvStoreTest, ScanKeysByPrefix) {
  ASSERT_TRUE(Put("acct/1", "100").ok());
  ASSERT_TRUE(Put("acct/2", "200").ok());
  ASSERT_TRUE(Put("other/3", "x").ok());
  auto keys = store_->ScanKeys("acct/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "acct/1");
  EXPECT_EQ(keys[1], "acct/2");
  EXPECT_EQ(store_->size(), 3u);
}

TEST_F(KvStoreTest, CommittedDataSurvivesCrash) {
  ASSERT_TRUE(Put("durable", "yes").ok());
  env_.SimulateCrash();
  auto recovered = MakeStore();
  EXPECT_EQ(*recovered->GetCommitted("durable"), "yes");
  EXPECT_EQ(recovered->recovered_txn_count(), 1u);
}

TEST_F(KvStoreTest, UncommittedDataLostAtCrash) {
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Put(txn.get(), "volatile", "no").ok());
  // No commit. Crash.
  env_.SimulateCrash();
  auto recovered = MakeStore();
  EXPECT_TRUE(recovered->GetCommitted("volatile").status().IsNotFound());
}

TEST_F(KvStoreTest, PreparedInDoubtResolvedByResolver) {
  // Drive the RM interface directly to stop between prepare and commit.
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Put(txn.get(), "indoubt", "v").ok());
  txn::TxnId id = txn->id();
  ASSERT_TRUE(store_->Prepare(id).ok());
  // Crash before commit. (Abort the handle without touching the store:
  // simulate coordinator loss by releasing locks manually.)
  env_.SimulateCrash();

  // Recovery with a resolver that says "committed".
  {
    KvStoreOptions options;
    options.env = &env_;
    options.dir = "/kv";
    options.in_doubt_resolver = [id](txn::TxnId q) { return q == id; };
    KvStore recovered("kv", options);
    ASSERT_TRUE(recovered.Open().ok());
    EXPECT_EQ(*recovered.GetCommitted("indoubt"), "v");
  }
  // Recovery with presumed abort (no resolver).
  {
    KvStoreOptions options;
    options.env = &env_;
    options.dir = "/kv";
    KvStore recovered("kv", options);
    ASSERT_TRUE(recovered.Open().ok());
    EXPECT_TRUE(recovered.GetCommitted("indoubt").status().IsNotFound());
  }
  txn->Abort();
}

TEST_F(KvStoreTest, CheckpointTruncatesWalAndPreservesData) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Put("k" + std::to_string(i), std::to_string(i)).ok());
  }
  const uint64_t wal_before = store_->wal_bytes();
  ASSERT_TRUE(store_->Checkpoint().ok());
  EXPECT_LT(store_->wal_bytes(), wal_before);
  EXPECT_EQ(store_->checkpoint_count(), 1u);

  // More writes after the checkpoint.
  ASSERT_TRUE(Put("post", "ckpt").ok());
  env_.SimulateCrash();
  auto recovered = MakeStore();
  EXPECT_EQ(recovered->size(), 51u);
  EXPECT_EQ(*recovered->GetCommitted("k17"), "17");
  EXPECT_EQ(*recovered->GetCommitted("post"), "ckpt");
}

TEST_F(KvStoreTest, CheckpointCarriesPreparedTransactions) {
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Put(txn.get(), "prep", "v").ok());
  txn::TxnId id = txn->id();
  ASSERT_TRUE(store_->Prepare(id).ok());
  ASSERT_TRUE(store_->Checkpoint().ok());
  env_.SimulateCrash();

  KvStoreOptions options;
  options.env = &env_;
  options.dir = "/kv";
  options.in_doubt_resolver = [id](txn::TxnId q) { return q == id; };
  KvStore recovered("kv", options);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(*recovered.GetCommitted("prep"), "v");
  txn->Abort();
}

TEST_F(KvStoreTest, VolatileStoreWorksWithoutEnv) {
  KvStore store("volatile", {});
  ASSERT_TRUE(store.Open().ok());
  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store.Put(txn.get(), "k", "v").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*store.GetCommitted("k"), "v");
}

TEST_F(KvStoreTest, TwoStoresInOneTransactionCommitAtomically) {
  KvStoreOptions options2;
  options2.env = &env_;
  options2.dir = "/kv2";
  KvStore store2("kv2", options2);
  ASSERT_TRUE(store2.Open().ok());

  auto txn = txn_mgr_->Begin();
  ASSERT_TRUE(store_->Put(txn.get(), "a", "1").ok());
  ASSERT_TRUE(store2.Put(txn.get(), "b", "2").ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(*store_->GetCommitted("a"), "1");
  EXPECT_EQ(*store2.GetCommitted("b"), "2");
}

TEST_F(KvStoreTest, ConflictingWritersSerialize) {
  ASSERT_TRUE(Put("ctr", "0").ok());
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this]() {
      for (int i = 0; i < kIncrements; ++i) {
        Status s = txn::RunInTransaction(
            txn_mgr_.get(), 10, [this](txn::Transaction* txn) -> Status {
              auto v = store_->GetForUpdate(txn, "ctr");
              if (!v.ok()) return v.status();
              return store_->Put(txn, "ctr",
                                 std::to_string(std::stoi(*v) + 1));
            });
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(*store_->GetCommitted("ctr"),
            std::to_string(kThreads * kIncrements));
}

// ---------------------------------------------------------------------------
// Checkpoint generation hygiene (crash-sweep regressions)

TEST_F(KvStoreTest, OpenRemovesOrphanGenerations) {
  ASSERT_TRUE(Put("k", "survivor").ok());
  ASSERT_TRUE(store_->Checkpoint().ok());  // Now at generation 1.
  store_.reset();
  // A crash inside Checkpoint() can strand the retiring generation, a
  // freshly written next generation, or a half-written tmp.
  ASSERT_TRUE(env::WriteStringToFileSync(&env_, "stale", "/kv/WAL-0").ok());
  ASSERT_TRUE(
      env::WriteStringToFileSync(&env_, "stale", "/kv/CHECKPOINT-9").ok());
  ASSERT_TRUE(env::WriteStringToFileSync(&env_, "half", "/kv/WAL-2.tmp").ok());
  store_ = MakeStore();
  EXPECT_GE(store_->recovery_gc_removed_count(), 3u);
  EXPECT_FALSE(env_.FileExists("/kv/WAL-0"));
  EXPECT_FALSE(env_.FileExists("/kv/CHECKPOINT-9"));
  EXPECT_FALSE(env_.FileExists("/kv/WAL-2.tmp"));
  EXPECT_TRUE(env_.FileExists("/kv/WAL-1"));  // Live generation survives.
  EXPECT_EQ(*store_->GetCommitted("k"), "survivor");
}

TEST_F(KvStoreTest, FailedRetirementIsCountedNotFatal) {
  env::FaultConfig faults;
  faults.remove_failure_one_in = 1;  // Every RemoveFile fails.
  env::FaultyEnv flaky(&env_, faults);
  KvStoreOptions options;
  options.env = &flaky;
  options.dir = "/flaky-kv";
  {
    KvStore store("flaky-kv", options);
    ASSERT_TRUE(store.Open().ok());
    auto txn = txn_mgr_->Begin();
    ASSERT_TRUE(store.Put(txn.get(), "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());
    // Retiring WAL-0 fails; the checkpoint itself must still succeed
    // and the failure must be counted, not swallowed.
    ASSERT_TRUE(store.Checkpoint().ok());
    EXPECT_GE(store.remove_failure_count(), 1u);
    EXPECT_TRUE(env_.FileExists("/flaky-kv/WAL-0"));  // Orphaned.
  }
  // The next clean open reclaims what retirement could not.
  KvStoreOptions clean;
  clean.env = &env_;
  clean.dir = "/flaky-kv";
  KvStore reopened("flaky-kv", clean);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_GE(reopened.recovery_gc_removed_count(), 1u);
  EXPECT_FALSE(env_.FileExists("/flaky-kv/WAL-0"));
  EXPECT_EQ(reopened.remove_failure_count(), 0u);
}

// Regression: Checkpoint() swaps the WAL writer under mu_ while
// committers append outside it. Two bugs lived here until the
// thread-safety annotation pass forced them out: (1) Prepare() read
// wal_ *after* releasing mu_ to decide whether to sync, racing the
// swap; (2) the retired writer was destroyed immediately, so an
// in-flight append could use a freed LogWriter. The writer is now a
// shared_ptr snapshotted under mu_. This test hammers commits against
// checkpoints — the lifetime bug trips ASan/TSan, and the recovery
// check below catches any commit the race dropped from the log.
TEST_F(KvStoreTest, ConcurrentCommitsDuringCheckpoint) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50;
  std::atomic<bool> stop{false};
  std::thread checkpointer([&] {
    while (!stop.load()) {
      ASSERT_TRUE(store_->Checkpoint().ok());
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto txn = txn_mgr_->Begin();
        std::string key = "w" + std::to_string(w) + "." + std::to_string(i);
        ASSERT_TRUE(store_->Put(txn.get(), key, "v").ok());
        ASSERT_TRUE(txn->Commit().ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  checkpointer.join();
  EXPECT_EQ(store_->size(), size_t{kWriters * kPerWriter});
  // Every acknowledged commit must be recoverable: whatever mix of
  // checkpoint and WAL each key landed in, recovery finds all of them.
  store_.reset();
  env_.SimulateCrash();
  auto recovered = MakeStore();
  EXPECT_EQ(recovered->size(), size_t{kWriters * kPerWriter});
}

}  // namespace
}  // namespace rrq::storage
