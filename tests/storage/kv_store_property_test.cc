// Model-based property test: a KvStore driven by a random operation
// schedule (puts, deletes, commits, aborts, checkpoints, crashes) must
// always agree with a trivial in-memory reference model that applies
// only the committed write sets.
#include <map>

#include <gtest/gtest.h>

#include "env/mem_env.h"
#include "storage/kv_store.h"
#include "util/random.h"

namespace rrq::storage {
namespace {

class KvStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvStorePropertyTest, AgreesWithReferenceModelAcrossCrashes) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  env::MemEnv env;
  txn::TransactionManager txn_mgr;
  ASSERT_TRUE(txn_mgr.Open().ok());

  KvStoreOptions options;
  options.env = &env;
  options.dir = "/kv";
  auto store = std::make_unique<KvStore>("kv", options);
  ASSERT_TRUE(store->Open().ok());

  std::map<std::string, std::string> model;

  constexpr int kSteps = 400;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t action = rng.Uniform(100);
    if (action < 70) {
      // A transaction of 1-4 random writes, committed or aborted.
      auto txn = txn_mgr.Begin();
      std::map<std::string, std::optional<std::string>> pending;
      const uint64_t writes = rng.UniformRange(1, 4);
      bool ok = true;
      for (uint64_t w = 0; w < writes && ok; ++w) {
        const std::string key = "k" + std::to_string(rng.Uniform(20));
        if (rng.Bernoulli(0.25)) {
          ok = store->Delete(txn.get(), key).ok();
          pending[key] = std::nullopt;
        } else {
          const std::string value = rng.Bytes(rng.UniformRange(1, 30));
          ok = store->Put(txn.get(), key, value).ok();
          pending[key] = value;
        }
      }
      ASSERT_TRUE(ok);
      if (rng.Bernoulli(0.8)) {
        ASSERT_TRUE(txn->Commit().ok());
        for (auto& [key, value] : pending) {
          if (value.has_value()) {
            model[key] = *value;
          } else {
            model.erase(key);
          }
        }
      } else {
        txn->Abort();
      }
    } else if (action < 85) {
      // Read-only spot check of a random key.
      const std::string key = "k" + std::to_string(rng.Uniform(20));
      auto got = store->GetCommitted(key);
      auto expected = model.find(key);
      if (expected == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << "seed " << seed << " " << key;
      } else {
        ASSERT_TRUE(got.ok()) << "seed " << seed << " " << key;
        EXPECT_EQ(*got, expected->second);
      }
    } else if (action < 92) {
      ASSERT_TRUE(store->Checkpoint().ok());
    } else {
      // Crash and recover.
      store.reset();
      env.SimulateCrash();
      store = std::make_unique<KvStore>("kv", options);
      ASSERT_TRUE(store->Open().ok());
    }
  }

  // Final full comparison.
  EXPECT_EQ(store->size(), model.size()) << "seed " << seed;
  for (const auto& [key, value] : model) {
    auto got = store->GetCommitted(key);
    ASSERT_TRUE(got.ok()) << "seed " << seed << " missing " << key;
    EXPECT_EQ(*got, value) << "seed " << seed << " " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStorePropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace rrq::storage
