#include "core/property_checker.h"

#include <gtest/gtest.h>

namespace rrq::core {
namespace {

TEST(PropertyCheckerTest, CleanRunHolds) {
  PropertyChecker checker;
  for (int i = 0; i < 5; ++i) {
    const std::string rid = "r" + std::to_string(i);
    checker.RecordSubmission(rid);
    checker.RecordCommittedExecution(rid);
    checker.RecordReplyProcessed(rid);
  }
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.AllHold());
  EXPECT_EQ(verdict.submitted, 5u);
  EXPECT_TRUE(checker.Offenders().empty());
}

TEST(PropertyCheckerTest, DetectsDuplicateExecution) {
  PropertyChecker checker;
  checker.RecordSubmission("r1");
  checker.RecordCommittedExecution("r1");
  checker.RecordCommittedExecution("r1");
  checker.RecordReplyProcessed("r1");
  auto verdict = checker.Check();
  EXPECT_FALSE(verdict.ExactlyOnceHolds());
  EXPECT_EQ(verdict.duplicate_executions, 1u);
  EXPECT_EQ(checker.Offenders().size(), 1u);
}

TEST(PropertyCheckerTest, DetectsLostRequest) {
  PropertyChecker checker;
  checker.RecordSubmission("r1");
  auto verdict = checker.Check();
  EXPECT_EQ(verdict.lost_requests, 1u);
  EXPECT_FALSE(verdict.ExactlyOnceHolds());
}

TEST(PropertyCheckerTest, DetectsUnprocessedReply) {
  PropertyChecker checker;
  checker.RecordSubmission("r1");
  checker.RecordCommittedExecution("r1");
  auto verdict = checker.Check();
  EXPECT_TRUE(verdict.ExactlyOnceHolds());
  EXPECT_FALSE(verdict.AtLeastOnceRepliesHold());
  EXPECT_EQ(verdict.unprocessed_replies, 1u);
}

TEST(PropertyCheckerTest, RepliesMayProcessMoreThanOnce) {
  // At-LEAST-once: duplicates on the reply side are legal.
  PropertyChecker checker;
  checker.RecordSubmission("r1");
  checker.RecordCommittedExecution("r1");
  checker.RecordReplyProcessed("r1");
  checker.RecordReplyProcessed("r1");
  EXPECT_TRUE(checker.Check().AllHold());
}

TEST(PropertyCheckerTest, DetectsPhantomExecution) {
  PropertyChecker checker;
  checker.RecordCommittedExecution("never-submitted");
  auto verdict = checker.Check();
  EXPECT_EQ(verdict.phantom_executions, 1u);
  EXPECT_FALSE(verdict.ExactlyOnceHolds());
}

TEST(PropertyCheckerTest, DetectsMismatchedReplies) {
  PropertyChecker checker;
  checker.RecordSubmission("r1");
  checker.RecordCommittedExecution("r1");
  checker.RecordReplyProcessed("r1");
  checker.RecordMismatchedReply("r1");
  auto verdict = checker.Check();
  EXPECT_FALSE(verdict.MatchingHolds());
  EXPECT_EQ(verdict.mismatched_replies, 1u);
}

}  // namespace
}  // namespace rrq::core
