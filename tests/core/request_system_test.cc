#include "core/request_system.h"

#include <gtest/gtest.h>

namespace rrq::core {
namespace {

TEST(RequestSystemTest, OpenCreatesRequestQueue) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  EXPECT_TRUE(system.repo()->QueueExists(RequestSystem::kRequestQueue));
  EXPECT_TRUE(system.Open().IsFailedPrecondition());  // Double open.
}

TEST(RequestSystemTest, ClerkOptionsAreWired) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto options = system.MakeClerkOptions("x");
  EXPECT_EQ(options.client_id, "x");
  EXPECT_EQ(options.request_queue, RequestSystem::kRequestQueue);
  EXPECT_EQ(options.reply_queue, RequestSystem::ReplyQueueName("x"));
  EXPECT_NE(options.api, nullptr);
}

TEST(RequestSystemTest, MakeClientCreatesReplyQueue) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto client = system.MakeClient("carol", nullptr);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(system.repo()->QueueExists(RequestSystem::ReplyQueueName("carol")));
  // A second client with the same id reuses the queue and resumes the
  // registration (it is the same logical client).
  ASSERT_TRUE((*client)->Stop().ok());
  auto again = system.MakeClient("carol", nullptr);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST(RequestSystemTest, VolatileSystemRefusesCrashRecovery) {
  SystemOptions options;
  options.durable = false;
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  EXPECT_TRUE(system.CrashAndRecover().IsFailedPrecondition());
}

TEST(RequestSystemTest, ApiReportsUnavailableWhileBackendDown) {
  // During CrashAndRecover the forwarding API must fail cleanly, not
  // crash — clients see the node as down.
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  queue::QueueApi* api = system.client_api();
  // Normal operation works.
  ASSERT_TRUE(api->Register(RequestSystem::kRequestQueue, "probe", true).ok());
  ASSERT_TRUE(system.CrashAndRecover().ok());
  // After recovery, the same handle keeps working, and the durable
  // registration survived.
  auto info = api->Register(RequestSystem::kRequestQueue, "probe", true);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->was_registered);
}

TEST(RequestSystemTest, QueueOptionsPlumbThrough) {
  SystemOptions options;
  options.request_queue_options.max_aborts = 7;
  options.request_queue_options.error_queue = "dead-letters";
  RequestSystem system(options);
  ASSERT_TRUE(system.Open().ok());
  auto qopts = system.repo()->GetQueueOptions(RequestSystem::kRequestQueue);
  ASSERT_TRUE(qopts.ok());
  EXPECT_EQ(qopts->max_aborts, 7u);
  EXPECT_EQ(qopts->error_queue, "dead-letters");
}

TEST(RequestSystemTest, RegistrationsSurviveBackendCrash) {
  RequestSystem system;
  ASSERT_TRUE(system.Open().ok());
  auto client = system.MakeClient("durable-reg", nullptr);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(system.CrashAndRecover().ok());
  // The reply queue and registration recovered.
  EXPECT_TRUE(
      system.repo()->QueueExists(RequestSystem::ReplyQueueName("durable-reg")));
  auto info = system.repo()->Register(RequestSystem::kRequestQueue,
                                      "durable-reg", true);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->was_registered);
}

}  // namespace
}  // namespace rrq::core
