// Interactive order entry — §8's two implementations side by side.
//
// (a) Pseudo-conversational (§8.2): each intermediate output is a
//     reply and each intermediate input is the request for the next
//     transaction — i.e. a Pipeline whose stage boundaries are the
//     I/O points. Inputs are never lost, but the request is no longer
//     serializable and late cancellation needs sagas.
// (b) Single-transaction conversational (§8.3): ONE transaction
//     exchanges ordinary messages with the client; an abort loses the
//     intermediate I/O unless the client logs it — so the client logs
//     it (IoLog) and replays on re-execution.
//
//   ./interactive_order
#include <cstdio>

#include "comm/network.h"
#include "env/mem_env.h"
#include "queue/envelope.h"
#include "queue/queue_repository.h"
#include "server/interactive.h"
#include "server/pipeline.h"
#include "txn/txn_manager.h"

using rrq::Result;
using rrq::Status;
namespace queue = rrq::queue;
namespace server = rrq::server;
namespace txn = rrq::txn;

int main() {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) return 1;
  queue::QueueRepository repo("shop-qm");
  if (!repo.Open().ok()) return 1;
  if (!repo.CreateQueue("replies").ok()) return 1;

  // =========================================================================
  printf("(a) Pseudo-conversational order entry (§8.2)\n");
  // Step 1 transaction: validate the item, ask for a quantity.
  // Step 2 transaction: price the order with the supplied quantity.
  // The "intermediate input" (quantity) arrives as the stage-1 request.
  server::PipelineStage validate{
      "validate",
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<server::StageResult> {
        printf("  [txn 1] validating item \"%s\"; intermediate output: "
               "\"how many?\"\n",
               request.body.c_str());
        return server::StageResult{request.body, ""};
      },
      nullptr};
  server::PipelineStage price{
      "price",
      [](txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<server::StageResult> {
        // The client's intermediate input was appended to the body by
        // the clerk between the transactions.
        printf("  [txn 2] pricing order \"%s\"\n", request.body.c_str());
        return server::StageResult{"ORDER CONFIRMED: " + request.body, ""};
      },
      nullptr};
  server::PipelineOptions poptions;
  poptions.queue_prefix = "order";
  poptions.poll_timeout_micros = 0;
  server::Pipeline pipeline(poptions, &repo, &txn_mgr, {validate, price});
  if (!pipeline.Setup().ok()) return 1;

  queue::RequestEnvelope order;
  order.rid = "order#1";
  order.reply_queue = "replies";
  order.body = "widget";
  repo.Enqueue(nullptr, pipeline.entry_queue(),
               queue::EncodeRequestEnvelope(order));
  if (!pipeline.ProcessOneAt(0).ok()) return 1;
  // Client supplies the intermediate input by amending the queued
  // request between the transactions (here: directly, for brevity).
  {
    auto mid = repo.Dequeue(nullptr, pipeline.StageQueue(1));
    if (!mid.ok()) return 1;
    queue::RequestEnvelope envelope;
    queue::DecodeRequestEnvelope(mid->contents, &envelope);
    printf("  [client] intermediate input: quantity = 3\n");
    envelope.body += " x3";
    repo.Enqueue(nullptr, pipeline.StageQueue(1),
                 queue::EncodeRequestEnvelope(envelope));
  }
  if (!pipeline.ProcessOneAt(1).ok()) return 1;
  {
    auto element = repo.Dequeue(nullptr, "replies");
    queue::ReplyEnvelope reply;
    if (element.ok()) queue::DecodeReplyEnvelope(element->contents, &reply);
    printf("  [client] final reply: %s\n\n", reply.body.c_str());
  }

  // =========================================================================
  printf("(b) Conversational order entry in ONE transaction (§8.3)\n");
  rrq::env::MemEnv env;
  rrq::comm::Network net(17);
  if (!repo.CreateQueue("conv.requests").ok()) return 1;

  server::IoLog io_log(&env, "/client/iolog");
  if (!io_log.Open().ok()) return 1;
  server::InteractiveClient terminal(
      &net, "terminal-1", &io_log,
      [](uint32_t step, const std::string& prompt) -> Result<std::string> {
        printf("  [user] %s -> answering\n", prompt.c_str());
        return std::string(step == 1 ? "widget" : "3");
      });
  if (!terminal.Register().ok()) return 1;

  int execution = 0;
  server::ConversationalServerOptions coptions;
  coptions.name = "conv-server";
  coptions.request_queue = "conv.requests";
  coptions.default_reply_queue = "replies";
  coptions.poll_timeout_micros = 0;
  server::ConversationalServer conv(
      coptions, &repo, &txn_mgr, &net,
      [&execution](txn::Transaction*, const queue::RequestEnvelope&,
                   const server::AskFn& ask) -> Result<std::string> {
        RRQ_ASSIGN_OR_RETURN(std::string item, ask("which item?"));
        RRQ_ASSIGN_OR_RETURN(std::string quantity, ask("how many?"));
        if (++execution == 1) {
          printf("  [server] CRASH after gathering inputs — transaction "
                 "aborts, request requeues\n");
          return Status::Aborted("simulated server failure");
        }
        return "ORDER CONFIRMED: " + item + " x" + quantity;
      });

  queue::RequestEnvelope conv_order;
  conv_order.rid = "order#2";
  conv_order.reply_queue = "replies";
  conv_order.scratch = "terminal-1";  // Client endpoint for callbacks.
  conv_order.body = "order";
  repo.Enqueue(nullptr, "conv.requests",
               queue::EncodeRequestEnvelope(conv_order));

  conv.ProcessOne();  // First execution: gathers inputs, then aborts.
  printf("  [server] re-executing; the client replays logged inputs "
         "without asking the user again\n");
  if (!conv.ProcessOne().ok()) return 1;
  {
    auto element = repo.Dequeue(nullptr, "replies");
    queue::ReplyEnvelope reply;
    if (element.ok()) queue::DecodeReplyEnvelope(element->contents, &reply);
    printf("  [client] final reply: %s (replayed inputs: %llu)\n",
           reply.body.c_str(),
           static_cast<unsigned long long>(io_log.replay_count()));
  }
  return 0;
}
