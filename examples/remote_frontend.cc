// Remote front end — the paper's deployment picture (§2): clients run
// on cheap front-end machines near the display; the queue manager and
// servers run on the back end. Here the clients reach the queue
// manager over the simulated network, which we make hostile (10%
// message loss, then a full partition that heals) — and every request
// still executes exactly once.
//
//   ./remote_frontend
#include <cstdio>

#include "core/property_checker.h"
#include "core/request_system.h"

using rrq::Result;
using rrq::Status;
namespace core = rrq::core;
namespace queue = rrq::queue;

int main() {
  core::SystemOptions options;
  options.remote_clients = true;  // Clients talk over the network.
  options.client_link_faults.drop_probability = 0.10;
  options.seed = 2026;
  options.receive_timeout_micros = 20'000;
  core::RequestSystem system(options);
  if (!system.Open().ok()) return 1;

  core::PropertyChecker checker;
  auto server = system.MakeServer(
      [&checker](rrq::txn::Transaction* t,
                 const queue::RequestEnvelope& request)
          -> Result<std::string> {
        const std::string rid = request.rid;
        t->OnCommit(
            [&checker, rid]() { checker.RecordCommittedExecution(rid); });
        return "processed " + request.body;
      });
  if (!server->Start().ok()) return 1;

  printf("Front-end client working across a 10%%-lossy link...\n");
  auto client = system.MakeClient("front-end", nullptr);
  if (!client.ok()) {
    fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < 20; ++i) {
    checker.RecordSubmission("front-end#" + std::to_string(i + 1));
    auto reply = (*client)->Execute("order-" + std::to_string(i));
    if (!reply.ok()) {
      fprintf(stderr, "execute: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    checker.RecordReplyProcessed("front-end#" + std::to_string(i + 1));
  }
  printf("  20 requests done; messages sent=%llu dropped=%llu\n",
         static_cast<unsigned long long>(system.network()->messages_sent()),
         static_cast<unsigned long long>(
             system.network()->messages_dropped()));

  printf("Partitioning the front end from the queue manager...\n");
  system.network()->Partition("clients", core::RequestSystem::kQueueServiceName);
  // Heal the link shortly, from another thread — the client is busy
  // retrying its reconnect protocol meanwhile.
  std::thread healer([&system]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    system.network()->Heal("clients",
                           core::RequestSystem::kQueueServiceName);
    printf("  ...link healed\n");
  });
  checker.RecordSubmission("front-end#21");
  auto reply = (*client)->Execute("order-during-partition");
  healer.join();
  if (!reply.ok()) {
    fprintf(stderr, "execute: %s\n", reply.status().ToString().c_str());
    return 1;
  }
  checker.RecordReplyProcessed("front-end#21");
  printf("  request submitted during the partition completed: \"%s\"\n",
         reply->c_str());

  server->Stop();
  auto verdict = checker.Check();
  printf("\nGuarantees: exactly-once=%s, replies-processed=%s "
         "(21 submitted, %llu duplicates, %llu lost)\n",
         verdict.ExactlyOnceHolds() ? "HOLDS" : "VIOLATED",
         verdict.AtLeastOnceRepliesHold() ? "HOLDS" : "VIOLATED",
         static_cast<unsigned long long>(verdict.duplicate_executions),
         static_cast<unsigned long long>(verdict.lost_requests));
  return verdict.AllHold() ? 0 : 1;
}
