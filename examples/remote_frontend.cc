// Remote front end — the paper's deployment picture (§2), now with a
// real process boundary: the queue manager and server run inside an
// rrqd daemon, and this front end reaches it over loopback TCP. With
// no argument, a private daemon is spawned as a child, SIGKILLed
// mid-workload, and restarted — and every request still executes
// exactly once. Point it at an already-running daemon instead with:
//
//   ./remote_frontend <host> <port>     (no kill/restart in this mode)
//
// Run a daemon yourself with:  rrqd --dir /tmp/rrqd-state --port 4700
#include <signal.h>
#include <stdlib.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "client/reliable_client.h"
#include "core/property_checker.h"
#include "net/remote_queue_api.h"
#include "testing/subprocess.h"

using rrq::Result;
using rrq::Status;
namespace client = rrq::client;
namespace core = rrq::core;
namespace net = rrq::net;

namespace {

// Reply bodies from rrqd's built-in server are "done:<rid>:<count>",
// where count is the committed execution counter for that rid.
bool ParseReply(const std::string& reply, std::string* rid,
                uint64_t* count) {
  const size_t first = reply.find(':');
  const size_t last = reply.rfind(':');
  if (first == std::string::npos || last <= first) return false;
  *rid = reply.substr(first + 1, last - first - 1);
  *count = std::strtoull(reply.c_str() + last + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  rrq::testing::Subprocess daemon;
  std::string dir;
  const bool own_daemon = argc < 3;

  if (own_daemon) {
    char dir_template[] = "/tmp/rrq_frontend_XXXXXX";
    if (mkdtemp(dir_template) == nullptr) return 1;
    dir = dir_template;
    printf("Spawning a private rrqd (state in %s)...\n", dir.c_str());
    if (!daemon.Spawn({RRQD_BINARY, "--dir", dir, "--port", "0"}).ok()) {
      return 1;
    }
    auto line = daemon.WaitForLine("listening on", 30'000'000);
    if (!line.ok()) {
      fprintf(stderr, "rrqd: %s\n", line.status().ToString().c_str());
      return 1;
    }
    const size_t colon = line->rfind(':');
    port = static_cast<uint16_t>(
        std::strtoul(line->c_str() + colon + 1, nullptr, 10));
  } else {
    host = argv[1];
    port = static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10));
  }
  printf("Queue manager at %s:%u\n", host.c_str(), port);

  net::TcpChannelOptions channel_options;
  channel_options.host = host;
  channel_options.port = port;
  channel_options.max_connect_attempts = 25;
  net::TcpRemoteQueueApi api(channel_options);

  // Out-of-process clients provision their own reply queue.
  if (Status s = api.CreateQueue("reply.front-end");
      !s.ok() && !s.IsAlreadyExists()) {
    fprintf(stderr, "create reply queue: %s\n", s.ToString().c_str());
    return 1;
  }

  core::PropertyChecker checker;
  client::ReliableClientOptions options;
  options.clerk.client_id = "front-end";
  options.clerk.request_queue = "requests";
  options.clerk.reply_queue = "reply.front-end";
  options.clerk.api = &api;
  options.clerk.receive_timeout_micros = 200'000;
  options.max_recovery_attempts = 64;
  client::ReliableClient front_end(
      options, [&checker](const std::string& reply, bool /*maybe_dup*/) {
        std::string rid;
        uint64_t count = 0;
        if (ParseReply(reply, &rid, &count)) {
          checker.RecordReplyProcessed(rid);
          for (uint64_t e = 0; e < count; ++e) {
            checker.RecordCommittedExecution(rid);
          }
        }
        return Status::OK();
      });
  if (Status s = front_end.Start(); !s.ok()) {
    fprintf(stderr, "client start: %s\n", s.ToString().c_str());
    return 1;
  }

  printf("Submitting 20 orders over TCP...\n");
  for (int i = 1; i <= 20; ++i) {
    if (own_daemon && i == 11) {
      // The back end dies — SIGKILL, no shutdown — and comes back on
      // the same port and state directory. The client rides it out by
      // reconnecting; its in-flight request is never blindly resent.
      printf("  [SIGKILL to rrqd after request 10; restarting it]\n");
      if (!daemon.Signal(SIGKILL).ok()) return 1;
      (void)daemon.Wait();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (!daemon
               .Spawn({RRQD_BINARY, "--dir", dir, "--port",
                       std::to_string(port)})
               .ok()) {
        return 1;
      }
      if (!daemon.WaitForLine("listening on", 30'000'000).ok()) return 1;
    }
    checker.RecordSubmission("front-end#" + std::to_string(i));
    auto reply = front_end.Execute("order-" + std::to_string(i));
    if (!reply.ok()) {
      fprintf(stderr, "execute: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    if (i % 5 == 0 || i == 11) {
      printf("  order %2d -> \"%s\"\n", i, reply->c_str());
    }
  }
  printf("Reconnects used by the channel: %llu\n",
         static_cast<unsigned long long>(api.channel()->connects()));

  (void)front_end.Stop();
  if (own_daemon) {
    (void)daemon.Signal(SIGTERM);
    (void)daemon.Wait();
  }

  auto verdict = checker.Check();
  printf("\nGuarantees: exactly-once=%s, replies-processed=%s "
         "(%llu submitted, %llu duplicates, %llu lost)\n",
         verdict.ExactlyOnceHolds() ? "HOLDS" : "VIOLATED",
         verdict.AtLeastOnceRepliesHold() ? "HOLDS" : "VIOLATED",
         static_cast<unsigned long long>(verdict.submitted),
         static_cast<unsigned long long>(verdict.duplicate_executions),
         static_cast<unsigned long long>(verdict.lost_requests));
  return verdict.AllHold() ? 0 : 1;
}
