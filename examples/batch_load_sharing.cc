// Batch capture, load sharing, and content-based scheduling — the §1
// operational benefits of queues.
//
// Requests are captured reliably while NO server is running (batch
// input); then a pool of servers drains the queue in parallel (load
// sharing); finally a priority workload shows dequeue-order control,
// including a "highest dollar amount first" content-based selector
// (§10 request scheduling).
//
//   ./batch_load_sharing
#include <cstdio>

#include "core/request_system.h"
#include "util/random.h"

using rrq::Result;
using rrq::Status;
namespace core = rrq::core;
namespace queue = rrq::queue;

int main() {
  core::RequestSystem system;
  if (!system.Open().ok()) return 1;

  // ---- Batch capture: submit 200 requests with no server running. -------
  printf("Capturing a batch of 200 requests with no server running...\n");
  queue::QueueRepository* repo = system.repo();
  rrq::util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    queue::RequestEnvelope envelope;
    envelope.rid = "batch#" + std::to_string(i);
    envelope.body = "job-" + std::to_string(i);
    if (!repo->Enqueue(nullptr, core::RequestSystem::kRequestQueue,
                       queue::EncodeRequestEnvelope(envelope),
                       static_cast<uint32_t>(rng.Uniform(3)))
             .ok()) {
      return 1;
    }
  }
  printf("  queue depth: %zu (buffered durably, §1: \"requests can be "
         "captured reliably in a queue, and processed later in a batch\")\n",
         *repo->Depth(core::RequestSystem::kRequestQueue));

  // ---- Load sharing: four server threads share one queue. ---------------
  printf("Draining with a pool of 4 server threads...\n");
  std::atomic<int> done{0};
  auto server = system.MakeServer(
      [&done](rrq::txn::Transaction*, const queue::RequestEnvelope&)
          -> Result<std::string> {
        ++done;
        return std::string("ok");
      },
      /*threads=*/4);
  if (!server->Start().ok()) return 1;
  while (done.load() < 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server->Stop();
  printf("  %d requests processed by the pool; queue depth now %zu\n",
         done.load(), *repo->Depth(core::RequestSystem::kRequestQueue));

  // ---- Content-based scheduling (§10). ------------------------------------
  printf("Scheduling by content: highest dollar amount first...\n");
  if (!repo->CreateQueue("wires").ok()) return 1;
  const int amounts[] = {120, 9500, 40, 700, 8800};
  for (int amount : amounts) {
    repo->Enqueue(nullptr, "wires", "wire $" + std::to_string(amount));
  }
  queue::Selector highest_dollar =
      [](const std::vector<queue::Element*>& candidates) -> size_t {
    size_t best = 0;
    long best_amount = -1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      long amount = std::stol(candidates[i]->contents.substr(6));
      if (amount > best_amount) {
        best_amount = amount;
        best = i;
      }
    }
    return best;
  };
  printf("  service order:");
  while (true) {
    auto element = repo->DequeueSelected(nullptr, "wires", highest_dollar);
    if (!element.ok()) break;
    printf(" %s;", element->contents.c_str());
  }
  printf("\n");

  // ---- Alert thresholds (§9): a DECintact-style queue alarm. -------------
  printf("Alert threshold demo: alarm when a queue backs up to depth 5\n");
  rrq::queue::RepositoryOptions alert_options;
  alert_options.alert_callback = [](const std::string& q, size_t depth) {
    printf("  ALERT: queue \"%s\" reached depth %zu\n", q.c_str(), depth);
  };
  queue::QueueRepository alerting("alerting-qm", alert_options);
  if (!alerting.Open().ok()) return 1;
  queue::QueueOptions watched;
  watched.alert_threshold = 5;
  if (!alerting.CreateQueue("backlog", watched).ok()) return 1;
  for (int i = 0; i < 7; ++i) {
    alerting.Enqueue(nullptr, "backlog", "x");
  }
  return 0;
}
