// Quickstart: the smallest complete use of the library.
//
// Builds a durable RequestSystem (queue manager + transaction manager
// on an in-memory environment), starts one server, and runs a few
// requests through a ReliableClient — then crashes the back end and
// shows that everything picks up where it left off.
//
//   ./quickstart
#include <cstdio>

#include "core/request_system.h"

using rrq::Result;
using rrq::Status;

int main() {
  // 1. Assemble the system of Fig 4: request queue, reply queues,
  //    recoverable queue manager, transaction manager.
  rrq::core::RequestSystem system;
  Status s = system.Open();
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. A server: {dequeue request; execute; enqueue reply} — one
  //    transaction per request (Fig 5).
  auto server = system.MakeServer(
      [](rrq::txn::Transaction*, const rrq::queue::RequestEnvelope& request)
          -> Result<std::string> {
        return "HELLO, " + request.body + "!";
      });
  if (!server->Start().ok()) return 1;

  // 3. A client. Its replies are delivered at least once; the lambda
  //    is the "reply processor".
  auto client = system.MakeClient(
      "quickstart-client",
      [](const std::string& reply, bool maybe_duplicate) {
        printf("  reply%s: %s\n", maybe_duplicate ? " (redelivered)" : "",
               reply.c_str());
        return Status::OK();
      });
  if (!client.ok()) {
    fprintf(stderr, "client failed: %s\n", client.status().ToString().c_str());
    return 1;
  }

  printf("Submitting three requests...\n");
  for (const char* name : {"ALICE", "BOB", "CAROL"}) {
    auto reply = (*client)->Execute(name);
    if (!reply.ok()) {
      fprintf(stderr, "execute failed: %s\n",
              reply.status().ToString().c_str());
      return 1;
    }
  }

  // 4. Crash the whole back end — queue manager, transaction manager —
  //    losing everything that was not synced to the (simulated) disk.
  printf("Crashing and recovering the back end...\n");
  server->Stop();
  server.reset();
  s = system.CrashAndRecover();
  if (!s.ok()) {
    fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 5. Same client object keeps working against the recovered node.
  server = system.MakeServer(
      [](rrq::txn::Transaction*, const rrq::queue::RequestEnvelope& request)
          -> Result<std::string> {
        return "WELCOME BACK, " + request.body + "!";
      });
  if (!server->Start().ok()) return 1;
  auto reply = (*client)->Execute("DAVE");
  if (!reply.ok()) {
    fprintf(stderr, "post-recovery execute failed: %s\n",
            reply.status().ToString().c_str());
    return 1;
  }
  server->Stop();
  printf("Done. %llu requests completed, %llu redeliveries.\n",
         static_cast<unsigned long long>((*client)->completed()),
         static_cast<unsigned long long>((*client)->redeliveries()));
  return 0;
}
