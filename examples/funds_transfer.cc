// Funds transfer — the paper's §6 example, end to end.
//
// A transfer request executes as THREE serial transactions connected
// by queue pairs (Fig 6): debit the source account, credit the target
// account, log the transfer with the clearinghouse. State crosses the
// transaction boundaries only via the request's scratch pad. The
// example then cancels an in-flight transfer, demonstrating §7's saga
// compensation: the already-committed debit is compensated by its own
// transaction and the client receives a "cancelled" reply.
//
//   ./funds_transfer
#include <cstdio>

#include "queue/envelope.h"
#include "queue/queue_repository.h"
#include "server/pipeline.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"

using rrq::Result;
using rrq::Status;
namespace queue = rrq::queue;
namespace server = rrq::server;
namespace storage = rrq::storage;
namespace txn = rrq::txn;

namespace {

Status Adjust(storage::KvStore* bank, txn::Transaction* t,
              const std::string& account, long delta) {
  auto balance = bank->GetForUpdate(t, account);
  if (!balance.ok()) return balance.status();
  long updated = std::stol(*balance) + delta;
  if (updated < 0) return Status::InvalidArgument("overdraft on " + account);
  return bank->Put(t, account, std::to_string(updated));
}

void PrintBalances(storage::KvStore* bank, const char* when) {
  printf("%-28s checking=%s savings=%s clearinghouse-entries=%zu\n", when,
         bank->GetCommitted("acct/checking").value_or("?").c_str(),
         bank->GetCommitted("acct/savings").value_or("?").c_str(),
         bank->ScanKeys("log/").size());
}

}  // namespace

int main() {
  txn::TransactionManager txn_mgr;
  if (!txn_mgr.Open().ok()) return 1;
  queue::QueueRepository repo("bank-qm");
  if (!repo.Open().ok()) return 1;
  if (!repo.CreateQueue("teller.replies").ok()) return 1;

  storage::KvStore bank("bank", {});
  if (!bank.Open().ok()) return 1;
  {
    auto boot = txn_mgr.Begin();
    bank.Put(boot.get(), "acct/checking", "1000");
    bank.Put(boot.get(), "acct/savings", "250");
    if (!boot->Commit().ok()) return 1;
  }

  // The three stages of the multi-transaction request, each with its
  // compensating transaction for saga-style cancellation (§7).
  server::PipelineStage debit{
      "debit",
      [&bank](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<server::StageResult> {
        long amount = std::stol(request.body);
        RRQ_RETURN_IF_ERROR(Adjust(&bank, t, "acct/checking", -amount));
        return server::StageResult{request.body, request.body};
      },
      [&bank](txn::Transaction* t, const std::string& amount) -> Status {
        return Adjust(&bank, t, "acct/checking", +std::stol(amount));
      }};
  server::PipelineStage credit{
      "credit",
      [&bank](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<server::StageResult> {
        long amount = std::stol(request.body);
        RRQ_RETURN_IF_ERROR(Adjust(&bank, t, "acct/savings", +amount));
        return server::StageResult{request.body, request.body};
      },
      [&bank](txn::Transaction* t, const std::string& amount) -> Status {
        return Adjust(&bank, t, "acct/savings", -std::stol(amount));
      }};
  server::PipelineStage clearinghouse{
      "clearinghouse",
      [&bank](txn::Transaction* t, const queue::RequestEnvelope& request)
          -> Result<server::StageResult> {
        RRQ_RETURN_IF_ERROR(
            bank.Put(t, "log/" + request.rid, request.body));
        return server::StageResult{"transferred " + request.body, ""};
      },
      nullptr};

  server::PipelineOptions options;
  options.queue_prefix = "xfer";
  options.poll_timeout_micros = 0;
  server::Pipeline pipeline(options, &repo, &txn_mgr,
                            {debit, credit, clearinghouse});
  if (!pipeline.Setup().ok()) return 1;

  auto submit = [&repo, &pipeline](const std::string& rid,
                                   const std::string& amount) {
    queue::RequestEnvelope envelope;
    envelope.rid = rid;
    envelope.reply_queue = "teller.replies";
    envelope.body = amount;
    repo.Enqueue(nullptr, pipeline.entry_queue(),
                 queue::EncodeRequestEnvelope(envelope));
  };
  auto take_reply = [&repo]() {
    auto element = repo.Dequeue(nullptr, "teller.replies");
    queue::ReplyEnvelope reply;
    if (element.ok()) queue::DecodeReplyEnvelope(element->contents, &reply);
    return reply;
  };

  PrintBalances(&bank, "Initial:");

  // ---- A transfer that completes. ---------------------------------------
  printf("\nTransfer #1: move 300 checking -> savings (3 transactions)\n");
  submit("xfer#1", "300");
  for (size_t stage = 0; stage < 3; ++stage) {
    if (!pipeline.ProcessOneAt(stage).ok()) return 1;
    PrintBalances(&bank, ("  after stage " + std::to_string(stage) +
                          ":").c_str());
  }
  auto reply = take_reply();
  printf("  client reply: rid=%s success=%d body=\"%s\"\n", reply.rid.c_str(),
         reply.success, reply.body.c_str());

  // ---- A transfer cancelled mid-flight (saga compensation, §7). ---------
  printf("\nTransfer #2: move 500, cancelled after the debit committed\n");
  submit("xfer#2", "500");
  if (!pipeline.ProcessOneAt(0).ok()) return 1;  // Debit commits.
  PrintBalances(&bank, "  after debit:");
  auto outcome = pipeline.Cancel("xfer#2");
  if (!outcome.ok()) return 1;
  printf("  cancel outcome: %s\n",
         *outcome == server::CancelOutcome::kCompensating ? "compensating"
                                                          : "other");
  while (pipeline.ProcessOneCompensation().ok()) {
  }
  PrintBalances(&bank, "  after compensation:");
  reply = take_reply();
  printf("  client reply: rid=%s success=%d body=\"%s\"\n", reply.rid.c_str(),
         reply.success, reply.body.c_str());

  // ---- A transfer killed before any transaction ran (§7 KillElement). ---
  printf("\nTransfer #3: cancelled while still queued\n");
  submit("xfer#3", "100");
  outcome = pipeline.Cancel("xfer#3");
  if (!outcome.ok()) return 1;
  printf("  cancel outcome: %s\n",
         *outcome == server::CancelOutcome::kKilledInQueue ? "killed in queue"
                                                           : "other");
  PrintBalances(&bank, "Final:");
  return 0;
}
