// Ticket agent — exactly-once output on a non-idempotent device (§3).
//
// A clerk sells tickets: each reply must be printed on the ticket
// printer EXACTLY once, even though the client crashes at the two
// worst possible moments — after receiving a reply but before printing
// it, and right after printing it. The printer is a "testable device":
// the client checkpoints its state (the next ticket number) in the
// Receive's ckpt parameter, and compares at reconnect.
//
//   ./ticket_agent
#include <cstdio>

#include "core/request_system.h"

using rrq::Result;
using rrq::Status;
namespace client = rrq::client;
namespace core = rrq::core;
namespace queue = rrq::queue;

int main() {
  core::RequestSystem system;
  if (!system.Open().ok()) return 1;
  std::atomic<int> seat{0};
  auto server = system.MakeServer(
      [&seat](rrq::txn::Transaction*, const queue::RequestEnvelope& request)
          -> Result<std::string> {
        return "TICKET seat-" + std::to_string(++seat) + " for " +
               request.body;
      });
  if (!server->Start().ok()) return 1;

  // The printer is hardware: it survives every client crash below.
  client::TicketPrinter printer;

  printf("Selling one ticket normally...\n");
  {
    auto agent = system.MakeClient("agent", nullptr, &printer);
    if (!agent.ok()) return 1;
    if (!(*agent)->Execute("passenger-A").ok()) return 1;
    printf("  printed: %zu ticket(s)\n", printer.printed().size());
    // Agent terminal crashes WITHOUT disconnecting.
  }

  printf("Restarting the agent terminal (nothing pending)...\n");
  {
    client::ReliableClientOptions options;
    options.clerk = system.MakeClerkOptions("agent");
    options.device = &printer;
    client::ReliableClient reborn(options, nullptr);
    if (!reborn.Start().ok()) return 1;
    // The device state proves the last reply was printed: no reprint.
    printf("  printed after restart: %zu ticket(s) (no duplicates)\n",
           printer.printed().size());

    // Now the nasty case: receive a reply, crash BEFORE printing.
    // Drive the clerk by hand to stop at exactly that point.
    client::Clerk* clerk = reborn.clerk();
    queue::RequestEnvelope envelope;
    envelope.rid = "agent#2";
    envelope.reply_queue = core::RequestSystem::ReplyQueueName("agent");
    envelope.body = "passenger-B";
    if (!clerk->Send(queue::EncodeRequestEnvelope(envelope), "agent#2").ok()) {
      return 1;
    }
    Result<std::string> reply = Status::NotFound("pending");
    for (int i = 0; i < 200 && !reply.ok(); ++i) {
      reply = clerk->Receive(printer.ReadState());  // ckpt = device state
    }
    if (!reply.ok()) return 1;
    printf("Reply received for passenger-B... and the terminal CRASHES "
           "before printing.\n");
  }
  printf("  printed so far: %zu ticket(s)\n", printer.printed().size());

  printf("Restarting the agent terminal again...\n");
  {
    client::ReliableClientOptions options;
    options.clerk = system.MakeClerkOptions("agent");
    options.device = &printer;
    client::ReliableClient reborn(options, nullptr);
    // Start() compares the device state with the recovered ckpt: they
    // match, so the reply was NOT printed — print it now (once).
    if (!reborn.Start().ok()) return 1;
  }
  server->Stop();

  printf("\nFinal ticket log:\n");
  for (const std::string& ticket : printer.printed()) {
    printf("  %s\n", ticket.c_str());
  }
  const bool exactly_once = printer.printed().size() == 2;
  printf("%s: 2 passengers, %zu tickets printed.\n",
         exactly_once ? "EXACTLY-ONCE HOLDS" : "VIOLATION",
         printer.printed().size());
  return exactly_once ? 0 : 1;
}
