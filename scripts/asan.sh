#!/usr/bin/env bash
# Builds the project under AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the full test suite. ASan catches the lifetime bugs the
# recovery and transport paths are prone to (buffers handed to the WAL,
# retired LogWriters with in-flight appenders, connection teardown);
# UBSan covers the varint/CRC decode paths that parse untrusted bytes
# (shifts, overflow, misaligned loads). The full suite includes the
# replication pipeline (tests/repl/ + replicated_failover_test), whose
# wire decoders and applier also parse untrusted input.
# Usage: scripts/asan.sh
# [ctest -R regex]. CXX/CC are honored (e.g. CXX=clang++-18
# scripts/asan.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
FILTER="${1:-.}"

COMPILER_ARGS=()
[[ -n "${CXX:-}" ]] && COMPILER_ARGS+=("-DCMAKE_CXX_COMPILER=${CXX}")
[[ -n "${CC:-}" ]] && COMPILER_ARGS+=("-DCMAKE_C_COMPILER=${CC}")

cmake -B "$BUILD_DIR" -S . -DRRQ_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo "${COMPILER_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
# halt_on_error so UB fails the suite instead of scrolling past;
# detect_leaks stays on (the default) to catch forgotten teardown.
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
RRQ_CRASH_SWEEP_FULL=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$FILTER"
