#!/usr/bin/env bash
# Builds the project under ThreadSanitizer and runs the concurrency-
# sensitive tests: the WAL group-commit path (leader syncs while other
# committers append), the repository (including the sharded cross-
# shard commit protocol, per-shard replication tickets, and parallel
# shard recovery), the KV store, the client/server stack, the TCP
# transport (acceptor + per-connection threads, clerk vs daemon-kill
# races), and the replication pipeline (sender thread vs ack-blocked
# committers, applier vs promotion, the two-daemon failover).
# Usage: scripts/tsan.sh [ctest -R regex]
# CXX/CC are honored (e.g. CXX=clang++-18 scripts/tsan.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
FILTER="${1:-log_test|frame_test|group_commit_test|queue_repository_test|queue_property_test|replication_test|kv_store_test|txn_manager_test|streaming_client_test|server_test|crash_sweep_test|io_backend_test|tcp_transport_test|protocol_fuzz_test|remote_exactly_once_test|clerk_test|clerk_pool_test|clerk_pool_exactly_once_test|thread_annotations_test|replication_log_test|repl_wire_test|repl_pipeline_test|applier_crash_sweep_test|replicated_failover_test}"

COMPILER_ARGS=()
[[ -n "${CXX:-}" ]] && COMPILER_ARGS+=("-DCMAKE_CXX_COMPILER=${CXX}")
[[ -n "${CC:-}" ]] && COMPILER_ARGS+=("-DCMAKE_C_COMPILER=${CC}")

cmake -B "$BUILD_DIR" -S . -DRRQ_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo "${COMPILER_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
# Full sweep: every crash index in every mode, torn writes included.
RRQ_CRASH_SWEEP_FULL=1 ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$FILTER"
