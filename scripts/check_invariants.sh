#!/usr/bin/env bash
# Repo-specific invariants that neither the compiler nor clang-tidy
# enforces. Run from anywhere; CI runs it on every PR. Exits nonzero
# with one line per violation.
#
#  1. src/ must not name raw std synchronization primitives. All
#     locking goes through rrq::Mutex / rrq::MutexLock / rrq::CondVar
#     (src/util/thread_annotations.h) so Clang thread-safety analysis
#     sees every acquire/release. Tests and benches are exempt: they
#     synchronize their own harness state and gain nothing from
#     annotations.
#  2. src/ headers and sources must not include <mutex> or
#     <condition_variable> directly; the wrapper owns those includes.
#  3. Bench binaries must publish machine-readable results through
#     bench::WriteBenchJson (bench/bench_util.h), never by opening
#     .json files themselves — the helper pins the output location to
#     the repo root so tooling can find BENCH_*.json regardless of CWD.
#  4. Event-loop mechanics stay behind the IoBackend seam (DESIGN.md
#     §13): raw epoll_* / io_uring_* call sites in src/net/ are
#     confined to epoll_backend.cc and uring_backend.cc. Transport
#     logic that needs the loop goes through the seam, so a backend
#     can be swapped (or a third added) without touching it.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
violation() {
  echo "invariant violation: $1"
  echo "$2" | sed 's/^/    /'
  fail=1
}

# --- 1. Raw std primitives in src/ ---------------------------------
hits=$(grep -rnE 'std::(mutex|recursive_mutex|shared_mutex|timed_mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_lock)\b' \
  src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/util/thread_annotations.h:' || true)
if [[ -n "$hits" ]]; then
  violation "raw std synchronization primitive in src/ (use rrq::Mutex / rrq::MutexLock / rrq::CondVar from util/thread_annotations.h)" "$hits"
fi

# --- 2. Direct <mutex>/<condition_variable> includes in src/ -------
hits=$(grep -rnE '#include <(mutex|condition_variable|shared_mutex)>' \
  src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/util/thread_annotations.h:' || true)
if [[ -n "$hits" ]]; then
  violation "direct <mutex>/<condition_variable> include in src/ (util/thread_annotations.h owns these)" "$hits"
fi

# --- 3. Bench JSON goes through bench::WriteBenchJson --------------
# A bench that opens a .json file itself bypasses the repo-root
# pinning in WriteBenchJson.
hits=$(grep -rnE '(fopen|ofstream)[^;]*\.json' bench/ --include='*.cc' || true)
if [[ -n "$hits" ]]; then
  violation "bench writes a .json file directly (use bench::WriteBenchJson from bench/bench_util.h)" "$hits"
fi
# Every bench that assembles a JSON payload must hand it to the helper.
for f in bench/bench_*.cc; do
  if grep -qE '"experiment"' "$f" && ! grep -q 'WriteBenchJson' "$f"; then
    violation "bench builds a JSON payload but never calls bench::WriteBenchJson" "$f"
  fi
done

# --- 4. Backend syscalls confined to the backend TUs ---------------
hits=$(grep -rnE '\b(epoll_create1?|epoll_ctl|epoll_wait|io_uring_setup|io_uring_enter|io_uring_register)\s*\(' \
  src/net/ --include='*.h' --include='*.cc' \
  | grep -vE '^src/net/(epoll_backend|uring_backend)\.cc:' || true)
if [[ -n "$hits" ]]; then
  violation "raw epoll_*/io_uring_* call outside src/net/{epoll,uring}_backend.cc (go through the IoBackend seam, DESIGN.md §13)" "$hits"
fi

# --- Informational: annotation coverage ----------------------------
# The acceptance bar for the thread-safety work: GUARDED_BY use should
# be on the order of the number of Mutex members. Printed, not gated —
# new code legitimately shifts the ratio.
mutexes=$(grep -rhoE '(^|[^:])\bMutex [a-z_]+_?;' src/ --include='*.h' --include='*.cc' | wc -l)
guarded=$(grep -rho 'GUARDED_BY' src/ --include='*.h' --include='*.cc' \
  --exclude=thread_annotations.h | wc -l)
echo "info: ${mutexes} Mutex members, ${guarded} GUARDED_BY annotations in src/"

if [[ "$fail" -ne 0 ]]; then
  echo "check_invariants: FAILED"
  exit 1
fi
echo "check_invariants: OK"
