#include "env/gc.h"

#include <vector>

#include "util/logging.h"

namespace rrq::env {

namespace {

// Parses `name` as `prefix` + decimal generation, optionally followed
// by "-" + decimal shard index (sharded repositories write one
// WAL/checkpoint stream per shard: WAL-<gen>-<shard>). Returns false
// for anything else (including trailing garbage like "WAL-3.tmp",
// which the .tmp rule handles instead).
bool ParseGeneration(const std::string& name, const std::string& prefix,
                     uint64_t* generation) {
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  size_t i = prefix.size();
  bool any = false;
  for (; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    any = true;
  }
  if (!any) return false;
  if (i != name.size()) {
    // Optional per-shard suffix: "-<digits>" and nothing after it.
    if (name[i] != '-' || i + 1 == name.size()) return false;
    for (++i; i < name.size(); ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') return false;
    }
  }
  *generation = value;
  return true;
}

bool IsTmpFile(const std::string& name) {
  static constexpr char kSuffix[] = ".tmp";
  return name.size() > 4 && name.compare(name.size() - 4, 4, kSuffix) == 0;
}

}  // namespace

Status RetireStaleGenerations(Env* env, const std::string& dir,
                              uint64_t current_generation, GcStats* stats) {
  std::vector<std::string> children;
  RRQ_RETURN_IF_ERROR(env->GetChildren(dir, &children));
  for (const std::string& name : children) {
    uint64_t generation = 0;
    const bool stale_generation =
        (ParseGeneration(name, "WAL-", &generation) ||
         ParseGeneration(name, "CHECKPOINT-", &generation)) &&
        generation != current_generation;
    if (!stale_generation && !IsTmpFile(name)) continue;
    const std::string path = dir + "/" + name;
    Status s = env->RemoveFile(path);
    if (s.ok()) {
      ++stats->removed;
      RRQ_LOG(kInfo) << "recovery GC removed orphan " << path;
    } else {
      ++stats->failures;
      RRQ_LOG(kWarn) << "recovery GC failed to remove " << path << ": "
                     << s.ToString();
    }
  }
  return Status::OK();
}

}  // namespace rrq::env
