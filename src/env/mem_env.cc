#include "env/mem_env.h"

#include <algorithm>
#include <cstring>

namespace rrq::env {

namespace {

// Normalizes "a//b/" -> "a/b". Keeps implementation simple: the
// library always uses already-clean paths, this just guards tests.
std::string CleanPath(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    if (c == '/' && !out.empty() && out.back() == '/') continue;
    out.push_back(c);
  }
  if (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

}  // namespace

class MemEnv::MemSequentialFile final : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<FileState> file, Mutex* env_mu)
      : file_(std::move(file)), env_mu_(env_mu) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    MutexLock guard(*env_mu_);
    if (pos_ >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = std::min(n, file_->data.size() - pos_);
    memcpy(scratch, file_->data.data() + pos_, avail);
    pos_ += avail;
    *result = Slice(scratch, avail);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    MutexLock guard(*env_mu_);
    pos_ = std::min<size_t>(file_->data.size(), pos_ + static_cast<size_t>(n));
    return Status::OK();
  }

 private:
  std::shared_ptr<FileState> file_;
  Mutex* env_mu_;
  size_t pos_ = 0;
};

class MemEnv::MemRandomAccessFile final : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<FileState> file, Mutex* env_mu)
      : file_(std::move(file)), env_mu_(env_mu) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    MutexLock guard(*env_mu_);
    if (offset >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail =
        std::min(n, file_->data.size() - static_cast<size_t>(offset));
    memcpy(scratch, file_->data.data() + offset, avail);
    *result = Slice(scratch, avail);
    return Status::OK();
  }

 private:
  std::shared_ptr<FileState> file_;
  Mutex* env_mu_;
};

class MemEnv::MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<FileState> file, Mutex* env_mu)
      : file_(std::move(file)), env_mu_(env_mu) {}

  Status Append(const Slice& data) override {
    MutexLock guard(*env_mu_);
    file_->data.append(data.data(), data.size());
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    MutexLock guard(*env_mu_);
    file_->synced_size = file_->data.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<FileState> file_;
  Mutex* env_mu_;
};

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  MutexLock guard(mu_);
  auto it = files_.find(CleanPath(fname));
  if (it == files_.end()) return Status::NotFound(fname);
  *result = std::make_unique<MemSequentialFile>(it->second, &mu_);
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  MutexLock guard(mu_);
  auto it = files_.find(CleanPath(fname));
  if (it == files_.end()) return Status::NotFound(fname);
  *result = std::make_unique<MemRandomAccessFile>(it->second, &mu_);
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  MutexLock guard(mu_);
  auto state = std::make_shared<FileState>();
  files_[CleanPath(fname)] = state;
  *result = std::make_unique<MemWritableFile>(std::move(state), &mu_);
  return Status::OK();
}

Status MemEnv::NewAppendableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  MutexLock guard(mu_);
  auto& slot = files_[CleanPath(fname)];
  if (slot == nullptr) slot = std::make_shared<FileState>();
  *result = std::make_unique<MemWritableFile>(slot, &mu_);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  MutexLock guard(mu_);
  return files_.count(CleanPath(fname)) > 0;
}

Status MemEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  result->clear();
  std::string prefix = CleanPath(dir);
  if (!prefix.empty() && prefix.back() != '/') prefix.push_back('/');
  MutexLock guard(mu_);
  for (const auto& [path, state] : files_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = path.substr(prefix.size());
      // Only direct children.
      if (rest.find('/') == std::string::npos) result->push_back(rest);
    }
  }
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  MutexLock guard(mu_);
  if (files_.erase(CleanPath(fname)) == 0) return Status::NotFound(fname);
  return Status::OK();
}

Status MemEnv::CreateDirIfMissing(const std::string& dirname) {
  MutexLock guard(mu_);
  dirs_[CleanPath(dirname)] = true;
  return Status::OK();
}

Status MemEnv::RemoveDir(const std::string& dirname) {
  MutexLock guard(mu_);
  dirs_.erase(CleanPath(dirname));
  return Status::OK();
}

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  MutexLock guard(mu_);
  auto it = files_.find(CleanPath(fname));
  if (it == files_.end()) return Status::NotFound(fname);
  *size = it->second->data.size();
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& target) {
  MutexLock guard(mu_);
  auto it = files_.find(CleanPath(src));
  if (it == files_.end()) return Status::NotFound(src);
  files_[CleanPath(target)] = it->second;
  files_.erase(it);
  return Status::OK();
}

void MemEnv::SimulateCrash(util::Rng* torn_write_rng) {
  MutexLock guard(mu_);
  for (auto& [path, state] : files_) {
    uint64_t keep = state->synced_size;
    uint64_t unsynced = state->data.size() - keep;
    if (torn_write_rng != nullptr && unsynced > 0) {
      keep += torn_write_rng->Uniform(unsynced + 1);
    }
    state->data.resize(static_cast<size_t>(keep));
    state->synced_size = std::min<uint64_t>(state->synced_size, keep);
  }
}

uint64_t MemEnv::TotalBytes() const {
  MutexLock guard(mu_);
  uint64_t total = 0;
  for (const auto& [path, state] : files_) total += state->data.size();
  return total;
}

}  // namespace rrq::env
