#ifndef RRQ_ENV_ENV_H_
#define RRQ_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace rrq::env {

/// Sequential read-only file handle.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes. `scratch[0..n-1]` may be written; `*result`
  /// points either into scratch or into implementation-owned memory.
  /// An empty `*result` with OK status signals end-of-file.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;

  /// Skips `n` bytes (as if read and discarded).
  virtual Status Skip(uint64_t n) = 0;
};

/// Positional read-only file handle. Safe for concurrent use.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

/// Append-only writable file handle. Appends are not thread-safe;
/// callers externally serialize them (the WAL writer holds its own
/// mutex). Flush+Sync, however, may run concurrently with Append —
/// group commit relies on this: the sync leader flushes while later
/// committers keep appending. A sync concurrent with an append must
/// persist at least every byte from appends that completed before the
/// sync began (implementations: Posix uses unbuffered write(2) +
/// fdatasync; MemEnv serializes everything under the env mutex).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;

  /// Forces appended data to stable storage. Data not covered by a
  /// completed Sync may be lost at a crash.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

/// Abstraction over the host environment's filesystem, in the RocksDB
/// Env style. All durable state in the library (WAL, checkpoints,
/// registration tables) goes through an Env so tests can substitute
/// the in-memory and fault-injecting implementations.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens an existing file for sequential reads.
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;

  /// Opens an existing file for positional reads.
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;

  /// Creates (truncating if present) a file for appending.
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  /// Opens (creating if absent) a file for appending, preserving
  /// existing contents.
  virtual Status NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;

  /// Lists the names (not paths) of children of `dir`.
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;

  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;

  /// Atomically renames `src` to `target`, replacing any existing file.
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Returns the process-wide POSIX environment.
  static Env* Default();
};

/// Convenience: reads the whole of `fname` into `*data`.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

/// Convenience: atomically replaces `fname` with `data` (write to a
/// temporary, sync, rename).
Status WriteStringToFileSync(Env* env, const Slice& data,
                             const std::string& fname);

}  // namespace rrq::env

#endif  // RRQ_ENV_ENV_H_
