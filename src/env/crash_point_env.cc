#include "env/crash_point_env.h"

namespace rrq::env {

class CrashPointEnv::CrashWritableFile final : public WritableFile {
 public:
  CrashWritableFile(std::unique_ptr<WritableFile> base, CrashPointEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    RRQ_RETURN_IF_ERROR(env_->OnMutatingOp(&data, base_.get()));
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    RRQ_RETURN_IF_ERROR(env_->OnMutatingOp(nullptr, nullptr));
    return base_->Sync();
  }

  // Closing costs nothing durable; destructors of a "dead" process's
  // handles must not fail.
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  CrashPointEnv* env_;
};

Status CrashPointEnv::OnMutatingOp(const Slice* payload, WritableFile* dest) {
  MutexLock guard(mu_);
  const uint64_t index = ops_++;
  if (down_) {
    return Status::IOError("crashed process: I/O after crash point");
  }
  if (!armed_ || index != crash_at_) return Status::OK();
  // This operation IS the crash. In torn mode an append's payload
  // lands in the page cache first so the torn truncation can keep a
  // prefix of it.
  if (torn_rng_ != nullptr && payload != nullptr && dest != nullptr) {
    dest->Append(*payload);
  }
  base_->SimulateCrash(torn_rng_);
  down_ = true;
  crashed_ = true;
  return Status::IOError("simulated crash at I/O point " +
                         std::to_string(index));
}

void CrashPointEnv::ArmCrash(uint64_t op_index, util::Rng* torn_rng) {
  MutexLock guard(mu_);
  armed_ = true;
  crash_at_ = op_index;
  torn_rng_ = torn_rng;
}

void CrashPointEnv::Disarm() {
  MutexLock guard(mu_);
  armed_ = false;
  down_ = false;
  torn_rng_ = nullptr;
}

bool CrashPointEnv::crashed() const {
  MutexLock guard(mu_);
  return crashed_;
}

bool CrashPointEnv::down() const {
  MutexLock guard(mu_);
  return down_;
}

uint64_t CrashPointEnv::mutating_op_count() const {
  MutexLock guard(mu_);
  return ops_;
}

void CrashPointEnv::ResetCounter() {
  MutexLock guard(mu_);
  ops_ = 0;
  crashed_ = false;
}

Status CrashPointEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  return base_->NewSequentialFile(fname, result);
}

Status CrashPointEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  return base_->NewRandomAccessFile(fname, result);
}

Status CrashPointEnv::NewWritableFile(const std::string& fname,
                                      std::unique_ptr<WritableFile>* result) {
  RRQ_RETURN_IF_ERROR(OnMutatingOp(nullptr, nullptr));
  std::unique_ptr<WritableFile> file;
  RRQ_RETURN_IF_ERROR(base_->NewWritableFile(fname, &file));
  *result = std::make_unique<CrashWritableFile>(std::move(file), this);
  return Status::OK();
}

Status CrashPointEnv::NewAppendableFile(const std::string& fname,
                                        std::unique_ptr<WritableFile>* result) {
  RRQ_RETURN_IF_ERROR(OnMutatingOp(nullptr, nullptr));
  std::unique_ptr<WritableFile> file;
  RRQ_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &file));
  *result = std::make_unique<CrashWritableFile>(std::move(file), this);
  return Status::OK();
}

bool CrashPointEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status CrashPointEnv::GetChildren(const std::string& dir,
                                  std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status CrashPointEnv::RemoveFile(const std::string& fname) {
  RRQ_RETURN_IF_ERROR(OnMutatingOp(nullptr, nullptr));
  return base_->RemoveFile(fname);
}

Status CrashPointEnv::CreateDirIfMissing(const std::string& dirname) {
  // Directory metadata is a MemEnv no-op; not a crash point.
  return base_->CreateDirIfMissing(dirname);
}

Status CrashPointEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}

Status CrashPointEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status CrashPointEnv::RenameFile(const std::string& src,
                                 const std::string& target) {
  RRQ_RETURN_IF_ERROR(OnMutatingOp(nullptr, nullptr));
  return base_->RenameFile(src, target);
}

}  // namespace rrq::env
