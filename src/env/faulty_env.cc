#include "env/faulty_env.h"

namespace rrq::env {

class FaultyEnv::CountingWritableFile final : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, FaultyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    env_->appends_.fetch_add(1, std::memory_order_relaxed);
    env_->bytes_.fetch_add(data.size(), std::memory_order_relaxed);
    if (env_->ShouldFail(env_->config_.write_failure_one_in)) {
      return Status::IOError("injected append failure");
    }
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    env_->syncs_.fetch_add(1, std::memory_order_relaxed);
    if (env_->ShouldFail(env_->config_.sync_failure_one_in)) {
      return Status::IOError("injected sync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultyEnv* env_;
};

FaultyEnv::FaultyEnv(Env* base, FaultConfig config)
    : base_(base), config_(config), rng_(config.seed) {}

bool FaultyEnv::ShouldFail(uint32_t one_in) {
  if (one_in == 0 || suppressed_.load(std::memory_order_relaxed)) return false;
  bool fail;
  {
    MutexLock guard(rng_mu_);
    fail = rng_.Uniform(one_in) == 0;
  }
  if (fail) faults_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

Status FaultyEnv::NewSequentialFile(const std::string& fname,
                                    std::unique_ptr<SequentialFile>* result) {
  if (ShouldFail(config_.open_failure_one_in)) {
    return Status::IOError("injected open failure");
  }
  return base_->NewSequentialFile(fname, result);
}

Status FaultyEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  if (ShouldFail(config_.open_failure_one_in)) {
    return Status::IOError("injected open failure");
  }
  return base_->NewRandomAccessFile(fname, result);
}

Status FaultyEnv::NewWritableFile(const std::string& fname,
                                  std::unique_ptr<WritableFile>* result) {
  if (ShouldFail(config_.open_failure_one_in)) {
    return Status::IOError("injected open failure");
  }
  std::unique_ptr<WritableFile> file;
  RRQ_RETURN_IF_ERROR(base_->NewWritableFile(fname, &file));
  *result = std::make_unique<CountingWritableFile>(std::move(file), this);
  return Status::OK();
}

Status FaultyEnv::NewAppendableFile(const std::string& fname,
                                    std::unique_ptr<WritableFile>* result) {
  if (ShouldFail(config_.open_failure_one_in)) {
    return Status::IOError("injected open failure");
  }
  std::unique_ptr<WritableFile> file;
  RRQ_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &file));
  *result = std::make_unique<CountingWritableFile>(std::move(file), this);
  return Status::OK();
}

bool FaultyEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultyEnv::GetChildren(const std::string& dir,
                              std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status FaultyEnv::RemoveFile(const std::string& fname) {
  if (ShouldFail(config_.remove_failure_one_in)) {
    return Status::IOError("injected remove failure");
  }
  return base_->RemoveFile(fname);
}

Status FaultyEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status FaultyEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}

Status FaultyEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status FaultyEnv::RenameFile(const std::string& src,
                             const std::string& target) {
  return base_->RenameFile(src, target);
}

}  // namespace rrq::env
