#ifndef RRQ_ENV_MEM_ENV_H_
#define RRQ_ENV_MEM_ENV_H_

#include <map>
#include <memory>
#include <string>

#include "env/env.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace rrq::env {

/// In-memory filesystem with crash simulation.
///
/// Each file tracks how many of its bytes are covered by a completed
/// Sync(). SimulateCrash() discards everything that would not have
/// survived a power failure: appended-but-unsynced bytes (optionally
/// keeping a random prefix of them, simulating a torn page write).
/// Metadata operations (create, rename, remove) are treated as durable
/// immediately — a simplification relative to real directory-sync
/// semantics, adequate because the library's recovery protocols never
/// depend on losing metadata.
///
/// Thread-safe.
class MemEnv final : public Env {
 public:
  MemEnv() = default;

  MemEnv(const MemEnv&) = delete;
  MemEnv& operator=(const MemEnv&) = delete;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  /// Drops all unsynced bytes from every file, as a power failure
  /// would. If `torn_write_rng` is non-null, each file instead keeps a
  /// uniformly random prefix of its unsynced tail (torn write).
  /// Outstanding file handles remain usable but observe the truncated
  /// contents; correctness tests reopen files after a crash, as a
  /// restarted process would.
  void SimulateCrash(util::Rng* torn_write_rng = nullptr);

  /// Total bytes currently buffered across all files (synced + not).
  uint64_t TotalBytes() const;

 private:
  struct FileState {
    std::string data;
    uint64_t synced_size = 0;
  };

  class MemSequentialFile;
  class MemRandomAccessFile;
  class MemWritableFile;

  mutable Mutex mu_;
  // Path -> file. shared_ptr so open handles survive RemoveFile.
  std::map<std::string, std::shared_ptr<FileState>> files_ GUARDED_BY(mu_);
  std::map<std::string, bool> dirs_ GUARDED_BY(mu_);
};

}  // namespace rrq::env

#endif  // RRQ_ENV_MEM_ENV_H_
