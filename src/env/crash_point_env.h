#ifndef RRQ_ENV_CRASH_POINT_ENV_H_
#define RRQ_ENV_CRASH_POINT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "env/env.h"
#include "env/mem_env.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace rrq::env {

/// Env wrapper for deterministic crash-point sweeps. Every MUTATING
/// I/O operation that passes through — NewWritableFile,
/// NewAppendableFile, RemoveFile, RenameFile, and Append/Sync on files
/// opened through this env — is assigned a global 0-based index. When
/// armed at index k, the k-th mutating operation does NOT execute;
/// instead the underlying MemEnv suffers a power failure
/// (SimulateCrash: all unsynced bytes are dropped) and the operation
/// returns IOError. Every later mutating operation also fails with
/// IOError ("the process is dead") until Disarm() is called, which
/// models the restart: recovery code then reads whatever the crash
/// left on "disk".
///
/// Torn writes: when armed with a Rng, the crash keeps a uniformly
/// random prefix of each file's unsynced tail instead of dropping it
/// whole, and a crash landing on an Append first applies the full
/// payload so its bytes participate in the torn truncation — i.e. the
/// append itself may be torn mid-record.
///
/// Read-only operations always pass through (they model inspecting the
/// disk, not the dead process acting), so a sweep driver can examine
/// post-crash state without disarming first.
///
/// Thread-safe.
class CrashPointEnv final : public Env {
 public:
  /// Does not take ownership of `base`, which must outlive this.
  explicit CrashPointEnv(MemEnv* base) : base_(base) {}

  CrashPointEnv(const CrashPointEnv&) = delete;
  CrashPointEnv& operator=(const CrashPointEnv&) = delete;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  /// Arms the crash: the mutating operation with index `op_index`
  /// (counted from construction or the last ResetCounter) triggers the
  /// simulated power failure. `torn_rng` (not owned, may be null)
  /// selects torn-write semantics; it must outlive the armed period.
  void ArmCrash(uint64_t op_index, util::Rng* torn_rng = nullptr);

  /// Ends the "dead process" period: subsequent operations execute
  /// normally again (recovery / next incarnation).
  void Disarm();

  /// True once the armed crash point was hit.
  bool crashed() const;

  /// True while the simulated process is dead (crash hit, Disarm not
  /// yet called). Unlike crashed(), this clears on Disarm — workload
  /// drivers use it to tell "this incarnation just died" from "a crash
  /// happened earlier in the run".
  bool down() const;

  /// Mutating operations seen so far (crash-replaced and post-crash
  /// failed operations are still counted: the index space is stable
  /// regardless of where the crash lands).
  uint64_t mutating_op_count() const;

  void ResetCounter();

 private:
  class CrashWritableFile;

  // Per-operation gate. Returns the error that replaces the operation,
  // or OK when it should execute. `payload` is the Append body (so a
  // torn crash can apply it first), null for other operations.
  Status OnMutatingOp(const Slice* payload, WritableFile* dest);

  MemEnv* base_;
  mutable Mutex mu_;
  uint64_t ops_ GUARDED_BY(mu_) = 0;
  uint64_t crash_at_ GUARDED_BY(mu_) = 0;
  bool armed_ GUARDED_BY(mu_) = false;
  bool down_ GUARDED_BY(mu_) = false;
  bool crashed_ GUARDED_BY(mu_) = false;
  util::Rng* torn_rng_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace rrq::env

#endif  // RRQ_ENV_CRASH_POINT_ENV_H_
