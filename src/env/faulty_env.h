#ifndef RRQ_ENV_FAULTY_ENV_H_
#define RRQ_ENV_FAULTY_ENV_H_

#include <atomic>
#include <memory>
#include <string>

#include "env/env.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace rrq::env {

/// Knobs for FaultyEnv. A value of 0 disables that fault class; a
/// value N injects the fault on average once every N operations.
struct FaultConfig {
  uint32_t write_failure_one_in = 0;  ///< Append() returns IOError.
  uint32_t sync_failure_one_in = 0;   ///< Sync() returns IOError.
  uint32_t open_failure_one_in = 0;   ///< New*File() returns IOError.
  uint32_t remove_failure_one_in = 0; ///< RemoveFile() returns IOError.
  uint64_t seed = 42;                 ///< Rng seed for fault decisions.
};

/// Env wrapper that injects I/O errors at a configured rate and counts
/// the operations that pass through it. Used by recovery tests to
/// prove that a failed sync/append surfaces as a clean error rather
/// than silent data loss, and by benchmarks to count physical I/O.
///
/// Thread-safe (fault decisions use an internal mutex-free counter +
/// per-call rng draw under a mutex).
class FaultyEnv final : public Env {
 public:
  /// Does not take ownership of `base`, which must outlive this.
  explicit FaultyEnv(Env* base, FaultConfig config = {});

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  /// Disables (true) or re-enables (false) all fault injection.
  void SetFaultsSuppressed(bool suppressed) {
    suppressed_.store(suppressed, std::memory_order_relaxed);
  }

  // Operation counters (cumulative since construction).
  uint64_t append_count() const { return appends_.load(std::memory_order_relaxed); }
  uint64_t sync_count() const { return syncs_.load(std::memory_order_relaxed); }
  uint64_t bytes_appended() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t injected_fault_count() const {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  class CountingWritableFile;

  bool ShouldFail(uint32_t one_in);

  Env* base_;
  FaultConfig config_;
  std::atomic<bool> suppressed_{false};
  Mutex rng_mu_;
  util::Rng rng_ GUARDED_BY(rng_mu_);
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> faults_{0};
};

}  // namespace rrq::env

#endif  // RRQ_ENV_FAULTY_ENV_H_
