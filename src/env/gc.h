#ifndef RRQ_ENV_GC_H_
#define RRQ_ENV_GC_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "util/status.h"

namespace rrq::env {

/// Tally of one RetireStaleGenerations pass.
struct GcStats {
  uint64_t removed = 0;   ///< Files successfully deleted.
  uint64_t failures = 0;  ///< RemoveFile calls that returned an error.
};

/// Removes the orphans a crashed checkpoint can leave in a
/// CURRENT/WAL-<gen>/CHECKPOINT-<gen> directory: every "WAL-<n>" and
/// "CHECKPOINT-<n>" (or per-shard "WAL-<n>-<s>" / "CHECKPOINT-<n>-<s>")
/// whose generation is not `current_generation`, plus
/// every "*.tmp" straggler from an interrupted atomic file write.
/// Files that match neither pattern are left alone. Remove failures
/// are logged and counted but do not fail the pass — recovery must
/// proceed; the caller surfaces `failures` through its own counter.
///
/// Call this only from recovery (Open()), before any new temporary
/// files are created, so an in-use .tmp can never be swept.
Status RetireStaleGenerations(Env* env, const std::string& dir,
                              uint64_t current_generation, GcStats* stats);

}  // namespace rrq::env

#endif  // RRQ_ENV_GC_H_
