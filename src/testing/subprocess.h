#ifndef RRQ_TESTING_SUBPROCESS_H_
#define RRQ_TESTING_SUBPROCESS_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace rrq::testing {

/// A child process whose stdout we can watch — the process-level
/// failure injector for out-of-process tests: spawn a real rrqd, wait
/// for its "listening" line, SIGKILL it mid-workload, respawn it, and
/// let recovery prove itself. No PTY, no shell; stdout is a pipe read
/// incrementally with a deadline.
class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// fork+exec `argv` (argv[0] is the binary path) with stdout
  /// redirected into our pipe. FailedPrecondition if already running.
  Status Spawn(const std::vector<std::string>& argv);

  /// Reads stdout until a line containing `token` appears; the line is
  /// returned. TimedOut on deadline, Unavailable when the child closes
  /// stdout (exits) first. Previously buffered lines are consulted
  /// first, so a line is never missed by arriving "too early".
  Result<std::string> WaitForLine(const std::string& token,
                                  uint64_t timeout_micros);

  /// Sends `sig` (e.g. SIGKILL, SIGTERM) to the child.
  Status Signal(int sig);

  /// Reaps the child; returns its raw wait() status. Idempotent.
  Result<int> Wait();

  bool Running() const { return pid_ > 0 && !reaped_; }
  int pid() const { return pid_; }

 private:
  void CloseOut();

  int pid_ = -1;
  int out_fd_ = -1;
  bool reaped_ = false;
  int wait_status_ = 0;
  /// Stdout bytes read but not yet consumed by WaitForLine.
  std::string buffer_;
};

}  // namespace rrq::testing

#endif  // RRQ_TESTING_SUBPROCESS_H_
