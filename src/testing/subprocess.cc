#include "testing/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace rrq::testing {

namespace {

uint64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Subprocess::~Subprocess() {
  if (Running()) {
    ::kill(pid_, SIGKILL);
    (void)Wait();
  }
  CloseOut();
}

void Subprocess::CloseOut() {
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
}

Status Subprocess::Spawn(const std::vector<std::string>& argv) {
  if (Running()) return Status::FailedPrecondition("child already running");
  if (argv.empty()) return Status::InvalidArgument("empty argv");
  CloseOut();
  buffer_.clear();
  reaped_ = false;
  wait_status_ = 0;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  const int pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::IOError("fork: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: stdout -> pipe, then exec. Only async-signal-safe calls
    // between fork and exec.
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    ::execv(c_argv[0], c_argv.data());
    // exec failed; report on the (redirected) stdout and die hard.
    const char msg[] = "subprocess: exec failed\n";
    ssize_t ignored = ::write(STDOUT_FILENO, msg, sizeof(msg) - 1);
    (void)ignored;
    ::_exit(127);
  }

  ::close(pipe_fds[1]);
  pid_ = pid;
  out_fd_ = pipe_fds[0];
  return Status::OK();
}

Result<std::string> Subprocess::WaitForLine(const std::string& token,
                                            uint64_t timeout_micros) {
  if (out_fd_ < 0) return Status::FailedPrecondition("no child stdout");
  const uint64_t deadline = NowMicros() + timeout_micros;
  bool eof = false;
  for (;;) {
    // Consume complete lines already buffered; non-matching lines are
    // discarded (the callers wait for markers in order).
    size_t nl;
    while ((nl = buffer_.find('\n')) != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (line.find(token) != std::string::npos) return line;
    }
    if (eof) return Status::Unavailable("child closed stdout");

    const uint64_t now = NowMicros();
    if (now >= deadline) {
      return Status::TimedOut("no \"" + token + "\" line from child");
    }
    struct pollfd pfd;
    pfd.fd = out_fd_;
    pfd.events = POLLIN;
    const int timeout_ms =
        static_cast<int>((deadline - now + 999) / 1000);
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::TimedOut("no \"" + token + "\" line from child");
    }
    char chunk[4096];
    const ssize_t r = ::read(out_fd_, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read: " + std::string(std::strerror(errno)));
    }
    if (r == 0) {
      eof = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(r));
  }
}

Status Subprocess::Signal(int sig) {
  if (pid_ <= 0) return Status::FailedPrecondition("no child");
  if (::kill(pid_, sig) != 0) {
    return Status::IOError("kill: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<int> Subprocess::Wait() {
  if (pid_ <= 0) return Status::FailedPrecondition("no child");
  if (reaped_) return wait_status_;
  int status = 0;
  for (;;) {
    const int r = ::waitpid(pid_, &status, 0);
    if (r == pid_) break;
    if (r < 0 && errno == EINTR) continue;
    return Status::IOError("waitpid: " + std::string(std::strerror(errno)));
  }
  reaped_ = true;
  wait_status_ = status;
  CloseOut();
  return status;
}

}  // namespace rrq::testing
