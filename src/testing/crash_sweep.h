#ifndef RRQ_TESTING_CRASH_SWEEP_H_
#define RRQ_TESTING_CRASH_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rrq::testing {

/// Configuration for one crash-point sweep of the canonical workload.
struct SweepConfig {
  /// Group commit on the repository / store / coordinator WALs, vs the
  /// per-operation-sync baseline. The sweep must pass in both modes.
  bool group_commit = true;
  /// Crash with torn writes: instead of dropping every unsynced byte,
  /// each file keeps a uniformly random prefix of its unsynced tail
  /// (so the WAL's CRC framing, not sync ordering alone, carries the
  /// recovery guarantee).
  bool torn_writes = false;
  /// Seed for the torn-write truncation; k is mixed in per crash point.
  uint64_t torn_seed = 0xc4a54;
  /// Requests in the canonical workload. A checkpoint of both stores
  /// is taken mid-stream (after requests/2) and again at the end.
  int requests = 6;
  /// Run every stride-th crash index (1 = exhaustive). CI smoke runs
  /// use a stride > 1 on the torn configurations to bound time.
  uint64_t stride = 1;
  /// Shard count for the queue repository (per-shard WAL streams and
  /// checkpoint slices; 1 = the single-stream layout). The sweep's
  /// file-set invariant adapts to the per-shard naming.
  unsigned shards = 1;
};

/// Outcome of a sweep.
struct SweepResult {
  /// N: mutating I/O operations in the uncrashed canonical workload —
  /// the size of the crash-index space.
  uint64_t total_ops = 0;
  /// Crash points actually exercised (N / stride, plus the baseline).
  uint64_t points_run = 0;
  /// Human-readable invariant violations, tagged with the crash index
  /// and mode. Empty means the paper's §3 guarantees (exactly-once
  /// execution, at-least-once reply, request-reply matching), the
  /// registration-consistency checks, and the on-disk file-set
  /// invariant held at every exercised crash point.
  std::vector<std::string> violations;
};

/// Runs the canonical workload — Send / server-cycle / Receive over a
/// QueueRepository + KvStore (two-participant 2PC through the
/// TransactionManager's decision log) with mid-stream checkpoints —
/// under a CrashPointEnv, once per crash index k: the k-th mutating
/// I/O operation becomes a power failure, a fresh incarnation recovers
/// from the surviving bytes, resumes via the paper's Connect protocol,
/// finishes the workload, and every invariant is checked.
SweepResult RunCrashSweep(const SweepConfig& config);

}  // namespace rrq::testing

#endif  // RRQ_TESTING_CRASH_SWEEP_H_
