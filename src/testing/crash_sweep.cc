#include "testing/crash_sweep.h"

#include <memory>
#include <set>
#include <string>

#include "client/clerk.h"
#include "core/property_checker.h"
#include "env/crash_point_env.h"
#include "env/mem_env.h"
#include "queue/envelope.h"
#include "queue/queue_api.h"
#include "queue/queue_repository.h"
#include "server/server.h"
#include "storage/kv_store.h"
#include "txn/txn_manager.h"
#include "util/coding.h"
#include "util/random.h"

namespace rrq::testing {

namespace {

constexpr char kRequestQueue[] = "requests";
constexpr char kReplyQueue[] = "reply.c";
constexpr char kClientId[] = "c";

std::string Rid(int i) { return std::string(kClientId) + "#" + std::to_string(i); }

// Index encoded in a "c#<i>" rid; -1 for anything malformed.
int RidIndex(const std::string& rid) {
  const size_t pos = rid.find('#');
  if (pos == std::string::npos || pos + 1 >= rid.size()) return -1;
  int value = 0;
  for (size_t i = pos + 1; i < rid.size(); ++i) {
    if (rid[i] < '0' || rid[i] > '9') return -1;
    value = value * 10 + (rid[i] - '0');
  }
  return value;
}

// Decimal parse of the counters the handler stores; -1 on garbage.
int64_t ParseCount(const std::string& s) {
  if (s.empty()) return -1;
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

// One incarnation of the node: coordinator, both resource managers,
// server, and the client-side clerk. Declaration order matters — the
// reverse-order destruction tears the server and clerk down before the
// stores, and the stores before the coordinator their in-doubt
// resolver points at.
struct Harness {
  std::unique_ptr<txn::TransactionManager> txn_mgr;
  std::unique_ptr<storage::KvStore> kv;
  std::unique_ptr<queue::QueueRepository> repo;
  std::unique_ptr<queue::LocalQueueApi> api;
  std::unique_ptr<server::Server> server;
  std::unique_ptr<client::Clerk> clerk;
};

// The handler gives "executed" durable weight: it bumps both a per-rid
// execution count and a global counter in the KvStore, inside the
// request's transaction. Touching the store AND the queue repository
// makes every server cycle a two-participant 2PC through the decision
// log; the per-rid counts are read back after recovery to judge
// exactly-once.
server::RequestHandler MakeHandler(storage::KvStore* kv) {
  return [kv](txn::Transaction* t, const queue::RequestEnvelope& request)
             -> Result<std::string> {
    int64_t executions = 0;
    auto prev = kv->GetForUpdate(t, "exec/" + request.rid);
    if (prev.ok()) {
      executions = ParseCount(*prev);
      if (executions < 0) return Status::Corruption("bad execution count");
    } else if (!prev.status().IsNotFound()) {
      return prev.status();
    }
    RRQ_RETURN_IF_ERROR(kv->Put(t, "exec/" + request.rid,
                                std::to_string(executions + 1)));

    int64_t total = 0;
    auto counter = kv->GetForUpdate(t, "counter");
    if (counter.ok()) {
      total = ParseCount(*counter);
      if (total < 0) return Status::Corruption("bad counter");
    } else if (!counter.status().IsNotFound()) {
      return counter.status();
    }
    RRQ_RETURN_IF_ERROR(kv->Put(t, "counter", std::to_string(total + 1)));
    return "ack:" + request.rid;
  };
}

Status BuildHarness(env::Env* env, const SweepConfig& cfg, Harness* h) {
  const bool group_commit = cfg.group_commit;
  txn::TxnManagerOptions topt;
  topt.env = env;
  topt.dir = "txn";
  topt.group_commit = group_commit;
  h->txn_mgr = std::make_unique<txn::TransactionManager>(topt);
  RRQ_RETURN_IF_ERROR(h->txn_mgr->Open());
  txn::TransactionManager* tm = h->txn_mgr.get();
  auto resolver = [tm](txn::TxnId id) { return tm->WasCommitted(id); };

  storage::KvStoreOptions kopt;
  kopt.env = env;
  kopt.dir = "db";
  kopt.group_commit = group_commit;
  kopt.in_doubt_resolver = resolver;
  h->kv = std::make_unique<storage::KvStore>("db", kopt);
  RRQ_RETURN_IF_ERROR(h->kv->Open());

  queue::RepositoryOptions ropt;
  ropt.env = env;
  ropt.dir = "qm";
  ropt.group_commit = group_commit;
  ropt.shards = cfg.shards;
  ropt.in_doubt_resolver = resolver;
  h->repo = std::make_unique<queue::QueueRepository>("qm", ropt);
  RRQ_RETURN_IF_ERROR(h->repo->Open());

  h->api = std::make_unique<queue::LocalQueueApi>(h->repo.get());

  server::ServerOptions sopt;
  sopt.request_queue = kRequestQueue;
  sopt.default_reply_queue = kReplyQueue;
  sopt.poll_timeout_micros = 0;  // ProcessOne must never block.
  h->server = std::make_unique<server::Server>(sopt, h->repo.get(),
                                               h->txn_mgr.get(),
                                               MakeHandler(h->kv.get()));

  Status s = h->repo->CreateQueue(kRequestQueue);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  s = h->repo->CreateQueue(kReplyQueue);
  if (!s.ok() && !s.IsAlreadyExists()) return s;

  client::ClerkOptions copt;
  copt.client_id = kClientId;
  copt.request_queue = kRequestQueue;
  copt.reply_queue = kReplyQueue;
  copt.api = h->api.get();
  copt.receive_timeout_micros = 0;  // Lock-step: the reply is there or not.
  h->clerk = std::make_unique<client::Clerk>(copt);
  return Status::OK();
}

// Collects invariant violations for one crash point.
struct Judge {
  core::PropertyChecker checker;
  std::vector<std::string> violations;

  void Violation(std::string msg) { violations.push_back(std::move(msg)); }

  // Validates a received reply body against the expected rid.
  void Reply(const std::string& body, int expected_index) {
    queue::ReplyEnvelope reply;
    Status s = queue::DecodeReplyEnvelope(body, &reply);
    if (!s.ok()) {
      Violation("reply for " + Rid(expected_index) +
                " undecodable: " + s.ToString());
      return;
    }
    if (reply.rid != Rid(expected_index)) {
      checker.RecordMismatchedReply(reply.rid);
      Violation("reply mismatch: expected " + Rid(expected_index) + ", got " +
                reply.rid);
      return;
    }
    if (!reply.success) {
      Violation("failure reply for " + Rid(expected_index));
      return;
    }
    checker.RecordReplyProcessed(reply.rid);
  }
};

// Drives the canonical workload as far as it will go. Uses the Connect
// protocol (paper Fig 1) to resume: the stable registration's s_rid /
// r_rid decide whether to wait for an outstanding reply or to continue
// with fresh requests. Returns early, silently, as soon as the
// simulated process dies; any error WITHOUT a crash is a violation.
void RunWorkload(Harness* h, env::CrashPointEnv* env, const SweepConfig& cfg,
                 Judge* judge) {
  auto conn = h->clerk->Connect();
  if (env->down()) return;
  if (!conn.ok()) {
    judge->Violation("Connect failed without a crash: " +
                     conn.status().ToString());
    return;
  }

  int next = 1;
  if (conn->s_rid.empty()) {
    if (!conn->r_rid.empty()) {
      judge->Violation("registration inconsistency: r_rid=" + conn->r_rid +
                       " with empty s_rid");
      return;
    }
  } else {
    const int s = RidIndex(conn->s_rid);
    if (s < 1 || s > cfg.requests) {
      judge->Violation("registration returned foreign s_rid " + conn->s_rid);
      return;
    }
    const int r = conn->r_rid.empty() ? 0 : RidIndex(conn->r_rid);
    if (conn->resumed_state == client::SessionState::kReqSent) {
      // Request s is outstanding. The previous reply (if any) fixes
      // what the stable ckpt must say.
      if (r != s - 1) {
        judge->Violation("registration inconsistency: s_rid=" + conn->s_rid +
                         " but r_rid=" + conn->r_rid);
      }
      if (r > 0 && conn->ckpt != std::to_string(r)) {
        judge->Violation("ckpt " + conn->ckpt + " does not match r_rid " +
                         conn->r_rid);
      }
      // Pump the server until the outstanding reply surfaces. The
      // request is either still queued (server executes it now) or was
      // executed pre-crash with its reply parked in the reply queue.
      bool received = false;
      for (int attempt = 0; attempt < 64 && !received; ++attempt) {
        h->server->ProcessOne();  // NotFound when already executed.
        if (env->down()) return;
        auto reply = h->clerk->Receive(std::to_string(s));
        if (env->down()) return;
        if (reply.ok()) {
          judge->Reply(*reply, s);
          received = true;
        }
      }
      if (!received) {
        judge->Violation("request " + Rid(s) +
                         " lost: no reply obtainable after recovery");
        return;
      }
    } else {
      // kReplyRecvd: s completed; its Receive stored ckpt = index.
      if (r != s) {
        judge->Violation("resumed kReplyRecvd with r_rid=" + conn->r_rid +
                         " != s_rid=" + conn->s_rid);
      }
      if (conn->ckpt != std::to_string(s)) {
        judge->Violation("ckpt " + conn->ckpt + " does not match r_rid " +
                         conn->r_rid);
      }
    }
    next = s + 1;
  }

  for (int i = next; i <= cfg.requests; ++i) {
    if (i == cfg.requests / 2 + 1) {
      h->repo->Checkpoint();
      if (env->down()) return;
      h->kv->Checkpoint();
      if (env->down()) return;
    }

    queue::RequestEnvelope envelope;
    envelope.rid = Rid(i);
    envelope.reply_queue = kReplyQueue;
    envelope.body = "op-" + std::to_string(i);
    Status sent =
        h->clerk->Send(queue::EncodeRequestEnvelope(envelope), Rid(i));
    if (env->down()) return;
    if (!sent.ok()) {
      judge->Violation("Send " + Rid(i) +
                       " failed without a crash: " + sent.ToString());
      return;
    }

    Status cycle = h->server->ProcessOne();
    if (env->down()) return;
    if (!cycle.ok()) {
      judge->Violation("server cycle for " + Rid(i) +
                       " failed without a crash: " + cycle.ToString());
      return;
    }

    auto reply = h->clerk->Receive(std::to_string(i));
    if (env->down()) return;
    if (!reply.ok()) {
      judge->Violation("Receive " + Rid(i) +
                       " failed without a crash: " + reply.status().ToString());
      return;
    }
    judge->Reply(*reply, i);
  }

  h->repo->Checkpoint();
  if (env->down()) return;
  h->kv->Checkpoint();
}

// The on-disk invariant for a CURRENT/WAL-<gen>/CHECKPOINT-<gen>
// directory: after recovery + checkpoint, CURRENT names a generation
// whose WAL exists, and nothing else — no stale generations, no .tmp
// stragglers — is left behind.
void CheckGenerationFileSet(env::Env* env, const std::string& dir,
                            Judge* judge) {
  std::string current;
  Status s = env::ReadFileToString(env, dir + "/CURRENT", &current);
  if (!s.ok()) {
    judge->Violation(dir + ": unreadable CURRENT: " + s.ToString());
    return;
  }
  Slice input(current);
  uint64_t generation = 0;
  if (!util::GetVarint64(&input, &generation).ok()) {
    judge->Violation(dir + ": corrupt CURRENT");
    return;
  }
  // Sharded repositories append the shard count to CURRENT and write
  // one WAL/CHECKPOINT pair per shard; single-stream directories carry
  // neither the count nor the per-shard suffix.
  uint64_t shard_count = 1;
  if (!input.empty() &&
      (!util::GetVarint64(&input, &shard_count).ok() || shard_count == 0)) {
    judge->Violation(dir + ": corrupt shard count in CURRENT");
    return;
  }
  std::set<std::string> allowed = {"CURRENT"};
  std::vector<std::string> wals;
  for (uint64_t i = 0; i < shard_count; ++i) {
    const std::string suffix = shard_count > 1
                                   ? std::to_string(generation) + "-" +
                                         std::to_string(i)
                                   : std::to_string(generation);
    wals.push_back("WAL-" + suffix);
    allowed.insert("WAL-" + suffix);
    allowed.insert("CHECKPOINT-" + suffix);
  }
  std::vector<std::string> children;
  s = env->GetChildren(dir, &children);
  if (!s.ok()) {
    judge->Violation(dir + ": GetChildren: " + s.ToString());
    return;
  }
  for (const std::string& name : children) {
    if (allowed.count(name) == 0) {
      judge->Violation(dir + ": orphan file survived recovery: " + name);
    }
  }
  for (const std::string& wal : wals) {
    if (!env->FileExists(dir + "/" + wal)) {
      judge->Violation(dir + ": CURRENT names generation " +
                       std::to_string(generation) + " but " + wal +
                       " is missing");
    }
  }
}

// Judges the completed run: §3 properties from durable state, empty
// queues, clean retirement counters, and recoverable file sets.
void VerifyFinalState(Harness* h, env::Env* env, const SweepConfig& cfg,
                      Judge* judge) {
  for (const std::string& key : h->kv->ScanKeys("exec/")) {
    auto value = h->kv->GetCommitted(key);
    const int64_t count = value.ok() ? ParseCount(*value) : -1;
    if (count < 0) {
      judge->Violation("unreadable execution count for " + key);
      continue;
    }
    const std::string rid = key.substr(5);
    for (int64_t i = 0; i < count; ++i) {
      judge->checker.RecordCommittedExecution(rid);
    }
  }
  auto counter = h->kv->GetCommitted("counter");
  if (!counter.ok() || ParseCount(*counter) != cfg.requests) {
    judge->Violation("global counter is " +
                     (counter.ok() ? *counter : counter.status().ToString()) +
                     ", want " + std::to_string(cfg.requests));
  }

  const auto verdict = judge->checker.Check();
  if (!verdict.AllHold()) {
    std::string msg = "properties violated:";
    if (verdict.duplicate_executions > 0) {
      msg += " dup_exec=" + std::to_string(verdict.duplicate_executions);
    }
    if (verdict.lost_requests > 0) {
      msg += " lost=" + std::to_string(verdict.lost_requests);
    }
    if (verdict.phantom_executions > 0) {
      msg += " phantom=" + std::to_string(verdict.phantom_executions);
    }
    if (verdict.unprocessed_replies > 0) {
      msg += " unprocessed_replies=" +
             std::to_string(verdict.unprocessed_replies);
    }
    if (verdict.mismatched_replies > 0) {
      msg += " mismatched=" + std::to_string(verdict.mismatched_replies);
    }
    for (const std::string& rid : judge->checker.Offenders()) {
      msg += " [" + rid + "]";
    }
    judge->Violation(msg);
  }

  for (const char* queue : {kRequestQueue, kReplyQueue}) {
    auto depth = h->repo->Depth(queue);
    if (!depth.ok() || *depth != 0) {
      judge->Violation(std::string(queue) + " not drained: depth=" +
                       (depth.ok() ? std::to_string(*depth)
                                   : depth.status().ToString()));
    }
  }

  if (h->repo->remove_failure_count() != 0) {
    judge->Violation("repository retirement RemoveFile failures: " +
                     std::to_string(h->repo->remove_failure_count()));
  }
  if (h->kv->remove_failure_count() != 0) {
    judge->Violation("kv retirement RemoveFile failures: " +
                     std::to_string(h->kv->remove_failure_count()));
  }

  CheckGenerationFileSet(env, "qm", judge);
  CheckGenerationFileSet(env, "db", judge);
  // The coordinator directory holds exactly the decision log and the
  // epoch file; EPOCH.tmp stragglers are consumed by the next Open.
  std::vector<std::string> children;
  if (env->GetChildren("txn", &children).ok()) {
    for (const std::string& name : children) {
      if (name != "DECISIONS" && name != "EPOCH") {
        judge->Violation("txn: orphan file survived recovery: " + name);
      }
    }
  }
}

// Runs the workload against a fresh disk image with a crash armed at
// index k (or unarmed for the baseline when k == kNoCrash), recovers,
// and judges. Returns the violations and, via *ops, the mutating-op
// count of the run.
constexpr uint64_t kNoCrash = ~uint64_t{0};

std::vector<std::string> RunOnePoint(const SweepConfig& cfg, uint64_t k,
                                     uint64_t* ops) {
  env::MemEnv mem;
  env::CrashPointEnv env(&mem);
  util::Rng torn_rng(cfg.torn_seed + k);
  if (k != kNoCrash) {
    env.ArmCrash(k, cfg.torn_writes ? &torn_rng : nullptr);
  }

  Judge judge;
  for (int i = 1; i <= cfg.requests; ++i) {
    judge.checker.RecordSubmission(Rid(i));
  }

  {
    Harness first;
    Status s = BuildHarness(&env, cfg, &first);
    if (s.ok()) {
      RunWorkload(&first, &env, cfg, &judge);
    } else if (!env.down()) {
      judge.Violation("build failed without a crash: " + s.ToString());
    }
    if (k != kNoCrash && !env.crashed()) {
      judge.Violation("crash point never fired — workload shrank?");
    }
    if (k == kNoCrash && !judge.violations.empty()) {
      return judge.violations;  // Baseline must be violation-free.
    }
    if (!env.crashed()) {
      // Uncrashed (baseline) run: judge it as-is.
      VerifyFinalState(&first, &env, cfg, &judge);
      *ops = env.mutating_op_count();
      return judge.violations;
    }
  }

  // The dead incarnation is gone; restart and recover.
  env.Disarm();
  Harness second;
  Status s = BuildHarness(&env, cfg, &second);
  if (!s.ok()) {
    judge.Violation("recovery failed: " + s.ToString());
    return judge.violations;
  }
  RunWorkload(&second, &env, cfg, &judge);
  if (env.down()) {
    judge.Violation("disarmed env reported a crash during recovery");
    return judge.violations;
  }
  VerifyFinalState(&second, &env, cfg, &judge);
  *ops = env.mutating_op_count();
  return judge.violations;
}

}  // namespace

SweepResult RunCrashSweep(const SweepConfig& config) {
  SweepResult result;
  const uint64_t stride = config.stride == 0 ? 1 : config.stride;

  // Baseline uncrashed run: validates the workload itself and measures
  // N, the size of the crash-index space.
  uint64_t ops = 0;
  std::vector<std::string> baseline = RunOnePoint(config, kNoCrash, &ops);
  ++result.points_run;
  if (!baseline.empty()) {
    for (std::string& msg : baseline) {
      result.violations.push_back("baseline: " + std::move(msg));
    }
    return result;
  }
  result.total_ops = ops;

  std::string mode = std::string("gc=") + (config.group_commit ? "1" : "0") +
                     (config.torn_writes ? ",torn" : "");
  if (config.shards > 1) {
    mode += ",shards=" + std::to_string(config.shards);
  }
  for (uint64_t k = 0; k < result.total_ops; k += stride) {
    uint64_t ignored = 0;
    std::vector<std::string> violations = RunOnePoint(config, k, &ignored);
    ++result.points_run;
    for (std::string& msg : violations) {
      result.violations.push_back("k=" + std::to_string(k) + " [" + mode +
                                  "]: " + std::move(msg));
    }
  }
  return result;
}

}  // namespace rrq::testing
