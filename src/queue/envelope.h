#ifndef RRQ_QUEUE_ENVELOPE_H_
#define RRQ_QUEUE_ENVELOPE_H_

#include <string>

#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::queue {

/// Application-level framing of a request element. The queue manager
/// never interprets element contents; this envelope is the convention
/// the client and server libraries agree on. It carries:
///  - the rid, echoed in the reply (the user-level matching identifier
///    the paper's §11 asks for),
///  - the client's private reply queue (the multi-client extension of
///    §5: "passing that queue's name with the request"),
///  - a scratch pad (IMS-style, §9) that multi-transaction pipelines
///    use to carry state from one transaction to the next (§6), and
///  - the request body proper.
struct RequestEnvelope {
  std::string rid;
  std::string reply_queue;
  uint32_t reply_priority = 0;
  std::string scratch;
  std::string body;
};

/// Framing of a reply element: the echoed rid, a success flag (§3: an
/// unsuccessful execution attempt still produces a reply — "a promise
/// that it will not attempt to execute the request any more"), and the
/// reply body.
struct ReplyEnvelope {
  std::string rid;
  bool success = true;
  std::string body;
};

std::string EncodeRequestEnvelope(const RequestEnvelope& envelope);
Status DecodeRequestEnvelope(const Slice& contents, RequestEnvelope* envelope);

std::string EncodeReplyEnvelope(const ReplyEnvelope& envelope);
Status DecodeReplyEnvelope(const Slice& contents, ReplyEnvelope* envelope);

}  // namespace rrq::queue

#endif  // RRQ_QUEUE_ENVELOPE_H_
