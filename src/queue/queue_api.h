#ifndef RRQ_QUEUE_QUEUE_API_H_
#define RRQ_QUEUE_QUEUE_API_H_

#include <functional>
#include <string>

#include "queue/element.h"
#include "queue/queue_repository.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace rrq::queue {

/// The non-transactional slice of the queue-manager interface that a
/// *client* (clerk) uses — every operation auto-commits at the
/// repository (§2: the client accesses queues outside of a
/// transaction). Implemented locally (LocalQueueApi) and over the
/// simulated network (comm::RemoteQueueApi), so the same clerk code
/// runs against a co-located or a remote queue manager.
class QueueApi {
 public:
  virtual ~QueueApi() = default;

  virtual Result<RegistrationInfo> Register(const std::string& queue,
                                            const std::string& registrant,
                                            bool stable) = 0;
  virtual Status Deregister(const std::string& queue,
                            const std::string& registrant) = 0;

  /// When `one_way` is true the enqueue is fire-and-forget (§5): no
  /// acknowledgement is awaited, the returned eid is kInvalidElementId,
  /// and a lost message surfaces later as a Receive timeout.
  virtual Result<ElementId> Enqueue(const std::string& queue,
                                    const Slice& contents, uint32_t priority,
                                    const std::string& registrant,
                                    const Slice& tag, bool one_way) = 0;

  virtual Result<Element> Dequeue(const std::string& queue,
                                  const std::string& registrant,
                                  const Slice& tag,
                                  uint64_t timeout_micros) = 0;

  virtual Result<Element> Read(const std::string& queue, ElementId eid) = 0;

  virtual Result<bool> KillElement(const std::string& queue,
                                   ElementId eid) = 0;

  // ---- Pipelined variants -------------------------------------------
  // Default implementations degrade to the synchronous op and invoke
  // `done` inline, so every api is pipelinable in interface; transports
  // with a multiplexed wire (net::ChannelQueueApi over a v2 TcpChannel)
  // override them with true in-flight concurrency. Callbacks may run on
  // an internal transport thread and must not block.

  virtual void EnqueueAsync(const std::string& queue, const Slice& contents,
                            uint32_t priority, const std::string& registrant,
                            const Slice& tag, bool one_way,
                            std::function<void(Result<ElementId>)> done) {
    done(Enqueue(queue, contents, priority, registrant, tag, one_way));
  }

  virtual void DequeueAsync(const std::string& queue,
                            const std::string& registrant, const Slice& tag,
                            uint64_t timeout_micros,
                            std::function<void(Result<Element>)> done) {
    done(Dequeue(queue, registrant, tag, timeout_micros));
  }
};

/// QueueApi over a co-located repository.
class LocalQueueApi final : public QueueApi {
 public:
  /// Does not take ownership; `repo` must outlive this.
  explicit LocalQueueApi(QueueRepository* repo) : repo_(repo) {}

  Result<RegistrationInfo> Register(const std::string& queue,
                                    const std::string& registrant,
                                    bool stable) override {
    return repo_->Register(queue, registrant, stable);
  }
  Status Deregister(const std::string& queue,
                    const std::string& registrant) override {
    return repo_->Deregister(queue, registrant);
  }
  Result<ElementId> Enqueue(const std::string& queue, const Slice& contents,
                            uint32_t priority, const std::string& registrant,
                            const Slice& tag, bool /*one_way*/) override {
    return repo_->Enqueue(nullptr, queue, contents, priority, registrant, tag);
  }
  Result<Element> Dequeue(const std::string& queue,
                          const std::string& registrant, const Slice& tag,
                          uint64_t timeout_micros) override {
    return repo_->Dequeue(nullptr, queue, registrant, tag, timeout_micros);
  }
  Result<Element> Read(const std::string& queue, ElementId eid) override {
    return repo_->Read(queue, eid);
  }
  Result<bool> KillElement(const std::string& queue, ElementId eid) override {
    return repo_->KillElement(nullptr, queue, eid);
  }

 private:
  QueueRepository* repo_;
};

}  // namespace rrq::queue

#endif  // RRQ_QUEUE_QUEUE_API_H_
