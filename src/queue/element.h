#ifndef RRQ_QUEUE_ELEMENT_H_
#define RRQ_QUEUE_ELEMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rrq::queue {

/// Unique element identifier (eid). Assigned at enqueue, unique within
/// a repository, and stable as the element moves between queues
/// (error-queue moves, redirection) — the element-identity property
/// §10 of the paper calls for.
using ElementId = uint64_t;

constexpr ElementId kInvalidElementId = 0;

/// The kind of the last data-manipulation operation a registrant
/// performed, kept in the persistent registration record (§4.3: "the
/// QM must maintain the type of the last operation executed by each
/// registrant").
enum class OpType : int {
  kNone = 0,
  kEnqueue = 1,
  kDequeue = 2,
};

/// A queue element. Contents are uninterpreted by the queue manager.
struct Element {
  ElementId eid = kInvalidElementId;
  /// Higher priority dequeues first; FIFO within a priority level.
  uint32_t priority = 0;
  /// Times the element was returned to a queue by an aborting
  /// dequeuer. When it reaches the queue's `max_aborts`, the element
  /// moves to the error queue (§4.2).
  uint32_t abort_count = 0;
  /// Set when the element was moved to an error queue; carries the
  /// reason ("abort limit", "killed", ...).
  std::string abort_code;
  std::string contents;
};

/// Dequeue ordering/visibility policy (§10). kSkipLocked lets a
/// dequeuer pass over elements locked by uncommitted transactions
/// (non-strict FIFO, high concurrency — the paper's recommendation);
/// kStrictFifo makes dequeuers wait for the head element's fate
/// (serializes dequeuers; the baseline the paper argues against).
enum class DequeuePolicy : int {
  kSkipLocked = 0,
  kStrictFifo = 1,
};

/// Per-queue attributes, fixed at creation.
struct QueueOptions {
  /// n: the n-th abort of a dequeuing transaction moves the element to
  /// `error_queue` instead of returning it to this queue (§4.2).
  uint32_t max_aborts = 3;
  /// Destination for poisoned elements. Empty disables the error-queue
  /// mechanism (elements requeue forever). Created on demand.
  std::string error_queue;
  /// Durable queues survive crashes; volatile queues (§10) lose their
  /// contents but cost no logging.
  bool durable = true;
  DequeuePolicy policy = DequeuePolicy::kSkipLocked;
  /// When non-zero, a committed enqueue that raises the depth to this
  /// value fires the repository's alert callback (DECintact-style
  /// alert thresholds, §9).
  size_t alert_threshold = 0;
  /// When non-empty, enqueues into this queue are transparently
  /// forwarded to the named queue (queue redirection, §9). Chains are
  /// followed up to 4 hops.
  std::string redirect_to;
};

/// What Register() returns: the tag/eid/type of the registrant's most
/// recent tagged operation, plus a copy of the element it operated on
/// (§4.3). `tag` and `eid` are empty/invalid for a fresh registration.
struct RegistrationInfo {
  OpType last_op = OpType::kNone;
  ElementId last_eid = kInvalidElementId;
  std::string last_tag;
  /// Copy of the last operated element's contents; lets a registrant
  /// Read the element "even if the last operation was a Dequeue".
  std::string last_element;
  bool was_registered = false;  ///< True when recovering an old registration.
};

/// Chooses among the currently visible elements of a queue; used for
/// content-based scheduling (§10: "highest dollar amount first").
/// Returns the index into `candidates` to dequeue, or SIZE_MAX to
/// dequeue none. Candidates are in default (priority, FIFO) order.
using Selector = std::function<size_t(const std::vector<Element*>&)>;

}  // namespace rrq::queue

#endif  // RRQ_QUEUE_ELEMENT_H_
