#include "queue/envelope.h"

#include "util/coding.h"

namespace rrq::queue {

std::string EncodeRequestEnvelope(const RequestEnvelope& envelope) {
  std::string out;
  util::PutLengthPrefixed(&out, envelope.rid);
  util::PutLengthPrefixed(&out, envelope.reply_queue);
  util::PutVarint32(&out, envelope.reply_priority);
  util::PutLengthPrefixed(&out, envelope.scratch);
  util::PutLengthPrefixed(&out, envelope.body);
  return out;
}

Status DecodeRequestEnvelope(const Slice& contents,
                             RequestEnvelope* envelope) {
  Slice input = contents;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &envelope->rid));
  RRQ_RETURN_IF_ERROR(
      util::GetLengthPrefixedString(&input, &envelope->reply_queue));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(&input, &envelope->reply_priority));
  RRQ_RETURN_IF_ERROR(
      util::GetLengthPrefixedString(&input, &envelope->scratch));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &envelope->body));
  return Status::OK();
}

std::string EncodeReplyEnvelope(const ReplyEnvelope& envelope) {
  std::string out;
  util::PutLengthPrefixed(&out, envelope.rid);
  out.push_back(envelope.success ? 1 : 0);
  util::PutLengthPrefixed(&out, envelope.body);
  return out;
}

Status DecodeReplyEnvelope(const Slice& contents, ReplyEnvelope* envelope) {
  Slice input = contents;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &envelope->rid));
  if (input.empty()) return Status::Corruption("truncated reply envelope");
  envelope->success = input[0] != 0;
  input.remove_prefix(1);
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &envelope->body));
  return Status::OK();
}

}  // namespace rrq::queue
