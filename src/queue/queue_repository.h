#ifndef RRQ_QUEUE_QUEUE_REPOSITORY_H_
#define RRQ_QUEUE_QUEUE_REPOSITORY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "env/env.h"
#include "queue/element.h"
#include "txn/resource_manager.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "wal/log_writer.h"

namespace rrq::queue {

/// Options for a QueueRepository.
struct RepositoryOptions {
  /// Environment for durable state; nullptr makes the whole repository
  /// volatile.
  env::Env* env = nullptr;
  std::string dir;
  /// Sync the WAL on every auto-committed operation and commit record.
  bool sync_commits = true;
  /// Batch WAL syncs across concurrent committers (leader/follower
  /// group commit). Disable to restore per-operation syncing, the
  /// baseline the group-commit benchmark measures against.
  bool group_commit = true;
  /// Number of shards the repository is partitioned into (queues are
  /// assigned by a stable hash of their name; each shard has its own
  /// lock, WAL stream, and group-commit leader). 0 means
  /// hardware_concurrency. 1 reproduces the pre-sharding single-lock
  /// repository and its on-disk layout bit-for-bit. A durable directory
  /// remembers its shard count: reopening adopts the on-disk count, so
  /// pre-sharding data directories open unchanged regardless of this
  /// setting.
  unsigned shards = 0;
  /// In-doubt resolution at recovery (presumed abort by default).
  std::function<bool(txn::TxnId)> in_doubt_resolver;
  /// Invoked (outside the repository lock) when a committed enqueue
  /// raises a queue's depth to its alert_threshold.
  std::function<void(const std::string& queue, size_t depth)> alert_callback;
  /// Queue replication (§10): when set, every record of committed
  /// effects is pushed through this sink, in apply order, after the
  /// local apply. Feed the records to a backup repository's
  /// ApplyReplicatedRecord (possibly across the simulated network) to
  /// maintain a hot standby with identical eids, elements, and
  /// registrations. Semi-synchronous: the local commit stands even if
  /// the sink errors (the error is surfaced to the caller).
  std::function<Status(const Slice& record)> replication_sink;
};

/// Fork/join trigger (§6): once `remaining` committed enqueues have
/// arrived in `watched_queue`, enqueue `contents` into `target_queue`.
struct TriggerSpec {
  std::string watched_queue;
  uint64_t remaining = 0;
  std::string target_queue;
  std::string contents;
  uint32_t priority = 0;
};

/// A repository of recoverable queues — the paper's queue manager
/// (§4), one instance per "node".
///
/// Every data-manipulation operation can run inside a transaction
/// (pass the Transaction — effects commit/abort with it) or outside
/// one (pass nullptr — the operation auto-commits atomically). The
/// clerk uses the latter mode ("the queue is a gateway between the
/// non-transaction world of front-ends and the transactional world of
/// back-ends", §2); servers use the former.
///
/// Durability: a write-ahead log + checkpoint pair, recovered by
/// Open(). Volatile queues (per-queue option) skip logging. The
/// repository participates in one- and two-phase commit as a
/// txn::ResourceManager.
///
/// Internally the repository is partitioned into
/// RepositoryOptions::shards shards keyed by queue-name hash. Each
/// shard owns its queues, its mutex and condition variables, its WAL
/// stream (WAL-<gen>-<shard>) with its own group-commit leader, and
/// its slice of the checkpoint, so operations on queues in different
/// shards never contend on a lock or serialize into the same log.
/// Transactions spanning shards enlist each involved shard as a
/// distinct ResourceManager with the TransactionManager (real 2PC);
/// internal cross-shard auto-commits (redirected tagged enqueues,
/// cross-shard error-queue moves, replicated records) use a
/// prepare/commit protocol over the involved shard WALs that recovery
/// resolves atomically. The eid counter is one process-wide atomic, so
/// element ids stay unique and monotonic across shards.
///
/// Thread-safe.
class QueueRepository final : public txn::ResourceManager {
 public:
  QueueRepository(std::string name, RepositoryOptions options = {});
  ~QueueRepository() override;

  QueueRepository(const QueueRepository&) = delete;
  QueueRepository& operator=(const QueueRepository&) = delete;

  /// Recovers durable state (shards recover in parallel). Call once
  /// before use.
  Status Open();

  // ---- Data definition (§4.1) ---------------------------------------
  // Auto-committed (durable immediately); not undoable.

  Status CreateQueue(const std::string& queue, QueueOptions options = {});
  Status DestroyQueue(const std::string& queue);
  /// Stopped queues reject Enqueue/Dequeue with FailedPrecondition.
  Status StartQueue(const std::string& queue);
  Status StopQueue(const std::string& queue);
  bool QueueExists(const std::string& queue) const;

  // ---- Persistent registration (§4.3) --------------------------------

  /// Registers `registrant` with `queue`. When `stable` is true the
  /// repository durably maintains the registrant's last tagged
  /// operation and returns it here on re-registration after a failure.
  Result<RegistrationInfo> Register(const std::string& queue,
                                    const std::string& registrant,
                                    bool stable);
  Status Deregister(const std::string& queue, const std::string& registrant);

  // ---- Data manipulation (§4.2) ---------------------------------------

  /// Enqueues `contents`. When `registrant` is a stable registrant of
  /// `queue`, the operation is tagged with `tag` atomically with the
  /// enqueue. Returns the new element's eid.
  Result<ElementId> Enqueue(txn::Transaction* t, const std::string& queue,
                            const Slice& contents, uint32_t priority = 0,
                            const std::string& registrant = "",
                            const Slice& tag = Slice());

  /// Dequeues the next element per the queue's policy, waiting up to
  /// `timeout_micros` for one to become visible (0 = no wait).
  /// Returns NotFound on timeout with an empty queue, Busy on timeout
  /// in strict-FIFO mode with a locked head.
  Result<Element> Dequeue(txn::Transaction* t, const std::string& queue,
                          const std::string& registrant = "",
                          const Slice& tag = Slice(),
                          uint64_t timeout_micros = 0);

  /// Dequeue with a content-based selector (§10 request scheduling).
  /// The selector sees the visible elements in (priority, FIFO) order.
  Result<Element> DequeueSelected(txn::Transaction* t,
                                  const std::string& queue,
                                  const Selector& selector,
                                  const std::string& registrant = "",
                                  const Slice& tag = Slice());

  /// Dequeues from the first of `queues` that has a visible element
  /// (queue sets, §9). The queues may live on different shards; the
  /// first-visible-wins scan order is the caller's order regardless.
  Result<Element> DequeueFromSet(txn::Transaction* t,
                                 const std::vector<std::string>& queues,
                                 const std::string& registrant = "",
                                 const Slice& tag = Slice());

  /// Reads an element without removing it: first the live element with
  /// that eid in `queue`, else any stable registrant's saved copy of it
  /// (the paper's Read-after-Dequeue for Rereceive).
  Result<Element> Read(const std::string& queue, ElementId eid) const;

  /// Cancels an element (§7). If still enqueued: deletes it (in `t` or
  /// auto-committed). If currently dequeued by an uncommitted
  /// transaction: marks it killed — that transaction's commit will be
  /// vetoed and the element deleted on its abort. Returns true when
  /// the element was (or will be) deleted, false when it was already
  /// consumed by a committed dequeue.
  Result<bool> KillElement(txn::Transaction* t, const std::string& queue,
                           ElementId eid);

  /// Installs a durable fork/join trigger (§6).
  Status SetTrigger(const TriggerSpec& spec);

  /// Applies a record produced by another repository's
  /// replication_sink (§10 queue replication). Ops apply with their
  /// original eids; the eid counter advances past the primary's
  /// watermark so a promoted backup never reuses ids. Durable backups
  /// log the record before applying. A record whose ops land on
  /// several local shards applies through the cross-shard commit
  /// protocol, so it stays atomic across a backup crash.
  Status ApplyReplicatedRecord(const Slice& record);

  /// Sequence-tracked apply for networked WAL shipping (src/repl/):
  /// `seq` is the shipper's monotonically increasing record sequence
  /// number. A record whose seq is at or below the applied watermark
  /// is a duplicate delivery and is acknowledged without re-applying;
  /// a fresh record applies atomically WITH the watermark advance (the
  /// watermark rides inside the record as a micro-op, so a backup
  /// crash can never apply one without the other — re-delivery after
  /// recovery then dedups instead of double-applying). seq 0 means
  /// untracked and behaves exactly like the single-argument overload.
  Status ApplyReplicatedRecord(const Slice& record, uint64_t seq);

  /// Highest replication sequence number durably applied by this
  /// repository (0 = none). Survives restart: the watermark is logged
  /// atomically with each applied record and carried by checkpoints.
  uint64_t applied_repl_seq() const {
    return applied_repl_seq_.load(std::memory_order_acquire);
  }

  /// Captures a consistent full-state snapshot for seeding a backup:
  /// under every shard lock — after draining in-flight replication
  /// deliveries, so everything already handed to the sink is excluded
  /// from the barrier point — invokes `at_barrier` (the caller records
  /// its shipping position S there), then serializes all queues,
  /// registrations, elements, and triggers as ordinary replication
  /// records. Feeding the records to an empty backup's
  /// ApplyReplicatedRecord (seq 0) followed by records S+1, S+2, ...
  /// reproduces this repository's state exactly.
  Status CaptureReplicaSnapshot(const std::function<void()>& at_barrier,
                                std::vector<std::string>* records);

  /// Durably advances the applied replication watermark to `seq`
  /// without applying any ops — the snapshot-install completion step
  /// (equivalent to applying an empty seq-tracked record).
  Status CommitReplWatermark(uint64_t seq);

  /// An encoded empty committed record: applying it changes no queue
  /// state (beyond the watermark advance its sequence implies). The
  /// sender pads an empty ReplicationLog with one before seeding so
  /// the seed barrier — and thus a seeded backup's watermark — is
  /// never 0, which must always mean "fresh backup".
  std::string NoopReplicationRecord() const;

  // ---- Introspection ----------------------------------------------------

  /// Committed, visible depth of `queue`.
  Result<size_t> Depth(const std::string& queue) const;
  std::vector<std::string> ListQueues() const;
  Result<QueueOptions> GetQueueOptions(const std::string& queue) const;

  /// Number of shards (resolved at Open; on-disk count wins for
  /// durable directories).
  size_t shard_count() const { return shards_.size(); }
  /// Stable shard index of `queue` (FNV-1a of the name, mod
  /// shard_count). Exposed so tests and benches can construct queue
  /// names that do / don't share a shard.
  size_t shard_of(const std::string& queue) const {
    return ShardIndexOf(queue);
  }

  // ---- txn::ResourceManager ----------------------------------------------
  // The repository itself stays a ResourceManager for compatibility
  // (calls fan out to every shard holding state for the transaction),
  // but transactional operations enlist the involved shards directly,
  // so the TransactionManager coordinates cross-shard atomicity with
  // its decision log and single-shard transactions keep the fused
  // one-phase fast path.
  std::string_view rm_name() const override { return name_; }
  Status Prepare(txn::TxnId txn) override;
  Status CommitTxn(txn::TxnId txn) override;
  void AbortTxn(txn::TxnId txn) override;
  Status PrepareAndCommit(txn::TxnId txn) override;

  // ---- Statistics -------------------------------------------------------
  uint64_t enqueue_count() const { return enqueues_.load(std::memory_order_relaxed); }
  uint64_t dequeue_count() const { return dequeues_.load(std::memory_order_relaxed); }
  uint64_t error_move_count() const {
    return error_moves_.load(std::memory_order_relaxed);
  }
  uint64_t replication_failure_count() const {
    return replication_failures_.load(std::memory_order_relaxed);
  }
  /// Physical WAL bytes, summed across the shard WAL streams.
  uint64_t wal_bytes() const;
  /// Failed RemoveFile calls on the retirement/GC path (checkpoint
  /// retiring the previous generation, recovery GC). Nonzero means
  /// orphan files may be accumulating; the crash sweep asserts on it.
  uint64_t remove_failure_count() const {
    return remove_failures_.load(std::memory_order_relaxed);
  }
  /// Orphan files (stale generations, stray .tmp) deleted by Open().
  uint64_t recovery_gc_removed_count() const {
    return gc_removed_.load(std::memory_order_relaxed);
  }
  /// Physical WAL syncs issued, summed across shards. Under concurrent
  /// committers this is less than wal_sync_request_count(): the ratio
  /// is the group-commit batching factor.
  uint64_t wal_sync_count() const;
  /// Durability requests made against the WALs (commits that needed a
  /// sync), summed across shards.
  uint64_t wal_sync_request_count() const;

  /// Writes a checkpoint (one slice per shard under a single atomic
  /// generation cut) and truncates the WALs.
  Status Checkpoint();

 private:
  // A single micro-operation inside a logged record. Records are
  // redo-only: applying a micro-op mutates committed state.
  //
  // Element contents ride in `payload` (immutable, refcounted) when
  // the op was built from live state — sharing the bytes instead of
  // copying them under the shard lock. Ops decoded from the WAL carry
  // contents inline in `element.contents`; PayloadOf() normalizes the
  // two. EncodeMicroOp writes identical bytes either way.
  struct MicroOp {
    enum Kind : unsigned char {
      kCreateQueue = 1,
      kDestroyQueue = 2,
      kStartQueue = 3,
      kStopQueue = 4,
      kRegister = 5,
      kDeregister = 6,
      kInsert = 7,       // element lands in queue (enqueue/move)
      kRemove = 8,       // element leaves queue (dequeue/kill)
      kSetLastOp = 9,    // registration tag update
      kSetTrigger = 10,
      kClearTrigger = 11,
      kBumpAbortCount = 12,
      // Advances the applied replication watermark (element.eid holds
      // the sequence number). Appended by the seq-tracked
      // ApplyReplicatedRecord so the watermark commits atomically with
      // the record's effects; `queue` routes the op to a shard but is
      // otherwise ignored.
      kSetReplWatermark = 13,
    };
    Kind kind;
    std::string queue;
    std::string registrant;   // kRegister/kDeregister/kSetLastOp
    Element element;          // kInsert (full), kRemove (eid only)
    std::shared_ptr<const std::string> payload;  // kInsert/kSetLastOp contents
    QueueOptions qoptions;    // kCreateQueue
    bool stable = false;      // kRegister
    OpType op_type = OpType::kNone;  // kSetLastOp
    TriggerSpec trigger;             // kSetTrigger
    std::string tag;                 // kSetLastOp
  };

  // A live element. The metadata (eid, priority, abort bookkeeping)
  // lives in `meta` with empty contents; the contents are a shared
  // immutable string, so handing an element to a reader is a refcount
  // bump under the shard lock and the byte copy happens outside it.
  struct InternalElement {
    Element meta;                        // meta.contents is always empty.
    std::shared_ptr<const std::string> payload;
    uint64_t seq = 0;                    // FIFO order within priority.
    txn::TxnId locked_by = txn::kInvalidTxnId;  // Uncommitted dequeuer.
    bool killed = false;                 // KillElement hit a locked element.
  };

  struct LastOpRecord {
    OpType type = OpType::kNone;
    ElementId eid = kInvalidElementId;
    std::string tag;
    Element meta;                        // meta.contents is always empty.
    std::shared_ptr<const std::string> payload;
  };

  struct RegistrationRecord {
    bool stable = false;
    LastOpRecord last;
  };

  // Every QueueState field is guarded by the owning Shard's `mu` (not
  // expressible as GUARDED_BY: the shard type is defined in the .cc
  // and a member cannot name its container's lock). All access runs
  // inside Shard helpers or repository functions annotated
  // REQUIRES(s->mu).
  struct QueueState {
    QueueOptions options;
    bool started = true;
    // eid -> element. The ordered index drives dequeue order.
    std::unordered_map<ElementId, InternalElement> elements;
    // (inverted priority, seq) -> eid.
    std::map<std::pair<uint32_t, uint64_t>, ElementId> order;
    std::unordered_map<std::string, RegistrationRecord> registrations;
    CondVar cv;       // Waits on the owning Shard's mu.
    int waiters = 0;  // Blocked dequeuers (pins the queue against destroy).
  };

  // An element a pending transaction holds locked: a dequeue (returned
  // to the queue with abort bookkeeping if the txn aborts) or a kill
  // reservation (simply unlocked if the txn aborts).
  struct LockedRef {
    std::string queue;
    ElementId eid = kInvalidElementId;
    bool is_kill = false;
  };

  struct PendingTxn {
    std::vector<MicroOp> ops;
    std::vector<LockedRef> locked;
    bool prepared = false;
  };

  // One shard: a slice of the queue namespace with its own lock, WAL
  // stream, pending-transaction table, and triggers. Defined in the
  // .cc. Each shard is a ResourceManager in its own right; the
  // TransactionManager sees one participant per involved shard.
  struct Shard;
  // Per-shard recovery scratch (leftover prepared transactions and
  // commit-record ids seen), merged after the parallel replay.
  struct ShardRecovery;
  // A reserved replication-delivery slot on one shard (sink calls must
  // arrive in apply order; see DeliverReplica).
  struct ReplTicket {
    Shard* shard = nullptr;
    uint64_t ticket = 0;
  };

  // ---- helpers --------------------------------------------------------
  size_t ShardIndexOf(const std::string& queue) const;
  Shard* ShardFor(const std::string& queue);
  const Shard* ShardFor(const std::string& queue) const;
  std::string ResolveRedirect(const std::string& queue) const;
  // Applies a committed micro-op to shard `s` (its lock held). Returns
  // queues whose waiters should be notified / alerts to fire.
  void ApplyMicroOp(Shard* s, const MicroOp& op,
                    std::vector<std::string>* notify_queues);
  // Serialization.
  static void EncodeMicroOp(const MicroOp& op, std::string* out);
  static Status DecodeMicroOp(Slice* input, MicroOp* op);
  void EncodeRecord(unsigned char type, txn::TxnId id,
                    const std::vector<MicroOp>& ops, std::string* out) const;
  // Logs and applies an auto-committed op list: single-shard op lists
  // take one shard lock and append one record; op lists spanning
  // shards go through CommitSpanning. Takes shard locks itself.
  Status AutoCommit(std::vector<MicroOp> ops);
  // A commit staged under one shard lock, handed off to FinishCommit
  // once the lock is released: the WAL writer + offset to sync, the
  // record bytes for the replication sink, the queues to notify, and
  // the reserved replication tickets.
  struct CommitHandoff {
    bool log = false;
    std::shared_ptr<wal::LogWriter> wal;
    uint64_t end_offset = 0;
    std::string record;
    bool replicate = false;
    std::vector<std::string> notify;
    std::vector<ReplTicket> tickets;
  };
  // Single-shard auto-commit. `record` may carry pre-encoded bytes to
  // log verbatim (replicated records); empty means encode from `ops`.
  Status CommitOnShard(Shard* s, std::vector<MicroOp> ops,
                       std::string record, bool evaluate_reactions);
  // First half of a single-shard commit, run under the shard lock
  // (REQUIRES(s->mu) on the definition): appends the record, applies
  // the ops, reserves the replication ticket. The caller releases the
  // lock and passes `out` to FinishCommit. On error nothing was
  // applied and `out` needs no cleanup. The dequeue/kill paths use
  // this directly so decide-and-commit stays atomic under the lock.
  Status StageCommitLocked(Shard* s, std::vector<MicroOp> ops,
                           std::string record, CommitHandoff* out);
  // Second half: syncs the WAL, wakes waiters, delivers replication in
  // ticket order, fires reactions. Call with no shard locks held.
  Status FinishCommit(CommitHandoff h, bool evaluate_reactions);
  // Cross-shard auto-commit: prepares on every involved shard WAL
  // under an internal txn id, then commits everywhere with one
  // coordinator sync. Recovery resolves leftover prepares against the
  // union of commit records across shards, so the op list applies
  // atomically or not at all. `record` as in CommitOnShard.
  Status CommitSpanning(std::vector<MicroOp> ops, std::string record,
                        bool evaluate_reactions);
  // Buffers ops under txn `t` and enlists each involved shard with the
  // transaction. Takes shard locks itself.
  void BufferTxnOps(txn::Transaction* t, std::vector<MicroOp> ops,
                    std::vector<LockedRef> locked);
  // Core dequeue machinery shared by all dequeue flavors.
  Result<Element> DequeueInternal(txn::Transaction* t,
                                  const std::string& queue,
                                  const Selector* selector,
                                  const std::string& registrant,
                                  const Slice& tag, uint64_t timeout_micros);
  // Picks the next visible element. Requires the owning shard's lock.
  // Returns nullptr when none; sets *head_locked when strict-FIFO
  // found a locked head.
  InternalElement* PickVisible(QueueState* qs, const Selector* selector,
                               bool* head_locked);
  // Wakes blocked dequeuers on the named queues (groups by shard; call
  // without shard locks).
  void NotifyWaiters(const std::vector<std::string>& notify_queues);
  // Fires alerts & triggers for the named queues (replicated applies
  // don't — the primary's reactions arrive as ordinary records). Call
  // without shard locks, after the commit's replication delivery, so a
  // trigger's own replication can't overtake the record that fired it.
  void EvaluateReactions(const std::vector<std::string>& notify_queues);
  // Encodes `ops` for the replication sink (empty when none).
  std::string MaybeEncodeReplication(const std::vector<MicroOp>& ops) const;
  // Reserves the next delivery slot on `s` (its lock must be held, so
  // ticket order == apply order).
  ReplTicket AcquireReplTicket(Shard* s);
  // Delivers one record to the sink in ticket order (waits for earlier
  // tickets on every involved shard, calls the sink, releases the
  // slots). Call without shard locks. Consumes the tickets even when
  // `record` is empty or the sink fails.
  Status DeliverReplica(const std::vector<ReplTicket>& tickets,
                        const std::string& record);
  MicroOp MakeLastOpMicro(const std::string& queue,
                          const std::string& registrant, OpType type,
                          const Slice& tag, const Element& meta,
                          std::shared_ptr<const std::string> payload) const;
  void BuildShards(size_t count);
  Status OpenShardWal(Shard* s, uint64_t generation);
  Status LoadShardCheckpoint(Shard* s, uint64_t generation);
  Status ReplayShardWal(Shard* s, uint64_t generation, ShardRecovery* rec);
  Status RecoverShard(Shard* s, uint64_t generation, ShardRecovery* rec);
  std::string WalPath(uint64_t g, size_t shard) const;
  std::string CheckpointPath(uint64_t g, size_t shard) const;
  std::string CurrentPath() const;
  void EncodeShardSnapshot(const Shard& s, std::string* out) const;
  Status DecodeShardSnapshot(Shard* s, Slice input);
  // Removes a retired/orphaned file, logging and counting failures.
  void RemoveRetiredFile(const std::string& path);
  // Lifts the eid counter to at least `floor` (replicated records,
  // recovery watermarks).
  void AdvanceEid(uint64_t floor);

  const std::string name_;
  RepositoryOptions options_;
  bool opened_ = false;

  // The shards. Sized by the constructor from options_.shards and
  // re-sized by Open() when a durable directory's on-disk count
  // differs; immutable afterwards, so lock-free to index.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Atomic so commit records can be encoded outside shard locks (a
  // record's eid watermark only has to cover the eids of its own ops,
  // which are always allocated before the record is encoded) and so
  // eids stay unique across shards without a shared lock.
  std::atomic<uint64_t> next_eid_{1};
  // Serializes Checkpoint() and guards generation_ (Open() holds it
  // for its whole durable path, so recovery reads are covered too).
  // Lock order: checkpoint_mu_ before any Shard::mu.
  Mutex checkpoint_mu_;
  uint64_t generation_ GUARDED_BY(checkpoint_mu_) = 0;

  // Highest replication sequence applied (see applied_repl_seq()).
  // Advanced by ApplyMicroOp(kSetReplWatermark) with a CAS-max, read
  // lock-free for dedup.
  std::atomic<uint64_t> applied_repl_seq_{0};

  std::atomic<uint64_t> enqueues_{0};
  std::atomic<uint64_t> dequeues_{0};
  std::atomic<uint64_t> error_moves_{0};
  std::atomic<uint64_t> replication_failures_{0};
  std::atomic<uint64_t> remove_failures_{0};
  std::atomic<uint64_t> gc_removed_{0};
};

}  // namespace rrq::queue

#endif  // RRQ_QUEUE_QUEUE_REPOSITORY_H_
