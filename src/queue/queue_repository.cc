#include "queue/queue_repository.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "env/gc.h"
#include "util/coding.h"
#include "util/logging.h"
#include "wal/log_reader.h"

namespace rrq::queue {

namespace {

// WAL record types (same pattern as the KV store).
constexpr unsigned char kRecPrepare = 1;
constexpr unsigned char kRecCommit = 2;
constexpr unsigned char kRecCommitted = 3;  // Fused auto-commit / 1PC.

constexpr int kMaxRedirectHops = 4;

// Internal cross-shard auto-commits (redirected tagged enqueues,
// cross-shard error-queue moves, replicated records spanning shards)
// run the prepare/commit protocol under an id drawn from the eid
// counter with this bit set. The bit keeps internal ids out of the
// TransactionManager id space (epoch << 48 | counter never reaches bit
// 63 until epoch 0x8000) so recovery never consults the in-doubt
// resolver for them: an internal prepare without a commit record on
// any shard is always a presumed abort.
constexpr txn::TxnId kInternalTxnBit = txn::TxnId{1} << 63;

size_t ResolveShardCount(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Persistent formats store enums as raw bytes; a corrupted or torn
// byte must surface as Corruption at decode time, never as an
// out-of-range enum value that downstream switches silently ignore.
Status DecodeOpType(uint8_t raw, OpType* out) {
  if (raw > static_cast<uint8_t>(OpType::kDequeue)) {
    return Status::Corruption("invalid registration op type " +
                              std::to_string(raw));
  }
  *out = static_cast<OpType>(raw);
  return Status::OK();
}

Status DecodeDequeuePolicy(uint8_t raw, DequeuePolicy* out) {
  if (raw > static_cast<uint8_t>(DequeuePolicy::kStrictFifo)) {
    return Status::Corruption("invalid dequeue policy " + std::to_string(raw));
  }
  *out = static_cast<DequeuePolicy>(raw);
  return Status::OK();
}

// Element wire encoding (the inverse of DecodeElement). The contents
// come from the shared payload when one is attached (live ops share
// the stored payload instead of copying it into the op); ops decoded
// from the WAL carry them inline in meta.contents.
void EncodeElementParts(const Element& meta,
                        const std::shared_ptr<const std::string>& payload,
                        std::string* out) {
  util::PutFixed64(out, meta.eid);
  util::PutVarint32(out, meta.priority);
  util::PutVarint32(out, meta.abort_count);
  util::PutLengthPrefixed(out, meta.abort_code);
  util::PutLengthPrefixed(out, payload != nullptr ? *payload : meta.contents);
}

Status DecodeElement(Slice* input, Element* e) {
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &e->eid));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->priority));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->abort_count));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->abort_code));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->contents));
  return Status::OK();
}

void EncodeQueueOptions(const QueueOptions& o, std::string* out) {
  util::PutVarint32(out, o.max_aborts);
  util::PutLengthPrefixed(out, o.error_queue);
  out->push_back(o.durable ? 1 : 0);
  out->push_back(static_cast<char>(o.policy));
  util::PutVarint64(out, o.alert_threshold);
  util::PutLengthPrefixed(out, o.redirect_to);
}

Status DecodeQueueOptions(Slice* input, QueueOptions* o) {
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &o->max_aborts));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &o->error_queue));
  if (input->size() < 2) return Status::Corruption("truncated queue options");
  o->durable = (*input)[0] != 0;
  RRQ_RETURN_IF_ERROR(
      DecodeDequeuePolicy(static_cast<uint8_t>((*input)[1]), &o->policy));
  input->remove_prefix(2);
  uint64_t threshold = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(input, &threshold));
  o->alert_threshold = static_cast<size_t>(threshold);
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &o->redirect_to));
  return Status::OK();
}

void EncodeTrigger(const TriggerSpec& t, std::string* out) {
  util::PutLengthPrefixed(out, t.watched_queue);
  util::PutVarint64(out, t.remaining);
  util::PutLengthPrefixed(out, t.target_queue);
  util::PutLengthPrefixed(out, t.contents);
  util::PutVarint32(out, t.priority);
}

Status DecodeTrigger(Slice* input, TriggerSpec* t) {
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &t->watched_queue));
  RRQ_RETURN_IF_ERROR(util::GetVarint64(input, &t->remaining));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &t->target_queue));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &t->contents));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &t->priority));
  return Status::OK();
}

// Holds a dynamic set of shard mutexes for a lexical scope, locking in
// the order given (callers pass ascending shard order — the cross-shard
// protocol's lock order). A dynamic lock set is invisible to thread
// safety analysis, so acquisition/release here is unannotated and every
// function that uses one is NO_THREAD_SAFETY_ANALYSIS.
class ShardLockSet {
 public:
  ShardLockSet() = default;
  ShardLockSet(const ShardLockSet&) = delete;
  ShardLockSet& operator=(const ShardLockSet&) = delete;
  ~ShardLockSet() NO_THREAD_SAFETY_ANALYSIS { Unlock(); }

  void Add(Mutex* mu) NO_THREAD_SAFETY_ANALYSIS {
    mu->Lock();
    mus_.push_back(mu);
  }
  // Early release (before re-taking any of the same locks).
  void Unlock() NO_THREAD_SAFETY_ANALYSIS {
    for (Mutex* mu : mus_) mu->Unlock();
    mus_.clear();
  }

 private:
  std::vector<Mutex*> mus_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Shard

// One shard of the repository: a slice of the queue namespace with its
// own lock, WAL stream (and therefore its own group-commit leader),
// pending-transaction table, and triggers. The shard is the
// ResourceManager transactions enlist: a transaction spanning shards
// has one participant per shard and the TransactionManager runs real
// 2PC across them; a single-shard transaction keeps the fused
// one-phase fast path.
struct QueueRepository::Shard final : public txn::ResourceManager {
  Shard(QueueRepository* repo, size_t index)
      : repo(repo),
        index(index),
        rm_label(repo->name_ + "/" + std::to_string(index)) {}

  QueueRepository* const repo;
  const size_t index;
  const std::string rm_label;

  // Lock order across shards: ascending shard index (CommitSpanning,
  // Checkpoint). repl_mu nests inside mu (AcquireReplTicket) and is
  // never held while taking mu.
  mutable Mutex mu;
  std::map<std::string, std::unique_ptr<QueueState>> queues GUARDED_BY(mu);
  std::unordered_map<txn::TxnId, PendingTxn> txns GUARDED_BY(mu);
  std::vector<TriggerSpec> triggers GUARDED_BY(mu);
  uint64_t next_seq GUARDED_BY(mu) = 1;
  // shared_ptr so a committer can keep syncing the writer it appended
  // to after releasing `mu`, even if a concurrent Checkpoint() swaps
  // in the next generation's writer meanwhile.
  std::shared_ptr<wal::LogWriter> wal GUARDED_BY(mu);

  // Replication delivery slots: tickets are taken under `mu` at apply
  // time and the sink is called in ticket order, so a backup sees this
  // shard's records in exactly the order they applied here.
  Mutex repl_mu ACQUIRED_AFTER(mu);
  CondVar repl_cv;
  uint64_t repl_next GUARDED_BY(repl_mu) = 0;
  uint64_t repl_done GUARDED_BY(repl_mu) = 0;

  QueueState* Find(const std::string& queue) REQUIRES(mu) {
    auto it = queues.find(queue);
    return it == queues.end() ? nullptr : it->second.get();
  }
  const QueueState* Find(const std::string& queue) const REQUIRES(mu) {
    auto it = queues.find(queue);
    return it == queues.end() ? nullptr : it->second.get();
  }

  // Whether any micro-op touches a durable queue (or repo metadata).
  bool NeedsLogging(const std::vector<MicroOp>& ops) const REQUIRES(mu) {
    if (wal == nullptr) return false;
    for (const MicroOp& op : ops) {
      switch (op.kind) {
        case MicroOp::kInsert:
        case MicroOp::kRemove:
        case MicroOp::kBumpAbortCount: {
          const QueueState* qs = Find(op.queue);
          if (qs == nullptr || qs->options.durable) return true;
          break;  // Element traffic on a volatile queue: no logging.
        }
        default:
          return true;  // Metadata, registrations, tags: always durable.
      }
    }
    return false;
  }

  bool HasTxn(txn::TxnId id) const EXCLUDES(mu) {
    MutexLock guard(mu);
    return txns.count(id) > 0;
  }

  // ---- txn::ResourceManager (bodies below, after the repo helpers) ----
  std::string_view rm_name() const override { return rm_label; }
  Status Prepare(txn::TxnId id) override;
  Status CommitTxn(txn::TxnId id) override;
  void AbortTxn(txn::TxnId id) override;
  Status PrepareAndCommit(txn::TxnId id) override;
};

// Per-shard recovery scratch: leftover prepared transactions in WAL
// order, and every commit-record id seen (merged across shards to
// resolve cross-shard internal commits atomically).
struct QueueRepository::ShardRecovery {
  std::vector<txn::TxnId> prepared_order;
  std::unordered_map<txn::TxnId, std::vector<MicroOp>> prepared;
  std::unordered_set<txn::TxnId> committed;
};

QueueRepository::QueueRepository(std::string name, RepositoryOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  BuildShards(ResolveShardCount(options_.shards));
}

QueueRepository::~QueueRepository() = default;

void QueueRepository::BuildShards(size_t count) {
  if (count == 0) count = 1;
  shards_.clear();
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(this, i));
  }
}

size_t QueueRepository::ShardIndexOf(const std::string& queue) const {
  if (shards_.size() <= 1) return 0;
  // FNV-1a: stable across processes and standard libraries, so a queue
  // recovers onto the same shard (and the same WAL stream) that logged
  // it. std::hash carries no such guarantee.
  uint64_t h = 1469598103934665603ull;
  for (const char c : queue) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h % shards_.size();
}

QueueRepository::Shard* QueueRepository::ShardFor(const std::string& queue) {
  return shards_[ShardIndexOf(queue)].get();
}

const QueueRepository::Shard* QueueRepository::ShardFor(
    const std::string& queue) const {
  return shards_[ShardIndexOf(queue)].get();
}

std::string QueueRepository::WalPath(uint64_t g, size_t shard) const {
  std::string path = options_.dir + "/WAL-" + std::to_string(g);
  // Single-shard repositories keep the pre-sharding file names, so
  // their directories stay byte-compatible in both directions.
  if (shards_.size() > 1) path += "-" + std::to_string(shard);
  return path;
}
std::string QueueRepository::CheckpointPath(uint64_t g, size_t shard) const {
  std::string path = options_.dir + "/CHECKPOINT-" + std::to_string(g);
  if (shards_.size() > 1) path += "-" + std::to_string(shard);
  return path;
}
std::string QueueRepository::CurrentPath() const {
  return options_.dir + "/CURRENT";
}

// ---------------------------------------------------------------------------
// Micro-op serialization

void QueueRepository::EncodeMicroOp(const MicroOp& op, std::string* out) {
  out->push_back(static_cast<char>(op.kind));
  util::PutLengthPrefixed(out, op.queue);
  switch (op.kind) {
    case MicroOp::kCreateQueue:
      EncodeQueueOptions(op.qoptions, out);
      break;
    case MicroOp::kDestroyQueue:
    case MicroOp::kStartQueue:
    case MicroOp::kStopQueue:
      break;
    case MicroOp::kRegister:
      util::PutLengthPrefixed(out, op.registrant);
      out->push_back(op.stable ? 1 : 0);
      break;
    case MicroOp::kDeregister:
      util::PutLengthPrefixed(out, op.registrant);
      break;
    case MicroOp::kInsert:
      EncodeElementParts(op.element, op.payload, out);
      break;
    case MicroOp::kRemove:
    case MicroOp::kBumpAbortCount:
    case MicroOp::kSetReplWatermark:
      util::PutFixed64(out, op.element.eid);
      break;
    case MicroOp::kSetLastOp:
      util::PutLengthPrefixed(out, op.registrant);
      out->push_back(static_cast<char>(op.op_type));
      util::PutLengthPrefixed(out, op.tag);
      EncodeElementParts(op.element, op.payload, out);
      break;
    case MicroOp::kSetTrigger:
      EncodeTrigger(op.trigger, out);
      break;
    case MicroOp::kClearTrigger:
      EncodeTrigger(op.trigger, out);
      break;
  }
}

Status QueueRepository::DecodeMicroOp(Slice* input, MicroOp* op) {
  if (input->empty()) return Status::Corruption("truncated micro-op");
  op->kind = static_cast<MicroOp::Kind>((*input)[0]);
  input->remove_prefix(1);
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->queue));
  switch (op->kind) {
    case MicroOp::kCreateQueue:
      return DecodeQueueOptions(input, &op->qoptions);
    case MicroOp::kDestroyQueue:
    case MicroOp::kStartQueue:
    case MicroOp::kStopQueue:
      return Status::OK();
    case MicroOp::kRegister: {
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->registrant));
      if (input->empty()) return Status::Corruption("truncated register op");
      op->stable = (*input)[0] != 0;
      input->remove_prefix(1);
      return Status::OK();
    }
    case MicroOp::kDeregister:
      return util::GetLengthPrefixedString(input, &op->registrant);
    case MicroOp::kInsert:
      return DecodeElement(input, &op->element);
    case MicroOp::kRemove:
    case MicroOp::kBumpAbortCount:
    case MicroOp::kSetReplWatermark:
      return util::GetFixed64(input, &op->element.eid);
    case MicroOp::kSetLastOp: {
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->registrant));
      if (input->empty()) return Status::Corruption("truncated last-op");
      RRQ_RETURN_IF_ERROR(
          DecodeOpType(static_cast<uint8_t>((*input)[0]), &op->op_type));
      input->remove_prefix(1);
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->tag));
      return DecodeElement(input, &op->element);
    }
    case MicroOp::kSetTrigger:
    case MicroOp::kClearTrigger:
      return DecodeTrigger(input, &op->trigger);
  }
  return Status::Corruption("unknown micro-op kind");
}

void QueueRepository::EncodeRecord(unsigned char type, txn::TxnId id,
                                   const std::vector<MicroOp>& ops,
                                   std::string* out) const {
  out->push_back(static_cast<char>(type));
  util::PutFixed64(out, id);
  util::PutFixed64(out, next_eid_.load(std::memory_order_relaxed));
  util::PutVarint64(out, ops.size());
  for (const MicroOp& op : ops) EncodeMicroOp(op, out);
}

// ---------------------------------------------------------------------------
// State access helpers

std::string QueueRepository::ResolveRedirect(const std::string& queue) const {
  std::string current = queue;
  for (int hop = 0; hop < kMaxRedirectHops; ++hop) {
    const Shard* s = ShardFor(current);
    std::string next;
    {
      MutexLock guard(s->mu);
      const QueueState* qs = s->Find(current);
      if (qs == nullptr || qs->options.redirect_to.empty()) return current;
      next = qs->options.redirect_to;  // Immutable after creation.
    }
    current = std::move(next);
  }
  return current;
}

void QueueRepository::AdvanceEid(uint64_t floor) {
  uint64_t cur = next_eid_.load(std::memory_order_relaxed);
  while (floor > cur &&
         !next_eid_.compare_exchange_weak(cur, floor,
                                          std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Applying committed micro-ops

void QueueRepository::ApplyMicroOp(Shard* s, const MicroOp& op,
                                   std::vector<std::string>* notify_queues)
    REQUIRES(s->mu) {
  switch (op.kind) {
    case MicroOp::kCreateQueue: {
      if (s->queues.count(op.queue) == 0) {
        auto qs = std::make_unique<QueueState>();
        qs->options = op.qoptions;
        s->queues[op.queue] = std::move(qs);
      }
      break;
    }
    case MicroOp::kDestroyQueue:
      s->queues.erase(op.queue);
      break;
    case MicroOp::kStartQueue: {
      QueueState* qs = s->Find(op.queue);
      if (qs != nullptr) qs->started = true;
      break;
    }
    case MicroOp::kStopQueue: {
      QueueState* qs = s->Find(op.queue);
      if (qs != nullptr) qs->started = false;
      break;
    }
    case MicroOp::kRegister: {
      QueueState* qs = s->Find(op.queue);
      if (qs != nullptr) {
        auto& reg = qs->registrations[op.registrant];  // Keeps existing last-op.
        reg.stable = op.stable;
      }
      break;
    }
    case MicroOp::kDeregister: {
      QueueState* qs = s->Find(op.queue);
      if (qs != nullptr) qs->registrations.erase(op.registrant);
      break;
    }
    case MicroOp::kInsert: {
      QueueState* qs = s->Find(op.queue);
      if (qs == nullptr) break;
      InternalElement ie;
      ie.meta = op.element;
      ie.meta.contents.clear();
      ie.payload = op.payload != nullptr
                       ? op.payload
                       : std::make_shared<const std::string>(
                             op.element.contents);
      ie.seq = s->next_seq++;
      const ElementId eid = ie.meta.eid;
      const uint32_t inv_priority = ~ie.meta.priority;
      qs->order[{inv_priority, ie.seq}] = eid;
      qs->elements[eid] = std::move(ie);
      if (notify_queues != nullptr) notify_queues->push_back(op.queue);
      break;
    }
    case MicroOp::kRemove: {
      QueueState* qs = s->Find(op.queue);
      if (qs == nullptr) break;
      auto it = qs->elements.find(op.element.eid);
      if (it != qs->elements.end()) {
        qs->order.erase({~it->second.meta.priority, it->second.seq});
        qs->elements.erase(it);
        // Strict-FIFO waiters blocked on a locked head must re-examine
        // the new head.
        if (notify_queues != nullptr) notify_queues->push_back(op.queue);
      }
      break;
    }
    case MicroOp::kBumpAbortCount: {
      QueueState* qs = s->Find(op.queue);
      if (qs == nullptr) break;
      auto it = qs->elements.find(op.element.eid);
      if (it != qs->elements.end()) {
        ++it->second.meta.abort_count;
        if (notify_queues != nullptr) notify_queues->push_back(op.queue);
      }
      break;
    }
    case MicroOp::kSetLastOp: {
      QueueState* qs = s->Find(op.queue);
      if (qs == nullptr) break;
      auto it = qs->registrations.find(op.registrant);
      if (it != qs->registrations.end() && it->second.stable) {
        it->second.last.type = op.op_type;
        it->second.last.eid = op.element.eid;
        it->second.last.tag = op.tag;
        it->second.last.meta = op.element;
        it->second.last.meta.contents.clear();
        it->second.last.payload =
            op.payload != nullptr ? op.payload
                                  : std::make_shared<const std::string>(
                                        op.element.contents);
      }
      break;
    }
    case MicroOp::kSetTrigger:
      s->triggers.push_back(op.trigger);
      break;
    case MicroOp::kSetReplWatermark: {
      uint64_t cur = applied_repl_seq_.load(std::memory_order_relaxed);
      while (op.element.eid > cur &&
             !applied_repl_seq_.compare_exchange_weak(
                 cur, op.element.eid, std::memory_order_release)) {
      }
      break;
    }
    case MicroOp::kClearTrigger: {
      auto it = std::find_if(s->triggers.begin(), s->triggers.end(),
                             [&op](const TriggerSpec& t) {
                               return t.watched_queue == op.trigger.watched_queue &&
                                      t.target_queue == op.trigger.target_queue;
                             });
      if (it != s->triggers.end()) s->triggers.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Commit plumbing

std::string QueueRepository::MaybeEncodeReplication(
    const std::vector<MicroOp>& ops) const {
  if (options_.replication_sink == nullptr || ops.empty()) return "";
  std::string record;
  EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
  return record;
}

QueueRepository::ReplTicket QueueRepository::AcquireReplTicket(Shard* s)
    REQUIRES(s->mu) {
  MutexLock guard(s->repl_mu);
  return ReplTicket{s, s->repl_next++};
}

Status QueueRepository::DeliverReplica(const std::vector<ReplTicket>& tickets,
                                       const std::string& record) {
  if (tickets.empty()) return Status::OK();
  // Wait for every earlier slot on every involved shard. Tickets for a
  // multi-shard record are taken while holding all its shard locks, so
  // any two deliveries sharing a shard have consistent relative order
  // on every shard they share — the ascending waits cannot cycle.
  for (const ReplTicket& t : tickets) {
    MutexLock lock(t.shard->repl_mu);
    while (t.shard->repl_done != t.ticket) {
      t.shard->repl_cv.Wait(t.shard->repl_mu);
    }
  }
  Status result = Status::OK();
  if (!record.empty()) {
    result = options_.replication_sink(record);
    if (!result.ok()) {
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (const ReplTicket& t : tickets) {
    {
      MutexLock guard(t.shard->repl_mu);
      ++t.shard->repl_done;
    }
    t.shard->repl_cv.SignalAll();
  }
  return result;
}

void QueueRepository::NotifyWaiters(
    const std::vector<std::string>& notify_queues) {
  for (const std::string& q : notify_queues) {
    Shard* s = ShardFor(q);
    MutexLock guard(s->mu);
    QueueState* qs = s->Find(q);
    if (qs != nullptr) qs->cv.SignalAll();
  }
}

void QueueRepository::EvaluateReactions(
    const std::vector<std::string>& notify_queues) {
  if (notify_queues.empty()) return;
  // Alerts and triggers are evaluated against committed depth, outside
  // the shard locks (they re-enter the public API).
  std::vector<std::pair<std::string, size_t>> alerts;
  std::vector<TriggerSpec> fired;
  for (const std::string& q : notify_queues) {
    Shard* s = ShardFor(q);
    MutexLock guard(s->mu);
    QueueState* qs = s->Find(q);
    if (qs == nullptr) continue;
    // Depth is O(queue) to compute; only pay for it when an alert or
    // trigger actually watches this queue.
    const bool has_alert = qs->options.alert_threshold != 0;
    bool has_trigger = false;
    for (const TriggerSpec& t : s->triggers) {
      if (t.watched_queue == q) {
        has_trigger = true;
        break;
      }
    }
    if (!has_alert && !has_trigger) continue;
    size_t depth = 0;
    for (const auto& [key, eid] : qs->order) {
      const auto& ie = qs->elements.at(eid);
      if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) ++depth;
    }
    if (has_alert && depth == qs->options.alert_threshold) {
      alerts.emplace_back(q, depth);
    }
    for (const TriggerSpec& t : s->triggers) {
      if (t.watched_queue == q && depth >= t.remaining) {
        fired.push_back(t);
      }
    }
  }
  for (const auto& [q, depth] : alerts) {
    if (options_.alert_callback) options_.alert_callback(q, depth);
  }
  for (const TriggerSpec& t : fired) {
    // Clear first (durably), then fire — a crash in between loses the
    // join request, which the installer can re-arm; firing twice would
    // violate exactly-once.
    MicroOp clear;
    clear.kind = MicroOp::kClearTrigger;
    clear.queue = t.watched_queue;
    clear.trigger = t;
    Status s = AutoCommit({clear});
    if (s.ok()) {
      Enqueue(nullptr, t.target_queue, t.contents, t.priority);
    }
  }
}

Status QueueRepository::StageCommitLocked(Shard* s, std::vector<MicroOp> ops,
                                          std::string record,
                                          CommitHandoff* out)
    REQUIRES(s->mu) {
  out->replicate = options_.replication_sink != nullptr && !ops.empty();
  out->log = s->NeedsLogging(ops);
  if (record.empty() && (out->log || out->replicate)) {
    EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
  }
  if (out->log) {
    out->wal = s->wal;
    RRQ_RETURN_IF_ERROR(out->wal->AddRecord(record, &out->end_offset));
  }
  for (const MicroOp& op : ops) ApplyMicroOp(s, op, &out->notify);
  if (out->replicate) out->tickets.push_back(AcquireReplTicket(s));
  out->record = std::move(record);
  return Status::OK();
}

Status QueueRepository::FinishCommit(CommitHandoff h,
                                     bool evaluate_reactions) {
  if (h.log && options_.sync_commits) {
    Status sync = h.wal->SyncTo(h.end_offset);
    if (!sync.ok()) {
      DeliverReplica(h.tickets, "");  // Consume the slot; nothing to send.
      return sync;
    }
  }
  // Replication delivery runs before waiter wakeup: under an ack-mode
  // sink a blocked dequeuer must not be woken into the commit's
  // effects until the backup holds the record, or it could act on
  // state that a failover would lose. Note the scope: this gates
  // *wakeup*, not visibility — the effects were published when the
  // shard lock dropped after StageCommitLocked, so a polling
  // (timeout=0) Dequeue or Depth can observe them before the ack.
  // (The commit itself already stands locally either way — the sink's
  // verdict is surfaced to the committer.)
  Status rs =
      DeliverReplica(h.tickets, h.replicate ? h.record : std::string());
  NotifyWaiters(h.notify);
  // Reactions fire after the replication delivery so a trigger's own
  // record cannot overtake (or deadlock behind) the record that fired
  // it.
  if (evaluate_reactions) EvaluateReactions(h.notify);
  return rs;
}

Status QueueRepository::CommitOnShard(Shard* s, std::vector<MicroOp> ops,
                                      std::string record,
                                      bool evaluate_reactions) {
  // Encode the record outside the shard lock — only the WAL append and
  // the in-memory apply need it. The eid watermark in the record is
  // safe to read here because every eid in `ops` was allocated before
  // this call. The replication sink reuses the same bytes.
  const bool replicate =
      options_.replication_sink != nullptr && !ops.empty();
  if (record.empty() && (options_.env != nullptr || replicate)) {
    EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
  }
  CommitHandoff h;
  {
    MutexLock lock(s->mu);
    RRQ_RETURN_IF_ERROR(
        StageCommitLocked(s, std::move(ops), std::move(record), &h));
  }
  return FinishCommit(std::move(h), evaluate_reactions);
}

// The lock set here is dynamic (every involved shard's mu, ascending),
// which is beyond the static analysis — the per-shard invariants are
// still enforced inside the REQUIRES-annotated helpers this calls via
// the gcc/TSan builds, but this function body itself is unchecked.
Status QueueRepository::CommitSpanning(std::vector<MicroOp> ops,
                                       std::string record,
                                       bool evaluate_reactions)
    NO_THREAD_SAFETY_ANALYSIS {
  const bool replicate =
      options_.replication_sink != nullptr && !ops.empty();
  if (record.empty() && (options_.env != nullptr || replicate)) {
    EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
  }
  // Partition by shard, preserving per-shard op order.
  std::map<size_t, std::vector<MicroOp>> by_shard;
  for (MicroOp& op : ops) {
    by_shard[ShardIndexOf(op.queue)].push_back(std::move(op));
  }
  if (by_shard.size() <= 1) {
    Shard* s =
        by_shard.empty() ? shards_[0].get() : shards_[by_shard.begin()->first].get();
    std::vector<MicroOp> sops;
    if (!by_shard.empty()) sops = std::move(by_shard.begin()->second);
    CommitHandoff h;
    {
      MutexLock lock(s->mu);
      RRQ_RETURN_IF_ERROR(
          StageCommitLocked(s, std::move(sops), std::move(record), &h));
    }
    return FinishCommit(std::move(h), evaluate_reactions);
  }

  struct Part {
    Shard* s = nullptr;
    std::vector<MicroOp> ops;
    bool log = false;
    std::shared_ptr<wal::LogWriter> wal;
    uint64_t end = 0;
  };
  std::vector<Part> parts;
  parts.reserve(by_shard.size());
  for (auto& [idx, sops] : by_shard) {
    Part part;
    part.s = shards_[idx].get();
    part.ops = std::move(sops);
    parts.push_back(std::move(part));
  }

  // The internal commit id. Drawing it from the eid counter guarantees
  // uniqueness against every id this repository will ever log (the
  // counter recovers past the WAL watermark); the high bit keeps it
  // out of the TransactionManager's id space.
  const txn::TxnId iid =
      kInternalTxnBit | next_eid_.fetch_add(1, std::memory_order_relaxed);

  auto erase_pending = [&parts, iid]() {
    for (Part& p : parts) {
      MutexLock guard(p.s->mu);
      p.s->txns.erase(iid);
    }
  };

  // Phase 1: register the pending ops and append a prepare record on
  // every involved shard, locks held in ascending shard order. The
  // pending-txn entry makes an interleaved Checkpoint() carry the
  // prepare into the new WAL generation.
  {
    ShardLockSet locks;
    for (Part& p : parts) locks.Add(&p.s->mu);
    for (Part& p : parts) {
      PendingTxn& pt = p.s->txns[iid];
      pt.ops = p.ops;
      pt.prepared = true;
      p.log = p.s->NeedsLogging(pt.ops);
      if (p.log) {
        std::string prep;
        EncodeRecord(kRecPrepare, iid, pt.ops, &prep);
        Status s = p.s->wal->AddRecord(prep, &p.end);
        if (!s.ok()) {
          locks.Unlock();
          erase_pending();
          return s;
        }
        p.wal = p.s->wal;
      }
    }
  }
  // Make every prepare durable before any commit record exists: a
  // recovered shard holding a commit record then implies every sibling
  // holds (at least) its prepare, so the global committed-id set
  // resolves the leftovers to COMMIT everywhere.
  if (options_.sync_commits) {
    for (Part& p : parts) {
      if (!p.log) continue;
      Status s = p.wal->SyncTo(p.end);
      if (!s.ok()) {
        erase_pending();
        return s;  // Nothing applied; replay presumed-aborts the id.
      }
    }
  }

  // Phase 2: under all involved shard locks, append the commit record
  // to every logging shard, apply, and take replication tickets. Only
  // the first (coordinator) commit record is synced: any later durable
  // record on a sibling shard's WAL implies its earlier commit record
  // is durable too (log durability is prefix-monotone), and if the
  // sibling's record is lost the global set from the coordinator still
  // commits the sibling's leftover prepare.
  std::string commit_rec;
  EncodeRecord(kRecCommit, iid, {}, &commit_rec);
  std::vector<std::string> notify;
  std::vector<ReplTicket> tickets;
  std::shared_ptr<wal::LogWriter> coord_wal;
  uint64_t coord_end = 0;
  Status first_error;  // Keep applying for memory consistency; surface later.
  {
    ShardLockSet locks;
    for (Part& p : parts) locks.Add(&p.s->mu);
    for (Part& p : parts) {
      std::vector<MicroOp> sops;
      auto it = p.s->txns.find(iid);
      if (it != p.s->txns.end()) {
        sops = std::move(it->second.ops);
        p.s->txns.erase(it);
      } else {
        sops = std::move(p.ops);
      }
      if (p.log) {
        // Re-fetch the writer: a checkpoint may have swapped it (the
        // new generation carries our prepare record).
        std::shared_ptr<wal::LogWriter> w = p.s->wal;
        uint64_t end = 0;
        Status s = w->AddRecord(commit_rec, &end);
        if (!s.ok() && first_error.ok()) first_error = s;
        if (s.ok() && coord_wal == nullptr) {
          coord_wal = std::move(w);
          coord_end = end;
        }
      }
      for (const MicroOp& op : sops) ApplyMicroOp(p.s, op, &notify);
      if (replicate) tickets.push_back(AcquireReplTicket(p.s));
    }
  }
  if (coord_wal != nullptr && options_.sync_commits) {
    Status s = coord_wal->SyncTo(coord_end);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  if (!first_error.ok()) {
    DeliverReplica(tickets, "");
    return first_error;
  }
  // Delivery precedes wakeup (see FinishCommit).
  Status rs = DeliverReplica(tickets, replicate ? record : std::string());
  NotifyWaiters(notify);
  if (evaluate_reactions) EvaluateReactions(notify);
  return rs;
}

Status QueueRepository::AutoCommit(std::vector<MicroOp> ops) {
  if (ops.empty()) return Status::OK();
  const size_t first = ShardIndexOf(ops[0].queue);
  bool multi = false;
  for (const MicroOp& op : ops) {
    if (ShardIndexOf(op.queue) != first) {
      multi = true;
      break;
    }
  }
  if (!multi) {
    return CommitOnShard(shards_[first].get(), std::move(ops), "", true);
  }
  return CommitSpanning(std::move(ops), "", true);
}

void QueueRepository::BufferTxnOps(txn::Transaction* t,
                                   std::vector<MicroOp> ops,
                                   std::vector<LockedRef> locked) {
  // Partition by shard and enlist each involved shard: the
  // TransactionManager sees one participant per shard and coordinates
  // cross-shard commits with its decision log (single-shard
  // transactions keep the fused one-phase fast path).
  std::map<size_t, std::pair<std::vector<MicroOp>, std::vector<LockedRef>>>
      by_shard;
  for (MicroOp& op : ops) {
    by_shard[ShardIndexOf(op.queue)].first.push_back(std::move(op));
  }
  for (LockedRef& l : locked) {
    by_shard[ShardIndexOf(l.queue)].second.push_back(std::move(l));
  }
  for (auto& [idx, part] : by_shard) {
    Shard* s = shards_[idx].get();
    {
      MutexLock guard(s->mu);
      PendingTxn& pt = s->txns[t->id()];
      for (MicroOp& op : part.first) pt.ops.push_back(std::move(op));
      for (LockedRef& l : part.second) pt.locked.push_back(std::move(l));
    }
    t->Enlist(s);
  }
}

// ---------------------------------------------------------------------------
// Shard as a 2PC participant

Status QueueRepository::Shard::Prepare(txn::TxnId id) {
  QueueRepository* r = repo;
  MutexLock lock(mu);
  auto it = txns.find(id);
  if (it == txns.end()) {
    // A transaction with no operations on this shard: trivially yes.
    txns[id].prepared = true;
    return Status::OK();
  }
  PendingTxn& pt = it->second;
  // Veto if any element we dequeued was killed out from under us (§7).
  // Kill reservations made by this transaction itself don't veto.
  for (const LockedRef& ref : pt.locked) {
    if (ref.is_kill) continue;
    QueueState* qs = Find(ref.queue);
    if (qs == nullptr) return Status::Cancelled("queue destroyed: " + ref.queue);
    auto eit = qs->elements.find(ref.eid);
    if (eit == qs->elements.end() || eit->second.killed) {
      return Status::Cancelled("element killed: " + std::to_string(ref.eid));
    }
  }
  const bool log = NeedsLogging(pt.ops);
  uint64_t end_offset = 0;
  std::shared_ptr<wal::LogWriter> w;
  if (log) {
    w = wal;
    std::string record;
    r->EncodeRecord(kRecPrepare, id, pt.ops, &record);
    RRQ_RETURN_IF_ERROR(w->AddRecord(record, &end_offset));
  }
  pt.prepared = true;
  lock.Unlock();
  if (log) return w->SyncTo(end_offset);  // A yes vote must be durable.
  return Status::OK();
}

Status QueueRepository::Shard::CommitTxn(txn::TxnId id) {
  QueueRepository* r = repo;
  // The commit record carries no ops; encode it before taking the lock.
  std::string record;
  if (r->options_.env != nullptr) {
    r->EncodeRecord(kRecCommit, id, {}, &record);
  }
  MutexLock lock(mu);
  auto it = txns.find(id);
  if (it == txns.end()) return Status::OK();  // No ops here.
  PendingTxn pt = std::move(it->second);
  txns.erase(it);
  if (!pt.prepared) {
    return Status::Internal("commit of unprepared transaction");
  }
  const bool log = NeedsLogging(pt.ops);
  uint64_t end_offset = 0;
  std::shared_ptr<wal::LogWriter> w;
  if (log) {
    w = wal;
    RRQ_RETURN_IF_ERROR(w->AddRecord(record, &end_offset));
  }
  std::vector<std::string> notify;
  for (const MicroOp& op : pt.ops) r->ApplyMicroOp(this, op, &notify);
  // Locked elements consumed by kRemove ops are gone; make sure any
  // still-live ones (defensive) are unlocked.
  for (const LockedRef& ref : pt.locked) {
    QueueState* qs = Find(ref.queue);
    if (qs == nullptr) continue;
    auto eit = qs->elements.find(ref.eid);
    if (eit != qs->elements.end() && eit->second.locked_by == id) {
      eit->second.locked_by = txn::kInvalidTxnId;
    }
  }
  const std::string replica = r->MaybeEncodeReplication(pt.ops);
  std::vector<ReplTicket> tickets;
  if (!replica.empty()) tickets.push_back(r->AcquireReplTicket(this));
  lock.Unlock();
  if (log && r->options_.sync_commits) {
    Status sync = w->SyncTo(end_offset);
    if (!sync.ok()) {
      r->DeliverReplica(tickets, "");
      return sync;
    }
  }
  // Delivery precedes wakeup (see FinishCommit).
  Status rs = r->DeliverReplica(tickets, replica);
  r->NotifyWaiters(notify);
  r->EvaluateReactions(notify);
  return rs;
}

Status QueueRepository::Shard::PrepareAndCommit(txn::TxnId id) {
  QueueRepository* r = repo;
  MutexLock lock(mu);
  auto it = txns.find(id);
  if (it == txns.end()) return Status::OK();
  PendingTxn& pt = it->second;
  for (const LockedRef& ref : pt.locked) {
    if (ref.is_kill) continue;
    QueueState* qs = Find(ref.queue);
    if (qs == nullptr) return Status::Cancelled("queue destroyed: " + ref.queue);
    auto eit = qs->elements.find(ref.eid);
    if (eit == qs->elements.end() || eit->second.killed) {
      return Status::Cancelled("element killed: " + std::to_string(ref.eid));
    }
  }
  PendingTxn done = std::move(pt);
  txns.erase(it);
  const bool log = NeedsLogging(done.ops);
  uint64_t end_offset = 0;
  std::shared_ptr<wal::LogWriter> w;
  if (log) {
    w = wal;
    std::string record;
    r->EncodeRecord(kRecCommitted, id, done.ops, &record);
    RRQ_RETURN_IF_ERROR(w->AddRecord(record, &end_offset));
  }
  std::vector<std::string> notify;
  for (const MicroOp& op : done.ops) r->ApplyMicroOp(this, op, &notify);
  for (const LockedRef& ref : done.locked) {
    QueueState* qs = Find(ref.queue);
    if (qs == nullptr) continue;
    auto eit = qs->elements.find(ref.eid);
    if (eit != qs->elements.end() && eit->second.locked_by == id) {
      eit->second.locked_by = txn::kInvalidTxnId;
    }
  }
  const std::string replica = r->MaybeEncodeReplication(done.ops);
  std::vector<ReplTicket> tickets;
  if (!replica.empty()) tickets.push_back(r->AcquireReplTicket(this));
  lock.Unlock();
  if (log && r->options_.sync_commits) {
    Status sync = w->SyncTo(end_offset);
    if (!sync.ok()) {
      r->DeliverReplica(tickets, "");
      return sync;
    }
  }
  // Delivery precedes wakeup (see FinishCommit).
  Status rs = r->DeliverReplica(tickets, replica);
  r->NotifyWaiters(notify);
  r->EvaluateReactions(notify);
  return rs;
}

void QueueRepository::Shard::AbortTxn(txn::TxnId id) {
  QueueRepository* r = repo;
  MutexLock lock(mu);
  auto it = txns.find(id);
  if (it == txns.end()) return;
  PendingTxn pt = std::move(it->second);
  txns.erase(it);

  // Abort side effects (§4.2): each element this transaction had
  // dequeued returns to its queue with an incremented abort count; on
  // the n-th abort it moves to the error queue instead. Killed
  // elements are already durably deleted. These effects are themselves
  // durable and are NOT undone by the abort — they auto-commit. An
  // error queue hashed to another shard cannot commit under this lock:
  // the element stays locked (invisible) here and the move runs
  // through the cross-shard protocol after we release it.
  std::vector<MicroOp> side_effects;
  std::vector<MicroOp> spanning_effects;
  for (const LockedRef& ref : pt.locked) {
    QueueState* qs = Find(ref.queue);
    if (qs == nullptr) continue;
    auto eit = qs->elements.find(ref.eid);
    if (eit == qs->elements.end()) continue;  // Killed & removed.
    InternalElement& ie = eit->second;
    if (ie.locked_by != id) continue;
    if (ref.is_kill) {
      // The kill was undone with the transaction: release the element
      // intact.
      ie.locked_by = txn::kInvalidTxnId;
      ie.killed = false;
      continue;
    }
    const uint32_t new_count = ie.meta.abort_count + 1;
    const QueueOptions& qopt = qs->options;
    if (!qopt.error_queue.empty() && new_count >= qopt.max_aborts) {
      // Move to the error queue (stable element identity, §10). The
      // payload is shared, not copied — only the metadata changes.
      Element moved = ie.meta;
      moved.abort_count = new_count;
      moved.abort_code = "abort limit reached";
      std::shared_ptr<const std::string> moved_payload = ie.payload;
      MicroOp create;
      create.kind = MicroOp::kCreateQueue;
      create.queue = qopt.error_queue;
      create.qoptions.durable = qopt.durable;
      create.qoptions.max_aborts = 0;  // Error queues don't cascade.
      MicroOp remove;
      remove.kind = MicroOp::kRemove;
      remove.queue = ref.queue;
      remove.element.eid = ref.eid;
      MicroOp insert;
      insert.kind = MicroOp::kInsert;
      insert.queue = qopt.error_queue;
      insert.element = std::move(moved);
      insert.payload = std::move(moved_payload);
      const bool cross_shard =
          r->ShardIndexOf(qopt.error_queue) != this->index;
      if (cross_shard) {
        // Leave the element locked so no dequeuer consumes it while
        // the move is in flight; the spanning kRemove deletes it.
        spanning_effects.push_back(std::move(create));
        spanning_effects.push_back(std::move(remove));
        spanning_effects.push_back(std::move(insert));
      } else {
        ie.locked_by = txn::kInvalidTxnId;
        if (Find(qopt.error_queue) == nullptr) {
          side_effects.push_back(std::move(create));
        }
        side_effects.push_back(std::move(remove));
        side_effects.push_back(std::move(insert));
      }
      r->error_moves_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ie.locked_by = txn::kInvalidTxnId;
      MicroOp bump;
      bump.kind = MicroOp::kBumpAbortCount;
      bump.queue = ref.queue;
      bump.element.eid = ref.eid;
      side_effects.push_back(std::move(bump));
    }
  }

  std::vector<std::string> notify;
  for (const LockedRef& ref : pt.locked) notify.push_back(ref.queue);
  const bool log = !side_effects.empty() && NeedsLogging(side_effects);
  uint64_t end_offset = 0;
  std::shared_ptr<wal::LogWriter> w;
  if (log) {
    w = wal;
    std::string record;
    r->EncodeRecord(kRecCommitted, txn::kInvalidTxnId, side_effects, &record);
    Status s = w->AddRecord(record, &end_offset);
    if (!s.ok()) {
      RRQ_LOG(kError) << r->name_ << ": abort side-effect logging failed: "
                      << s.ToString();
    }
  }
  for (const MicroOp& op : side_effects) r->ApplyMicroOp(this, op, &notify);
  const std::string replica = r->MaybeEncodeReplication(side_effects);
  std::vector<ReplTicket> tickets;
  if (!replica.empty()) tickets.push_back(r->AcquireReplTicket(this));
  lock.Unlock();
  if (log && r->options_.sync_commits) w->SyncTo(end_offset);
  r->DeliverReplica(tickets, replica);
  r->NotifyWaiters(notify);
  r->EvaluateReactions(notify);
  if (!spanning_effects.empty()) {
    Status s = r->CommitSpanning(std::move(spanning_effects), "", true);
    if (!s.ok()) {
      RRQ_LOG(kError) << r->name_ << ": cross-shard error-queue move failed: "
                      << s.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Repository facade as a ResourceManager

Status QueueRepository::Prepare(txn::TxnId id) {
  for (auto& s : shards_) {
    if (s->HasTxn(id)) RRQ_RETURN_IF_ERROR(s->Prepare(id));
  }
  return Status::OK();
}

Status QueueRepository::CommitTxn(txn::TxnId id) {
  for (auto& s : shards_) {
    if (s->HasTxn(id)) RRQ_RETURN_IF_ERROR(s->CommitTxn(id));
  }
  return Status::OK();
}

void QueueRepository::AbortTxn(txn::TxnId id) {
  for (auto& s : shards_) {
    if (s->HasTxn(id)) s->AbortTxn(id);
  }
}

Status QueueRepository::PrepareAndCommit(txn::TxnId id) {
  std::vector<Shard*> involved;
  for (auto& s : shards_) {
    if (s->HasTxn(id)) involved.push_back(s.get());
  }
  if (involved.empty()) return Status::OK();
  if (involved.size() == 1) return involved[0]->PrepareAndCommit(id);
  // Spanning one-phase request: run real two-phase internally. Durable
  // prepares on every shard before the first commit record mean
  // recovery's global committed-id set resolves a mid-commit crash
  // atomically.
  for (Shard* s : involved) RRQ_RETURN_IF_ERROR(s->Prepare(id));
  for (Shard* s : involved) RRQ_RETURN_IF_ERROR(s->CommitTxn(id));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Replication

Status QueueRepository::ApplyReplicatedRecord(const Slice& record) {
  return ApplyReplicatedRecord(record, /*seq=*/0);
}

Status QueueRepository::ApplyReplicatedRecord(const Slice& record,
                                              uint64_t seq) {
  Slice input = record;
  if (input.empty()) return Status::InvalidArgument("empty record");
  input.remove_prefix(1);  // Record type (always a committed set).
  uint64_t id = 0;
  uint64_t eid_watermark = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &id));
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid_watermark));
  uint64_t op_count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &op_count));
  std::vector<MicroOp> ops;
  ops.reserve(static_cast<size_t>(op_count));
  for (uint64_t i = 0; i < op_count; ++i) {
    MicroOp op;
    RRQ_RETURN_IF_ERROR(DecodeMicroOp(&input, &op));
    ops.push_back(std::move(op));
  }
  // Only fully-decoded records mutate state (AdvanceEid included):
  // a truncated or bit-flipped record must leave the backup unchanged.
  AdvanceEid(eid_watermark);
  if (seq != 0) {
    // Duplicate delivery (sender retry after a lost ack, or a restart
    // resending from an older watermark): already applied, ack again.
    if (seq <= applied_repl_seq()) return Status::OK();
    // The watermark advances atomically with the record's effects by
    // riding in the record as a micro-op, which forces re-encoding
    // (the logged bytes must contain the marker so recovery replays
    // it). A watermark-only record (no ops) is the snapshot-end
    // barrier.
    MicroOp marker;
    marker.kind = MicroOp::kSetReplWatermark;
    marker.queue = ops.empty() ? "" : ops[0].queue;
    marker.element.eid = seq;
    ops.push_back(std::move(marker));
    std::string rerecord;
    EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &rerecord);
    const size_t first = ShardIndexOf(ops[0].queue);
    bool multi = false;
    for (const MicroOp& op : ops) {
      if (ShardIndexOf(op.queue) != first) {
        multi = true;
        break;
      }
    }
    if (!multi) {
      return CommitOnShard(shards_[first].get(), std::move(ops),
                           std::move(rerecord),
                           /*evaluate_reactions=*/false);
    }
    return CommitSpanning(std::move(ops), std::move(rerecord),
                          /*evaluate_reactions=*/false);
  }
  if (ops.empty()) return Status::OK();
  // Durable backups log the record verbatim when it lands on one local
  // shard (it is already a valid committed record carrying the
  // primary's eid watermark); a record spanning local shards goes
  // through the cross-shard protocol so a backup crash can't apply it
  // partially. Chained sinks receive the original bytes either way.
  // Reactions don't fire: the primary's reactions arrive as ordinary
  // records.
  const size_t first = ShardIndexOf(ops[0].queue);
  bool multi = false;
  for (const MicroOp& op : ops) {
    if (ShardIndexOf(op.queue) != first) {
      multi = true;
      break;
    }
  }
  if (!multi) {
    return CommitOnShard(shards_[first].get(), std::move(ops),
                         record.ToString(), /*evaluate_reactions=*/false);
  }
  return CommitSpanning(std::move(ops), record.ToString(),
                        /*evaluate_reactions=*/false);
}

Status QueueRepository::CommitReplWatermark(uint64_t seq) {
  return ApplyReplicatedRecord(NoopReplicationRecord(), seq);
}

std::string QueueRepository::NoopReplicationRecord() const {
  std::string record;
  EncodeRecord(kRecCommitted, txn::kInvalidTxnId, {}, &record);
  return record;
}

Status QueueRepository::CaptureReplicaSnapshot(
    const std::function<void()>& at_barrier,
    std::vector<std::string>* records) NO_THREAD_SAFETY_ANALYSIS {
  records->clear();
  // Same order as Checkpoint(): checkpoint_mu_ first (so a concurrent
  // checkpoint can't interleave), then every shard lock ascending.
  MutexLock ckpt_guard(checkpoint_mu_);
  ShardLockSet locks;
  for (auto& shard : shards_) locks.Add(&shard->mu);
  // Drain in-flight sink deliveries: every commit that applied before
  // we took the locks has finished its replication hand-off, so state
  // captured here is exactly "everything at or before the barrier".
  // Deliveries only need repl_mu, so they complete while we hold mu;
  // new tickets can't appear (they are taken under mu).
  for (auto& shard : shards_) {
    MutexLock guard(shard->repl_mu);
    while (shard->repl_done != shard->repl_next) {
      shard->repl_cv.Wait(shard->repl_mu);
    }
  }
  if (at_barrier) at_barrier();
  constexpr size_t kElementsPerRecord = 256;
  for (auto& shard : shards_) {
    for (const auto& [name, qs] : shard->queues) {
      // One metadata record per queue: creation, started flag,
      // registrations and their saved last-ops.
      std::vector<MicroOp> meta;
      {
        MicroOp create;
        create.kind = MicroOp::kCreateQueue;
        create.queue = name;
        create.qoptions = qs->options;
        meta.push_back(std::move(create));
      }
      if (!qs->started) {
        MicroOp stop;
        stop.kind = MicroOp::kStopQueue;
        stop.queue = name;
        meta.push_back(std::move(stop));
      }
      for (const auto& [registrant, reg] : qs->registrations) {
        MicroOp r;
        r.kind = MicroOp::kRegister;
        r.queue = name;
        r.registrant = registrant;
        r.stable = reg.stable;
        meta.push_back(std::move(r));
        if (reg.stable && reg.last.type != OpType::kNone) {
          MicroOp last;
          last.kind = MicroOp::kSetLastOp;
          last.queue = name;
          last.registrant = registrant;
          last.op_type = reg.last.type;
          last.tag = reg.last.tag;
          last.element = reg.last.meta;
          last.element.eid = reg.last.eid;
          last.payload = reg.last.payload;
          meta.push_back(std::move(last));
        }
      }
      records->emplace_back();
      EncodeRecord(kRecCommitted, txn::kInvalidTxnId, meta, &records->back());
      // Elements in dequeue order, chunked. Volatile-queue elements
      // ship too: the backup mirrors live state, not just the durable
      // subset (its own durability policy still honors the queue's
      // options because volatile inserts skip the backup's WAL).
      std::vector<MicroOp> chunk;
      for (const auto& [key, eid] : qs->order) {
        const InternalElement& ie = qs->elements.at(eid);
        MicroOp ins;
        ins.kind = MicroOp::kInsert;
        ins.queue = name;
        ins.element = ie.meta;
        ins.payload = ie.payload;
        chunk.push_back(std::move(ins));
        if (chunk.size() >= kElementsPerRecord) {
          records->emplace_back();
          EncodeRecord(kRecCommitted, txn::kInvalidTxnId, chunk,
                       &records->back());
          chunk.clear();
        }
      }
      if (!chunk.empty()) {
        records->emplace_back();
        EncodeRecord(kRecCommitted, txn::kInvalidTxnId, chunk,
                     &records->back());
      }
    }
    if (!shard->triggers.empty()) {
      std::vector<MicroOp> trigs;
      for (const TriggerSpec& t : shard->triggers) {
        MicroOp op;
        op.kind = MicroOp::kSetTrigger;
        op.queue = t.watched_queue;
        op.trigger = t;
        trigs.push_back(std::move(op));
      }
      records->emplace_back();
      EncodeRecord(kRecCommitted, txn::kInvalidTxnId, trigs,
                   &records->back());
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Data definition

Status QueueRepository::CreateQueue(const std::string& queue,
                                    QueueOptions qoptions) {
  if (queue.empty()) return Status::InvalidArgument("empty queue name");
  {
    Shard* s = ShardFor(queue);
    MutexLock guard(s->mu);
    if (s->queues.count(queue) > 0) {
      return Status::AlreadyExists("queue exists: " + queue);
    }
  }
  MicroOp op;
  op.kind = MicroOp::kCreateQueue;
  op.queue = queue;
  op.qoptions = std::move(qoptions);
  return AutoCommit({std::move(op)});
}

Status QueueRepository::DestroyQueue(const std::string& queue) {
  {
    Shard* s = ShardFor(queue);
    MutexLock guard(s->mu);
    QueueState* qs = s->Find(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    if (qs->waiters > 0) {
      return Status::Busy("queue has blocked dequeuers: " + queue);
    }
    for (const auto& [eid, ie] : qs->elements) {
      if (ie.locked_by != txn::kInvalidTxnId) {
        return Status::Busy("queue has in-flight dequeues: " + queue);
      }
    }
  }
  MicroOp op;
  op.kind = MicroOp::kDestroyQueue;
  op.queue = queue;
  return AutoCommit({std::move(op)});
}

Status QueueRepository::StartQueue(const std::string& queue) {
  MicroOp op;
  op.kind = MicroOp::kStartQueue;
  op.queue = queue;
  {
    Shard* s = ShardFor(queue);
    MutexLock guard(s->mu);
    if (s->Find(queue) == nullptr) {
      return Status::NotFound("no such queue: " + queue);
    }
  }
  return AutoCommit({std::move(op)});
}

Status QueueRepository::StopQueue(const std::string& queue) {
  MicroOp op;
  op.kind = MicroOp::kStopQueue;
  op.queue = queue;
  {
    Shard* s = ShardFor(queue);
    MutexLock guard(s->mu);
    if (s->Find(queue) == nullptr) {
      return Status::NotFound("no such queue: " + queue);
    }
  }
  return AutoCommit({std::move(op)});
}

bool QueueRepository::QueueExists(const std::string& queue) const {
  const Shard* s = ShardFor(queue);
  MutexLock guard(s->mu);
  return s->Find(queue) != nullptr;
}

// ---------------------------------------------------------------------------
// Registration

Result<RegistrationInfo> QueueRepository::Register(
    const std::string& queue, const std::string& registrant, bool stable) {
  RegistrationInfo info;
  std::shared_ptr<const std::string> last_payload;
  {
    Shard* s = ShardFor(queue);
    MutexLock guard(s->mu);
    QueueState* qs = s->Find(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    auto it = qs->registrations.find(registrant);
    if (it != qs->registrations.end()) {
      // Re-registration after a failure: hand back the stable last-op
      // record (§4.3). Only the payload refcount is touched under the
      // shard lock; the byte copy happens below, after unlocking.
      info.was_registered = true;
      info.last_op = it->second.last.type;
      info.last_eid = it->second.last.eid;
      info.last_tag = it->second.last.tag;
      last_payload = it->second.last.payload;
    }
  }
  if (info.was_registered) {
    if (last_payload != nullptr) info.last_element = *last_payload;
    return info;
  }
  MicroOp op;
  op.kind = MicroOp::kRegister;
  op.queue = queue;
  op.registrant = registrant;
  op.stable = stable;
  RRQ_RETURN_IF_ERROR(AutoCommit({std::move(op)}));
  return info;
}

Status QueueRepository::Deregister(const std::string& queue,
                                   const std::string& registrant) {
  {
    Shard* s = ShardFor(queue);
    MutexLock guard(s->mu);
    QueueState* qs = s->Find(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    if (qs->registrations.count(registrant) == 0) {
      return Status::NotFound("not registered: " + registrant);
    }
  }
  MicroOp op;
  op.kind = MicroOp::kDeregister;
  op.queue = queue;
  op.registrant = registrant;
  return AutoCommit({std::move(op)});
}

// ---------------------------------------------------------------------------
// Data manipulation

QueueRepository::MicroOp QueueRepository::MakeLastOpMicro(
    const std::string& queue, const std::string& registrant, OpType type,
    const Slice& tag, const Element& meta,
    std::shared_ptr<const std::string> payload) const {
  MicroOp op;
  op.kind = MicroOp::kSetLastOp;
  op.queue = queue;
  op.registrant = registrant;
  op.op_type = type;
  op.tag = tag.ToString();
  op.element = meta;
  op.payload = std::move(payload);
  return op;
}

Result<ElementId> QueueRepository::Enqueue(txn::Transaction* t,
                                           const std::string& queue,
                                           const Slice& contents,
                                           uint32_t priority,
                                           const std::string& registrant,
                                           const Slice& tag) {
  const std::string target = ResolveRedirect(queue);
  {
    Shard* s = ShardFor(target);
    MutexLock guard(s->mu);
    QueueState* qs = s->Find(target);
    if (qs == nullptr) return Status::NotFound("no such queue: " + target);
    if (!qs->started) {
      return Status::FailedPrecondition("queue stopped: " + target);
    }
  }
  if (!registrant.empty()) {
    // Tagged operations require a registration on the *named* queue —
    // which may live on a different shard than the redirect target.
    Shard* ns = ShardFor(queue);
    MutexLock guard(ns->mu);
    QueueState* named = ns->Find(queue);
    if (named == nullptr) {
      return Status::NotConnected("not registered: " + registrant);
    }
    auto rit = named->registrations.find(registrant);
    if (rit == named->registrations.end()) {
      return Status::NotConnected("not registered: " + registrant);
    }
    // Idempotent tagged enqueue: a resend (or a network-duplicated
    // one-way message) carrying the registrant's current tag is the
    // SAME logical request — acknowledge it without enqueuing again.
    // This is the dedup persistent registration makes possible; it
    // is what keeps Exactly-Once intact under message duplication.
    if (rit->second.stable && !tag.empty() &&
        rit->second.last.type == OpType::kEnqueue &&
        Slice(rit->second.last.tag) == tag) {
      return rit->second.last.eid;
    }
  }
  const ElementId eid = next_eid_.fetch_add(1, std::memory_order_relaxed);

  // The contents are copied exactly once, outside the shard locks, into
  // a shared immutable payload; the insert op, the last-op record, and
  // the stored element all reference the same bytes.
  std::vector<MicroOp> ops;
  MicroOp insert;
  insert.kind = MicroOp::kInsert;
  insert.queue = target;
  insert.element.eid = eid;
  insert.element.priority = priority;
  insert.payload = std::make_shared<const std::string>(contents.ToString());
  ops.push_back(insert);
  if (!registrant.empty()) {
    ops.push_back(MakeLastOpMicro(queue, registrant, OpType::kEnqueue, tag,
                                  insert.element, insert.payload));
  }
  enqueues_.fetch_add(1, std::memory_order_relaxed);
  if (t == nullptr) {
    RRQ_RETURN_IF_ERROR(AutoCommit(std::move(ops)));
  } else {
    BufferTxnOps(t, std::move(ops), {});
  }
  return eid;
}

QueueRepository::InternalElement* QueueRepository::PickVisible(
    QueueState* qs, const Selector* selector, bool* head_locked) {
  *head_locked = false;
  if (qs->options.policy == DequeuePolicy::kStrictFifo) {
    // Strict: only the head is eligible; a locked head blocks.
    auto it = qs->order.begin();
    if (it == qs->order.end()) return nullptr;
    InternalElement& ie = qs->elements.at(it->second);
    if (ie.locked_by != txn::kInvalidTxnId || ie.killed) {
      *head_locked = true;
      return nullptr;
    }
    return &ie;
  }
  // Skip-locked scan in (priority, FIFO) order.
  if (selector == nullptr) {
    for (const auto& [key, eid] : qs->order) {
      InternalElement& ie = qs->elements.at(eid);
      if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) return &ie;
    }
    return nullptr;
  }
  // Content-based selection must show the selector full elements, so
  // this path (and only this path) materializes contents under the
  // shard lock.
  std::vector<InternalElement*> internal;
  for (const auto& [key, eid] : qs->order) {
    InternalElement& ie = qs->elements.at(eid);
    if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) {
      internal.push_back(&ie);
    }
  }
  if (internal.empty()) return nullptr;
  std::vector<Element> materialized;
  materialized.reserve(internal.size());
  std::vector<Element*> candidates;
  candidates.reserve(internal.size());
  for (InternalElement* ie : internal) {
    Element e = ie->meta;
    if (ie->payload != nullptr) e.contents = *ie->payload;
    materialized.push_back(std::move(e));
    candidates.push_back(&materialized.back());
  }
  size_t chosen = (*selector)(candidates);
  if (chosen >= internal.size()) return nullptr;
  return internal[chosen];
}

Result<Element> QueueRepository::DequeueInternal(
    txn::Transaction* t, const std::string& queue, const Selector* selector,
    const std::string& registrant, const Slice& tag,
    uint64_t timeout_micros) {
  Shard* s = ShardFor(queue);
  MutexLock lock(s->mu);
  QueueState* qs = s->Find(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  if (!qs->started) return Status::FailedPrecondition("queue stopped: " + queue);
  if (!registrant.empty() && qs->registrations.count(registrant) == 0) {
    return Status::NotConnected("not registered: " + registrant);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  InternalElement* picked = nullptr;
  bool head_locked = false;
  while (true) {
    picked = PickVisible(qs, selector, &head_locked);
    if (picked != nullptr) break;
    if (timeout_micros == 0) {
      return head_locked
                 ? Status::Busy("head element locked (strict FIFO): " + queue)
                 : Status::NotFound("queue empty: " + queue);
    }
    ++qs->waiters;
    const auto wait_result = qs->cv.WaitUntil(s->mu, deadline);
    --qs->waiters;
    // The queue may have been stopped (not destroyed: waiters pin it).
    qs = s->Find(queue);
    if (qs == nullptr) return Status::NotFound("queue destroyed: " + queue);
    if (!qs->started) {
      return Status::FailedPrecondition("queue stopped: " + queue);
    }
    if (wait_result == std::cv_status::timeout) {
      picked = PickVisible(qs, selector, &head_locked);
      if (picked == nullptr) {
        return head_locked
                   ? Status::Busy("head element locked (strict FIFO): " + queue)
                   : Status::TimedOut("dequeue timed out: " + queue);
      }
      break;
    }
  }

  // Take the metadata and a reference to the shared payload under the
  // lock; the payload byte copy for the caller happens after unlock.
  Element copy = picked->meta;
  std::shared_ptr<const std::string> payload = picked->payload;
  dequeues_.fetch_add(1, std::memory_order_relaxed);

  MicroOp remove;
  remove.kind = MicroOp::kRemove;
  remove.queue = queue;
  remove.element.eid = copy.eid;
  std::vector<MicroOp> ops;
  ops.push_back(std::move(remove));
  if (!registrant.empty()) {
    ops.push_back(MakeLastOpMicro(queue, registrant, OpType::kDequeue, tag,
                                  copy, payload));
  }

  if (t == nullptr) {
    // Auto-commit: log + apply while still holding the shard lock, so
    // pick+consume stays atomic.
    CommitHandoff h;
    RRQ_RETURN_IF_ERROR(StageCommitLocked(s, std::move(ops), "", &h));
    lock.Unlock();
    RRQ_RETURN_IF_ERROR(FinishCommit(std::move(h),
                                     /*evaluate_reactions=*/true));
    if (payload != nullptr) copy.contents = *payload;
    return copy;
  }

  // Transactional: lock the element in place; removal applies at commit.
  picked->locked_by = t->id();
  lock.Unlock();
  if (payload != nullptr) copy.contents = *payload;
  BufferTxnOps(t, std::move(ops), {LockedRef{queue, copy.eid, false}});
  return copy;
}

Result<Element> QueueRepository::Dequeue(txn::Transaction* t,
                                         const std::string& queue,
                                         const std::string& registrant,
                                         const Slice& tag,
                                         uint64_t timeout_micros) {
  return DequeueInternal(t, queue, nullptr, registrant, tag, timeout_micros);
}

Result<Element> QueueRepository::DequeueSelected(txn::Transaction* t,
                                                 const std::string& queue,
                                                 const Selector& selector,
                                                 const std::string& registrant,
                                                 const Slice& tag) {
  return DequeueInternal(t, queue, &selector, registrant, tag, 0);
}

Result<Element> QueueRepository::DequeueFromSet(
    txn::Transaction* t, const std::vector<std::string>& queues,
    const std::string& registrant, const Slice& tag) {
  // First-visible-wins in the caller's order; each probe takes only the
  // shard owning that queue.
  for (const std::string& q : queues) {
    Result<Element> r = DequeueInternal(t, q, nullptr, registrant, tag, 0);
    if (r.ok()) return r;
    if (!r.status().IsNotFound() && !r.status().IsBusy()) return r;
  }
  return Status::NotFound("no element available in queue set");
}

Result<Element> QueueRepository::Read(const std::string& queue,
                                      ElementId eid) const {
  // Under the shard lock: find the element and bump the payload
  // refcount. The contents copy — the expensive part for large
  // payloads — happens after unlock, off the lock's critical path.
  Element result;
  std::shared_ptr<const std::string> payload;
  bool found = false;
  {
    const Shard* s = ShardFor(queue);
    MutexLock guard(s->mu);
    const QueueState* qs = s->Find(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    auto it = qs->elements.find(eid);
    if (it != qs->elements.end()) {
      result = it->second.meta;
      payload = it->second.payload;
      found = true;
    } else {
      // §4.3: a registrant may Read the element of its last operation
      // even after it was dequeued — serve it from the stable last-op
      // copies.
      for (const auto& [registrant, reg] : qs->registrations) {
        if (reg.last.eid == eid) {
          result = reg.last.meta;
          payload = reg.last.payload;
          found = true;
          break;
        }
      }
    }
  }
  if (!found) {
    return Status::NotFound("no such element: " + std::to_string(eid));
  }
  if (payload != nullptr) result.contents = *payload;
  return result;
}

Result<bool> QueueRepository::KillElement(txn::Transaction* t,
                                          const std::string& queue,
                                          ElementId eid) {
  Shard* s = ShardFor(queue);
  MutexLock lock(s->mu);
  QueueState* qs = s->Find(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  auto it = qs->elements.find(eid);
  if (it == qs->elements.end()) {
    return false;  // Already consumed by a committed dequeue.
  }
  InternalElement& ie = it->second;

  MicroOp remove;
  remove.kind = MicroOp::kRemove;
  remove.queue = queue;
  remove.element.eid = eid;

  if (ie.locked_by == txn::kInvalidTxnId) {
    if (t != nullptr) {
      // Reserve the element for this transaction so no dequeuer races
      // us; the kill-flavored lock entry makes an abort of t release
      // the element intact (no abort-count bump).
      ie.locked_by = t->id();
      ie.killed = true;
      lock.Unlock();
      BufferTxnOps(t, {std::move(remove)}, {LockedRef{queue, eid, true}});
      return true;
    }
    CommitHandoff h;
    RRQ_RETURN_IF_ERROR(StageCommitLocked(s, {std::move(remove)}, "", &h));
    lock.Unlock();
    RRQ_RETURN_IF_ERROR(FinishCommit(std::move(h),
                                     /*evaluate_reactions=*/true));
    return true;
  }

  // Locked by an uncommitted dequeuer. If it already voted yes we can
  // no longer unilaterally abort it (§7's "not yet committed" window
  // closes at prepare).
  auto tit = s->txns.find(ie.locked_by);
  if (tit != s->txns.end() && tit->second.prepared) {
    return false;
  }
  // Durably delete now; the dequeuer's prepare will find the element
  // gone and veto, aborting its transaction.
  CommitHandoff h;
  RRQ_RETURN_IF_ERROR(StageCommitLocked(s, {std::move(remove)}, "", &h));
  lock.Unlock();
  RRQ_RETURN_IF_ERROR(FinishCommit(std::move(h),
                                   /*evaluate_reactions=*/true));
  return true;
}

Status QueueRepository::SetTrigger(const TriggerSpec& spec) {
  {
    Shard* s = ShardFor(spec.watched_queue);
    MutexLock guard(s->mu);
    if (s->Find(spec.watched_queue) == nullptr) {
      return Status::NotFound("no such queue: " + spec.watched_queue);
    }
  }
  MicroOp op;
  op.kind = MicroOp::kSetTrigger;
  op.queue = spec.watched_queue;
  op.trigger = spec;
  RRQ_RETURN_IF_ERROR(AutoCommit({std::move(op)}));
  // The condition may already hold.
  NotifyWaiters({spec.watched_queue});
  EvaluateReactions({spec.watched_queue});
  return Status::OK();
}

Result<size_t> QueueRepository::Depth(const std::string& queue) const {
  const Shard* s = ShardFor(queue);
  MutexLock guard(s->mu);
  const QueueState* qs = s->Find(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  size_t depth = 0;
  for (const auto& [key, eid] : qs->order) {
    const auto& ie = qs->elements.at(eid);
    if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) ++depth;
  }
  return depth;
}

Result<QueueOptions> QueueRepository::GetQueueOptions(
    const std::string& queue) const {
  const Shard* s = ShardFor(queue);
  MutexLock guard(s->mu);
  const QueueState* qs = s->Find(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  return qs->options;
}

std::vector<std::string> QueueRepository::ListQueues() const {
  std::vector<std::string> names;
  for (const auto& s : shards_) {
    MutexLock guard(s->mu);
    for (const auto& [name, qs] : s->queues) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ---------------------------------------------------------------------------
// Durability: open / replay / checkpoint

Status QueueRepository::Open() {
  if (opened_) return Status::FailedPrecondition("repository already open");
  if (options_.env == nullptr) {
    opened_ = true;
    return Status::OK();
  }
  env::Env* env = options_.env;
  RRQ_RETURN_IF_ERROR(env->CreateDirIfMissing(options_.dir));
  // Held across the whole durable open path: generation_ is guarded by
  // checkpoint_mu_, and holding it also keeps a concurrent Checkpoint()
  // (nothing should be calling one yet, but the lock makes it safe)
  // from cutting a generation mid-recovery.
  MutexLock cp_guard(checkpoint_mu_);
  const bool have_current = env->FileExists(CurrentPath());
  if (have_current) {
    std::string current;
    RRQ_RETURN_IF_ERROR(env::ReadFileToString(env, CurrentPath(), &current));
    Slice input(current);
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &generation_));
    // Pre-sharding directories carry only the generation; the absent
    // count means 1. The on-disk count always wins over the configured
    // one — the WAL streams and checkpoint slices are keyed by it.
    uint64_t disk_shards = 1;
    if (!input.empty()) {
      RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &disk_shards));
      if (disk_shards == 0) {
        return Status::Corruption("invalid shard count in CURRENT");
      }
    }
    if (disk_shards != shards_.size()) {
      RRQ_LOG(kInfo) << name_ << ": adopting on-disk shard count "
                     << disk_shards << " (configured " << shards_.size()
                     << ")";
      BuildShards(static_cast<size_t>(disk_shards));
    }
  }
  // A crash inside Checkpoint() can strand the previous generation's
  // WAL/checkpoint files (crash between the CURRENT switch and the
  // retire), a freshly written next generation (crash before the
  // CURRENT switch), or a half-written *.tmp. Sweep them before
  // recovery creates any files of its own.
  {
    env::GcStats gc;
    RRQ_RETURN_IF_ERROR(
        env::RetireStaleGenerations(env, options_.dir, generation_, &gc));
    gc_removed_.fetch_add(gc.removed, std::memory_order_relaxed);
    remove_failures_.fetch_add(gc.failures, std::memory_order_relaxed);
  }
  if (have_current) {
    std::vector<ShardRecovery> recs(shards_.size());
    if (shards_.size() == 1) {
      RRQ_RETURN_IF_ERROR(
          RecoverShard(shards_[0].get(), generation_, &recs[0]));
    } else {
      // Each shard's checkpoint slice and WAL are independent: recover
      // them in parallel. The recovery threads get the generation by
      // value — they must not touch generation_ (guarded by
      // checkpoint_mu_, which this thread holds).
      const uint64_t gen = generation_;
      std::vector<Status> statuses(shards_.size());
      std::vector<std::thread> threads;
      threads.reserve(shards_.size());
      for (size_t i = 0; i < shards_.size(); ++i) {
        threads.emplace_back([this, i, gen, &recs, &statuses] {
          statuses[i] = RecoverShard(shards_[i].get(), gen, &recs[i]);
        });
      }
      for (std::thread& th : threads) th.join();
      for (const Status& st : statuses) RRQ_RETURN_IF_ERROR(st);
    }
    // Resolve leftover prepares. A cross-shard commit writes its commit
    // record on every involved shard after all prepares are durable, so
    // the union of commit-record ids decides atomically: either some
    // shard's commit record survived (commit everywhere) or none did
    // (abort everywhere). Only external (TransactionManager) ids ever
    // consult the in-doubt resolver; internal cross-shard ids are
    // presumed aborted when no commit record survived.
    std::unordered_set<txn::TxnId> committed;
    for (const ShardRecovery& rec : recs) {
      committed.insert(rec.committed.begin(), rec.committed.end());
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard* s = shards_[i].get();
      MutexLock lock(s->mu);
      for (const txn::TxnId id : recs[i].prepared_order) {
        auto pit = recs[i].prepared.find(id);
        if (pit == recs[i].prepared.end()) continue;  // Applied in replay.
        bool commit = committed.count(id) > 0;
        if (!commit && (id & kInternalTxnBit) == 0 &&
            options_.in_doubt_resolver != nullptr) {
          commit = options_.in_doubt_resolver(id);
        }
        if (commit) {
          for (const MicroOp& op : pit->second) ApplyMicroOp(s, op, nullptr);
          RRQ_LOG(kInfo) << name_ << ": in-doubt txn " << id
                         << " resolved to COMMIT";
        } else {
          RRQ_LOG(kInfo) << name_ << ": in-doubt txn " << id
                         << " resolved to ABORT (presumed)";
        }
      }
    }
  }
  for (auto& s : shards_) {
    RRQ_RETURN_IF_ERROR(OpenShardWal(s.get(), generation_));
  }
  if (!have_current) {
    std::string current;
    util::PutVarint64(&current, generation_);
    if (shards_.size() > 1) util::PutVarint64(&current, shards_.size());
    RRQ_RETURN_IF_ERROR(
        env::WriteStringToFileSync(env, current, CurrentPath()));
  }
  opened_ = true;
  return Status::OK();
}

Status QueueRepository::OpenShardWal(Shard* s, uint64_t generation) {
  env::Env* env = options_.env;
  const std::string path = WalPath(generation, s->index);
  uint64_t size = 0;
  if (env->FileExists(path)) {
    RRQ_RETURN_IF_ERROR(env->GetFileSize(path, &size));
  }
  std::unique_ptr<env::WritableFile> file;
  RRQ_RETURN_IF_ERROR(env->NewAppendableFile(path, &file));
  MutexLock lock(s->mu);
  s->wal = std::make_shared<wal::LogWriter>(std::move(file), size,
                                            options_.group_commit);
  return Status::OK();
}

void QueueRepository::EncodeShardSnapshot(const Shard& s, std::string* out)
    const REQUIRES(s.mu) {
  util::PutFixed64(out, next_eid_.load(std::memory_order_relaxed));
  util::PutVarint64(out, s.queues.size());
  for (const auto& [name, qs] : s.queues) {
    util::PutLengthPrefixed(out, name);
    EncodeQueueOptions(qs->options, out);
    out->push_back(qs->started ? 1 : 0);
    util::PutVarint64(out, qs->registrations.size());
    for (const auto& [registrant, reg] : qs->registrations) {
      util::PutLengthPrefixed(out, registrant);
      out->push_back(reg.stable ? 1 : 0);
      out->push_back(static_cast<char>(reg.last.type));
      util::PutFixed64(out, reg.last.eid);
      util::PutLengthPrefixed(out, reg.last.tag);
      EncodeElementParts(reg.last.meta, reg.last.payload, out);
    }
    // Elements in dequeue order (volatile queues persist none).
    if (qs->options.durable) {
      util::PutVarint64(out, qs->order.size());
      for (const auto& [key, eid] : qs->order) {
        const InternalElement& ie = qs->elements.at(eid);
        EncodeElementParts(ie.meta, ie.payload, out);
      }
    } else {
      util::PutVarint64(out, 0);
    }
  }
  util::PutVarint64(out, s.triggers.size());
  for (const TriggerSpec& t : s.triggers) EncodeTrigger(t, out);
  // Trailing (optional for old checkpoints) applied replication
  // watermark, so a checkpointed backup doesn't forget how far it got.
  util::PutFixed64(out, applied_repl_seq());
}

Status QueueRepository::DecodeShardSnapshot(Shard* s, Slice input)
    REQUIRES(s->mu) {
  uint64_t next_eid = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &next_eid));
  // Shards decode in parallel; the counter takes the max slice value.
  AdvanceEid(next_eid);
  uint64_t queue_count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &queue_count));
  for (uint64_t i = 0; i < queue_count; ++i) {
    std::string name;
    RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &name));
    auto qs = std::make_unique<QueueState>();
    RRQ_RETURN_IF_ERROR(DecodeQueueOptions(&input, &qs->options));
    if (input.empty()) return Status::Corruption("truncated snapshot");
    qs->started = input[0] != 0;
    input.remove_prefix(1);
    uint64_t reg_count = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &reg_count));
    for (uint64_t r = 0; r < reg_count; ++r) {
      std::string registrant;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      if (input.size() < 2) return Status::Corruption("truncated registration");
      RegistrationRecord reg;
      reg.stable = input[0] != 0;
      RRQ_RETURN_IF_ERROR(
          DecodeOpType(static_cast<uint8_t>(input[1]), &reg.last.type));
      input.remove_prefix(2);
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &reg.last.eid));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &reg.last.tag));
      Element last_element;
      RRQ_RETURN_IF_ERROR(DecodeElement(&input, &last_element));
      reg.last.payload = std::make_shared<const std::string>(
          std::move(last_element.contents));
      last_element.contents.clear();
      reg.last.meta = std::move(last_element);
      qs->registrations[registrant] = std::move(reg);
    }
    uint64_t element_count = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &element_count));
    for (uint64_t e = 0; e < element_count; ++e) {
      Element decoded;
      RRQ_RETURN_IF_ERROR(DecodeElement(&input, &decoded));
      InternalElement ie;
      ie.payload =
          std::make_shared<const std::string>(std::move(decoded.contents));
      decoded.contents.clear();
      ie.meta = std::move(decoded);
      ie.seq = s->next_seq++;
      qs->order[{~ie.meta.priority, ie.seq}] = ie.meta.eid;
      qs->elements[ie.meta.eid] = std::move(ie);
    }
    s->queues[name] = std::move(qs);
  }
  uint64_t trigger_count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &trigger_count));
  for (uint64_t i = 0; i < trigger_count; ++i) {
    TriggerSpec t;
    RRQ_RETURN_IF_ERROR(DecodeTrigger(&input, &t));
    s->triggers.push_back(std::move(t));
  }
  // Checkpoints written before replication shipping end here.
  if (!input.empty()) {
    uint64_t repl_seq = 0;
    RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &repl_seq));
    uint64_t cur = applied_repl_seq_.load(std::memory_order_relaxed);
    while (repl_seq > cur && !applied_repl_seq_.compare_exchange_weak(
                                 cur, repl_seq, std::memory_order_release)) {
    }
  }
  return Status::OK();
}

Status QueueRepository::LoadShardCheckpoint(Shard* s, uint64_t generation) {
  env::Env* env = options_.env;
  const std::string path = CheckpointPath(generation, s->index);
  if (!env->FileExists(path)) return Status::OK();
  std::string data;
  RRQ_RETURN_IF_ERROR(env::ReadFileToString(env, path, &data));
  MutexLock guard(s->mu);
  return DecodeShardSnapshot(s, Slice(data));
}

Status QueueRepository::ReplayShardWal(Shard* s, uint64_t generation,
                                       ShardRecovery* rec) {
  env::Env* env = options_.env;
  const std::string path = WalPath(generation, s->index);
  if (!env->FileExists(path)) return Status::OK();
  std::unique_ptr<env::SequentialFile> file;
  RRQ_RETURN_IF_ERROR(env->NewSequentialFile(path, &file));
  wal::LogReader reader(std::move(file));

  Slice record;
  std::string scratch;
  MutexLock guard(s->mu);
  while (reader.ReadRecord(&record, &scratch)) {
    Slice input = record;
    if (input.empty()) continue;
    unsigned char type = static_cast<unsigned char>(input[0]);
    input.remove_prefix(1);
    uint64_t id = 0;
    uint64_t eid_watermark = 0;
    RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &id));
    RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid_watermark));
    AdvanceEid(eid_watermark);

    uint64_t op_count = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &op_count));
    std::vector<MicroOp> ops;
    ops.reserve(static_cast<size_t>(op_count));
    for (uint64_t i = 0; i < op_count; ++i) {
      MicroOp op;
      RRQ_RETURN_IF_ERROR(DecodeMicroOp(&input, &op));
      ops.push_back(std::move(op));
    }

    if (type == kRecCommitted) {
      for (const MicroOp& op : ops) ApplyMicroOp(s, op, nullptr);
    } else if (type == kRecPrepare) {
      if (rec->prepared.find(id) == rec->prepared.end()) {
        rec->prepared_order.push_back(id);
      }
      rec->prepared[id] = std::move(ops);
    } else if (type == kRecCommit) {
      // Record the id even when the prepare lives on another shard's
      // WAL: the merged set resolves cross-shard leftovers.
      rec->committed.insert(id);
      auto it = rec->prepared.find(id);
      if (it != rec->prepared.end()) {
        for (const MicroOp& op : it->second) ApplyMicroOp(s, op, nullptr);
        rec->prepared.erase(it);
      }
    } else {
      return Status::Corruption("unknown repository WAL record type");
    }
  }
  return Status::OK();
}

Status QueueRepository::RecoverShard(Shard* s, uint64_t generation,
                                     ShardRecovery* rec) {
  RRQ_RETURN_IF_ERROR(LoadShardCheckpoint(s, generation));
  return ReplayShardWal(s, generation, rec);
}

// Holds every shard lock at once (a dynamic lock set — see
// ShardLockSet), so the analysis cannot follow it.
Status QueueRepository::Checkpoint() NO_THREAD_SAFETY_ANALYSIS {
  if (options_.env == nullptr) return Status::OK();
  env::Env* env = options_.env;
  // One atomic generation cut across all shards: every slice is written
  // under every shard lock, then CURRENT switches all of them at once.
  MutexLock cp_guard(checkpoint_mu_);
  ShardLockSet locks;
  for (auto& s : shards_) locks.Add(&s->mu);
  const uint64_t next_gen = generation_ + 1;

  std::vector<std::shared_ptr<wal::LogWriter>> new_wals(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* s = shards_[i].get();
    std::string snapshot;
    EncodeShardSnapshot(*s, &snapshot);
    RRQ_RETURN_IF_ERROR(env::WriteStringToFileSync(
        env, snapshot, CheckpointPath(next_gen, i)));

    std::unique_ptr<env::WritableFile> file;
    RRQ_RETURN_IF_ERROR(env->NewWritableFile(WalPath(next_gen, i), &file));
    auto new_wal = std::make_shared<wal::LogWriter>(std::move(file), 0,
                                                    options_.group_commit);
    // Prepared-but-undecided transactions must survive the truncation:
    // re-log their prepare records into the new WAL.
    for (const auto& [id, pt] : s->txns) {
      if (!pt.prepared) continue;
      std::string record;
      EncodeRecord(kRecPrepare, id, pt.ops, &record);
      RRQ_RETURN_IF_ERROR(new_wal->AddRecord(record));
    }
    RRQ_RETURN_IF_ERROR(new_wal->Sync());
    new_wals[i] = std::move(new_wal);
  }

  std::string current;
  util::PutVarint64(&current, next_gen);
  if (shards_.size() > 1) util::PutVarint64(&current, shards_.size());
  RRQ_RETURN_IF_ERROR(env::WriteStringToFileSync(env, current, CurrentPath()));

  for (size_t i = 0; i < shards_.size(); ++i) {
    RemoveRetiredFile(WalPath(generation_, i));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    RemoveRetiredFile(CheckpointPath(generation_, i));
  }
  generation_ = next_gen;
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->wal = std::move(new_wals[i]);
  }
  return Status::OK();
}

void QueueRepository::RemoveRetiredFile(const std::string& path) {
  Status s = options_.env->RemoveFile(path);
  if (s.ok() || s.IsNotFound()) return;  // Gen 0 has no checkpoint file.
  remove_failures_.fetch_add(1, std::memory_order_relaxed);
  RRQ_LOG(kWarn) << name_ << ": failed to retire " << path << ": "
                 << s.ToString() << " (recovery GC will re-attempt)";
}

// ---------------------------------------------------------------------------
// Statistics

uint64_t QueueRepository::wal_bytes() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    MutexLock guard(s->mu);
    if (s->wal != nullptr) total += s->wal->PhysicalSize();
  }
  return total;
}

uint64_t QueueRepository::wal_sync_count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    MutexLock guard(s->mu);
    if (s->wal != nullptr) total += s->wal->sync_count();
  }
  return total;
}

uint64_t QueueRepository::wal_sync_request_count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    MutexLock guard(s->mu);
    if (s->wal != nullptr) total += s->wal->sync_request_count();
  }
  return total;
}

}  // namespace rrq::queue
