#include "queue/queue_repository.h"

#include <algorithm>
#include <chrono>

#include "env/gc.h"
#include "util/coding.h"
#include "util/logging.h"
#include "wal/log_reader.h"

namespace rrq::queue {

namespace {

// WAL record types (same pattern as the KV store).
constexpr unsigned char kRecPrepare = 1;
constexpr unsigned char kRecCommit = 2;
constexpr unsigned char kRecCommitted = 3;  // Fused auto-commit / 1PC.

constexpr int kMaxRedirectHops = 4;

// Persistent formats store enums as raw bytes; a corrupted or torn
// byte must surface as Corruption at decode time, never as an
// out-of-range enum value that downstream switches silently ignore.
Status DecodeOpType(uint8_t raw, OpType* out) {
  if (raw > static_cast<uint8_t>(OpType::kDequeue)) {
    return Status::Corruption("invalid registration op type " +
                              std::to_string(raw));
  }
  *out = static_cast<OpType>(raw);
  return Status::OK();
}

Status DecodeDequeuePolicy(uint8_t raw, DequeuePolicy* out) {
  if (raw > static_cast<uint8_t>(DequeuePolicy::kStrictFifo)) {
    return Status::Corruption("invalid dequeue policy " + std::to_string(raw));
  }
  *out = static_cast<DequeuePolicy>(raw);
  return Status::OK();
}

// Element wire encoding (the inverse of DecodeElement). The contents
// come from the shared payload when one is attached (live ops share
// the stored payload instead of copying it into the op); ops decoded
// from the WAL carry them inline in meta.contents.
void EncodeElementParts(const Element& meta,
                        const std::shared_ptr<const std::string>& payload,
                        std::string* out) {
  util::PutFixed64(out, meta.eid);
  util::PutVarint32(out, meta.priority);
  util::PutVarint32(out, meta.abort_count);
  util::PutLengthPrefixed(out, meta.abort_code);
  util::PutLengthPrefixed(out, payload != nullptr ? *payload : meta.contents);
}

Status DecodeElement(Slice* input, Element* e) {
  RRQ_RETURN_IF_ERROR(util::GetFixed64(input, &e->eid));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->priority));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &e->abort_count));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->abort_code));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &e->contents));
  return Status::OK();
}

void EncodeQueueOptions(const QueueOptions& o, std::string* out) {
  util::PutVarint32(out, o.max_aborts);
  util::PutLengthPrefixed(out, o.error_queue);
  out->push_back(o.durable ? 1 : 0);
  out->push_back(static_cast<char>(o.policy));
  util::PutVarint64(out, o.alert_threshold);
  util::PutLengthPrefixed(out, o.redirect_to);
}

Status DecodeQueueOptions(Slice* input, QueueOptions* o) {
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &o->max_aborts));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &o->error_queue));
  if (input->size() < 2) return Status::Corruption("truncated queue options");
  o->durable = (*input)[0] != 0;
  RRQ_RETURN_IF_ERROR(
      DecodeDequeuePolicy(static_cast<uint8_t>((*input)[1]), &o->policy));
  input->remove_prefix(2);
  uint64_t threshold = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(input, &threshold));
  o->alert_threshold = static_cast<size_t>(threshold);
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &o->redirect_to));
  return Status::OK();
}

void EncodeTrigger(const TriggerSpec& t, std::string* out) {
  util::PutLengthPrefixed(out, t.watched_queue);
  util::PutVarint64(out, t.remaining);
  util::PutLengthPrefixed(out, t.target_queue);
  util::PutLengthPrefixed(out, t.contents);
  util::PutVarint32(out, t.priority);
}

Status DecodeTrigger(Slice* input, TriggerSpec* t) {
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &t->watched_queue));
  RRQ_RETURN_IF_ERROR(util::GetVarint64(input, &t->remaining));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &t->target_queue));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &t->contents));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(input, &t->priority));
  return Status::OK();
}

}  // namespace

QueueRepository::QueueRepository(std::string name, RepositoryOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

QueueRepository::~QueueRepository() = default;

std::string QueueRepository::WalPath(uint64_t g) const {
  return options_.dir + "/WAL-" + std::to_string(g);
}
std::string QueueRepository::CheckpointPath(uint64_t g) const {
  return options_.dir + "/CHECKPOINT-" + std::to_string(g);
}
std::string QueueRepository::CurrentPath() const {
  return options_.dir + "/CURRENT";
}

// ---------------------------------------------------------------------------
// Micro-op serialization

void QueueRepository::EncodeMicroOp(const MicroOp& op, std::string* out) {
  out->push_back(static_cast<char>(op.kind));
  util::PutLengthPrefixed(out, op.queue);
  switch (op.kind) {
    case MicroOp::kCreateQueue:
      EncodeQueueOptions(op.qoptions, out);
      break;
    case MicroOp::kDestroyQueue:
    case MicroOp::kStartQueue:
    case MicroOp::kStopQueue:
      break;
    case MicroOp::kRegister:
      util::PutLengthPrefixed(out, op.registrant);
      out->push_back(op.stable ? 1 : 0);
      break;
    case MicroOp::kDeregister:
      util::PutLengthPrefixed(out, op.registrant);
      break;
    case MicroOp::kInsert:
      EncodeElementParts(op.element, op.payload, out);
      break;
    case MicroOp::kRemove:
    case MicroOp::kBumpAbortCount:
      util::PutFixed64(out, op.element.eid);
      break;
    case MicroOp::kSetLastOp:
      util::PutLengthPrefixed(out, op.registrant);
      out->push_back(static_cast<char>(op.op_type));
      util::PutLengthPrefixed(out, op.tag);
      EncodeElementParts(op.element, op.payload, out);
      break;
    case MicroOp::kSetTrigger:
      EncodeTrigger(op.trigger, out);
      break;
    case MicroOp::kClearTrigger:
      EncodeTrigger(op.trigger, out);
      break;
  }
}

Status QueueRepository::DecodeMicroOp(Slice* input, MicroOp* op) {
  if (input->empty()) return Status::Corruption("truncated micro-op");
  op->kind = static_cast<MicroOp::Kind>((*input)[0]);
  input->remove_prefix(1);
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->queue));
  switch (op->kind) {
    case MicroOp::kCreateQueue:
      return DecodeQueueOptions(input, &op->qoptions);
    case MicroOp::kDestroyQueue:
    case MicroOp::kStartQueue:
    case MicroOp::kStopQueue:
      return Status::OK();
    case MicroOp::kRegister: {
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->registrant));
      if (input->empty()) return Status::Corruption("truncated register op");
      op->stable = (*input)[0] != 0;
      input->remove_prefix(1);
      return Status::OK();
    }
    case MicroOp::kDeregister:
      return util::GetLengthPrefixedString(input, &op->registrant);
    case MicroOp::kInsert:
      return DecodeElement(input, &op->element);
    case MicroOp::kRemove:
    case MicroOp::kBumpAbortCount:
      return util::GetFixed64(input, &op->element.eid);
    case MicroOp::kSetLastOp: {
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->registrant));
      if (input->empty()) return Status::Corruption("truncated last-op");
      RRQ_RETURN_IF_ERROR(
          DecodeOpType(static_cast<uint8_t>((*input)[0]), &op->op_type));
      input->remove_prefix(1);
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(input, &op->tag));
      return DecodeElement(input, &op->element);
    }
    case MicroOp::kSetTrigger:
    case MicroOp::kClearTrigger:
      return DecodeTrigger(input, &op->trigger);
  }
  return Status::Corruption("unknown micro-op kind");
}

void QueueRepository::EncodeRecord(unsigned char type, txn::TxnId id,
                                   const std::vector<MicroOp>& ops,
                                   std::string* out) const {
  out->push_back(static_cast<char>(type));
  util::PutFixed64(out, id);
  util::PutFixed64(out, next_eid_.load(std::memory_order_relaxed));
  util::PutVarint64(out, ops.size());
  for (const MicroOp& op : ops) EncodeMicroOp(op, out);
}

// ---------------------------------------------------------------------------
// State access helpers

QueueRepository::QueueState* QueueRepository::FindQueue(
    const std::string& queue) {
  auto it = queues_.find(queue);
  return it == queues_.end() ? nullptr : it->second.get();
}

const QueueRepository::QueueState* QueueRepository::FindQueue(
    const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? nullptr : it->second.get();
}

std::string QueueRepository::ResolveRedirect(const std::string& queue) const {
  std::string current = queue;
  for (int hop = 0; hop < kMaxRedirectHops; ++hop) {
    const QueueState* qs = FindQueue(current);
    if (qs == nullptr || qs->options.redirect_to.empty()) return current;
    current = qs->options.redirect_to;
  }
  return current;
}

bool QueueRepository::NeedsLogging(const std::vector<MicroOp>& ops) const {
  if (wal_ == nullptr) return false;
  for (const MicroOp& op : ops) {
    switch (op.kind) {
      case MicroOp::kInsert:
      case MicroOp::kRemove:
      case MicroOp::kBumpAbortCount: {
        const QueueState* qs = FindQueue(op.queue);
        if (qs == nullptr || qs->options.durable) return true;
        break;  // Element traffic on a volatile queue: no logging.
      }
      default:
        return true;  // Metadata, registrations, tags: always durable.
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Applying committed micro-ops

void QueueRepository::ApplyMicroOp(const MicroOp& op,
                                   std::vector<std::string>* notify_queues) {
  switch (op.kind) {
    case MicroOp::kCreateQueue: {
      if (queues_.count(op.queue) == 0) {
        auto qs = std::make_unique<QueueState>();
        qs->options = op.qoptions;
        queues_[op.queue] = std::move(qs);
      }
      break;
    }
    case MicroOp::kDestroyQueue:
      queues_.erase(op.queue);
      break;
    case MicroOp::kStartQueue: {
      QueueState* qs = FindQueue(op.queue);
      if (qs != nullptr) qs->started = true;
      break;
    }
    case MicroOp::kStopQueue: {
      QueueState* qs = FindQueue(op.queue);
      if (qs != nullptr) qs->started = false;
      break;
    }
    case MicroOp::kRegister: {
      QueueState* qs = FindQueue(op.queue);
      if (qs != nullptr) {
        auto& reg = qs->registrations[op.registrant];  // Keeps existing last-op.
        reg.stable = op.stable;
      }
      break;
    }
    case MicroOp::kDeregister: {
      QueueState* qs = FindQueue(op.queue);
      if (qs != nullptr) qs->registrations.erase(op.registrant);
      break;
    }
    case MicroOp::kInsert: {
      QueueState* qs = FindQueue(op.queue);
      if (qs == nullptr) break;
      InternalElement ie;
      ie.meta = op.element;
      ie.meta.contents.clear();
      ie.payload = op.payload != nullptr
                       ? op.payload
                       : std::make_shared<const std::string>(
                             op.element.contents);
      ie.seq = next_seq_++;
      const ElementId eid = ie.meta.eid;
      const uint32_t inv_priority = ~ie.meta.priority;
      qs->order[{inv_priority, ie.seq}] = eid;
      qs->elements[eid] = std::move(ie);
      if (notify_queues != nullptr) notify_queues->push_back(op.queue);
      break;
    }
    case MicroOp::kRemove: {
      QueueState* qs = FindQueue(op.queue);
      if (qs == nullptr) break;
      auto it = qs->elements.find(op.element.eid);
      if (it != qs->elements.end()) {
        qs->order.erase({~it->second.meta.priority, it->second.seq});
        qs->elements.erase(it);
        // Strict-FIFO waiters blocked on a locked head must re-examine
        // the new head.
        if (notify_queues != nullptr) notify_queues->push_back(op.queue);
      }
      break;
    }
    case MicroOp::kBumpAbortCount: {
      QueueState* qs = FindQueue(op.queue);
      if (qs == nullptr) break;
      auto it = qs->elements.find(op.element.eid);
      if (it != qs->elements.end()) {
        ++it->second.meta.abort_count;
        if (notify_queues != nullptr) notify_queues->push_back(op.queue);
      }
      break;
    }
    case MicroOp::kSetLastOp: {
      QueueState* qs = FindQueue(op.queue);
      if (qs == nullptr) break;
      auto it = qs->registrations.find(op.registrant);
      if (it != qs->registrations.end() && it->second.stable) {
        it->second.last.type = op.op_type;
        it->second.last.eid = op.element.eid;
        it->second.last.tag = op.tag;
        it->second.last.meta = op.element;
        it->second.last.meta.contents.clear();
        it->second.last.payload =
            op.payload != nullptr ? op.payload
                                  : std::make_shared<const std::string>(
                                        op.element.contents);
      }
      break;
    }
    case MicroOp::kSetTrigger:
      triggers_.push_back(op.trigger);
      break;
    case MicroOp::kClearTrigger: {
      auto it = std::find_if(triggers_.begin(), triggers_.end(),
                             [&op](const TriggerSpec& t) {
                               return t.watched_queue == op.trigger.watched_queue &&
                                      t.target_queue == op.trigger.target_queue;
                             });
      if (it != triggers_.end()) triggers_.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Commit plumbing

Status QueueRepository::AutoCommit(std::vector<MicroOp> ops) {
  // Encode the record outside mu_ — only the WAL append and the
  // in-memory apply need the lock. The eid watermark in the record is
  // safe to read here because every eid in `ops` was allocated before
  // this call. The replication sink reuses the same bytes.
  const bool replicate = options_.replication_sink != nullptr && !ops.empty();
  std::string record;
  if (options_.env != nullptr || replicate) {
    EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
  }
  uint64_t end_offset = 0;
  wal::LogWriter* wal = nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  const bool log = NeedsLogging(ops);
  if (log) {
    RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
    wal = wal_.get();
  }
  std::vector<std::string> notify;
  for (const MicroOp& op : ops) ApplyMicroOp(op, &notify);
  lock.unlock();
  if (log && options_.sync_commits) {
    RRQ_RETURN_IF_ERROR(wal->SyncTo(end_offset));
  }
  AfterApply(notify);
  return Replicate(replicate ? record : std::string());
}

void QueueRepository::BufferTxnOps(txn::Transaction* t,
                                   std::vector<MicroOp> ops,
                                   std::vector<LockedRef> locked) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    PendingTxn& pt = txns_[t->id()];
    for (auto& op : ops) pt.ops.push_back(std::move(op));
    for (auto& l : locked) pt.locked.push_back(std::move(l));
  }
  t->Enlist(this);
}

Status QueueRepository::Prepare(txn::TxnId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = txns_.find(id);
  if (it == txns_.end()) {
    // A transaction with no operations on this repository: trivially yes.
    txns_[id].prepared = true;
    return Status::OK();
  }
  PendingTxn& pt = it->second;
  // Veto if any element we dequeued was killed out from under us (§7).
  // Kill reservations made by this transaction itself don't veto.
  for (const LockedRef& ref : pt.locked) {
    if (ref.is_kill) continue;
    QueueState* qs = FindQueue(ref.queue);
    if (qs == nullptr) return Status::Cancelled("queue destroyed: " + ref.queue);
    auto eit = qs->elements.find(ref.eid);
    if (eit == qs->elements.end() || eit->second.killed) {
      return Status::Cancelled("element killed: " + std::to_string(ref.eid));
    }
  }
  const bool log = NeedsLogging(pt.ops);
  uint64_t end_offset = 0;
  wal::LogWriter* wal = wal_.get();
  if (log) {
    std::string record;
    EncodeRecord(kRecPrepare, id, pt.ops, &record);
    RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
  }
  pt.prepared = true;
  lock.unlock();
  if (log) return wal->SyncTo(end_offset);  // A yes vote must be durable.
  return Status::OK();
}

Status QueueRepository::CommitTxn(txn::TxnId id) {
  // The commit record carries no ops; encode it before taking mu_.
  std::string record;
  if (options_.env != nullptr) {
    EncodeRecord(kRecCommit, id, {}, &record);
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = txns_.find(id);
  if (it == txns_.end()) return Status::OK();  // No ops here.
  PendingTxn pt = std::move(it->second);
  txns_.erase(it);
  if (!pt.prepared) {
    return Status::Internal("commit of unprepared transaction");
  }
  const bool log = NeedsLogging(pt.ops);
  uint64_t end_offset = 0;
  wal::LogWriter* wal = wal_.get();
  if (log) {
    RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
  }
  std::vector<std::string> notify;
  for (const MicroOp& op : pt.ops) ApplyMicroOp(op, &notify);
  // Locked elements consumed by kRemove ops are gone; make sure any
  // still-live ones (defensive) are unlocked.
  for (const LockedRef& ref : pt.locked) {
    QueueState* qs = FindQueue(ref.queue);
    if (qs == nullptr) continue;
    auto eit = qs->elements.find(ref.eid);
    if (eit != qs->elements.end() && eit->second.locked_by == id) {
      eit->second.locked_by = txn::kInvalidTxnId;
    }
  }
  const std::string replica = MaybeEncodeReplication(pt.ops);
  lock.unlock();
  if (log && options_.sync_commits) {
    RRQ_RETURN_IF_ERROR(wal->SyncTo(end_offset));
  }
  AfterApply(notify);
  return Replicate(replica);
}

Status QueueRepository::PrepareAndCommit(txn::TxnId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = txns_.find(id);
  if (it == txns_.end()) return Status::OK();
  PendingTxn& pt = it->second;
  for (const LockedRef& ref : pt.locked) {
    if (ref.is_kill) continue;
    QueueState* qs = FindQueue(ref.queue);
    if (qs == nullptr) return Status::Cancelled("queue destroyed: " + ref.queue);
    auto eit = qs->elements.find(ref.eid);
    if (eit == qs->elements.end() || eit->second.killed) {
      return Status::Cancelled("element killed: " + std::to_string(ref.eid));
    }
  }
  PendingTxn done = std::move(pt);
  txns_.erase(it);
  const bool log = NeedsLogging(done.ops);
  uint64_t end_offset = 0;
  wal::LogWriter* wal = wal_.get();
  if (log) {
    std::string record;
    EncodeRecord(kRecCommitted, id, done.ops, &record);
    RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
  }
  std::vector<std::string> notify;
  for (const MicroOp& op : done.ops) ApplyMicroOp(op, &notify);
  for (const LockedRef& ref : done.locked) {
    QueueState* qs = FindQueue(ref.queue);
    if (qs == nullptr) continue;
    auto eit = qs->elements.find(ref.eid);
    if (eit != qs->elements.end() && eit->second.locked_by == id) {
      eit->second.locked_by = txn::kInvalidTxnId;
    }
  }
  const std::string replica = MaybeEncodeReplication(done.ops);
  lock.unlock();
  if (log && options_.sync_commits) {
    RRQ_RETURN_IF_ERROR(wal->SyncTo(end_offset));
  }
  AfterApply(notify);
  return Replicate(replica);
}

void QueueRepository::AbortTxn(txn::TxnId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = txns_.find(id);
  if (it == txns_.end()) return;
  PendingTxn pt = std::move(it->second);
  txns_.erase(it);

  // Abort side effects (§4.2): each element this transaction had
  // dequeued returns to its queue with an incremented abort count; on
  // the n-th abort it moves to the error queue instead. Killed
  // elements are already durably deleted. These effects are themselves
  // durable and are NOT undone by the abort — they auto-commit.
  std::vector<MicroOp> side_effects;
  for (const LockedRef& ref : pt.locked) {
    QueueState* qs = FindQueue(ref.queue);
    if (qs == nullptr) continue;
    auto eit = qs->elements.find(ref.eid);
    if (eit == qs->elements.end()) continue;  // Killed & removed.
    InternalElement& ie = eit->second;
    if (ie.locked_by != id) continue;
    ie.locked_by = txn::kInvalidTxnId;
    if (ref.is_kill) {
      // The kill was undone with the transaction: release the element
      // intact.
      ie.killed = false;
      continue;
    }
    const uint32_t new_count = ie.meta.abort_count + 1;
    const QueueOptions& qopt = qs->options;
    if (!qopt.error_queue.empty() && new_count >= qopt.max_aborts) {
      // Move to the error queue (stable element identity, §10). The
      // payload is shared, not copied — only the metadata changes.
      Element moved = ie.meta;
      moved.abort_count = new_count;
      moved.abort_code = "abort limit reached";
      std::shared_ptr<const std::string> moved_payload = ie.payload;
      MicroOp create;
      create.kind = MicroOp::kCreateQueue;
      create.queue = qopt.error_queue;
      create.qoptions.durable = qopt.durable;
      create.qoptions.max_aborts = 0;  // Error queues don't cascade.
      if (queues_.count(qopt.error_queue) == 0) {
        side_effects.push_back(std::move(create));
      }
      MicroOp remove;
      remove.kind = MicroOp::kRemove;
      remove.queue = ref.queue;
      remove.element.eid = ref.eid;
      side_effects.push_back(std::move(remove));
      MicroOp insert;
      insert.kind = MicroOp::kInsert;
      insert.queue = qopt.error_queue;
      insert.element = std::move(moved);
      insert.payload = std::move(moved_payload);
      side_effects.push_back(std::move(insert));
      error_moves_.fetch_add(1, std::memory_order_relaxed);
    } else {
      MicroOp bump;
      bump.kind = MicroOp::kBumpAbortCount;
      bump.queue = ref.queue;
      bump.element.eid = ref.eid;
      side_effects.push_back(std::move(bump));
    }
  }

  std::vector<std::string> notify;
  for (const LockedRef& ref : pt.locked) notify.push_back(ref.queue);
  const bool log = !side_effects.empty() && NeedsLogging(side_effects);
  uint64_t end_offset = 0;
  wal::LogWriter* wal = wal_.get();
  if (log) {
    std::string record;
    EncodeRecord(kRecCommitted, txn::kInvalidTxnId, side_effects, &record);
    Status s = wal_->AddRecord(record, &end_offset);
    if (!s.ok()) {
      RRQ_LOG(kError) << name_ << ": abort side-effect logging failed: "
                      << s.ToString();
    }
  }
  for (const MicroOp& op : side_effects) ApplyMicroOp(op, &notify);
  const std::string replica = MaybeEncodeReplication(side_effects);
  lock.unlock();
  if (log && options_.sync_commits) wal->SyncTo(end_offset);
  AfterApply(notify);
  Replicate(replica);
}

std::string QueueRepository::MaybeEncodeReplication(
    const std::vector<MicroOp>& ops) const {
  if (options_.replication_sink == nullptr || ops.empty()) return "";
  std::string record;
  EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
  return record;
}

Status QueueRepository::Replicate(const std::string& record) {
  if (record.empty()) return Status::OK();
  Status s = options_.replication_sink(record);
  if (!s.ok()) {
    replication_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

Status QueueRepository::ApplyReplicatedRecord(const Slice& record) {
  std::unique_lock<std::mutex> lock(mu_);
  Slice input = record;
  if (input.empty()) return Status::InvalidArgument("empty record");
  input.remove_prefix(1);  // Record type (always a committed set).
  uint64_t id = 0;
  uint64_t eid_watermark = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &id));
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid_watermark));
  if (eid_watermark > next_eid_.load(std::memory_order_relaxed)) {
    next_eid_.store(eid_watermark, std::memory_order_relaxed);
  }
  uint64_t op_count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &op_count));
  std::vector<MicroOp> ops;
  ops.reserve(static_cast<size_t>(op_count));
  for (uint64_t i = 0; i < op_count; ++i) {
    MicroOp op;
    RRQ_RETURN_IF_ERROR(DecodeMicroOp(&input, &op));
    ops.push_back(std::move(op));
  }
  // Durable backups log the record verbatim (it is already a valid
  // committed record carrying the eid watermark).
  const bool log = NeedsLogging(ops);
  uint64_t end_offset = 0;
  wal::LogWriter* wal = wal_.get();
  if (log) {
    RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
  }
  std::vector<std::string> notify;
  for (const MicroOp& op : ops) ApplyMicroOp(op, &notify);
  const std::string chained = MaybeEncodeReplication(ops);
  lock.unlock();
  if (log && options_.sync_commits) {
    RRQ_RETURN_IF_ERROR(wal->SyncTo(end_offset));
  }
  AfterApply(notify, /*evaluate_reactions=*/false);
  return Replicate(chained);
}

void QueueRepository::AfterApply(const std::vector<std::string>& notify_queues,
                                 bool evaluate_reactions) {
  // Wake dequeuers.
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const std::string& q : notify_queues) {
      QueueState* qs = FindQueue(q);
      if (qs != nullptr) qs->cv.notify_all();
    }
  }

  // Alerts and triggers are evaluated against committed depth, outside
  // the lock (they re-enter the public API). Replicated applies skip
  // this: the primary's reactions replicate as ordinary records.
  if (!evaluate_reactions) return;
  std::vector<std::pair<std::string, size_t>> alerts;
  std::vector<TriggerSpec> fired;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (const std::string& q : notify_queues) {
      QueueState* qs = FindQueue(q);
      if (qs == nullptr) continue;
      // Depth is O(queue) to compute; only pay for it when an alert or
      // trigger actually watches this queue.
      const bool has_alert = qs->options.alert_threshold != 0;
      bool has_trigger = false;
      for (const TriggerSpec& t : triggers_) {
        if (t.watched_queue == q) {
          has_trigger = true;
          break;
        }
      }
      if (!has_alert && !has_trigger) continue;
      size_t depth = 0;
      for (const auto& [key, eid] : qs->order) {
        const auto& ie = qs->elements.at(eid);
        if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) ++depth;
      }
      if (has_alert && depth == qs->options.alert_threshold) {
        alerts.emplace_back(q, depth);
      }
      for (const TriggerSpec& t : triggers_) {
        if (t.watched_queue == q && depth >= t.remaining) {
          fired.push_back(t);
        }
      }
    }
  }
  for (const auto& [q, depth] : alerts) {
    if (options_.alert_callback) options_.alert_callback(q, depth);
  }
  for (const TriggerSpec& t : fired) {
    // Clear first (durably), then fire — a crash in between loses the
    // join request, which the installer can re-arm; firing twice would
    // violate exactly-once.
    MicroOp clear;
    clear.kind = MicroOp::kClearTrigger;
    clear.queue = t.watched_queue;
    clear.trigger = t;
    Status s = AutoCommit({clear});
    if (s.ok()) {
      Enqueue(nullptr, t.target_queue, t.contents, t.priority);
    }
  }
}

// ---------------------------------------------------------------------------
// Data definition

Status QueueRepository::CreateQueue(const std::string& queue,
                                    QueueOptions qoptions) {
  if (queue.empty()) return Status::InvalidArgument("empty queue name");
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (queues_.count(queue) > 0) {
      return Status::AlreadyExists("queue exists: " + queue);
    }
  }
  MicroOp op;
  op.kind = MicroOp::kCreateQueue;
  op.queue = queue;
  op.qoptions = std::move(qoptions);
  return AutoCommit({std::move(op)});
}

Status QueueRepository::DestroyQueue(const std::string& queue) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    QueueState* qs = FindQueue(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    if (qs->waiters > 0) {
      return Status::Busy("queue has blocked dequeuers: " + queue);
    }
    for (const auto& [eid, ie] : qs->elements) {
      if (ie.locked_by != txn::kInvalidTxnId) {
        return Status::Busy("queue has in-flight dequeues: " + queue);
      }
    }
  }
  MicroOp op;
  op.kind = MicroOp::kDestroyQueue;
  op.queue = queue;
  return AutoCommit({std::move(op)});
}

Status QueueRepository::StartQueue(const std::string& queue) {
  MicroOp op;
  op.kind = MicroOp::kStartQueue;
  op.queue = queue;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (FindQueue(queue) == nullptr) {
      return Status::NotFound("no such queue: " + queue);
    }
  }
  return AutoCommit({std::move(op)});
}

Status QueueRepository::StopQueue(const std::string& queue) {
  MicroOp op;
  op.kind = MicroOp::kStopQueue;
  op.queue = queue;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (FindQueue(queue) == nullptr) {
      return Status::NotFound("no such queue: " + queue);
    }
  }
  return AutoCommit({std::move(op)});
}

bool QueueRepository::QueueExists(const std::string& queue) const {
  std::lock_guard<std::mutex> guard(mu_);
  return FindQueue(queue) != nullptr;
}

// ---------------------------------------------------------------------------
// Registration

Result<RegistrationInfo> QueueRepository::Register(
    const std::string& queue, const std::string& registrant, bool stable) {
  RegistrationInfo info;
  std::shared_ptr<const std::string> last_payload;
  {
    std::lock_guard<std::mutex> guard(mu_);
    QueueState* qs = FindQueue(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    auto it = qs->registrations.find(registrant);
    if (it != qs->registrations.end()) {
      // Re-registration after a failure: hand back the stable last-op
      // record (§4.3). Only the payload refcount is touched under mu_;
      // the byte copy happens below, after unlocking.
      info.was_registered = true;
      info.last_op = it->second.last.type;
      info.last_eid = it->second.last.eid;
      info.last_tag = it->second.last.tag;
      last_payload = it->second.last.payload;
    }
  }
  if (info.was_registered) {
    if (last_payload != nullptr) info.last_element = *last_payload;
    return info;
  }
  MicroOp op;
  op.kind = MicroOp::kRegister;
  op.queue = queue;
  op.registrant = registrant;
  op.stable = stable;
  RRQ_RETURN_IF_ERROR(AutoCommit({std::move(op)}));
  return info;
}

Status QueueRepository::Deregister(const std::string& queue,
                                   const std::string& registrant) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    QueueState* qs = FindQueue(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    if (qs->registrations.count(registrant) == 0) {
      return Status::NotFound("not registered: " + registrant);
    }
  }
  MicroOp op;
  op.kind = MicroOp::kDeregister;
  op.queue = queue;
  op.registrant = registrant;
  return AutoCommit({std::move(op)});
}

// ---------------------------------------------------------------------------
// Data manipulation

QueueRepository::MicroOp QueueRepository::MakeLastOpMicro(
    const std::string& queue, const std::string& registrant, OpType type,
    const Slice& tag, const Element& meta,
    std::shared_ptr<const std::string> payload) const {
  MicroOp op;
  op.kind = MicroOp::kSetLastOp;
  op.queue = queue;
  op.registrant = registrant;
  op.op_type = type;
  op.tag = tag.ToString();
  op.element = meta;
  op.payload = std::move(payload);
  return op;
}

Result<ElementId> QueueRepository::Enqueue(txn::Transaction* t,
                                           const std::string& queue,
                                           const Slice& contents,
                                           uint32_t priority,
                                           const std::string& registrant,
                                           const Slice& tag) {
  std::vector<MicroOp> ops;
  ElementId eid;
  std::string target;
  {
    std::lock_guard<std::mutex> guard(mu_);
    target = ResolveRedirect(queue);
    QueueState* qs = FindQueue(target);
    if (qs == nullptr) return Status::NotFound("no such queue: " + target);
    if (!qs->started) {
      return Status::FailedPrecondition("queue stopped: " + target);
    }
    if (!registrant.empty()) {
      // Tagged operations require a registration on the *named* queue.
      QueueState* named = FindQueue(queue);
      auto rit = named->registrations.find(registrant);
      if (rit == named->registrations.end()) {
        return Status::NotConnected("not registered: " + registrant);
      }
      // Idempotent tagged enqueue: a resend (or a network-duplicated
      // one-way message) carrying the registrant's current tag is the
      // SAME logical request — acknowledge it without enqueuing again.
      // This is the dedup persistent registration makes possible; it
      // is what keeps Exactly-Once intact under message duplication.
      if (rit->second.stable && !tag.empty() &&
          rit->second.last.type == OpType::kEnqueue &&
          Slice(rit->second.last.tag) == tag) {
        return rit->second.last.eid;
      }
    }
    eid = next_eid_++;
  }

  // The contents are copied exactly once, outside mu_, into a shared
  // immutable payload; the insert op, the last-op record, and the
  // stored element all reference the same bytes.
  MicroOp insert;
  insert.kind = MicroOp::kInsert;
  insert.queue = target;
  insert.element.eid = eid;
  insert.element.priority = priority;
  insert.payload = std::make_shared<const std::string>(contents.ToString());
  ops.push_back(insert);
  if (!registrant.empty()) {
    ops.push_back(MakeLastOpMicro(queue, registrant, OpType::kEnqueue, tag,
                                  insert.element, insert.payload));
  }
  enqueues_.fetch_add(1, std::memory_order_relaxed);
  if (t == nullptr) {
    RRQ_RETURN_IF_ERROR(AutoCommit(std::move(ops)));
  } else {
    BufferTxnOps(t, std::move(ops), {});
  }
  return eid;
}

QueueRepository::InternalElement* QueueRepository::PickVisible(
    QueueState* qs, const Selector* selector, bool* head_locked) {
  *head_locked = false;
  if (qs->options.policy == DequeuePolicy::kStrictFifo) {
    // Strict: only the head is eligible; a locked head blocks.
    auto it = qs->order.begin();
    if (it == qs->order.end()) return nullptr;
    InternalElement& ie = qs->elements.at(it->second);
    if (ie.locked_by != txn::kInvalidTxnId || ie.killed) {
      *head_locked = true;
      return nullptr;
    }
    return &ie;
  }
  // Skip-locked scan in (priority, FIFO) order.
  if (selector == nullptr) {
    for (const auto& [key, eid] : qs->order) {
      InternalElement& ie = qs->elements.at(eid);
      if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) return &ie;
    }
    return nullptr;
  }
  // Content-based selection must show the selector full elements, so
  // this path (and only this path) materializes contents under mu_.
  std::vector<InternalElement*> internal;
  for (const auto& [key, eid] : qs->order) {
    InternalElement& ie = qs->elements.at(eid);
    if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) {
      internal.push_back(&ie);
    }
  }
  if (internal.empty()) return nullptr;
  std::vector<Element> materialized;
  materialized.reserve(internal.size());
  std::vector<Element*> candidates;
  candidates.reserve(internal.size());
  for (InternalElement* ie : internal) {
    Element e = ie->meta;
    if (ie->payload != nullptr) e.contents = *ie->payload;
    materialized.push_back(std::move(e));
    candidates.push_back(&materialized.back());
  }
  size_t chosen = (*selector)(candidates);
  if (chosen >= internal.size()) return nullptr;
  return internal[chosen];
}

Result<Element> QueueRepository::DequeueInternal(
    txn::Transaction* t, const std::string& queue, const Selector* selector,
    const std::string& registrant, const Slice& tag,
    uint64_t timeout_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  QueueState* qs = FindQueue(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  if (!qs->started) return Status::FailedPrecondition("queue stopped: " + queue);
  if (!registrant.empty() && qs->registrations.count(registrant) == 0) {
    return Status::NotConnected("not registered: " + registrant);
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  InternalElement* picked = nullptr;
  bool head_locked = false;
  while (true) {
    picked = PickVisible(qs, selector, &head_locked);
    if (picked != nullptr) break;
    if (timeout_micros == 0) {
      return head_locked
                 ? Status::Busy("head element locked (strict FIFO): " + queue)
                 : Status::NotFound("queue empty: " + queue);
    }
    ++qs->waiters;
    const auto wait_result = qs->cv.wait_until(lock, deadline);
    --qs->waiters;
    // The queue may have been stopped (not destroyed: waiters pin it).
    qs = FindQueue(queue);
    if (qs == nullptr) return Status::NotFound("queue destroyed: " + queue);
    if (!qs->started) {
      return Status::FailedPrecondition("queue stopped: " + queue);
    }
    if (wait_result == std::cv_status::timeout) {
      picked = PickVisible(qs, selector, &head_locked);
      if (picked == nullptr) {
        return head_locked
                   ? Status::Busy("head element locked (strict FIFO): " + queue)
                   : Status::TimedOut("dequeue timed out: " + queue);
      }
      break;
    }
  }

  // Take the metadata and a reference to the shared payload under the
  // lock; the payload byte copy for the caller happens after unlock.
  Element copy = picked->meta;
  std::shared_ptr<const std::string> payload = picked->payload;
  dequeues_.fetch_add(1, std::memory_order_relaxed);

  MicroOp remove;
  remove.kind = MicroOp::kRemove;
  remove.queue = queue;
  remove.element.eid = copy.eid;
  std::vector<MicroOp> ops;
  ops.push_back(std::move(remove));
  if (!registrant.empty()) {
    ops.push_back(MakeLastOpMicro(queue, registrant, OpType::kDequeue, tag,
                                  copy, payload));
  }

  if (t == nullptr) {
    // Auto-commit: log + apply while still holding the lock (via the
    // Locked variant pattern inlined here to keep pick+consume atomic).
    const bool log = NeedsLogging(ops);
    uint64_t end_offset = 0;
    wal::LogWriter* wal = wal_.get();
    if (log) {
      std::string record;
      EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
      RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
    }
    std::vector<std::string> notify;
    for (const MicroOp& op : ops) ApplyMicroOp(op, &notify);
    const std::string replica = MaybeEncodeReplication(ops);
    lock.unlock();
    if (payload != nullptr) copy.contents = *payload;
    if (log && options_.sync_commits) {
      RRQ_RETURN_IF_ERROR(wal->SyncTo(end_offset));
    }
    AfterApply(notify);
    RRQ_RETURN_IF_ERROR(Replicate(replica));
    return copy;
  }

  // Transactional: lock the element in place; removal applies at commit.
  picked->locked_by = t->id();
  lock.unlock();
  if (payload != nullptr) copy.contents = *payload;
  BufferTxnOps(t, std::move(ops), {LockedRef{queue, copy.eid, false}});
  return copy;
}

Result<Element> QueueRepository::Dequeue(txn::Transaction* t,
                                         const std::string& queue,
                                         const std::string& registrant,
                                         const Slice& tag,
                                         uint64_t timeout_micros) {
  return DequeueInternal(t, queue, nullptr, registrant, tag, timeout_micros);
}

Result<Element> QueueRepository::DequeueSelected(txn::Transaction* t,
                                                 const std::string& queue,
                                                 const Selector& selector,
                                                 const std::string& registrant,
                                                 const Slice& tag) {
  return DequeueInternal(t, queue, &selector, registrant, tag, 0);
}

Result<Element> QueueRepository::DequeueFromSet(
    txn::Transaction* t, const std::vector<std::string>& queues,
    const std::string& registrant, const Slice& tag) {
  for (const std::string& q : queues) {
    Result<Element> r = DequeueInternal(t, q, nullptr, registrant, tag, 0);
    if (r.ok()) return r;
    if (!r.status().IsNotFound() && !r.status().IsBusy()) return r;
  }
  return Status::NotFound("no element available in queue set");
}

Result<Element> QueueRepository::Read(const std::string& queue,
                                      ElementId eid) const {
  // Under mu_: find the element and bump the payload refcount. The
  // contents copy — the expensive part for large payloads — happens
  // after unlock, off the global lock's critical path.
  Element result;
  std::shared_ptr<const std::string> payload;
  bool found = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const QueueState* qs = FindQueue(queue);
    if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
    auto it = qs->elements.find(eid);
    if (it != qs->elements.end()) {
      result = it->second.meta;
      payload = it->second.payload;
      found = true;
    } else {
      // §4.3: a registrant may Read the element of its last operation
      // even after it was dequeued — serve it from the stable last-op
      // copies.
      for (const auto& [registrant, reg] : qs->registrations) {
        if (reg.last.eid == eid) {
          result = reg.last.meta;
          payload = reg.last.payload;
          found = true;
          break;
        }
      }
    }
  }
  if (!found) {
    return Status::NotFound("no such element: " + std::to_string(eid));
  }
  if (payload != nullptr) result.contents = *payload;
  return result;
}

Result<bool> QueueRepository::KillElement(txn::Transaction* t,
                                          const std::string& queue,
                                          ElementId eid) {
  std::unique_lock<std::mutex> lock(mu_);
  QueueState* qs = FindQueue(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  auto it = qs->elements.find(eid);
  if (it == qs->elements.end()) {
    return false;  // Already consumed by a committed dequeue.
  }
  InternalElement& ie = it->second;

  MicroOp remove;
  remove.kind = MicroOp::kRemove;
  remove.queue = queue;
  remove.element.eid = eid;

  if (ie.locked_by == txn::kInvalidTxnId) {
    if (t != nullptr) {
      // Reserve the element for this transaction so no dequeuer races
      // us; the kill-flavored lock entry makes an abort of t release
      // the element intact (no abort-count bump).
      ie.locked_by = t->id();
      ie.killed = true;
      lock.unlock();
      BufferTxnOps(t, {std::move(remove)}, {LockedRef{queue, eid, true}});
      return true;
    }
    std::vector<MicroOp> ops{std::move(remove)};
    const bool log = NeedsLogging(ops);
    uint64_t end_offset = 0;
    wal::LogWriter* wal = wal_.get();
    if (log) {
      std::string record;
      EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
      RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
    }
    std::vector<std::string> notify;
    for (const MicroOp& op : ops) ApplyMicroOp(op, &notify);
    const std::string replica = MaybeEncodeReplication(ops);
    lock.unlock();
    if (log && options_.sync_commits) {
      RRQ_RETURN_IF_ERROR(wal->SyncTo(end_offset));
    }
    AfterApply(notify);
    RRQ_RETURN_IF_ERROR(Replicate(replica));
    return true;
  }

  // Locked by an uncommitted dequeuer. If it already voted yes we can
  // no longer unilaterally abort it (§7's "not yet committed" window
  // closes at prepare).
  auto tit = txns_.find(ie.locked_by);
  if (tit != txns_.end() && tit->second.prepared) {
    return false;
  }
  // Durably delete now; the dequeuer's prepare will find the element
  // gone and veto, aborting its transaction.
  std::vector<MicroOp> ops{std::move(remove)};
  const bool log = NeedsLogging(ops);
  uint64_t end_offset = 0;
  wal::LogWriter* wal = wal_.get();
  if (log) {
    std::string record;
    EncodeRecord(kRecCommitted, txn::kInvalidTxnId, ops, &record);
    RRQ_RETURN_IF_ERROR(wal_->AddRecord(record, &end_offset));
  }
  std::vector<std::string> notify;
  for (const MicroOp& op : ops) ApplyMicroOp(op, &notify);
  const std::string replica = MaybeEncodeReplication(ops);
  lock.unlock();
  if (log && options_.sync_commits) {
    RRQ_RETURN_IF_ERROR(wal->SyncTo(end_offset));
  }
  AfterApply(notify);
  RRQ_RETURN_IF_ERROR(Replicate(replica));
  return true;
}

Status QueueRepository::SetTrigger(const TriggerSpec& spec) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (FindQueue(spec.watched_queue) == nullptr) {
      return Status::NotFound("no such queue: " + spec.watched_queue);
    }
  }
  MicroOp op;
  op.kind = MicroOp::kSetTrigger;
  op.queue = spec.watched_queue;
  op.trigger = spec;
  RRQ_RETURN_IF_ERROR(AutoCommit({std::move(op)}));
  // The condition may already hold.
  AfterApply({spec.watched_queue});
  return Status::OK();
}

Result<size_t> QueueRepository::Depth(const std::string& queue) const {
  std::lock_guard<std::mutex> guard(mu_);
  const QueueState* qs = FindQueue(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  size_t depth = 0;
  for (const auto& [key, eid] : qs->order) {
    const auto& ie = qs->elements.at(eid);
    if (ie.locked_by == txn::kInvalidTxnId && !ie.killed) ++depth;
  }
  return depth;
}

Result<QueueOptions> QueueRepository::GetQueueOptions(
    const std::string& queue) const {
  std::lock_guard<std::mutex> guard(mu_);
  const QueueState* qs = FindQueue(queue);
  if (qs == nullptr) return Status::NotFound("no such queue: " + queue);
  return qs->options;
}

std::vector<std::string> QueueRepository::ListQueues() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, qs] : queues_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// Durability: open / replay / checkpoint

Status QueueRepository::Open() {
  if (opened_) return Status::FailedPrecondition("repository already open");
  if (options_.env == nullptr) {
    opened_ = true;
    return Status::OK();
  }
  env::Env* env = options_.env;
  RRQ_RETURN_IF_ERROR(env->CreateDirIfMissing(options_.dir));
  if (env->FileExists(CurrentPath())) {
    std::string current;
    RRQ_RETURN_IF_ERROR(env::ReadFileToString(env, CurrentPath(), &current));
    Slice input(current);
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &generation_));
  }
  // A crash inside Checkpoint() can strand the previous generation's
  // WAL/checkpoint (crash between the CURRENT switch and the retire),
  // a freshly written next generation (crash before the CURRENT
  // switch), or a half-written *.tmp. Sweep them before recovery
  // creates any files of its own.
  {
    env::GcStats gc;
    RRQ_RETURN_IF_ERROR(
        env::RetireStaleGenerations(env, options_.dir, generation_, &gc));
    gc_removed_.fetch_add(gc.removed, std::memory_order_relaxed);
    remove_failures_.fetch_add(gc.failures, std::memory_order_relaxed);
  }
  if (env->FileExists(CurrentPath())) {
    RRQ_RETURN_IF_ERROR(LoadCheckpoint(generation_));
    RRQ_RETURN_IF_ERROR(ReplayWal(generation_));
  }
  RRQ_RETURN_IF_ERROR(OpenWalForAppend(generation_));
  if (!env->FileExists(CurrentPath())) {
    std::string current;
    util::PutVarint64(&current, generation_);
    RRQ_RETURN_IF_ERROR(env::WriteStringToFileSync(env, current, CurrentPath()));
  }
  opened_ = true;
  return Status::OK();
}

Status QueueRepository::OpenWalForAppend(uint64_t generation) {
  env::Env* env = options_.env;
  const std::string path = WalPath(generation);
  uint64_t size = 0;
  if (env->FileExists(path)) {
    RRQ_RETURN_IF_ERROR(env->GetFileSize(path, &size));
  }
  std::unique_ptr<env::WritableFile> file;
  RRQ_RETURN_IF_ERROR(env->NewAppendableFile(path, &file));
  wal_ = std::make_unique<wal::LogWriter>(std::move(file), size,
                                          options_.group_commit);
  return Status::OK();
}

void QueueRepository::EncodeSnapshot(std::string* out) const {
  util::PutFixed64(out, next_eid_.load(std::memory_order_relaxed));
  util::PutVarint64(out, queues_.size());
  for (const auto& [name, qs] : queues_) {
    util::PutLengthPrefixed(out, name);
    EncodeQueueOptions(qs->options, out);
    out->push_back(qs->started ? 1 : 0);
    util::PutVarint64(out, qs->registrations.size());
    for (const auto& [registrant, reg] : qs->registrations) {
      util::PutLengthPrefixed(out, registrant);
      out->push_back(reg.stable ? 1 : 0);
      out->push_back(static_cast<char>(reg.last.type));
      util::PutFixed64(out, reg.last.eid);
      util::PutLengthPrefixed(out, reg.last.tag);
      EncodeElementParts(reg.last.meta, reg.last.payload, out);
    }
    // Elements in dequeue order (volatile queues persist none).
    if (qs->options.durable) {
      util::PutVarint64(out, qs->order.size());
      for (const auto& [key, eid] : qs->order) {
        const InternalElement& ie = qs->elements.at(eid);
        EncodeElementParts(ie.meta, ie.payload, out);
      }
    } else {
      util::PutVarint64(out, 0);
    }
  }
  util::PutVarint64(out, triggers_.size());
  for (const TriggerSpec& t : triggers_) EncodeTrigger(t, out);
}

Status QueueRepository::DecodeSnapshot(Slice input) {
  uint64_t next_eid = 0;
  RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &next_eid));
  next_eid_.store(next_eid, std::memory_order_relaxed);
  uint64_t queue_count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &queue_count));
  for (uint64_t i = 0; i < queue_count; ++i) {
    std::string name;
    RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &name));
    auto qs = std::make_unique<QueueState>();
    RRQ_RETURN_IF_ERROR(DecodeQueueOptions(&input, &qs->options));
    if (input.empty()) return Status::Corruption("truncated snapshot");
    qs->started = input[0] != 0;
    input.remove_prefix(1);
    uint64_t reg_count = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &reg_count));
    for (uint64_t r = 0; r < reg_count; ++r) {
      std::string registrant;
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &registrant));
      if (input.size() < 2) return Status::Corruption("truncated registration");
      RegistrationRecord reg;
      reg.stable = input[0] != 0;
      RRQ_RETURN_IF_ERROR(
          DecodeOpType(static_cast<uint8_t>(input[1]), &reg.last.type));
      input.remove_prefix(2);
      RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &reg.last.eid));
      RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &reg.last.tag));
      Element last_element;
      RRQ_RETURN_IF_ERROR(DecodeElement(&input, &last_element));
      reg.last.payload = std::make_shared<const std::string>(
          std::move(last_element.contents));
      last_element.contents.clear();
      reg.last.meta = std::move(last_element);
      qs->registrations[registrant] = std::move(reg);
    }
    uint64_t element_count = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &element_count));
    for (uint64_t e = 0; e < element_count; ++e) {
      Element decoded;
      RRQ_RETURN_IF_ERROR(DecodeElement(&input, &decoded));
      InternalElement ie;
      ie.payload =
          std::make_shared<const std::string>(std::move(decoded.contents));
      decoded.contents.clear();
      ie.meta = std::move(decoded);
      ie.seq = next_seq_++;
      qs->order[{~ie.meta.priority, ie.seq}] = ie.meta.eid;
      qs->elements[ie.meta.eid] = std::move(ie);
    }
    queues_[name] = std::move(qs);
  }
  uint64_t trigger_count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &trigger_count));
  for (uint64_t i = 0; i < trigger_count; ++i) {
    TriggerSpec t;
    RRQ_RETURN_IF_ERROR(DecodeTrigger(&input, &t));
    triggers_.push_back(std::move(t));
  }
  return Status::OK();
}

Status QueueRepository::LoadCheckpoint(uint64_t generation) {
  env::Env* env = options_.env;
  const std::string path = CheckpointPath(generation);
  if (!env->FileExists(path)) return Status::OK();
  std::string data;
  RRQ_RETURN_IF_ERROR(env::ReadFileToString(env, path, &data));
  std::lock_guard<std::mutex> guard(mu_);
  return DecodeSnapshot(Slice(data));
}

Status QueueRepository::ReplayWal(uint64_t generation) {
  env::Env* env = options_.env;
  const std::string path = WalPath(generation);
  if (!env->FileExists(path)) return Status::OK();
  std::unique_ptr<env::SequentialFile> file;
  RRQ_RETURN_IF_ERROR(env->NewSequentialFile(path, &file));
  wal::LogReader reader(std::move(file));

  std::unordered_map<txn::TxnId, std::vector<MicroOp>> prepared;
  Slice record;
  std::string scratch;
  std::lock_guard<std::mutex> guard(mu_);
  while (reader.ReadRecord(&record, &scratch)) {
    Slice input = record;
    if (input.empty()) continue;
    unsigned char type = static_cast<unsigned char>(input[0]);
    input.remove_prefix(1);
    uint64_t id = 0;
    uint64_t eid_watermark = 0;
    RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &id));
    RRQ_RETURN_IF_ERROR(util::GetFixed64(&input, &eid_watermark));
    if (eid_watermark > next_eid_.load(std::memory_order_relaxed)) {
      next_eid_.store(eid_watermark, std::memory_order_relaxed);
    }

    uint64_t op_count = 0;
    RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &op_count));
    std::vector<MicroOp> ops;
    ops.reserve(static_cast<size_t>(op_count));
    for (uint64_t i = 0; i < op_count; ++i) {
      MicroOp op;
      RRQ_RETURN_IF_ERROR(DecodeMicroOp(&input, &op));
      ops.push_back(std::move(op));
    }

    if (type == kRecCommitted) {
      for (const MicroOp& op : ops) ApplyMicroOp(op, nullptr);
    } else if (type == kRecPrepare) {
      prepared[id] = std::move(ops);
    } else if (type == kRecCommit) {
      auto it = prepared.find(id);
      if (it != prepared.end()) {
        for (const MicroOp& op : it->second) ApplyMicroOp(op, nullptr);
        prepared.erase(it);
      }
    } else {
      return Status::Corruption("unknown repository WAL record type");
    }
  }

  for (auto& [id, ops] : prepared) {
    const bool committed =
        options_.in_doubt_resolver != nullptr && options_.in_doubt_resolver(id);
    if (committed) {
      for (const MicroOp& op : ops) ApplyMicroOp(op, nullptr);
      RRQ_LOG(kInfo) << name_ << ": in-doubt txn " << id
                     << " resolved to COMMIT";
    } else {
      RRQ_LOG(kInfo) << name_ << ": in-doubt txn " << id
                     << " resolved to ABORT (presumed)";
    }
  }
  return Status::OK();
}

Status QueueRepository::Checkpoint() {
  if (options_.env == nullptr) return Status::OK();
  env::Env* env = options_.env;
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t next_gen = generation_ + 1;

  std::string snapshot;
  EncodeSnapshot(&snapshot);
  RRQ_RETURN_IF_ERROR(
      env::WriteStringToFileSync(env, snapshot, CheckpointPath(next_gen)));

  std::unique_ptr<env::WritableFile> file;
  RRQ_RETURN_IF_ERROR(env->NewWritableFile(WalPath(next_gen), &file));
  auto new_wal = std::make_unique<wal::LogWriter>(std::move(file), 0,
                                                  options_.group_commit);
  for (const auto& [id, pt] : txns_) {
    if (!pt.prepared) continue;
    std::string record;
    EncodeRecord(kRecPrepare, id, pt.ops, &record);
    RRQ_RETURN_IF_ERROR(new_wal->AddRecord(record));
  }
  RRQ_RETURN_IF_ERROR(new_wal->Sync());

  std::string current;
  util::PutVarint64(&current, next_gen);
  RRQ_RETURN_IF_ERROR(env::WriteStringToFileSync(env, current, CurrentPath()));

  RemoveRetiredFile(WalPath(generation_));
  RemoveRetiredFile(CheckpointPath(generation_));
  generation_ = next_gen;
  wal_ = std::move(new_wal);
  return Status::OK();
}

void QueueRepository::RemoveRetiredFile(const std::string& path) {
  Status s = options_.env->RemoveFile(path);
  if (s.ok() || s.IsNotFound()) return;  // Gen 0 has no checkpoint file.
  remove_failures_.fetch_add(1, std::memory_order_relaxed);
  RRQ_LOG(kWarn) << name_ << ": failed to retire " << path << ": "
                 << s.ToString() << " (recovery GC will re-attempt)";
}

uint64_t QueueRepository::wal_bytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return wal_ == nullptr ? 0 : wal_->PhysicalSize();
}

uint64_t QueueRepository::wal_sync_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return wal_ == nullptr ? 0 : wal_->sync_count();
}

uint64_t QueueRepository::wal_sync_request_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return wal_ == nullptr ? 0 : wal_->sync_request_count();
}

}  // namespace rrq::queue
