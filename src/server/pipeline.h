#ifndef RRQ_SERVER_PIPELINE_H_
#define RRQ_SERVER_PIPELINE_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "queue/envelope.h"
#include "queue/queue_repository.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/status.h"

namespace rrq::server {

/// What one pipeline stage produces: the body passed to the next stage
/// (or, for the final stage, the reply body) and an optional
/// compensation record. A non-empty compensation is pushed onto the
/// request's scratch pad and replayed — in reverse order, one
/// transaction each — if the request is cancelled after this stage
/// committed (§7, sagas).
struct StageResult {
  std::string body;
  std::string compensation;
};

/// Stage application logic, run inside that stage's transaction.
using StageHandler = std::function<Result<StageResult>(
    txn::Transaction* t, const queue::RequestEnvelope& request)>;

/// Undoes one stage's committed effects given its compensation record.
using CompensationHandler =
    std::function<Status(txn::Transaction* t, const std::string& compensation)>;

struct PipelineStage {
  std::string name;
  StageHandler handler;
  /// Required for cancellable pipelines; may be null otherwise.
  CompensationHandler compensate;
};

struct PipelineOptions {
  std::string name = "pipeline";
  /// Stage i dequeues from "<queue_prefix>.<i>"; the compensation
  /// queue is "<queue_prefix>.comp".
  std::string queue_prefix;
  int threads_per_stage = 1;
  uint64_t poll_timeout_micros = 50'000;
  /// Retry budget per stage execution (deadlock victims etc.).
  int max_attempts = 3;
  /// Queue options applied to every stage queue.
  queue::QueueOptions stage_queue_options;
};

/// Outcome of Pipeline::Cancel (§7).
enum class CancelOutcome : int {
  /// The request was still in the entry queue; simply deleted.
  kKilledInQueue = 0,
  /// Found between stages; committed stages will be compensated and
  /// the client will get a failure ("cancelled") reply.
  kCompensating = 1,
  /// Not found: it completed, or is locked by an executing stage right
  /// now. Cancellation after completion needs an application-level
  /// compensating request.
  kTooLate = 2,
};

/// A serial multi-transaction request processor (Fig 6): a sequence of
/// server stages connected by queue pairs. Each stage is one
/// transaction {dequeue, process, enqueue-to-next}; the final stage
/// enqueues the reply. State crosses transaction boundaries only
/// through the request's scratch pad or a transactional store (§6's
/// rule: local variables do not survive).
///
/// The chain cannot be broken by failures: any crash aborts one
/// stage's transaction, returning the request to that stage's input
/// queue. Exactly-once processing of the whole request follows from
/// the single-transaction argument applied per stage.
class Pipeline {
 public:
  Pipeline(PipelineOptions options, queue::QueueRepository* repo,
           txn::TransactionManager* txn_mgr,
           std::vector<PipelineStage> stages);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Creates the stage queues (idempotent).
  Status Setup();

  /// The queue clients Send requests to.
  std::string entry_queue() const { return StageQueue(0); }

  Status Start();
  void Stop();

  /// Runs one {dequeue, process, forward} cycle of stage `stage` on
  /// the caller's thread (deterministic tests/benches). NotFound when
  /// that stage's queue is empty.
  Status ProcessOneAt(size_t stage);

  /// Runs one compensation step (one transaction) if any compensation
  /// request is pending. NotFound when none.
  Status ProcessOneCompensation();

  /// Cancels the request with `rid` (§7). See CancelOutcome.
  Result<CancelOutcome> Cancel(const std::string& rid);

  uint64_t completed_count() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t compensation_count() const {
    return compensations_.load(std::memory_order_relaxed);
  }

  std::string StageQueue(size_t stage) const;
  std::string CompensationQueue() const;

 private:
  // Scratch-pad compensation log: (stage index, record) pairs.
  static std::string EncodeCompLog(
      const std::vector<std::pair<uint32_t, std::string>>& log);
  static Status DecodeCompLog(
      const Slice& scratch,
      std::vector<std::pair<uint32_t, std::string>>* log);

  void WorkerLoop(size_t stage);
  void CompensationLoop();

  PipelineOptions options_;
  queue::QueueRepository* repo_;
  txn::TransactionManager* txn_mgr_;
  std::vector<PipelineStage> stages_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> compensations_{0};
};

}  // namespace rrq::server

#endif  // RRQ_SERVER_PIPELINE_H_
