#include "server/pipeline.h"

#include <chrono>

#include "util/coding.h"
#include "util/logging.h"

namespace rrq::server {

Pipeline::Pipeline(PipelineOptions options, queue::QueueRepository* repo,
                   txn::TransactionManager* txn_mgr,
                   std::vector<PipelineStage> stages)
    : options_(std::move(options)),
      repo_(repo),
      txn_mgr_(txn_mgr),
      stages_(std::move(stages)) {}

Pipeline::~Pipeline() { Stop(); }

std::string Pipeline::StageQueue(size_t stage) const {
  return options_.queue_prefix + "." + std::to_string(stage);
}

std::string Pipeline::CompensationQueue() const {
  return options_.queue_prefix + ".comp";
}

Status Pipeline::Setup() {
  for (size_t i = 0; i < stages_.size(); ++i) {
    Status s = repo_->CreateQueue(StageQueue(i), options_.stage_queue_options);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  Status s = repo_->CreateQueue(CompensationQueue(),
                                options_.stage_queue_options);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  return Status::OK();
}

std::string Pipeline::EncodeCompLog(
    const std::vector<std::pair<uint32_t, std::string>>& log) {
  std::string out;
  util::PutVarint64(&out, log.size());
  for (const auto& [stage, record] : log) {
    util::PutVarint32(&out, stage);
    util::PutLengthPrefixed(&out, record);
  }
  return out;
}

Status Pipeline::DecodeCompLog(
    const Slice& scratch, std::vector<std::pair<uint32_t, std::string>>* log) {
  log->clear();
  if (scratch.empty()) return Status::OK();
  Slice input = scratch;
  uint64_t count = 0;
  RRQ_RETURN_IF_ERROR(util::GetVarint64(&input, &count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t stage = 0;
    std::string record;
    RRQ_RETURN_IF_ERROR(util::GetVarint32(&input, &stage));
    RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, &record));
    log->emplace_back(stage, std::move(record));
  }
  return Status::OK();
}

Status Pipeline::ProcessOneAt(size_t stage) {
  if (stage >= stages_.size()) {
    return Status::InvalidArgument("no such stage");
  }
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    auto txn = txn_mgr_->Begin();
    auto dequeued = repo_->Dequeue(txn.get(), StageQueue(stage), "", Slice(),
                                   options_.poll_timeout_micros);
    if (!dequeued.ok()) {
      txn->Abort();
      return dequeued.status();
    }

    queue::RequestEnvelope request;
    Status parse = queue::DecodeRequestEnvelope(dequeued->contents, &request);
    if (!parse.ok()) {
      txn->Abort();
      return parse;
    }

    auto result = stages_[stage].handler(txn.get(), request);
    if (!result.ok()) {
      txn->Abort();
      last = result.status();
      const Status& s = result.status();
      if (s.IsAborted() || s.IsBusy() || s.IsTimedOut()) continue;
      return s;
    }

    // Extend the compensation log carried in the scratch pad.
    if (!result->compensation.empty()) {
      std::vector<std::pair<uint32_t, std::string>> log;
      Status decode = DecodeCompLog(request.scratch, &log);
      if (!decode.ok()) {
        txn->Abort();
        return decode;
      }
      log.emplace_back(static_cast<uint32_t>(stage),
                       std::move(result->compensation));
      request.scratch = EncodeCompLog(log);
    }
    request.body = std::move(result->body);

    Status enq_status;
    if (stage + 1 < stages_.size()) {
      auto enq = repo_->Enqueue(txn.get(), StageQueue(stage + 1),
                                queue::EncodeRequestEnvelope(request));
      enq_status = enq.status();
    } else if (!request.reply_queue.empty()) {
      queue::ReplyEnvelope reply;
      reply.rid = request.rid;
      reply.success = true;
      reply.body = request.body;
      auto enq = repo_->Enqueue(txn.get(), request.reply_queue,
                                queue::EncodeReplyEnvelope(reply),
                                request.reply_priority);
      enq_status = enq.status();
    }
    if (!enq_status.ok()) {
      txn->Abort();
      return enq_status;
    }

    Status commit = txn->Commit();
    if (!commit.ok()) {
      last = commit;
      continue;  // Deadlock victim or killed element: maybe retry.
    }
    if (stage + 1 == stages_.size()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }
  return last.ok() ? Status::Aborted("stage retries exhausted") : last;
}

Status Pipeline::ProcessOneCompensation() {
  auto txn = txn_mgr_->Begin();
  auto dequeued = repo_->Dequeue(txn.get(), CompensationQueue());
  if (!dequeued.ok()) {
    txn->Abort();
    return dequeued.status();
  }
  queue::RequestEnvelope request;
  Status parse = queue::DecodeRequestEnvelope(dequeued->contents, &request);
  if (!parse.ok()) {
    txn->Abort();
    return parse;
  }
  std::vector<std::pair<uint32_t, std::string>> log;
  Status decode = DecodeCompLog(request.scratch, &log);
  if (!decode.ok()) {
    txn->Abort();
    return decode;
  }

  if (!log.empty()) {
    // Undo the most recent committed stage, then requeue the remainder
    // — one compensating transaction per step (§7: compensations run
    // as a serial multi-transaction request).
    const auto [stage, record] = log.back();
    log.pop_back();
    if (stage < stages_.size() && stages_[stage].compensate != nullptr) {
      Status comp = stages_[stage].compensate(txn.get(), record);
      if (!comp.ok()) {
        txn->Abort();
        return comp;
      }
    }
    request.scratch = EncodeCompLog(log);
    if (!log.empty()) {
      auto enq = repo_->Enqueue(txn.get(), CompensationQueue(),
                                queue::EncodeRequestEnvelope(request));
      if (!enq.ok()) {
        txn->Abort();
        return enq.status();
      }
    }
  }

  if (log.empty() && !request.reply_queue.empty()) {
    queue::ReplyEnvelope reply;
    reply.rid = request.rid;
    reply.success = false;
    reply.body = "request cancelled";
    auto enq = repo_->Enqueue(txn.get(), request.reply_queue,
                              queue::EncodeReplyEnvelope(reply),
                              request.reply_priority);
    if (!enq.ok()) {
      txn->Abort();
      return enq.status();
    }
  }

  Status commit = txn->Commit();
  if (commit.ok()) compensations_.fetch_add(1, std::memory_order_relaxed);
  return commit;
}

Result<CancelOutcome> Pipeline::Cancel(const std::string& rid) {
  // Look for the request between stages, newest position first (it
  // can only move forward; scanning backward avoids chasing it).
  for (size_t stage = stages_.size(); stage-- > 0;) {
    auto txn = txn_mgr_->Begin();
    queue::Selector match_rid =
        [&rid](const std::vector<queue::Element*>& candidates) -> size_t {
      for (size_t i = 0; i < candidates.size(); ++i) {
        queue::RequestEnvelope envelope;
        if (queue::DecodeRequestEnvelope(candidates[i]->contents, &envelope)
                .ok() &&
            envelope.rid == rid) {
          return i;
        }
      }
      return SIZE_MAX;
    };
    auto dequeued = repo_->DequeueSelected(txn.get(), StageQueue(stage),
                                           match_rid);
    if (!dequeued.ok()) {
      txn->Abort();
      continue;
    }
    queue::RequestEnvelope request;
    Status parse = queue::DecodeRequestEnvelope(dequeued->contents, &request);
    if (!parse.ok()) {
      txn->Abort();
      return parse;
    }
    std::vector<std::pair<uint32_t, std::string>> log;
    RRQ_RETURN_IF_ERROR(DecodeCompLog(request.scratch, &log));
    if (stage == 0 && log.empty()) {
      // Nothing committed yet: plain §7 cancellation.
      RRQ_RETURN_IF_ERROR(txn->Commit());
      return CancelOutcome::kKilledInQueue;
    }
    // Atomically swap the in-flight request for a compensation request.
    auto enq = repo_->Enqueue(txn.get(), CompensationQueue(),
                              queue::EncodeRequestEnvelope(request));
    if (!enq.ok()) {
      txn->Abort();
      return enq.status();
    }
    RRQ_RETURN_IF_ERROR(txn->Commit());
    return CancelOutcome::kCompensating;
  }
  return CancelOutcome::kTooLate;
}

Status Pipeline::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("pipeline already running");
  }
  for (size_t stage = 0; stage < stages_.size(); ++stage) {
    for (int t = 0; t < options_.threads_per_stage; ++t) {
      workers_.emplace_back([this, stage]() { WorkerLoop(stage); });
    }
  }
  workers_.emplace_back([this]() { CompensationLoop(); });
  return Status::OK();
}

void Pipeline::Stop() {
  running_.store(false);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Pipeline::WorkerLoop(size_t stage) {
  while (running_.load(std::memory_order_relaxed)) {
    ProcessOneAt(stage);
  }
}

void Pipeline::CompensationLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Status s = ProcessOneCompensation();
    if (s.IsNotFound()) {
      // Idle; ProcessOneCompensation uses a zero timeout.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

}  // namespace rrq::server
