#ifndef RRQ_SERVER_INTERACTIVE_H_
#define RRQ_SERVER_INTERACTIVE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/network.h"
#include "env/env.h"
#include "queue/envelope.h"
#include "queue/queue_repository.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::server {

// §8.3's single-transaction alternative to pseudo-conversational
// requests: the request executes as ONE transaction that solicits
// intermediate inputs by exchanging ordinary (non-transactional)
// messages with the client. Serializable, cancellable until the last
// input — but intermediate I/O dies with an abort unless the client
// logs it; IoLog implements that logging-and-replay discipline.
// (The pseudo-conversational implementation of §8.2 needs no new
// machinery: it is exactly a Pipeline whose stage boundaries are the
// intermediate I/O points.)

/// Client-side durable log of intermediate I/O, keyed by (rid, step).
/// When the server's transaction aborts and re-executes, the replayed
/// prompts are answered from the log — as long as each prompt matches
/// the logged one; a divergent prompt invalidates the remainder of the
/// logged conversation (§8.3).
class IoLog {
 public:
  /// `env` may be nullptr (volatile log, for baselines).
  IoLog(env::Env* env, std::string path);

  IoLog(const IoLog&) = delete;
  IoLog& operator=(const IoLog&) = delete;

  /// Loads existing records. Call once before use.
  Status Open();

  /// Durably records one exchange.
  Status Record(const std::string& rid, uint32_t step, const Slice& prompt,
                const Slice& input);

  /// Returns the logged input for (rid, step) iff the logged prompt
  /// equals `prompt`; NotFound otherwise. A mismatched prompt also
  /// discards all logged steps >= `step` for that rid.
  Result<std::string> Lookup(const std::string& rid, uint32_t step,
                             const Slice& prompt);

  /// Drops a completed request's entries (in memory; the file is
  /// compacted on the next Open).
  void Forget(const std::string& rid);

  uint64_t replay_count() const {
    return replays_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string prompt;
    std::string input;
  };

  env::Env* env_;
  std::string path_;
  mutable Mutex mu_;
  std::map<std::pair<std::string, uint32_t>, Entry> entries_ GUARDED_BY(mu_);
  std::unique_ptr<env::WritableFile> file_ GUARDED_BY(mu_);
  std::atomic<uint64_t> replays_{0};
};

/// Asks the client for one intermediate input; invoked by the
/// conversation handler. Step numbers start at 1.
using AskFn = std::function<Result<std::string>(const Slice& prompt)>;

/// Application logic of a conversational request: runs inside ONE
/// transaction, calling `ask` for each intermediate input.
using ConversationHandler = std::function<Result<std::string>(
    txn::Transaction* t, const queue::RequestEnvelope& request,
    const AskFn& ask)>;

struct ConversationalServerOptions {
  std::string name = "conv-server";
  std::string request_queue;
  std::string default_reply_queue;
  uint64_t poll_timeout_micros = 50'000;
  int max_attempts = 5;
};

/// Single-transaction interactive server (§8.3). The client's network
/// endpoint name travels in the request envelope's scratch field. A
/// failed intermediate exchange aborts the transaction; the request
/// returns to its queue and re-executes, with the client's IoLog
/// supplying the already-given inputs.
class ConversationalServer {
 public:
  ConversationalServer(ConversationalServerOptions options,
                       queue::QueueRepository* repo,
                       txn::TransactionManager* txn_mgr,
                       comm::Network* network, ConversationHandler handler);
  ~ConversationalServer();

  ConversationalServer(const ConversationalServer&) = delete;
  ConversationalServer& operator=(const ConversationalServer&) = delete;

  Status Start();
  void Stop();

  /// One full conversation cycle on the caller's thread.
  Status ProcessOne();

  uint64_t completed_count() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t aborted_count() const {
    return aborted_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  ConversationalServerOptions options_;
  queue::QueueRepository* repo_;
  txn::TransactionManager* txn_mgr_;
  comm::Network* network_;
  ConversationHandler handler_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> aborted_{0};
};

/// Supplies a fresh intermediate input when the IoLog has no replay
/// (i.e., the real user).
using InputFn = std::function<Result<std::string>(uint32_t step,
                                                  const std::string& prompt)>;

/// Client-side endpoint answering a conversational server's prompts:
/// replays from the IoLog when possible, otherwise asks the user and
/// logs the exchange before answering (so the input is never lost once
/// given, §8.3).
class InteractiveClient {
 public:
  InteractiveClient(comm::Network* network, std::string endpoint_name,
                    IoLog* io_log, InputFn user_input);
  ~InteractiveClient();

  Status Register();
  void Unregister();

  const std::string& endpoint_name() const { return endpoint_name_; }
  uint64_t fresh_input_count() const {
    return fresh_inputs_.load(std::memory_order_relaxed);
  }

 private:
  Status Handle(const Slice& request, std::string* reply);

  comm::Network* network_;
  std::string endpoint_name_;
  IoLog* io_log_;
  InputFn user_input_;
  bool registered_ = false;
  std::atomic<uint64_t> fresh_inputs_{0};
};

/// Wire helpers for the prompt exchange (shared by both sides).
std::string EncodePrompt(const std::string& rid, uint32_t step,
                         const Slice& prompt);
Status DecodePrompt(const Slice& wire, std::string* rid, uint32_t* step,
                    std::string* prompt);

}  // namespace rrq::server

#endif  // RRQ_SERVER_INTERACTIVE_H_
