#include "server/interactive.h"

#include "util/coding.h"
#include "util/logging.h"

namespace rrq::server {

// ---------------------------------------------------------------------------
// IoLog

IoLog::IoLog(env::Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

Status IoLog::Open() {
  if (env_ == nullptr) return Status::OK();
  MutexLock guard(mu_);
  if (env_->FileExists(path_)) {
    std::string data;
    RRQ_RETURN_IF_ERROR(env::ReadFileToString(env_, path_, &data));
    Slice input(data);
    while (!input.empty()) {
      std::string rid, prompt, value;
      uint32_t step = 0;
      if (!util::GetLengthPrefixedString(&input, &rid).ok()) break;
      if (!util::GetVarint32(&input, &step).ok()) break;
      if (!util::GetLengthPrefixedString(&input, &prompt).ok()) break;
      if (!util::GetLengthPrefixedString(&input, &value).ok()) break;
      entries_[{rid, step}] = Entry{std::move(prompt), std::move(value)};
    }
  }
  // Compact: rewrite surviving entries, then append from there.
  std::string compacted;
  for (const auto& [key, entry] : entries_) {
    util::PutLengthPrefixed(&compacted, key.first);
    util::PutVarint32(&compacted, key.second);
    util::PutLengthPrefixed(&compacted, entry.prompt);
    util::PutLengthPrefixed(&compacted, entry.input);
  }
  RRQ_RETURN_IF_ERROR(env::WriteStringToFileSync(env_, compacted, path_));
  return env_->NewAppendableFile(path_, &file_);
}

Status IoLog::Record(const std::string& rid, uint32_t step,
                     const Slice& prompt, const Slice& input) {
  MutexLock guard(mu_);
  entries_[{rid, step}] = Entry{prompt.ToString(), input.ToString()};
  if (file_ != nullptr) {
    std::string record;
    util::PutLengthPrefixed(&record, rid);
    util::PutVarint32(&record, step);
    util::PutLengthPrefixed(&record, prompt);
    util::PutLengthPrefixed(&record, input);
    RRQ_RETURN_IF_ERROR(file_->Append(record));
    RRQ_RETURN_IF_ERROR(file_->Sync());
  }
  return Status::OK();
}

Result<std::string> IoLog::Lookup(const std::string& rid, uint32_t step,
                                  const Slice& prompt) {
  MutexLock guard(mu_);
  auto it = entries_.find({rid, step});
  if (it == entries_.end()) return Status::NotFound("no logged exchange");
  if (Slice(it->second.prompt) != prompt) {
    // Divergent replay: this and all later logged inputs are invalid
    // (§8.3 — "once the client receives intermediate output that
    // differs from the previous incarnation, it must discard the
    // remaining logged intermediate input").
    auto erase_from = entries_.lower_bound({rid, step});
    while (erase_from != entries_.end() && erase_from->first.first == rid) {
      erase_from = entries_.erase(erase_from);
    }
    return Status::NotFound("prompt diverged from logged conversation");
  }
  replays_.fetch_add(1, std::memory_order_relaxed);
  return it->second.input;
}

void IoLog::Forget(const std::string& rid) {
  MutexLock guard(mu_);
  auto it = entries_.lower_bound({rid, 0});
  while (it != entries_.end() && it->first.first == rid) {
    it = entries_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Prompt wire format

std::string EncodePrompt(const std::string& rid, uint32_t step,
                         const Slice& prompt) {
  std::string out;
  util::PutLengthPrefixed(&out, rid);
  util::PutVarint32(&out, step);
  util::PutLengthPrefixed(&out, prompt);
  return out;
}

Status DecodePrompt(const Slice& wire, std::string* rid, uint32_t* step,
                    std::string* prompt) {
  Slice input = wire;
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, rid));
  RRQ_RETURN_IF_ERROR(util::GetVarint32(&input, step));
  RRQ_RETURN_IF_ERROR(util::GetLengthPrefixedString(&input, prompt));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ConversationalServer

ConversationalServer::ConversationalServer(ConversationalServerOptions options,
                                           queue::QueueRepository* repo,
                                           txn::TransactionManager* txn_mgr,
                                           comm::Network* network,
                                           ConversationHandler handler)
    : options_(std::move(options)),
      repo_(repo),
      txn_mgr_(txn_mgr),
      network_(network),
      handler_(std::move(handler)) {}

ConversationalServer::~ConversationalServer() { Stop(); }

Status ConversationalServer::ProcessOne() {
  auto txn = txn_mgr_->Begin();
  auto dequeued = repo_->Dequeue(txn.get(), options_.request_queue, "",
                                 Slice(), options_.poll_timeout_micros);
  if (!dequeued.ok()) {
    txn->Abort();
    return dequeued.status();
  }
  queue::RequestEnvelope request;
  Status parse = queue::DecodeRequestEnvelope(dequeued->contents, &request);
  if (!parse.ok()) {
    txn->Abort();
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return parse;
  }
  // Convention: the client's endpoint travels in the scratch field.
  const std::string client_endpoint = request.scratch;

  uint32_t step = 0;
  AskFn ask = [this, &request, &client_endpoint,
               &step](const Slice& prompt) -> Result<std::string> {
    ++step;
    std::string reply;
    Status s = network_->Call(options_.name, client_endpoint,
                              EncodePrompt(request.rid, step, prompt), &reply);
    if (!s.ok()) return s;  // Lost exchange: the whole txn will abort.
    return reply;
  };

  auto reply_body = handler_(txn.get(), request, ask);
  if (!reply_body.ok()) {
    txn->Abort();
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return reply_body.status();
  }

  const std::string& reply_queue = request.reply_queue.empty()
                                       ? options_.default_reply_queue
                                       : request.reply_queue;
  if (!reply_queue.empty()) {
    queue::ReplyEnvelope reply;
    reply.rid = request.rid;
    reply.success = true;
    reply.body = std::move(*reply_body);
    auto enq = repo_->Enqueue(txn.get(), reply_queue,
                              queue::EncodeReplyEnvelope(reply),
                              request.reply_priority);
    if (!enq.ok()) {
      txn->Abort();
      aborted_.fetch_add(1, std::memory_order_relaxed);
      return enq.status();
    }
  }
  Status commit = txn->Commit();
  if (!commit.ok()) {
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return commit;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ConversationalServer::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("server already running");
  }
  workers_.emplace_back([this]() { WorkerLoop(); });
  return Status::OK();
}

void ConversationalServer::Stop() {
  running_.store(false);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ConversationalServer::WorkerLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    ProcessOne();
  }
}

// ---------------------------------------------------------------------------
// InteractiveClient

InteractiveClient::InteractiveClient(comm::Network* network,
                                     std::string endpoint_name, IoLog* io_log,
                                     InputFn user_input)
    : network_(network),
      endpoint_name_(std::move(endpoint_name)),
      io_log_(io_log),
      user_input_(std::move(user_input)) {}

InteractiveClient::~InteractiveClient() { Unregister(); }

Status InteractiveClient::Register() {
  if (registered_) return Status::OK();
  RRQ_RETURN_IF_ERROR(network_->RegisterEndpoint(
      endpoint_name_, [this](const Slice& request, std::string* reply) {
        return Handle(request, reply);
      }));
  registered_ = true;
  return Status::OK();
}

void InteractiveClient::Unregister() {
  if (registered_) {
    network_->RemoveEndpoint(endpoint_name_);
    registered_ = false;
  }
}

Status InteractiveClient::Handle(const Slice& request, std::string* reply) {
  std::string rid, prompt;
  uint32_t step = 0;
  RRQ_RETURN_IF_ERROR(DecodePrompt(request, &rid, &step, &prompt));

  // Replay from the log when this prompt was already answered (§8.3).
  auto logged = io_log_->Lookup(rid, step, prompt);
  if (logged.ok()) {
    *reply = *logged;
    return Status::OK();
  }

  auto fresh = user_input_(step, prompt);
  if (!fresh.ok()) return fresh.status();
  fresh_inputs_.fetch_add(1, std::memory_order_relaxed);
  // Log before answering: once the input leaves the client it must
  // survive a server abort.
  RRQ_RETURN_IF_ERROR(io_log_->Record(rid, step, prompt, *fresh));
  *reply = *fresh;
  return Status::OK();
}

}  // namespace rrq::server
