#include "server/server.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace rrq::server {

Server::Server(ServerOptions options, queue::QueueRepository* repo,
               txn::TransactionManager* txn_mgr, RequestHandler handler)
    : options_(std::move(options)),
      repo_(repo),
      txn_mgr_(txn_mgr),
      handler_(std::move(handler)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("server already running");
  }
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  running_.store(false);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Server::InjectCrashBeforeCommit(int after_requests) {
  crash_after_.store(after_requests);
}

Status Server::ProcessOne() {
  auto txn = txn_mgr_->Begin();
  auto dequeued =
      options_.scheduler != nullptr
          ? repo_->DequeueSelected(txn.get(), options_.request_queue,
                                   options_.scheduler)
          : repo_->Dequeue(txn.get(), options_.request_queue,
                           /*registrant=*/"", /*tag=*/Slice(),
                           options_.poll_timeout_micros);
  if (!dequeued.ok()) {
    txn->Abort();
    if (options_.scheduler != nullptr && dequeued.status().IsNotFound() &&
        options_.poll_timeout_micros > 0) {
      // Selector dequeues don't block; pace the idle loop.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.poll_timeout_micros));
    }
    return dequeued.status();
  }

  queue::RequestEnvelope request;
  Status parse = queue::DecodeRequestEnvelope(dequeued->contents, &request);
  if (!parse.ok()) {
    // Malformed requests abort repeatedly and drain to the error queue,
    // where the scavenger answers with a failure reply (§4.2).
    txn->Abort();
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return parse;
  }

  // Simulated server crash between dequeue and commit: the abort
  // returns the request to the queue, so no work is lost (§2).
  int expected = crash_after_.load(std::memory_order_relaxed);
  while (expected >= 0 &&
         !crash_after_.compare_exchange_weak(expected, expected - 1)) {
  }
  if (expected == 0) {
    txn->Abort();
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted("injected server crash");
  }

  Result<std::string> reply_body = handler_(txn.get(), request);
  if (!reply_body.ok()) {
    txn->Abort();
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return reply_body.status();
  }

  const std::string& reply_queue = request.reply_queue.empty()
                                       ? options_.default_reply_queue
                                       : request.reply_queue;
  if (!reply_queue.empty()) {
    queue::ReplyEnvelope reply;
    reply.rid = request.rid;
    reply.success = true;
    reply.body = std::move(*reply_body);
    auto enq = repo_->Enqueue(txn.get(), reply_queue,
                              queue::EncodeReplyEnvelope(reply),
                              request.reply_priority);
    if (!enq.ok()) {
      txn->Abort();
      aborted_.fetch_add(1, std::memory_order_relaxed);
      return enq.status();
    }
  }

  Status commit = txn->Commit();
  if (!commit.ok()) {
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return commit;
  }
  processed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Server::ScavengeOneError() {
  auto qopts = repo_->GetQueueOptions(options_.request_queue);
  if (!qopts.ok() || qopts->error_queue.empty() ||
      !repo_->QueueExists(qopts->error_queue)) {
    return Status::NotFound("no error queue");
  }
  auto txn = txn_mgr_->Begin();
  auto dead = repo_->Dequeue(txn.get(), qopts->error_queue);
  if (!dead.ok()) {
    txn->Abort();
    return dead.status();
  }
  queue::RequestEnvelope request;
  Status parse = queue::DecodeRequestEnvelope(dead->contents, &request);
  const std::string reply_queue =
      parse.ok() && !request.reply_queue.empty() ? request.reply_queue
                                                 : options_.default_reply_queue;
  if (!reply_queue.empty()) {
    // §3: the failure reply is "a promise that it will not attempt to
    // execute the request any more".
    queue::ReplyEnvelope reply;
    reply.rid = request.rid;
    reply.success = false;
    reply.body = "request failed permanently: " + dead->abort_code;
    auto enq = repo_->Enqueue(txn.get(), reply_queue,
                              queue::EncodeReplyEnvelope(reply),
                              request.reply_priority);
    if (!enq.ok()) {
      txn->Abort();
      return enq.status();
    }
  }
  Status commit = txn->Commit();
  if (commit.ok()) failure_replies_.fetch_add(1, std::memory_order_relaxed);
  return commit;
}

void Server::WorkerLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Status s = ProcessOne();
    if (s.ok()) continue;
    if (options_.reply_on_failure) {
      // Opportunistically answer permanently failed requests.
      ScavengeOneError();
    }
    // NotFound/TimedOut: queue idle. Aborted: the request went back to
    // its queue; someone (maybe us) will redo it. Either way, loop.
  }
}

}  // namespace rrq::server
