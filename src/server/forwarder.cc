#include "server/forwarder.h"

#include <chrono>

namespace rrq::server {

Forwarder::Forwarder(Options options, queue::QueueRepository* source,
                     queue::QueueRepository* target,
                     txn::TransactionManager* txn_mgr)
    : options_(std::move(options)),
      source_(source),
      target_(target),
      txn_mgr_(txn_mgr) {}

Forwarder::~Forwarder() { Stop(); }

Status Forwarder::ForwardOne() {
  auto txn = txn_mgr_->Begin();
  auto got = source_->Dequeue(txn.get(), options_.source_queue, "", Slice(),
                              options_.poll_timeout_micros);
  if (!got.ok()) {
    txn->Abort();
    return got.status();
  }
  // Preserve priority across the hop; the eid is repository-scoped, so
  // the target assigns a new one (cross-repository element identity is
  // the open issue §10 acknowledges — the rid in the envelope is the
  // durable cross-node identity here).
  auto put = target_->Enqueue(txn.get(), options_.target_queue,
                              got->contents, got->priority);
  if (!put.ok()) {
    txn->Abort();
    failures_.fetch_add(1, std::memory_order_relaxed);
    return put.status();
  }
  Status commit = txn->Commit();
  if (!commit.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return commit;
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Forwarder::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("forwarder already running");
  }
  workers_.emplace_back([this]() { WorkerLoop(); });
  return Status::OK();
}

void Forwarder::Stop() {
  running_.store(false);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Forwarder::WorkerLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    Status s = ForwardOne();
    if (s.ok() || s.IsNotFound() || s.IsTimedOut()) continue;
    // Remote side unreachable: back off, then retry — the element is
    // safe in the local queue meanwhile.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.retry_backoff_micros));
  }
}

}  // namespace rrq::server
