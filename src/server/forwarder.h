#ifndef RRQ_SERVER_FORWARDER_H_
#define RRQ_SERVER_FORWARDER_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "queue/queue_repository.h"
#include "txn/txn_manager.h"
#include "util/status.h"

namespace rrq::server {

/// Store-and-forward relay — §1's availability mechanism: "If a client
/// enqueues its requests to a local queue, and periodically moves its
/// local requests to the remote input queue of a server process, then
/// the server appears to provide a reliable service to the client even
/// if the client and server nodes are frequently partitioned."
///
/// Each move is one transaction spanning both repositories (dequeue
/// local + enqueue remote under two-phase commit), so a request is
/// never lost and never duplicated in transit: a failure mid-move
/// aborts, returning the element to the local queue for the next
/// attempt. This is also CICS's "transaction routing" shape (§9).
///
/// The source queue should disable its abort limit (max_aborts = 0 or
/// no error queue): forwarding failures are transient by nature.
class Forwarder {
 public:
  struct Options {
    std::string name = "forwarder";
    std::string source_queue;
    std::string target_queue;
    /// Bound on each idle wait for local work.
    uint64_t poll_timeout_micros = 20'000;
    /// Backoff after a failed move (e.g. remote partitioned).
    uint64_t retry_backoff_micros = 20'000;
  };

  /// Neither repository is owned. `txn_mgr` must be a coordinator both
  /// repositories resolve in-doubt transactions against.
  Forwarder(Options options, queue::QueueRepository* source,
            queue::QueueRepository* target,
            txn::TransactionManager* txn_mgr);
  ~Forwarder();

  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  Status Start();
  void Stop();

  /// Moves one element now (caller's thread). NotFound when the local
  /// queue is empty; Unavailable/Aborted when the remote side is
  /// unreachable (the element stays local).
  Status ForwardOne();

  uint64_t forwarded_count() const {
    return forwarded_.load(std::memory_order_relaxed);
  }
  uint64_t failed_attempts() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  Options options_;
  queue::QueueRepository* source_;
  queue::QueueRepository* target_;
  txn::TransactionManager* txn_mgr_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> failures_{0};
};

}  // namespace rrq::server

#endif  // RRQ_SERVER_FORWARDER_H_
