#include "server/app_lock_table.h"

namespace rrq::server {

Status AppLockTable::Acquire(txn::Transaction* t, const std::string& resource,
                             const std::string& owner) {
  auto holder = store_->GetForUpdate(t, Key(resource));
  if (holder.ok()) {
    if (*holder == owner) return Status::OK();  // Re-entrant.
    return Status::Busy("application lock held by " + *holder + ": " +
                        resource);
  }
  if (!holder.status().IsNotFound()) return holder.status();
  return store_->Put(t, Key(resource), owner);
}

Status AppLockTable::Release(txn::Transaction* t, const std::string& resource,
                             const std::string& owner) {
  auto holder = store_->GetForUpdate(t, Key(resource));
  if (!holder.ok()) {
    if (holder.status().IsNotFound()) {
      return Status::FailedPrecondition("lock not held: " + resource);
    }
    return holder.status();
  }
  if (*holder != owner) {
    return Status::FailedPrecondition("lock held by " + *holder + ", not " +
                                      owner + ": " + resource);
  }
  return store_->Delete(t, Key(resource));
}

Status AppLockTable::ReleaseAll(txn::Transaction* t,
                                const std::vector<std::string>& resources,
                                const std::string& owner) {
  for (const std::string& resource : resources) {
    RRQ_RETURN_IF_ERROR(Release(t, resource, owner));
  }
  return Status::OK();
}

Result<std::string> AppLockTable::Holder(const std::string& resource) const {
  return store_->GetCommitted(Key(resource));
}

}  // namespace rrq::server
