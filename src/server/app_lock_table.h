#ifndef RRQ_SERVER_APP_LOCK_TABLE_H_
#define RRQ_SERVER_APP_LOCK_TABLE_H_

#include <string>
#include <vector>

#include "storage/kv_store.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/status.h"

namespace rrq::server {

/// The §6 "persistent database of locks": application-level locks that
/// span the component transactions of a multi-transaction request,
/// restoring request-level serializability when the underlying stores
/// release their locks at each transaction boundary.
///
/// A lock is a KV pair ("<prefix><resource>" -> owner rid) written
/// transactionally; acquiring it in stage k's transaction makes the
/// acquisition atomic with stage k's work, and releasing all of a
/// request's locks inside the final transaction makes the release
/// atomic with completion — "releasing all of these application locks
/// just before the final transaction of the multi-transaction request
/// commits."
///
/// As the paper warns, this costs extra durable writes per lock; bench
/// E4 measures exactly that.
class AppLockTable {
 public:
  /// `store` is not owned and must outlive the table.
  explicit AppLockTable(storage::KvStore* store,
                        std::string prefix = "applock/")
      : store_(store), prefix_(std::move(prefix)) {}

  /// Acquires `resource` for `owner` inside `t`. Busy when another
  /// owner holds it (caller should abort and retry later). Re-entrant
  /// for the same owner.
  Status Acquire(txn::Transaction* t, const std::string& resource,
                 const std::string& owner);

  /// Releases one lock. FailedPrecondition when `owner` does not hold it.
  Status Release(txn::Transaction* t, const std::string& resource,
                 const std::string& owner);

  /// Releases every listed lock of `owner` (the final-transaction bulk
  /// release of §6).
  Status ReleaseAll(txn::Transaction* t,
                    const std::vector<std::string>& resources,
                    const std::string& owner);

  /// Committed-state holder of `resource` (NotFound when free).
  Result<std::string> Holder(const std::string& resource) const;

 private:
  std::string Key(const std::string& resource) const {
    return prefix_ + resource;
  }

  storage::KvStore* store_;
  std::string prefix_;
};

}  // namespace rrq::server

#endif  // RRQ_SERVER_APP_LOCK_TABLE_H_
