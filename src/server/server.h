#ifndef RRQ_SERVER_SERVER_H_
#define RRQ_SERVER_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "queue/envelope.h"
#include "queue/queue_repository.h"
#include "txn/txn_manager.h"
#include "util/result.h"
#include "util/status.h"

namespace rrq::server {

/// The application logic a server runs for each request, inside the
/// request's transaction (Fig 5: "process request and prepare reply").
/// May read/write transactional stores by enlisting them on `t`.
/// Returning OK produces the reply body; returning an error aborts the
/// transaction, returning the request to its queue (and eventually to
/// the error queue, §4.2).
using RequestHandler = std::function<Result<std::string>(
    txn::Transaction* t, const queue::RequestEnvelope& request)>;

struct ServerOptions {
  std::string name = "server";
  /// The queue this server dequeues requests from.
  std::string request_queue;
  /// Where replies go when the request envelope names no reply queue.
  std::string default_reply_queue;
  /// Number of identical server threads dequeuing the same queue —
  /// the paper's load sharing (§1).
  int threads = 1;
  /// Bound on each idle dequeue wait.
  uint64_t poll_timeout_micros = 50'000;
  /// When a request fails with a retryable error (deadlock victim),
  /// how many times this server re-runs it before letting the abort
  /// machinery requeue it.
  int max_attempts = 1;
  /// When true, requests that permanently fail (handler returns a
  /// non-retryable error) still get a reply with success=false —
  /// §3's "promise that it will not attempt to execute the request
  /// any more".
  bool reply_on_failure = true;
  /// Optional request scheduler (§10: "requests may be scheduled for
  /// the server by priority, request contents (highest dollar amount
  /// first), submission time, etc."). When set, the server picks the
  /// next request with this selector instead of (priority, FIFO)
  /// order. Note: a selector bypasses the blocking wait, so idle polls
  /// spin at poll_timeout granularity.
  queue::Selector scheduler;
};

/// The server process of the System Model (Fig 5): an endless loop of
/// {start transaction; dequeue request; process; enqueue reply;
/// commit}. Multiple instances (threads) may serve one queue.
///
/// The repository, transaction manager, and handler are not owned and
/// must outlive the server.
class Server {
 public:
  Server(ServerOptions options, queue::QueueRepository* repo,
         txn::TransactionManager* txn_mgr, RequestHandler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the worker threads.
  Status Start();

  /// Stops the workers (after their in-flight transaction resolves).
  void Stop();

  /// Runs a single {dequeue, process, reply, commit} cycle on the
  /// caller's thread. Returns NotFound when no request was available.
  /// Used by tests and by deterministic benchmarks that need
  /// lock-step control instead of free-running threads.
  Status ProcessOne();

  /// Injects a crash before the next commit: the n-th future request
  /// transaction is aborted mid-flight, simulating a server failure
  /// between dequeue and commit. The request must survive (return to
  /// its queue) — the §2 failure scenario.
  void InjectCrashBeforeCommit(int after_requests);

  /// Takes one element from the request queue's error queue and sends
  /// the failure reply for it (§3/§4.2). Returns NotFound when the
  /// error queue is absent or empty.
  Status ScavengeOneError();

  uint64_t processed_count() const {
    return processed_.load(std::memory_order_relaxed);
  }
  uint64_t aborted_count() const {
    return aborted_.load(std::memory_order_relaxed);
  }
  uint64_t failure_replies() const {
    return failure_replies_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  ServerOptions options_;
  queue::QueueRepository* repo_;
  txn::TransactionManager* txn_mgr_;
  RequestHandler handler_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> processed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> failure_replies_{0};
  std::atomic<int> crash_after_{-1};
};

}  // namespace rrq::server

#endif  // RRQ_SERVER_SERVER_H_
