#ifndef RRQ_COMM_QUEUE_SERVICE_H_
#define RRQ_COMM_QUEUE_SERVICE_H_

#include <memory>
#include <string>

#include "comm/network.h"
#include "net/queue_wire.h"
#include "queue/queue_api.h"
#include "queue/queue_repository.h"

namespace rrq::comm {

/// Exposes a QueueRepository's non-transactional operations as a
/// network endpoint, so clerks on other "nodes" can reach the queue
/// manager. The byte protocol (and its no-retry, no-dedup contract) is
/// net::QueueServiceDispatcher — the same dispatcher the rrqd TCP
/// daemon serves, so the simulated and real transports speak identical
/// bytes.
class QueueService {
 public:
  /// Registers endpoint `service_name` on `network`, serving `repo`.
  /// Neither pointer is owned; both must outlive this object.
  QueueService(Network* network, std::string service_name,
               queue::QueueRepository* repo);
  ~QueueService();

  QueueService(const QueueService&) = delete;
  QueueService& operator=(const QueueService&) = delete;

  const std::string& service_name() const { return service_name_; }

  /// Detaches from the network (simulates the QM node going down).
  void Shutdown();
  /// Re-registers the endpoint (node back up).
  Status Restart();

 private:
  Network* network_;
  std::string service_name_;
  net::QueueServiceDispatcher dispatcher_;
  bool up_ = false;
};

/// queue::QueueApi implemented over Network RPCs to a QueueService.
/// Network failures surface as Status::Unavailable; the caller (the
/// clerk) resolves the resulting uncertainty through reconnection and
/// persistent registration, never by blind retry. The encoding lives
/// in net::ChannelQueueApi; this class only adapts the simulated
/// Network to the net::Channel interface.
class RemoteQueueApi final : public queue::QueueApi {
 public:
  RemoteQueueApi(Network* network, std::string self_name,
                 std::string service_name);

  Result<queue::RegistrationInfo> Register(const std::string& queue,
                                           const std::string& registrant,
                                           bool stable) override;
  Status Deregister(const std::string& queue,
                    const std::string& registrant) override;
  Result<queue::ElementId> Enqueue(const std::string& queue,
                                   const Slice& contents, uint32_t priority,
                                   const std::string& registrant,
                                   const Slice& tag, bool one_way) override;
  Result<queue::Element> Dequeue(const std::string& queue,
                                 const std::string& registrant,
                                 const Slice& tag,
                                 uint64_t timeout_micros) override;
  Result<queue::Element> Read(const std::string& queue,
                              queue::ElementId eid) override;
  Result<bool> KillElement(const std::string& queue,
                           queue::ElementId eid) override;

 private:
  /// net::Channel over one (self, service) pair of the simulated
  /// network.
  class NetworkChannel final : public net::Channel {
   public:
    NetworkChannel(Network* network, std::string self_name,
                   std::string service_name)
        : network_(network),
          self_name_(std::move(self_name)),
          service_name_(std::move(service_name)) {}

    Status Call(const Slice& request, std::string* reply) override {
      return network_->Call(self_name_, service_name_, request, reply);
    }
    Status SendOneWay(const Slice& message) override {
      return network_->SendOneWay(self_name_, service_name_, message);
    }

   private:
    Network* network_;
    std::string self_name_;
    std::string service_name_;
  };

  NetworkChannel channel_;
  net::ChannelQueueApi api_;
};

}  // namespace rrq::comm

#endif  // RRQ_COMM_QUEUE_SERVICE_H_
