#ifndef RRQ_COMM_QUEUE_SERVICE_H_
#define RRQ_COMM_QUEUE_SERVICE_H_

#include <memory>
#include <string>

#include "comm/network.h"
#include "queue/queue_api.h"
#include "queue/queue_repository.h"

namespace rrq::comm {

/// Exposes a QueueRepository's non-transactional operations as a
/// network endpoint, so clerks on other "nodes" can reach the queue
/// manager. The service performs no retry or deduplication of its
/// own: at-most-once per message, with the uncertainty on failure that
/// the paper's client protocol is designed to resolve.
class QueueService {
 public:
  /// Registers endpoint `service_name` on `network`, serving `repo`.
  /// Neither pointer is owned; both must outlive this object.
  QueueService(Network* network, std::string service_name,
               queue::QueueRepository* repo);
  ~QueueService();

  QueueService(const QueueService&) = delete;
  QueueService& operator=(const QueueService&) = delete;

  const std::string& service_name() const { return service_name_; }

  /// Detaches from the network (simulates the QM node going down).
  void Shutdown();
  /// Re-registers the endpoint (node back up).
  Status Restart();

 private:
  Status Handle(const Slice& request, std::string* reply);

  Network* network_;
  std::string service_name_;
  queue::QueueRepository* repo_;
  bool up_ = false;
};

/// queue::QueueApi implemented over Network RPCs to a QueueService.
/// Network failures surface as Status::Unavailable; the caller (the
/// clerk) resolves the resulting uncertainty through reconnection and
/// persistent registration, never by blind retry.
class RemoteQueueApi final : public queue::QueueApi {
 public:
  RemoteQueueApi(Network* network, std::string self_name,
                 std::string service_name);

  Result<queue::RegistrationInfo> Register(const std::string& queue,
                                           const std::string& registrant,
                                           bool stable) override;
  Status Deregister(const std::string& queue,
                    const std::string& registrant) override;
  Result<queue::ElementId> Enqueue(const std::string& queue,
                                   const Slice& contents, uint32_t priority,
                                   const std::string& registrant,
                                   const Slice& tag, bool one_way) override;
  Result<queue::Element> Dequeue(const std::string& queue,
                                 const std::string& registrant,
                                 const Slice& tag,
                                 uint64_t timeout_micros) override;
  Result<queue::Element> Read(const std::string& queue,
                              queue::ElementId eid) override;
  Result<bool> KillElement(const std::string& queue,
                           queue::ElementId eid) override;

 private:
  Status CallService(const std::string& request, std::string* payload);

  Network* network_;
  std::string self_name_;
  std::string service_name_;
};

}  // namespace rrq::comm

#endif  // RRQ_COMM_QUEUE_SERVICE_H_
