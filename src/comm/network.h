#ifndef RRQ_COMM_NETWORK_H_
#define RRQ_COMM_NETWORK_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>

#include "util/clock.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rrq::comm {

/// Fault model for one (symmetric) link.
struct LinkFaults {
  /// Probability a given message (request, reply, or one-way) is lost.
  double drop_probability = 0.0;
  /// Probability a one-way message is delivered twice.
  double duplicate_probability = 0.0;
  /// Simulated per-message latency.
  uint64_t latency_micros = 0;
  /// Hard partition: every message is lost.
  bool partitioned = false;
};

/// In-process simulated network. Endpoints register message handlers
/// by name; peers exchange RPCs (request + reply, each independently
/// subject to link faults) and one-way messages. Handlers run in the
/// caller's thread, so delivery is deterministic given the fault seed.
///
/// The critical failure the paper's protocols must survive is modeled
/// exactly: an RPC whose *reply* is dropped has executed at the server
/// while the caller sees Unavailable — the "did my request happen?"
/// uncertainty of §2.
///
/// Thread-safe.
class Network {
 public:
  using Handler = std::function<Status(const Slice& request, std::string* reply)>;

  explicit Network(uint64_t seed = 1, util::Clock* clock = nullptr)
      : rng_(seed),
        clock_(clock != nullptr ? clock : util::RealClock::Instance()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Status RegisterEndpoint(const std::string& name, Handler handler);
  void RemoveEndpoint(const std::string& name);

  /// RPC: delivers `request` to `to`'s handler and returns its reply.
  /// Unavailable when either direction faults or the endpoint is down;
  /// when the reply is lost the handler HAS run.
  Status Call(const std::string& from, const std::string& to,
              const Slice& request, std::string* reply);

  /// One-way message: no acknowledgement; silently lost on fault;
  /// possibly delivered twice under duplication faults.
  Status SendOneWay(const std::string& from, const std::string& to,
                    const Slice& message);

  /// Sets the fault model for the link between `a` and `b` (symmetric).
  void SetLinkFaults(const std::string& a, const std::string& b,
                     LinkFaults faults);
  void Partition(const std::string& a, const std::string& b);
  void Heal(const std::string& a, const std::string& b);

  uint64_t messages_sent() const { return sent_.load(std::memory_order_relaxed); }
  uint64_t messages_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t messages_duplicated() const {
    return duplicated_.load(std::memory_order_relaxed);
  }

 private:
  // Returns false when the message is lost. Accounts stats and latency.
  bool TransmitOk(const std::string& a, const std::string& b,
                  bool* duplicate);
  LinkFaults FaultsFor(const std::string& a, const std::string& b) const
      REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Handler> endpoints_ GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, LinkFaults> links_
      GUARDED_BY(mu_);
  util::Rng rng_ GUARDED_BY(mu_);
  util::Clock* clock_;
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
};

}  // namespace rrq::comm

#endif  // RRQ_COMM_NETWORK_H_
