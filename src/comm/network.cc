#include "comm/network.h"

namespace rrq::comm {

namespace {
std::pair<std::string, std::string> LinkKey(const std::string& a,
                                            const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

Status Network::RegisterEndpoint(const std::string& name, Handler handler) {
  MutexLock guard(mu_);
  if (endpoints_.count(name) > 0) {
    return Status::AlreadyExists("endpoint exists: " + name);
  }
  endpoints_[name] = std::move(handler);
  return Status::OK();
}

void Network::RemoveEndpoint(const std::string& name) {
  MutexLock guard(mu_);
  endpoints_.erase(name);
}

LinkFaults Network::FaultsFor(const std::string& a,
                              const std::string& b) const {
  auto it = links_.find(LinkKey(a, b));
  return it == links_.end() ? LinkFaults{} : it->second;
}

bool Network::TransmitOk(const std::string& a, const std::string& b,
                         bool* duplicate) {
  LinkFaults faults;
  bool drop = false;
  bool dup = false;
  {
    MutexLock guard(mu_);
    faults = FaultsFor(a, b);
    if (faults.partitioned) {
      drop = true;
    } else {
      if (faults.drop_probability > 0) drop = rng_.Bernoulli(faults.drop_probability);
      if (!drop && faults.duplicate_probability > 0) {
        dup = rng_.Bernoulli(faults.duplicate_probability);
      }
    }
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (faults.latency_micros > 0) clock_->SleepMicros(faults.latency_micros);
  if (drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (duplicate != nullptr) *duplicate = dup;
  if (dup) duplicated_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status Network::Call(const std::string& from, const std::string& to,
                     const Slice& request, std::string* reply) {
  Handler handler;
  {
    MutexLock guard(mu_);
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      return Status::Unavailable("endpoint down: " + to);
    }
    handler = it->second;
  }
  // Request leg.
  if (!TransmitOk(from, to, nullptr)) {
    return Status::Unavailable("request lost: " + from + " -> " + to);
  }
  std::string response;
  Status s = handler(request, &response);
  if (!s.ok()) return s;
  // Reply leg: if lost, the side effect at `to` has already happened.
  if (!TransmitOk(to, from, nullptr)) {
    return Status::Unavailable("reply lost: " + to + " -> " + from);
  }
  *reply = std::move(response);
  return Status::OK();
}

Status Network::SendOneWay(const std::string& from, const std::string& to,
                           const Slice& message) {
  Handler handler;
  {
    MutexLock guard(mu_);
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      // One-way sends don't observe endpoint liveness.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      sent_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    handler = it->second;
  }
  bool duplicate = false;
  if (!TransmitOk(from, to, &duplicate)) return Status::OK();
  std::string ignored;
  handler(message, &ignored);
  if (duplicate) handler(message, &ignored);
  return Status::OK();
}

void Network::SetLinkFaults(const std::string& a, const std::string& b,
                            LinkFaults faults) {
  MutexLock guard(mu_);
  links_[LinkKey(a, b)] = faults;
}

void Network::Partition(const std::string& a, const std::string& b) {
  MutexLock guard(mu_);
  links_[LinkKey(a, b)].partitioned = true;
}

void Network::Heal(const std::string& a, const std::string& b) {
  MutexLock guard(mu_);
  links_[LinkKey(a, b)].partitioned = false;
}

}  // namespace rrq::comm
