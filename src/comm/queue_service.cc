#include "comm/queue_service.h"

namespace rrq::comm {

// ---------------------------------------------------------------------------
// QueueService

QueueService::QueueService(Network* network, std::string service_name,
                           queue::QueueRepository* repo)
    : network_(network),
      service_name_(std::move(service_name)),
      dispatcher_(repo) {
  Restart();
}

QueueService::~QueueService() { Shutdown(); }

void QueueService::Shutdown() {
  if (up_) {
    network_->RemoveEndpoint(service_name_);
    up_ = false;
  }
}

Status QueueService::Restart() {
  if (up_) return Status::OK();
  RRQ_RETURN_IF_ERROR(network_->RegisterEndpoint(
      service_name_, [this](const Slice& request, std::string* reply) {
        return dispatcher_.Handle(request, reply);
      }));
  up_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RemoteQueueApi

RemoteQueueApi::RemoteQueueApi(Network* network, std::string self_name,
                               std::string service_name)
    : channel_(network, std::move(self_name), std::move(service_name)),
      api_(&channel_) {}

Result<queue::RegistrationInfo> RemoteQueueApi::Register(
    const std::string& queue, const std::string& registrant, bool stable) {
  return api_.Register(queue, registrant, stable);
}

Status RemoteQueueApi::Deregister(const std::string& queue,
                                  const std::string& registrant) {
  return api_.Deregister(queue, registrant);
}

Result<queue::ElementId> RemoteQueueApi::Enqueue(
    const std::string& queue, const Slice& contents, uint32_t priority,
    const std::string& registrant, const Slice& tag, bool one_way) {
  return api_.Enqueue(queue, contents, priority, registrant, tag, one_way);
}

Result<queue::Element> RemoteQueueApi::Dequeue(const std::string& queue,
                                               const std::string& registrant,
                                               const Slice& tag,
                                               uint64_t timeout_micros) {
  return api_.Dequeue(queue, registrant, tag, timeout_micros);
}

Result<queue::Element> RemoteQueueApi::Read(const std::string& queue,
                                            queue::ElementId eid) {
  return api_.Read(queue, eid);
}

Result<bool> RemoteQueueApi::KillElement(const std::string& queue,
                                         queue::ElementId eid) {
  return api_.KillElement(queue, eid);
}

}  // namespace rrq::comm
